//! Differential proof of the **streaming auditor** against the batch
//! auditors: for seeded workloads exercising commits, aborts, reads,
//! structure modifications, WORM migration, shredding, and mid-run epoch
//! rolls, a stream that tails `L` incrementally — paused and resumed at
//! arbitrary points, at several poll cadences and ingest-batch caps — must
//! produce a [`ccdb::compliance::StreamAuditor::verdict`] **identical** to
//! the cold serial oracle and the parallel pipeline: same verdict, same
//! violation and forensic sets, same completeness hash, same snapshot
//! material.
//!
//! Seed control: `CCDB_AUDIT_DIFF_SEEDS` (comma-separated u64 list) widens
//! the seeded sweep in CI without recompiling.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, SplitMix64, VirtualClock};
use ccdb::compliance::{AuditConfig, AuditOutcome, ComplianceConfig, CompliantDb, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-sdiff-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open(dir: &TempDir, mode: Mode) -> (CompliantDb, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(30)));
    let db = CompliantDb::open(
        &dir.0,
        clock.clone(),
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: 128,
            auditor_seed: [0xD1; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    (db, clock)
}

/// The audit-diff seeded workload, with a hook invoked after every
/// transaction (and every epoch-level maintenance action) so a streaming
/// auditor can be polled at arbitrary pause points mid-run.
fn seeded_workload(db: &CompliantDb, seed: u64, epochs: u32, hook: &mut dyn FnMut(&CompliantDb)) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let ledger = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let hot = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.8 }).unwrap();
    for epoch in 0..epochs {
        let txns = rng.gen_range(120..240u32);
        for i in 0..txns {
            let t = db.begin().unwrap();
            let rel = if rng.gen_bool(0.3) { hot } else { ledger };
            let nwrites = rng.gen_range(1..5u32);
            for _ in 0..nwrites {
                let k = format!("s{seed}-k{:04}", rng.gen_range(0..600u32));
                if rng.gen_bool(0.12) {
                    db.delete(t, rel, k.as_bytes()).unwrap();
                } else {
                    let v = format!("e{epoch}i{i}v{}", rng.gen_range(0..u32::MAX));
                    db.write(t, rel, k.as_bytes(), v.as_bytes()).unwrap();
                }
            }
            if rng.gen_bool(0.25) {
                let k = format!("s{seed}-k{:04}", rng.gen_range(0..600u32));
                let _ = db.read(t, rel, k.as_bytes()).unwrap();
            }
            if rng.gen_bool(0.1) {
                db.abort(t).unwrap();
            } else {
                db.commit(t).unwrap();
            }
            hook(db);
        }
        if rng.gen_bool(0.6) {
            let _ = db.migrate_to_worm(hot).unwrap();
            hook(db);
        }
        if rng.gen_bool(0.5) {
            let t = db.begin().unwrap();
            db.set_retention(t, "ledger", Duration::from_micros(1)).unwrap();
            db.commit(t).unwrap();
            let _ = db.vacuum().unwrap();
            let t = db.begin().unwrap();
            db.set_retention(t, "ledger", Duration::from_mins(60)).unwrap();
            db.commit(t).unwrap();
            hook(db);
        }
        if epoch + 1 < epochs {
            let report = db.audit().unwrap();
            assert!(report.is_clean(), "seed {seed} epoch {epoch}: {:?}", report.violations);
            hook(db);
        }
    }
}

/// Asserts two audit outcomes are observably identical: verdict, violation
/// list, forensics, counts, completeness hash, and snapshot material.
#[track_caller]
fn assert_same_outcome(tag: &str, a: &AuditOutcome, b: &AuditOutcome) {
    assert_eq!(a.report.epoch, b.report.epoch, "{tag}: epoch");
    assert_eq!(a.report.violations, b.report.violations, "{tag}: violations");
    assert_eq!(a.report.forensics, b.report.forensics, "{tag}: forensics");
    assert_eq!(
        a.report.stats.records_scanned, b.report.stats.records_scanned,
        "{tag}: records_scanned"
    );
    assert_eq!(a.report.stats.tuples_final, b.report.stats.tuples_final, "{tag}: tuples_final");
    assert_eq!(
        a.report.stats.reads_verified, b.report.stats.reads_verified,
        "{tag}: reads_verified"
    );
    assert_eq!(a.tuple_hash, b.tuple_hash, "{tag}: tuple_hash");
    assert_eq!(a.snapshot_pages, b.snapshot_pages, "{tag}: snapshot_pages");
}

fn diff_seeds() -> Vec<u64> {
    match std::env::var("CCDB_AUDIT_DIFF_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("CCDB_AUDIT_DIFF_SEEDS: bad u64"))
            .collect(),
        Err(_) => vec![11, 42],
    }
}

/// The pause-point sweep: the stream is polled mid-workload at several
/// cadences (every Nth transaction, N seeded-random) and ingest caps
/// (including a degenerate 1-record cap that puts every record at a batch
/// boundary), then its verdict is compared against the cold serial oracle
/// and the parallel pipeline over the same quiesced state.
fn sweep(mode: Mode, tag: &str) {
    for seed in diff_seeds() {
        for (cadence, cap) in
            [(7usize, None), (3usize, Some(5usize)), (13usize, Some(1usize)), (1usize, Some(64))]
        {
            let d = TempDir::new(&format!("{tag}-{seed}-{cadence}"));
            let (db, _clock) = open(&d, mode);
            let mut stream = db.stream_auditor().unwrap();
            stream.set_max_batch_records(cap);
            let mut step = 0usize;
            let mut pauser = SplitMix64::seed_from_u64(seed ^ 0x5EED_CAFE);
            seeded_workload(&db, seed, 2, &mut |db| {
                step += 1;
                // Random extra pauses on top of the fixed cadence.
                if step.is_multiple_of(cadence) || pauser.gen_bool(0.15) {
                    let alert = stream.poll(db).unwrap();
                    assert!(alert.is_none(), "clean workload alerted: {alert:?}");
                }
            });

            let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
            let par = db
                .audit_outcome_with(AuditConfig::default().with_threads(4).with_chunk_records(3))
                .unwrap();
            let sv = stream.verdict(&db).unwrap();
            let label = format!("{tag} seed={seed} cadence={cadence} cap={cap:?}");
            assert_same_outcome(&format!("{label} vs serial"), &serial, &sv);
            assert_same_outcome(&format!("{label} vs parallel"), &par, &sv);
            assert!(sv.report.is_clean(), "{label}: {:?}", sv.report.violations);

            // The verdict ran over a clone of the carried state: a second
            // verdict — and one after further polling — is identical.
            let sv2 = stream.verdict(&db).unwrap();
            assert_same_outcome(&format!("{label} verdict idempotent"), &sv, &sv2);
            assert!(stream.poll(&db).unwrap().is_none());
            assert_eq!(stream.stats().lag_records, 0, "{label}: caught up");
            assert_eq!(stream.stats().tamper_alerts, 0, "{label}: no alerts");
            let sv3 = stream.verdict(&db).unwrap();
            assert_same_outcome(&format!("{label} verdict after resume"), &sv, &sv3);

            // The stream followed the mid-workload epoch roll.
            assert_eq!(stream.epoch(), db.epoch(), "{label}: epoch follow");
            assert_eq!(stream.stats().epochs_sealed, db.epoch(), "{label}: rolls counted");
        }
    }
}

#[test]
fn streaming_matches_batch_log_consistent() {
    sweep(Mode::LogConsistent, "lc");
}

#[test]
fn streaming_matches_batch_hash_on_read() {
    sweep(Mode::HashOnRead, "hor");
}

/// A cold stream attached *after* the workload (no mid-run polls at all —
/// one giant catch-up batch) also matches.
#[test]
fn cold_attach_matches_serial() {
    let d = TempDir::new("cold");
    let (db, _clock) = open(&d, Mode::HashOnRead);
    seeded_workload(&db, 23, 2, &mut |_| {});
    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    let mut stream = db.stream_auditor().unwrap();
    let sv = stream.verdict(&db).unwrap();
    assert_same_outcome("cold", &serial, &sv);
}

/// Regression: a transaction that writes the **same key twice at one commit
/// instant** (same `(rel, key, start_time)`, distinct seqs) used to leave a
/// dangling entry in the completeness accumulator after a vacuum shredded
/// both versions — the shred book collapsed them into one entry, so the
/// second `UNDO` was misread as a crash-recovery duplicate and never folded
/// out, yielding a false `CompletenessMismatch` on an honest database. All
/// three strategies must now agree the state is clean.
#[test]
fn same_instant_double_write_shreds_cleanly() {
    let d = TempDir::new("dup-shred");
    let (db, _clock) = open(&d, Mode::LogConsistent);
    let ledger = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.write(t, ledger, b"dup", b"first").unwrap();
    db.write(t, ledger, b"dup", b"second").unwrap();
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    db.write(t, ledger, b"other", b"keep").unwrap();
    db.commit(t).unwrap();

    let report = db.audit().unwrap();
    assert!(report.is_clean(), "pre-shred audit: {:?}", report.violations);

    // Expire the relation and shred: both same-instant versions go.
    let t = db.begin().unwrap();
    db.set_retention(t, "ledger", Duration::from_micros(1)).unwrap();
    db.commit(t).unwrap();
    let _ = db.vacuum().unwrap();

    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    assert!(serial.report.is_clean(), "serial after dup-shred: {:?}", serial.report.violations);
    let par = db.audit_outcome_with(AuditConfig::default().with_threads(2)).unwrap();
    let mut stream = db.stream_auditor().unwrap();
    let sv = stream.verdict(&db).unwrap();
    assert_same_outcome("dup-shred vs parallel", &serial, &par);
    assert_same_outcome("dup-shred vs streaming", &serial, &sv);
}

/// Satellite regression: `with_checkpoints(false)` and the streaming path
/// agree with the batch auditors on `snapshot_prefix_skipped` accounting —
/// all strategies report the same (positive) skip count when the sealed
/// checkpoint is honored, and exactly zero when it is disabled, with the
/// verdict unchanged either way.
#[test]
fn snapshot_prefix_skipped_accounting_agrees() {
    let d = TempDir::new("skip");
    let (db, _clock) = open(&d, Mode::LogConsistent);
    seeded_workload(&db, 7, 2, &mut |_| {});
    assert!(db.epoch() > 0, "workload must roll at least one epoch");

    let on_serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    let on_par = db.audit_outcome_with(AuditConfig::default().with_threads(2)).unwrap();
    let mut s_on = db.stream_auditor().unwrap();
    let on_stream = s_on.verdict(&db).unwrap();
    assert!(
        on_serial.report.stats.snapshot_prefix_skipped > 0,
        "checkpointed audit should skip the sealed prefix"
    );
    assert_eq!(
        on_serial.report.stats.snapshot_prefix_skipped, on_par.report.stats.snapshot_prefix_skipped,
        "serial vs parallel skip accounting"
    );
    assert_eq!(
        on_serial.report.stats.snapshot_prefix_skipped,
        on_stream.report.stats.snapshot_prefix_skipped,
        "serial vs streaming skip accounting"
    );
    assert_eq!(
        s_on.stats().snapshot_prefix_skipped,
        on_stream.report.stats.snapshot_prefix_skipped
    );

    let off_serial = db.audit_outcome_with(AuditConfig::serial().with_checkpoints(false)).unwrap();
    let off_par = db
        .audit_outcome_with(AuditConfig::default().with_threads(2).with_checkpoints(false))
        .unwrap();
    let mut s_off = db.stream_auditor_with(AuditConfig::default().with_checkpoints(false)).unwrap();
    let off_stream = s_off.verdict(&db).unwrap();
    for (label, out) in
        [("serial", &off_serial), ("parallel", &off_par), ("streaming", &off_stream)]
    {
        assert_eq!(
            out.report.stats.snapshot_prefix_skipped, 0,
            "{label}: checkpoints off must re-fold the full snapshot"
        );
    }

    // Accounting differs; the verdict must not.
    assert_same_outcome("skip on-vs-off serial", &on_serial, &off_serial);
    assert_same_outcome("skip on-vs-off streaming", &on_stream, &off_stream);
    assert_same_outcome("skip streaming-vs-serial", &on_stream, &on_serial);
}
