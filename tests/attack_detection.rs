//! The threat-model gauntlet: every attack in the paper's catalogue is
//! executed by "Mala" against a running compliant database, and the auditor
//! must raise the *specific* violation the paper promises.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::adversary::Mala;
use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, RelId, Timestamp, TxnId, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode, Violation};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-attack-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(tag: &str, mode: Mode) -> (CompliantDb, Arc<VirtualClock>, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(
        &d.0,
        clock.clone(),
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: 128,
            auditor_seed: [3u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    (db, clock, d)
}

/// Populates a ledger and flushes everything to disk so Mala has bytes to
/// edit and the cache holds nothing stale.
fn seed(db: &CompliantDb, n: usize) -> RelId {
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    for i in 0..n {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("acct-{i:04}").as_bytes(), format!("balance={i}").as_bytes())
            .unwrap();
        db.commit(t).unwrap();
    }
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
    rel
}

fn mala(db: &CompliantDb) -> Mala {
    Mala::new(db.engine().db_path())
}

/// Runs the serial oracle and the parallel pipeline as dry-runs over the
/// same quiesced state, asserts they agree on every observable (verdict,
/// violations, forensics, completeness hash), then points the **streaming
/// daemon** at the same database: a single deep poll — one poll interval
/// after injection — must raise a [`ccdb::compliance::TamperAlert`] carrying
/// exactly the violations the batch auditors report (and stay silent when
/// they report none). Finally performs the real epoch-advancing audit and
/// returns its report. Every attack in this gauntlet therefore proves
/// detection under **all three** auditors.
fn audit_both(db: &CompliantDb) -> ccdb::compliance::AuditReport {
    use ccdb::compliance::AuditConfig;
    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    for threads in [2usize, 4] {
        let par = db.audit_outcome_with(AuditConfig::default().with_threads(threads)).unwrap();
        assert_eq!(
            serial.report.violations, par.report.violations,
            "serial/parallel divergence at {threads} threads"
        );
        assert_eq!(
            serial.report.forensics, par.report.forensics,
            "forensics divergence at {threads} threads"
        );
        assert_eq!(
            serial.tuple_hash, par.tuple_hash,
            "completeness-hash divergence at {threads} threads"
        );
    }
    let mut stream = db.stream_auditor().unwrap();
    let alert = stream.poll_deep(db).unwrap();
    if serial.report.is_clean() {
        assert!(alert.is_none(), "streaming daemon false alarm: {alert:?}");
        assert_eq!(stream.stats().tamper_alerts, 0);
    } else {
        let alert = alert.unwrap_or_else(|| {
            panic!("streaming daemon missed the attack: {:?}", serial.report.violations)
        });
        assert_eq!(
            alert.violations, serial.report.violations,
            "streaming alert disagrees with the batch verdict"
        );
        assert!(stream.stats().tamper_alerts >= 1);
    }
    db.audit().unwrap()
}

#[test]
fn altering_a_committed_tuple_is_detected() {
    let (db, _c, _d) = setup("alter", Mode::LogConsistent);
    seed(&db, 200);
    assert!(mala(&db).alter_tuple_value(b"acct-0042", b"balance=1000000").unwrap());
    let report = audit_both(&db);
    assert!(!report.is_clean());
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::CompletenessMismatch)),
        "{:?}",
        report.violations
    );
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::StateMismatch { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn shredding_evidence_outside_the_protocol_is_detected() {
    let (db, _c, _d) = setup("shred", Mode::LogConsistent);
    seed(&db, 200);
    assert!(mala(&db).delete_tuple(b"acct-0007").unwrap());
    let report = audit_both(&db);
    assert!(report.violations.iter().any(|v| matches!(v, Violation::CompletenessMismatch)));
}

#[test]
fn post_hoc_insertion_of_backdated_records_is_detected() {
    // The government-records threat: "post-hoc insertion of government
    // electronic records, such as records of births, deaths, marriages…".
    let (db, _c, _d) = setup("backdate", Mode::LogConsistent);
    let rel = seed(&db, 200);
    assert!(mala(&db).backdate_insert(rel, b"acct-9999", b"born=1985", Timestamp(10)).unwrap());
    let report = audit_both(&db);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::CompletenessMismatch)),
        "{:?}",
        report.violations
    );
}

#[test]
fn fig2b_swapped_leaf_entries_detected_by_sort_check() {
    let (db, _c, _d) = setup("fig2b", Mode::LogConsistent);
    seed(&db, 200);
    assert!(mala(&db).swap_leaf_entries().unwrap());
    let report = audit_both(&db);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::TreeIntegrity(_))),
        "{:?}",
        report.violations
    );
}

#[test]
fn fig2c_tampered_separator_detected_by_parent_child_check() {
    let (db, _c, _d) = setup("fig2c", Mode::LogConsistent);
    seed(&db, 2000); // enough to grow internal nodes
    assert!(mala(&db).corrupt_separator().unwrap(), "no inner page found to corrupt");
    let report = audit_both(&db);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TreeIntegrity(_) | Violation::IndexMismatch { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn state_reversion_attack_beats_log_consistent_but_not_hash_on_read() {
    // Section V: "With a file editor, an adversary can make arbitrary
    // changes to a log-consistent database, as long as she undoes them
    // before the next audit. Such changes cannot be detected by the audit" —
    // the hash-page-on-read refinement "eliminate[s] this vulnerability
    // completely".
    for (mode, expect_detection) in [(Mode::LogConsistent, false), (Mode::HashOnRead, true)] {
        let (db, _c, _d) = setup("reversion", mode);
        let rel = seed(&db, 200);
        let m = mala(&db);
        // Tamper…
        let (pgno, pristine) = m.snapshot_page_with(b"acct-0010").unwrap().unwrap();
        assert!(m.alter_tuple_value(b"acct-0010", b"balance=0").unwrap());
        // …queries run against tampered state…
        let t = db.begin().unwrap();
        let seen = db.read(t, rel, b"acct-0010").unwrap().unwrap();
        db.commit(t).unwrap();
        assert_eq!(seen, b"balance=0", "the query really saw tampered data");
        // …and Mala reverts before the audit.
        db.engine().clear_cache().unwrap();
        m.restore_page(pgno, &pristine).unwrap();
        let report = audit_both(&db);
        if expect_detection {
            assert!(
                report.violations.iter().any(|v| matches!(v, Violation::ReadHashMismatch { .. })),
                "hash-on-read must catch reversion: {:?}",
                report.violations
            );
        } else {
            assert!(
                report.is_clean(),
                "log-consistent alone cannot see reverted tampering: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn spurious_abort_appended_to_l_is_detected() {
    // "Mala may append spurious ABORT records to L to try to hide the
    // existence of tuples that she regrets." She CAN write to WORM via its
    // API — the audit must flag the conflict.
    let (db, _c, _d) = setup("spurious-abort", Mode::LogConsistent);
    seed(&db, 50);
    // Find a committed transaction to "abort": txn ids start above 1.
    let victim_txn = TxnId(5);
    let plugin = db.plugin().unwrap().clone();
    plugin.logger().append_flush(&ccdb::compliance::LogRecord::Abort { txn: victim_txn }).unwrap();
    let report = audit_both(&db);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::ConflictingStatus { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn backdated_stamp_appended_to_l_is_detected() {
    // Mala appends a STAMP_TRANS claiming an old commit time (post-hoc
    // insertion groundwork): commit times must be monotone in log order.
    let (db, _c, _d) = setup("backdated-stamp", Mode::LogConsistent);
    seed(&db, 50);
    let plugin = db.plugin().unwrap().clone();
    plugin
        .logger()
        .append_flush(&ccdb::compliance::LogRecord::StampTrans {
            txn: TxnId(40_000),
            commit_time: Timestamp(1),
        })
        .unwrap();
    let report = audit_both(&db);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::CommitTimesNotMonotonic { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn wal_wipe_after_crash_cannot_unwind_commits() {
    // Mala forces a crash and wipes the local WAL, hoping the commit whose
    // pages never reached disk simply vanishes. The WORM-resident WAL tail
    // betrays her.
    let (db, _c, d) = setup("wal-wipe", Mode::LogConsistent);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    // A committed transaction whose dirty pages stay in the buffer cache.
    let t = db.begin().unwrap();
    db.write(t, rel, b"incriminating", b"evidence").unwrap();
    db.commit(t).unwrap();
    // Crash + wipe the local WAL before recovery can run.
    db.engine().crash();
    if let Some(p) = db.plugin() {
        p.logger().simulate_crash_drop_pending();
    }
    let wal_path = d.0.join("engine/wal.log");
    Mala::new(db.engine().db_path()).wipe_wal(&wal_path).unwrap();
    drop(db);
    // Reopen: recovery finds an empty WAL and resurrects nothing.
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(
        &d.0,
        clock,
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 128,
            auditor_seed: [3u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    let rel = db.engine().rel_id("ledger").unwrap();
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"incriminating").unwrap(), None, "the commit is locally gone");
    db.commit(t).unwrap();
    let report = audit_both(&db);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::WalTailInconsistent { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn tampering_with_pre_snapshot_data_is_detected_in_later_epochs() {
    // Data verified by audit N and recorded in the snapshot must stay
    // intact through audit N+1.
    let (db, _c, _d) = setup("old-data", Mode::LogConsistent);
    let rel = seed(&db, 100);
    assert!(audit_both(&db).is_clean());
    // Epoch 1: some fresh activity, then Mala edits epoch-0 data.
    let t = db.begin().unwrap();
    db.write(t, rel, b"fresh", b"data").unwrap();
    db.commit(t).unwrap();
    db.engine().clear_cache().unwrap();
    assert!(mala(&db).alter_tuple_value(b"acct-0001", b"rewritten-history").unwrap());
    let report = audit_both(&db);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::CompletenessMismatch)),
        "{:?}",
        report.violations
    );
}

#[test]
fn honest_database_stays_clean_under_the_same_scrutiny() {
    // Control: the full gauntlet's setup, no tampering, zero violations.
    for mode in [Mode::LogConsistent, Mode::HashOnRead] {
        let (db, _c, _d) = setup("control", mode);
        seed(&db, 200);
        let report = audit_both(&db);
        assert!(report.is_clean(), "{mode:?}: {:?}", report.violations);
    }
}

#[test]
fn forensics_localize_the_exact_tampered_tuple() {
    // After detection, the auditor pinpoints *which* tuple was altered,
    // which was erased, and which was forged.
    let (db, _c, _d) = setup("forensics", Mode::LogConsistent);
    let rel = seed(&db, 120);
    let m = mala(&db);
    assert!(m.alter_tuple_value(b"acct-0033", b"balance=overwritten").unwrap());
    assert!(m.delete_tuple(b"acct-0077").unwrap());
    assert!(m.backdate_insert(rel, b"acct-zzzz", b"forged", Timestamp(99)).unwrap());
    let report = audit_both(&db);
    assert!(!report.is_clean());
    use ccdb::compliance::TupleFinding;
    let altered = report.forensics.iter().any(|f| {
        matches!(
            f,
            TupleFinding::Altered { key, found, .. }
                if key == b"acct-0033" && found == b"balance=overwritten"
        )
    });
    let missing = report
        .forensics
        .iter()
        .any(|f| matches!(f, TupleFinding::Missing { key, .. } if key == b"acct-0077"));
    let forged = report
        .forensics
        .iter()
        .any(|f| matches!(f, TupleFinding::Forged { key, .. } if key == b"acct-zzzz"));
    assert!(altered, "{:?}", report.forensics);
    assert!(missing, "{:?}", report.forensics);
    assert!(forged, "{:?}", report.forensics);
}

#[test]
fn streaming_daemon_flags_tampering_on_the_next_poll() {
    // The daemon timeline: a stream that has been tailing the epoch and
    // polling clean must flag Mala's tampering on the very next deep poll
    // after injection — not an audit later, not after the epoch rolls.
    let (db, _c, _d) = setup("daemon", Mode::LogConsistent);
    let mut stream = db.stream_auditor().unwrap();
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    for i in 0..200usize {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("acct-{i:04}").as_bytes(), format!("balance={i}").as_bytes())
            .unwrap();
        db.commit(t).unwrap();
        if i % 17 == 0 {
            assert!(stream.poll(&db).unwrap().is_none(), "clean tail alerted");
        }
    }
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
    assert!(stream.poll_deep(&db).unwrap().is_none(), "pre-attack deep poll must be clean");

    assert!(mala(&db).alter_tuple_value(b"acct-0042", b"balance=1000000").unwrap());

    let alert = stream.poll_deep(&db).unwrap().expect("tampering missed on the next poll");
    assert!(
        alert.violations.iter().any(|v| matches!(v, Violation::CompletenessMismatch)),
        "{:?}",
        alert.violations
    );
    assert!(
        alert.violations.iter().any(|v| matches!(v, Violation::StateMismatch { .. })),
        "{:?}",
        alert.violations
    );
    assert_eq!(stream.stats().tamper_alerts, 1);
    // The dirty set is stable: no duplicate alert on the next poll.
    assert!(stream.poll_deep(&db).unwrap().is_none(), "re-alerted on an unchanged finding set");
}

// --- cross-shard attacks ----------------------------------------------------
//
// Mala attacks the 2PC protocol itself: decision records dropped or flipped
// on individual shards, and participants whose outcome silently diverges
// from the recorded decision. Both the batch auditors and the streaming
// daemon must raise the typed finding on the affected shard.

fn sharded_setup(tag: &str) -> (ccdb::compliance::ShardedDb, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = ccdb::compliance::ShardedDb::open(
        &d.0,
        clock,
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 128,
            auditor_seed: [3u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
        2,
    )
    .unwrap();
    (db, d)
}

/// Seeds cross-shard traffic, then drives one transaction through the
/// prepare phase by hand so Mala can sabotage the decision phase.
fn sharded_prepared(db: &ccdb::compliance::ShardedDb) -> (RelId, u64, Vec<(usize, TxnId)>) {
    use ccdb::compliance::LogRecord;
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    for r in 0..10usize {
        let mut dtx = db.begin();
        for k in 0..6usize {
            let key = format!("seed-{r}-{k}");
            db.write(&mut dtx, rel, key.as_bytes(), b"v").unwrap();
        }
        db.commit(dtx).unwrap();
    }
    let mut dtx = db.begin();
    for k in 0..8usize {
        let key = format!("victim-{k}");
        db.write(&mut dtx, rel, key.as_bytes(), b"pending").unwrap();
    }
    let gtxn = dtx.gtxn();
    let parts: Vec<u32> = dtx.writers().iter().map(|s| *s as u32).collect();
    assert!(parts.len() == 2, "victim txn must span both shards");
    let mut writers = Vec::new();
    for s in dtx.writers() {
        let txn = dtx.local_txn(s).unwrap();
        db.shards()[s].prepare(txn).unwrap();
        db.shards()[s]
            .log_2pc(&LogRecord::TwoPcPrepare {
                gtxn,
                txn,
                shard: s as u32,
                participants: parts.clone(),
            })
            .unwrap();
        writers.push((s, txn));
    }
    (rel, gtxn, writers)
}

/// Asserts the typed finding on `shard` under the serial batch oracle AND
/// the streaming daemon's next deep poll.
fn assert_detected_batch_and_stream(
    db: &ccdb::compliance::ShardedDb,
    shard: usize,
    pred: impl Fn(&Violation) -> bool,
) {
    use ccdb::compliance::AuditConfig;
    let s = &db.shards()[shard];
    let out = s.audit_outcome_with(AuditConfig::serial()).unwrap();
    assert!(out.report.violations.iter().any(&pred), "batch missed: {:?}", out.report.violations);
    let mut stream = s.stream_auditor().unwrap();
    let alert = stream.poll_deep(s).unwrap().expect("streaming daemon missed the 2PC attack");
    assert!(alert.violations.iter().any(&pred), "stream alert wrong: {:?}", alert.violations);
    assert!(stream.stats().tamper_alerts >= 1);
}

#[test]
fn cross_shard_dropped_decision_is_detected_by_batch_and_stream() {
    let (db, _d) = sharded_setup("xs-drop");
    let (_rel, gtxn, writers) = sharded_prepared(&db);
    // The decision lands on shard A only; both participants complete as if
    // the protocol had finished.
    db.shards()[writers[0].0]
        .log_2pc(&ccdb::compliance::LogRecord::TwoPcDecision { gtxn, commit: true })
        .unwrap();
    for (s, txn) in &writers {
        db.shards()[*s].commit(*txn).unwrap();
    }
    let starved = writers[1].0;
    assert_detected_batch_and_stream(
        &db,
        starved,
        |v| matches!(v, Violation::TwoPcUndecided { gtxn: g, .. } if *g == gtxn),
    );
}

#[test]
fn cross_shard_flipped_decision_is_detected_by_batch_stream_and_join() {
    let (db, _d) = sharded_setup("xs-flip");
    let (_rel, gtxn, writers) = sharded_prepared(&db);
    use ccdb::compliance::LogRecord;
    db.shards()[writers[0].0].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
    db.shards()[writers[1].0].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: false }).unwrap();
    for (s, txn) in &writers {
        db.shards()[*s].commit(*txn).unwrap();
    }
    let flipped = writers[1].0;
    assert_detected_batch_and_stream(
        &db,
        flipped,
        |v| matches!(v, Violation::TwoPcOutcomeMismatch { gtxn: g, decided_commit: false, .. } if *g == gtxn),
    );
    // The deployment-level join sees the decisions disagree.
    let cross = ccdb::compliance::audit::two_pc_cross_shard_join(&db.books());
    assert!(
        cross
            .iter()
            .any(|v| matches!(v, Violation::TwoPcDivergentDecision { gtxn: g } if *g == gtxn)),
        "{cross:?}"
    );
}

#[test]
fn cross_shard_diverged_outcome_is_detected_by_batch_and_stream() {
    let (db, _d) = sharded_setup("xs-diverge");
    let (_rel, gtxn, writers) = sharded_prepared(&db);
    use ccdb::compliance::LogRecord;
    // Decisions say commit everywhere — one participant silently aborts.
    for (s, _) in &writers {
        db.shards()[*s].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
    }
    db.shards()[writers[0].0].commit(writers[0].1).unwrap();
    db.shards()[writers[1].0].abort(writers[1].1).unwrap();
    let liar = writers[1].0;
    assert_detected_batch_and_stream(
        &db,
        liar,
        |v| matches!(v, Violation::TwoPcOutcomeMismatch { gtxn: g, decided_commit: true, .. } if *g == gtxn),
    );
}

#[test]
fn worm_reclamation_after_audits() {
    // "Each snapshot can expire and be deleted from WORM once the next
    // snapshot is in place. Similarly, the compliance log file can be
    // deleted after every audit."
    let d = TempDir::new("reclaim");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(
        &d.0,
        clock.clone(),
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 128,
            auditor_seed: [3u8; 32],
            fsync: false,
            worm_artifact_retention: Some(Duration::from_mins(30)),
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for round in 0..3u8 {
        for i in 0..30u8 {
            let t = db.begin().unwrap();
            db.write(t, rel, &[b'k', round, i], b"v").unwrap();
            db.commit(t).unwrap();
        }
        assert!(audit_both(&db).is_clean());
    }
    let before = db.worm().stats().files;
    // Retention on epoch-0/1 artifacts has not elapsed yet: nothing to do.
    assert_eq!(db.reclaim_worm().unwrap(), 0);
    clock.advance(Duration::from_mins(60));
    let deleted = db.reclaim_worm().unwrap();
    assert!(deleted > 0, "expired early-epoch artifacts should be reclaimable");
    let after = db.worm().stats().files;
    assert!(after < before);
    // The previous snapshot (needed by the next audit) must survive.
    for i in 0..5u8 {
        let t = db.begin().unwrap();
        db.write(t, rel, &[b'z', i], b"v").unwrap();
        db.commit(t).unwrap();
    }
    let report = audit_both(&db);
    assert!(report.is_clean(), "{:?}", report.violations);
}
