//! The crash/torn-write torture campaign: ≥100 seeded schedules of
//! workload → injected fault → simulated crash → recovery → audit.
//!
//! Every schedule is a pure function of its seed (printed in every failure
//! message), so any red run is replayed exactly with
//! `ccdb_bench::torture::run_schedule(seed)`.
//!
//! `CCDB_TORTURE_SEEDS` overrides the campaign size (CI's smoke job runs 10;
//! the default suite runs the full campaign).

use ccdb_bench::torture::{run_campaign, run_schedule};
use ccdb_storage::IoPoint;

const BASE_SEED: u64 = 0x7011_7012_0000_0000;

fn campaign_size() -> u64 {
    std::env::var("CCDB_TORTURE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(120)
}

#[test]
fn torture_campaign() {
    let n = campaign_size();
    let outcomes = run_campaign((0..n).map(|i| BASE_SEED + i)).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(outcomes.len() as u64, n);

    // The campaign must not pass vacuously: a healthy fraction of schedules
    // actually fired their fault and crashed, and the fired faults cover
    // several distinct I/O points. (Schedules whose plan never triggered are
    // still useful — they are honest-run soundness checks — but they cannot
    // be the whole campaign.)
    let crashed = outcomes.iter().filter(|o| o.crashed).count();
    let fired: Vec<&ccdb_storage::Fault> = outcomes.iter().flat_map(|o| o.fired.iter()).collect();
    let mut points_hit = std::collections::BTreeSet::new();
    for f in &fired {
        points_hit.insert(f.point.name());
    }
    if n >= 100 {
        assert!(
            crashed * 3 >= outcomes.len(),
            "only {crashed}/{} schedules crashed — campaign too tame",
            outcomes.len()
        );
        assert!(
            points_hit.len() >= 4,
            "faults fired at only {points_hit:?} — campaign does not cover the I/O surface"
        );
        // At least one WORM-device fault fired, so the named-violation arm
        // of the torture contract was genuinely exercised.
        assert!(
            fired.iter().any(|f| f.point == IoPoint::WormAppend),
            "no WORM-append fault fired in {} schedules",
            outcomes.len()
        );
    }

    // Summarize for the log (visible with --nocapture).
    let dirty = outcomes.iter().filter(|o| !o.audit_clean).count();
    println!(
        "torture campaign: {} schedules, {crashed} crashed+recovered, \
         {} faults fired at {points_hit:?}, {dirty} audits reported named WORM violations",
        outcomes.len(),
        fired.len(),
    );
}

/// The sharded campaign: seeded cross-shard workloads, 2PC driven to a
/// seeded partial decision point, then individual-shard (or whole
/// deployment) crashes. Every in-doubt transaction must resolve to the one
/// outcome the surviving decision records dictate — identically on all
/// participants — and every recovery must leave all shards plus the
/// cross-shard join audit-clean. `CCDB_SHARD_TORTURE_SEEDS` overrides the
/// campaign size (CI's smoke job runs a handful).
#[test]
fn shard_torture_campaign() {
    let n: u64 =
        std::env::var("CCDB_SHARD_TORTURE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(30);
    let outcomes = ccdb_bench::torture::run_shard_campaign((0..n).map(|i| BASE_SEED + 0x5AD0 + i))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(outcomes.len() as u64, n);
    // Both resolution outcomes must actually occur across the campaign:
    // commits recovered from a surviving decision record AND presumed
    // aborts where no decision survived.
    let commits: usize = outcomes.iter().map(|o| o.resolved_commit).sum();
    let aborts: usize = outcomes.iter().map(|o| o.resolved_abort).sum();
    if n >= 10 {
        assert!(commits > 0, "no in-doubt txn resolved to commit — campaign too tame");
        assert!(aborts > 0, "no in-doubt txn presumed-aborted — campaign too tame");
    }
    assert!(outcomes.iter().all(|o| o.audit_clean));
    println!(
        "shard torture: {} schedules, {} crash rounds, {commits} resolved-commit, \
         {aborts} presumed-abort",
        outcomes.len(),
        outcomes.iter().map(|o| o.crash_rounds).sum::<usize>(),
    );
}

/// The same seed replays to the same outcome — the property every failure
/// message relies on.
#[test]
fn torture_schedule_is_deterministic() {
    for seed in [BASE_SEED + 3, BASE_SEED + 7, 0xDE7E_2214_1157_1C00] {
        let a = run_schedule(seed).unwrap_or_else(|e| panic!("{e}"));
        let b = run_schedule(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.crashed, b.crashed, "seed {seed}: crash divergence");
        assert_eq!(a.fired, b.fired, "seed {seed}: fired-fault divergence");
        assert_eq!(a.commits_before, b.commits_before, "seed {seed}: commit divergence");
        assert_eq!(a.violations, b.violations, "seed {seed}: violation divergence");
    }
}
