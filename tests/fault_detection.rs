//! Fault-detection satellites around the torture campaign: torn pages read
//! back as *typed* corruption and are healed by recovery or flagged by the
//! auditor; recovery is correct and idempotent at every WAL record boundary;
//! and a truncated WORM backing file is *reported* by the auditor as the
//! specific named violation, never an audit error.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ccdb::adversary::Mala;
use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, Error, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode, Violation};
use ccdb::storage::{
    DiskManager, FaultInjector, FaultKind, FaultPlan, IoPoint, PageStore, PAGE_SIZE,
};
use ccdb::wal::WalReader;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-fault-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(mode: Mode, cache_pages: usize) -> ComplianceConfig {
    ComplianceConfig {
        mode,
        regret_interval: Duration::from_mins(5),
        cache_pages,
        auditor_seed: [9u8; 32],
        fsync: false,
        worm_artifact_retention: None,
        ..ComplianceConfig::default()
    }
}

fn open(dir: &Path, mode: Mode, cache_pages: usize) -> (CompliantDb, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(dir, clock.clone(), config(mode, cache_pages)).unwrap();
    (db, clock)
}

fn put(db: &CompliantDb, rel: ccdb::common::RelId, key: &[u8], value: &[u8]) {
    let t = db.begin().unwrap();
    db.write(t, rel, key, value).unwrap();
    db.commit(t).unwrap();
}

/// A torn data-page write — injected through the full compliant stack — must
/// (a) surface as the injected error at write time, (b) read back from the
/// raw medium as a *typed* corruption error (never garbage data, never a
/// panic), and (c) be healed transparently by crash recovery from the WAL,
/// leaving a clean audit.
#[test]
fn torn_page_write_is_typed_corruption_and_recovery_heals_it() {
    const KEYS: u32 = 15;
    let val = |i: u32, gen: u32| format!("g{gen}-{i}-{}", "p".repeat(32)).into_bytes();
    let d = TempDir::new("torn-page");
    let (db, _clock) = open(&d.0, Mode::LogConsistent, 128);
    let rel = db.create_relation("t", SplitPolicy::KeyOnly).unwrap();

    // A durable baseline that fits one leaf with room to spare, so the next
    // write dirties exactly that page and tearing it is deterministic.
    for i in 0..KEYS {
        put(&db, rel, format!("k{i:03}").as_bytes(), &val(i, 1));
    }
    db.engine().run_stamper().unwrap();
    db.engine().checkpoint().unwrap();

    // Raw-scan helper: which pages of the on-disk file fail to read, and how.
    let unreadable = |path: &Path| -> std::collections::BTreeMap<u64, Error> {
        let raw = DiskManager::open(path).unwrap();
        (0..raw.page_count())
            .filter_map(|pgno| raw.pread(ccdb::common::PageNo(pgno)).err().map(|e| (pgno, e)))
            .collect()
    };
    let before = unreadable(db.engine().db_path());

    // Dirty the one leaf with a new version, then tear its write after the
    // first 512 bytes — far less than the page's ~1.5 KiB of content, so the
    // frankenpage cannot checksum clean whatever the cell layout.
    put(&db, rel, b"k007", &val(7, 2));
    db.engine().run_stamper().unwrap();
    let inj = Arc::new(FaultInjector::armed(FaultPlan::single(
        IoPoint::PageWrite,
        1,
        FaultKind::Torn { keep_permille: 125 },
    )));
    db.set_fault_injector(Some(inj.clone()));
    let err = db.engine().checkpoint().expect_err("torn page write must fail the checkpoint");
    assert!(err.is_injected(), "checkpoint failed for the wrong reason: {err}");
    assert_eq!(inj.fired().len(), 1);

    // (b) Out-of-band, the half-written page is *typed* corruption.
    let after = unreadable(db.engine().db_path());
    let new_bad: Vec<(&u64, &Error)> =
        after.iter().filter(|(pgno, _)| !before.contains_key(pgno)).collect();
    match new_bad.as_slice() {
        [(_, Error::Corruption(_))] => {}
        [(pgno, other)] => panic!("torn page {pgno} must read as Corruption, got: {other}"),
        other => panic!(
            "exactly one page must be newly unreadable after the torn write, got {other:?} \
             (baseline {before:?})"
        ),
    }

    // (c) Recovery replays the WAL over the torn page and the database
    // converges: every committed value is back, and the audit is clean.
    let db = db.crash_and_recover().unwrap();
    let rel = db.engine().rel_id("t").unwrap();
    for i in 0..KEYS {
        let expect = val(i, if i == 7 { 2 } else { 1 });
        let got = db.engine().read_latest(rel, format!("k{i:03}").as_bytes()).unwrap();
        assert_eq!(got, Some(expect), "k{i:03} lost after torn-write recovery");
    }
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "audit after healed torn write: {:?}", report.violations);
}

/// A torn page that recovery can *not* explain — the damage appears out of
/// band, with no crash and no WAL evidence — is tampering, and the
/// hash-page-on-read auditor flags exactly the damaged page.
#[test]
fn unexplained_torn_page_is_flagged_by_audit() {
    let d = TempDir::new("torn-tamper");
    let (db, _clock) = open(&d.0, Mode::HashOnRead, 128);
    let rel = db.create_relation("t", SplitPolicy::KeyOnly).unwrap();
    for i in 0..80u32 {
        put(&db, rel, format!("acct-{i:04}").as_bytes(), format!("balance={i}").as_bytes());
    }
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();

    // Manufacture the torn image: keep the first half of the real page,
    // zero the rest, leave the stale checksum in place — exactly what a torn
    // pwrite leaves on a real disk.
    let mala = Mala::new(db.engine().db_path());
    let (pgno, image) = mala
        .snapshot_page_with(b"acct-0010")
        .unwrap()
        .expect("seeded key must live on some leaf page");
    let mut torn = image.clone();
    for b in &mut torn[PAGE_SIZE / 2..] {
        *b = 0;
    }
    mala.restore_page(pgno, &torn).unwrap();

    let report = db.audit().unwrap();
    assert!(!report.is_clean());
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::BadPage { pgno: p, .. } if *p == pgno
        )),
        "audit must name the torn page {pgno:?}: {:?}",
        report.violations
    );
}

/// Truncating the WORM epoch log's backing store behind the trusted
/// metadata — the named WORM-violation arm of the torture contract — is
/// *reported* by the auditor as `WormTruncated` naming the file and both
/// lengths. The audit itself must return `Ok`: damaged evidence is a
/// finding, not a crash.
#[test]
fn worm_tail_truncation_is_reported_not_errored() {
    let d = TempDir::new("worm-trunc");
    let (db, _clock) = open(&d.0, Mode::LogConsistent, 128);
    let rel = db.create_relation("t", SplitPolicy::KeyOnly).unwrap();
    for i in 0..60u32 {
        put(&db, rel, format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes());
    }
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap(); // flush pages → compliance records reach WORM

    let epoch = db.epoch();
    let log_name = format!("L/epoch-{epoch}");
    let backing = d.0.join("worm").join("data").join(&log_name);
    let full = std::fs::metadata(&backing).unwrap().len();
    assert!(full > 3, "epoch log backing file unexpectedly small ({full} bytes)");
    let cut = full - full / 3;
    std::fs::OpenOptions::new().write(true).open(&backing).unwrap().set_len(cut).unwrap();

    let report = db.audit().expect("audit must report truncation, not error out");
    assert!(!report.is_clean());
    let named = report.violations.iter().find_map(|v| match v {
        Violation::WormTruncated { file, trusted_len, backing_len } if *file == log_name => {
            Some((*trusted_len, *backing_len))
        }
        _ => None,
    });
    let (trusted_len, backing_len) =
        named.unwrap_or_else(|| panic!("no WormTruncated for {log_name}: {:?}", report.violations));
    assert_eq!(trusted_len, full);
    assert_eq!(backing_len, cut);
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Crashes the database at *every* WAL record boundary after a fixed
/// workload and verifies, for each prefix: recovery converges, exactly the
/// transactions whose Commit record made the prefix are visible, and
/// recovering a second time reaches the identical state (idempotence).
///
/// The audit is deliberately not asserted here: truncating the *flushed*
/// WAL below its WORM-mirrored tail is not a physically reachable crash
/// state (a crash only loses the unflushed suffix), and the auditor rightly
/// treats it as suspicious — `wal_wipe_after_crash_cannot_unwind_commits`
/// in `attack_detection.rs` covers that arm.
#[test]
fn recovery_is_exact_and_idempotent_at_every_wal_record_boundary() {
    const TXNS: u32 = 6;
    let src = TempDir::new("walb-src");
    // A cache large enough that no page is evicted mid-workload: the WAL is
    // the only durable trace of the transactions, so the prefix fully
    // determines what recovery must reconstruct.
    let (db, _clock) = open(&src.0, Mode::LogConsistent, 256);
    let rel = db.create_relation("t", SplitPolicy::KeyOnly).unwrap();
    db.engine().wal().flush().unwrap();
    let setup_end = db.engine().wal().flushed_lsn().0;

    let mut commit_end = Vec::new();
    for i in 0..TXNS {
        put(
            &db,
            rel,
            format!("t{i}").as_bytes(),
            format!("value-{i}-{}", "x".repeat(20)).as_bytes(),
        );
        commit_end.push(db.engine().wal().flushed_lsn().0);
    }
    // Keep `db` open: the copies below are the crash image (durable WAL,
    // unflushed data pages), not a clean shutdown.

    let wal_path = src.0.join("engine").join("wal.log");
    let mut reader = WalReader::open(&wal_path).unwrap();
    let mut boundaries: Vec<u64> =
        reader.collect_records().iter().map(|(lsn, _)| lsn.0).filter(|&b| b >= setup_end).collect();
    boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
    assert!(boundaries.len() > TXNS as usize, "workload produced too few WAL records");

    for &b in &boundaries {
        let case = TempDir::new(&format!("walb-{b}"));
        copy_dir(&src.0, &case.0);
        let _ = std::fs::remove_file(case.0.join("engine").join("clean.shutdown"));
        std::fs::OpenOptions::new()
            .write(true)
            .open(case.0.join("engine").join("wal.log"))
            .unwrap()
            .set_len(b)
            .unwrap();

        let check = |db: &CompliantDb, pass: &str| {
            let rel = db.engine().rel_id("t").expect("relation must survive recovery");
            for i in 0..TXNS {
                let expect = (commit_end[i as usize] <= b)
                    .then(|| format!("value-{i}-{}", "x".repeat(20)).into_bytes());
                let got = db.engine().read_latest(rel, format!("t{i}").as_bytes()).unwrap();
                assert_eq!(
                    got, expect,
                    "boundary {b} ({pass}): txn {i} (commit ends at {}) wrong visibility",
                    commit_end[i as usize]
                );
            }
        };

        let recovered = {
            let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
            CompliantDb::open(&case.0, clock, config(Mode::LogConsistent, 256))
                .unwrap_or_else(|e| panic!("boundary {b}: recovery failed: {e}"))
        };
        check(&recovered, "first recovery");

        // Idempotence: crash again immediately and recover a second time.
        let recovered = recovered
            .crash_and_recover()
            .unwrap_or_else(|e| panic!("boundary {b}: second recovery failed: {e}"));
        check(&recovered, "second recovery");
    }
}
