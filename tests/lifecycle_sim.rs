//! Long-horizon compliance lifecycle simulations: deterministic scenarios
//! spanning *years* of virtual time, where retention expiry, auditable
//! vacuum/shred cycles, time-split WORM migration, and litigation holds
//! overlap the way they do in production — and every step must stay
//! audit-clean under all three auditors.
//!
//! These are the hand-written companions to the seeded campaigns in
//! `tests/campaign.rs`: each scenario pins one specific interleaving the
//! paper's policy layer must get right.

use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, VirtualClock};
use ccdb::compliance::{AuditConfig, ComplianceConfig, CompliantDb, Hold, Mode, ShardedDb};

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("ccdb-lifecycle-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> ComplianceConfig {
    ComplianceConfig {
        mode: Mode::LogConsistent,
        regret_interval: Duration::from_mins(5),
        cache_pages: 128,
        auditor_seed: [7u8; 32],
        fsync: false,
        ..ComplianceConfig::default()
    }
}

const DAY: u64 = 1440; // minutes

/// All three auditors agree, and the verdict is clean.
fn assert_clean_everywhere(db: &CompliantDb, context: &str) {
    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    let par = db.audit_outcome_with(AuditConfig::default().with_threads(2)).unwrap();
    assert_eq!(
        serial.report.violations, par.report.violations,
        "{context}: serial/parallel verdict split"
    );
    assert_eq!(serial.tuple_hash, par.tuple_hash, "{context}: completeness-hash split");
    assert!(serial.report.is_clean(), "{context}: audit dirty: {:?}", serial.report.violations);
    let mut stream = db.stream_auditor().unwrap();
    let alert = stream.poll_deep(db).unwrap();
    assert!(alert.is_none(), "{context}: streaming false alarm: {alert:?}");
}

/// Five years of quarterly operations: every quarter writes a batch of
/// retained records, ages them past the 90-day retention, migrates
/// time-split history to WORM, pulls expired WORM pages back, and shreds.
/// Every quarter must audit clean, old quarters' records must actually be
/// gone, and the most recent quarter's must survive.
#[test]
fn years_of_quarterly_expiry_shred_migration_audits_clean() {
    let dir = TempDir::new("quarters");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(30)));
    let db = CompliantDb::open(&dir.0, clock.clone(), config()).unwrap();
    let events = db.create_relation("events", SplitPolicy::TimeSplit { threshold: 0.5 }).unwrap();
    let txn = db.begin().unwrap();
    db.set_retention(txn, "events", Duration::from_mins(90 * DAY)).unwrap();
    db.commit(txn).unwrap();

    let mut total_shredded = 0usize;
    let mut total_migrated = 0usize;
    for quarter in 0..20u32 {
        // The quarter's batch of records — overwrite-heavy (six revisions
        // per filing) so the time-split policy produces historical pages
        // for the migrator to take.
        for rev in 0..12u32 {
            for r in 0..12u32 {
                let txn = db.begin().unwrap();
                db.write(
                    txn,
                    events,
                    format!("q{quarter:02}-r{r:02}").as_bytes(),
                    format!("filing-{quarter}-{r}-rev{rev:<60}").as_bytes(),
                )
                .unwrap();
                db.commit(txn).unwrap();
            }
            // Stamp between revision rounds so superseded versions count as
            // dead and overflowing leaves time-split instead of key-split.
            db.engine().run_stamper().unwrap();
        }
        // A quarter of virtual time passes; the previous quarters' records
        // cross the 90-day retention horizon.
        clock.advance(Duration::from_mins(91 * DAY));
        db.tick().unwrap();
        total_migrated += db.migrate_to_worm(events).unwrap().pages_migrated;
        db.remigrate_expired().unwrap();
        total_shredded += db.vacuum().unwrap().shredded;
        let report = db.audit().unwrap();
        assert!(report.is_clean(), "quarter {quarter} audit dirty: {:?}", report.violations);
    }
    assert!(total_shredded > 0, "five years of quarters never shredded anything");
    assert!(total_migrated > 0, "five years of quarters never migrated a page to WORM");
    // Every quarter aged past the 90-day horizon before its vacuum, so all
    // of the history is gone...
    assert_eq!(db.engine().read_latest(events, b"q00-r00").unwrap(), None);
    assert_eq!(db.engine().read_latest(events, b"q10-r05").unwrap(), None);
    assert_eq!(db.engine().read_latest(events, b"q19-r00").unwrap(), None);
    // ...while a record still inside its retention window survives the
    // next shred pass untouched.
    let txn = db.begin().unwrap();
    db.write(txn, events, b"q20-fresh", b"current-filing").unwrap();
    db.commit(txn).unwrap();
    db.vacuum().unwrap();
    assert_eq!(
        db.engine().read_latest(events, b"q20-fresh").unwrap().as_deref(),
        Some(&b"current-filing"[..])
    );
    assert_clean_everywhere(&db, "after five virtual years");
}

/// The ISSUE's named scenario: a litigation hold placed *before* the
/// records expire, overlapping several shred cycles. The held records must
/// survive every one of them byte-for-byte while unheld neighbours are
/// shredded around them; after release the next shred takes them, and the
/// post-release audit is clean.
#[test]
fn hold_placed_before_expiry_survives_overlapping_shred_cycles() {
    let dir = TempDir::new("hold-overlap");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(30)));
    let db = CompliantDb::open(&dir.0, clock.clone(), config()).unwrap();
    let events = db.create_relation("events", SplitPolicy::TimeSplit { threshold: 0.5 }).unwrap();
    let txn = db.begin().unwrap();
    db.set_retention(txn, "events", Duration::from_mins(30 * DAY)).unwrap();
    db.commit(txn).unwrap();

    for i in 0..30u32 {
        let txn = db.begin().unwrap();
        db.write(txn, events, format!("doc-{i:03}").as_bytes(), format!("body-{i}").as_bytes())
            .unwrap();
        db.commit(txn).unwrap();
    }
    // The hold lands while everything is still well inside retention.
    let hold =
        Hold { id: "docket-442".into(), rel_name: "events".into(), key_prefix: b"doc-00".to_vec() };
    let txn = db.begin().unwrap();
    db.place_hold(txn, &hold).unwrap();
    db.commit(txn).unwrap();

    // Three shred cycles, each another month further past expiry. The ten
    // held documents (doc-000..doc-009) must survive all of them.
    for cycle in 0..3u32 {
        clock.advance(Duration::from_mins(35 * DAY));
        db.tick().unwrap();
        let report = db.vacuum().unwrap();
        if cycle == 0 {
            assert_eq!(report.shredded, 20, "first cycle should shred the unheld 20");
        }
        assert_eq!(report.held, 10, "cycle {cycle}: hold no longer sparing its documents");
        for i in 0..10u32 {
            let key = format!("doc-{i:03}");
            assert_eq!(
                db.engine().read_latest(events, key.as_bytes()).unwrap().as_deref(),
                Some(format!("body-{i}").as_bytes()),
                "cycle {cycle}: held {key} lost"
            );
        }
        assert_eq!(db.engine().read_latest(events, b"doc-015").unwrap(), None);
        let audit = db.audit().unwrap();
        assert!(audit.is_clean(), "cycle {cycle} audit dirty: {:?}", audit.violations);
    }

    // Release; the very next shred cycle may now take the held documents,
    // and doing so must still audit clean (the auditor evaluates the hold
    // as of the shred, not as of the audit).
    let txn = db.begin().unwrap();
    db.release_hold(txn, "docket-442").unwrap();
    db.commit(txn).unwrap();
    let report = db.vacuum().unwrap();
    assert_eq!(report.shredded, 10, "post-release shred should take the ex-held documents");
    assert_eq!(report.held, 0);
    assert_eq!(db.engine().read_latest(events, b"doc-003").unwrap(), None);
    assert_clean_everywhere(&db, "after post-release shred");
}

/// The sharded deployment runs the same lifecycle through the deployment
/// passthroughs: holds span every shard, vacuum reports aggregate across
/// shards, held keys survive wherever they hash, and the cross-shard join
/// stays clean for years.
#[test]
fn sharded_lifecycle_holds_span_shards_across_years() {
    let dir = TempDir::new("sharded-years");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(30)));
    let db = ShardedDb::open(&dir.0, clock.clone(), config(), 2).unwrap();
    let events = db.create_relation("events", SplitPolicy::TimeSplit { threshold: 0.5 }).unwrap();
    db.set_retention("events", Duration::from_mins(60 * DAY)).unwrap();

    for i in 0..40u32 {
        let mut dtx = db.begin();
        db.write(&mut dtx, events, format!("rec-{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
        db.commit(dtx).unwrap();
    }
    let hold =
        Hold { id: "docket-7".into(), rel_name: "events".into(), key_prefix: b"rec-01".to_vec() };
    db.place_hold(&hold).unwrap();

    // Two years in annual shred cycles: the held decade (rec-010..rec-019,
    // hashed across both shards) survives each one.
    for year in 0..2u32 {
        clock.advance(Duration::from_mins(365 * DAY));
        db.tick().unwrap();
        db.remigrate_expired().unwrap();
        let report = db.vacuum().unwrap();
        assert_eq!(report.held, 10, "year {year}: deployment-wide hold stopped sparing");
        for i in 10..20u32 {
            let key = format!("rec-{i:03}");
            let shard = db.map().shard_of(key.as_bytes());
            assert_eq!(
                db.shards()[shard].engine().read_latest(events, key.as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "year {year}: held {key} lost on shard {shard}"
            );
        }
        let audit = db.audit().unwrap();
        assert!(audit.is_clean(), "year {year} audit dirty: {:?}", audit.all_violations());
    }
    let gone = db.map().shard_of(b"rec-030");
    assert_eq!(db.shards()[gone].engine().read_latest(events, b"rec-030").unwrap(), None);

    // Release and shred the rest; the deployment-level dry run must agree
    // across serial and parallel strategies and stay clean.
    db.release_hold("docket-7").unwrap();
    let report = db.vacuum().unwrap();
    assert_eq!(report.shredded, 10);
    let (serial, cross_s) = db.audit_dry(AuditConfig::serial()).unwrap();
    let (par, cross_p) = db.audit_dry(AuditConfig::default().with_threads(2)).unwrap();
    assert!(cross_s.is_empty(), "cross-shard join dirty: {cross_s:?}");
    assert_eq!(cross_s, cross_p, "cross-shard verdict split");
    for (i, (s, p)) in serial.iter().zip(par.iter()).enumerate() {
        assert_eq!(s.report.violations, p.report.violations, "shard {i} verdict split");
        assert!(s.report.is_clean(), "shard {i} dirty: {:?}", s.report.violations);
    }
}
