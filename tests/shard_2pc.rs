//! The sharded-deployment differential suite: an N-shard deployment
//! running cross-shard transactions must audit clean under the serial
//! oracle, the parallel pipeline, AND the streaming auditor — and every
//! catalogued cross-shard tamper (dropped decision record, flipped
//! decision record, diverged outcome, orphan decision) must be detected,
//! with the *typed* finding, on at least one shard's audit under all
//! three strategies.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{ClockRef, Duration, RelId, TxnId, VirtualClock};
use ccdb::compliance::{AuditConfig, ComplianceConfig, LogRecord, Mode, ShardedDb, Violation};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-shard2pc-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn clock() -> ClockRef {
    Arc::new(VirtualClock::ticking(Duration::from_micros(50)))
}

fn cfg() -> ComplianceConfig {
    ComplianceConfig {
        mode: Mode::LogConsistent,
        regret_interval: Duration::from_mins(5),
        cache_pages: 256,
        auditor_seed: [7u8; 32],
        fsync: false,
        worm_artifact_retention: None,
        ..ComplianceConfig::default()
    }
}

fn open(d: &TempDir, n: u32) -> ShardedDb {
    ShardedDb::open(&d.0, clock(), cfg(), n).unwrap()
}

/// A mixed workload: single-shard transactions, cross-shard transactions
/// (the 2PC path), reads, and a sprinkle of aborts.
fn workload(db: &ShardedDb, rel: RelId, rounds: usize) {
    for r in 0..rounds {
        // Cross-shard: a fan of keys wide enough to hit every shard.
        let mut dtx = db.begin();
        for k in 0..8usize {
            let key = format!("xs-{r:04}-{k}");
            db.write(&mut dtx, rel, key.as_bytes(), format!("r{r}").as_bytes()).unwrap();
        }
        db.commit(dtx).unwrap();

        // Single-shard: one key, no 2PC records.
        let mut dtx = db.begin();
        let key = format!("solo-{r:04}");
        db.write(&mut dtx, rel, key.as_bytes(), b"solo").unwrap();
        db.commit(dtx).unwrap();

        // Aborts leave no 2PC traffic (presumed abort, never prepared).
        if r % 5 == 0 {
            let mut dtx = db.begin();
            for k in 0..4usize {
                let key = format!("doomed-{r:04}-{k}");
                db.write(&mut dtx, rel, key.as_bytes(), b"never").unwrap();
            }
            db.abort(dtx).unwrap();
        }

        // Reads route without writing.
        if r > 0 {
            let mut dtx = db.begin();
            let key = format!("xs-{:04}-0", r - 1);
            assert!(db.read(&mut dtx, rel, key.as_bytes()).unwrap().is_some());
            db.commit(dtx).unwrap();
        }
    }
    for shard in db.shards() {
        shard.engine().run_stamper().unwrap();
    }
}

/// Runs all three audit strategies per shard as dry runs over the same
/// quiesced state, asserts they agree on every observable, and returns the
/// serial per-shard violation sets plus the cross-shard join.
fn audit_all_strategies(db: &ShardedDb) -> (Vec<Vec<Violation>>, Vec<Violation>) {
    let (serial_outcomes, cross) = db.audit_dry(AuditConfig::serial()).unwrap();
    for threads in [2usize, 4] {
        let (par, par_cross) = db.audit_dry(AuditConfig::default().with_threads(threads)).unwrap();
        for (i, (s, p)) in serial_outcomes.iter().zip(par.iter()).enumerate() {
            assert_eq!(
                s.report.violations, p.report.violations,
                "shard {i}: serial/parallel divergence at {threads} threads"
            );
            assert_eq!(
                s.tuple_hash, p.tuple_hash,
                "shard {i}: completeness-hash divergence at {threads} threads"
            );
        }
        assert_eq!(cross, par_cross, "cross-shard join diverged at {threads} threads");
    }
    // The streaming auditor, per shard: the verdict path is the exact
    // finalization sequence of the serial oracle over the carried fold.
    for (i, shard) in db.shards().iter().enumerate() {
        let mut stream = shard.stream_auditor().unwrap();
        let out = stream.verdict(shard).unwrap();
        assert_eq!(
            serial_outcomes[i].report.violations, out.report.violations,
            "shard {i}: stream verdict disagrees with the serial oracle"
        );
    }
    (serial_outcomes.into_iter().map(|o| o.report.violations).collect(), cross)
}

#[test]
fn cross_shard_workload_audits_clean_under_all_auditors() {
    for n in [2u32, 4] {
        let d = TempDir::new(&format!("clean-{n}"));
        let db = open(&d, n);
        let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
        workload(&db, rel, 25);
        let (per_shard, cross) = audit_all_strategies(&db);
        for (i, v) in per_shard.iter().enumerate() {
            assert!(v.is_empty(), "{n} shards, shard {i} dirty: {v:?}");
        }
        assert!(cross.is_empty(), "{n} shards, cross-shard join dirty: {cross:?}");
        // And the real sealing audit agrees.
        let dep = db.audit().unwrap();
        assert!(dep.is_clean(), "{:?}", dep.all_violations());
    }
}

#[test]
fn second_epoch_continues_clean_after_seal() {
    let d = TempDir::new("epoch2");
    let db = open(&d, 2);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    workload(&db, rel, 10);
    assert!(db.audit().unwrap().is_clean());
    // Epoch 1: more cross-shard traffic on the sealed deployment.
    workload(&db, rel, 10);
    let (per_shard, cross) = audit_all_strategies(&db);
    assert!(per_shard.iter().all(|v| v.is_empty()), "{per_shard:?}");
    assert!(cross.is_empty(), "{cross:?}");
}

/// Drives a cross-shard transaction up to (and including) the prepare
/// phase by hand, returning the participants. The caller then chooses how
/// to tamper with the decision phase.
fn prepared_txn(db: &ShardedDb, rel: RelId, tag: &str) -> (u64, Vec<(usize, TxnId)>) {
    let mut dtx = db.begin();
    for k in 0..8usize {
        let key = format!("{tag}-{k}");
        db.write(&mut dtx, rel, key.as_bytes(), b"pending").unwrap();
    }
    let gtxn = dtx.gtxn();
    let parts: Vec<u32> = dtx.writers().iter().map(|s| *s as u32).collect();
    assert!(parts.len() >= 2, "tag {tag} did not fan out across shards");
    let mut out = Vec::new();
    for s in dtx.writers() {
        let txn = dtx.local_txn(s).unwrap();
        db.shards()[s].prepare(txn).unwrap();
        db.shards()[s]
            .log_2pc(&LogRecord::TwoPcPrepare {
                gtxn,
                txn,
                shard: s as u32,
                participants: parts.clone(),
            })
            .unwrap();
        out.push((s, txn));
    }
    drop(dtx); // the protocol is driven by hand from here
    (gtxn, out)
}

fn has<F: Fn(&Violation) -> bool>(v: &[Violation], f: F) -> bool {
    v.iter().any(f)
}

#[test]
fn dropped_decision_record_is_detected_on_the_starved_shard() {
    let d = TempDir::new("drop-decision");
    let db = open(&d, 2);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    workload(&db, rel, 5);
    let (gtxn, writers) = prepared_txn(&db, rel, "attack-drop");
    // Mala suppresses the decision on every shard but the first, yet the
    // participants complete as if the protocol had finished.
    db.shards()[writers[0].0].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
    for (s, txn) in &writers {
        db.shards()[*s].commit(*txn).unwrap();
    }
    let (per_shard, _cross) = audit_all_strategies(&db);
    let starved = writers[1].0;
    assert!(
        has(
            &per_shard[starved],
            |v| matches!(v, Violation::TwoPcUndecided { gtxn: g, .. } if *g == gtxn)
        ),
        "shard {starved} must flag the undecided prepare: {:?}",
        per_shard[starved]
    );
    // The shard that kept its decision record stays locally consistent.
    assert!(per_shard[writers[0].0].is_empty(), "{:?}", per_shard[writers[0].0]);
}

#[test]
fn flipped_decision_record_is_detected_and_joined_as_divergence() {
    let d = TempDir::new("flip-decision");
    let db = open(&d, 2);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    workload(&db, rel, 5);
    let (gtxn, writers) = prepared_txn(&db, rel, "attack-flip");
    // The true decision is commit; Mala flips the record on one shard.
    db.shards()[writers[0].0].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
    db.shards()[writers[1].0].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: false }).unwrap();
    for (s, txn) in &writers {
        db.shards()[*s].commit(*txn).unwrap();
    }
    let (per_shard, cross) = audit_all_strategies(&db);
    let flipped = writers[1].0;
    assert!(
        has(&per_shard[flipped], |v| matches!(
            v,
            Violation::TwoPcOutcomeMismatch { gtxn: g, decided_commit: false, .. } if *g == gtxn
        )),
        "shard {flipped} must flag decision/outcome mismatch: {:?}",
        per_shard[flipped]
    );
    assert!(
        has(&cross, |v| matches!(v, Violation::TwoPcDivergentDecision { gtxn: g } if *g == gtxn)),
        "the cross-shard join must flag divergent decisions: {cross:?}"
    );
}

#[test]
fn diverged_outcome_between_shards_is_detected() {
    let d = TempDir::new("diverge");
    let db = open(&d, 2);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    workload(&db, rel, 5);
    let (gtxn, writers) = prepared_txn(&db, rel, "attack-diverge");
    // Decision records say commit everywhere — but one participant aborts,
    // silently breaking atomicity.
    for (s, _) in &writers {
        db.shards()[*s].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
    }
    db.shards()[writers[0].0].commit(writers[0].1).unwrap();
    db.shards()[writers[1].0].abort(writers[1].1).unwrap();
    let (per_shard, _cross) = audit_all_strategies(&db);
    let liar = writers[1].0;
    assert!(
        has(&per_shard[liar], |v| matches!(
            v,
            Violation::TwoPcOutcomeMismatch { gtxn: g, decided_commit: true, .. } if *g == gtxn
        )),
        "shard {liar} must flag the diverged outcome: {:?}",
        per_shard[liar]
    );
}

#[test]
fn orphan_decision_record_is_detected() {
    let d = TempDir::new("orphan");
    let db = open(&d, 2);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    workload(&db, rel, 5);
    // A decision for a global transaction no shard ever prepared.
    db.shards()[0].log_2pc(&LogRecord::TwoPcDecision { gtxn: 999_999, commit: true }).unwrap();
    let (per_shard, _cross) = audit_all_strategies(&db);
    assert!(
        has(&per_shard[0], |v| matches!(v, Violation::TwoPcOrphanDecision { gtxn: 999_999 })),
        "{:?}",
        per_shard[0]
    );
}

#[test]
fn shard_crash_mid_decision_recovers_to_audit_clean_commit() {
    let d = TempDir::new("crash-decided");
    let mut db = open(&d, 2);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    workload(&db, rel, 5);
    let (gtxn, writers) = prepared_txn(&db, rel, "crash-mid");
    // The decision reached shard A's log; shard B crashes before seeing it
    // (and before either local commit).
    let a = writers[0].0;
    let b = writers[1].0;
    db.shards()[a].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
    db.crash_shard(b).unwrap();
    // Resolution must have driven BOTH participants to commit: shard A's
    // local transaction is also resolved (it was in doubt in memory only —
    // crash_shard resolves deployment-wide).
    let mut r = db.begin();
    for k in 0..8usize {
        let key = format!("crash-mid-{k}");
        assert_eq!(
            db.read(&mut r, rel, key.as_bytes()).unwrap().as_deref(),
            Some(&b"pending"[..]),
            "key {k} lost after shard crash"
        );
    }
    db.commit(r).unwrap();
    let (per_shard, cross) = audit_all_strategies(&db);
    assert!(per_shard.iter().all(|v| v.is_empty()), "{per_shard:?}");
    assert!(cross.is_empty(), "{cross:?}");
}
