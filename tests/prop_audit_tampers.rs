//! Property-based tamper equivalence: for **arbitrary** byte-level and
//! page-level corruptions of the database file, the parallel audit
//! pipeline must flag a violation whenever the serial oracle flags one —
//! and produce the *same* violations, forensics, and completeness hash.
//! (The contrapositive holds too: when the oracle stays clean — e.g. a
//! flip that lands in dead space and is reconstructed away — the pipeline
//! must not raise a false alarm.)
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`]; each case's seed is embedded in
//! the assertion message for deterministic replay.

#![cfg(feature = "proptest")]

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::adversary::Mala;
use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, SplitMix64, Timestamp, VirtualClock};
use ccdb::compliance::{AuditConfig, ComplianceConfig, CompliantDb, Mode, DEFAULT_L_CHUNK_RECORDS};

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-prop-tamper-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open(dir: &TempDir, mode: Mode) -> CompliantDb {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
    CompliantDb::open(
        &dir.0,
        clock,
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: 64,
            auditor_seed: [0xAB; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap()
}

/// A seeded honest prefix: tuples across two relations, an epoch roll so
/// the audit replays against a real snapshot, then everything flushed so
/// Mala edits the authoritative on-disk bytes.
fn honest_prefix(db: &CompliantDb, rng: &mut SplitMix64) {
    let a = db.create_relation("a", SplitPolicy::KeyOnly).unwrap();
    let b = db.create_relation("b", SplitPolicy::KeyOnly).unwrap();
    let n = rng.gen_range(40..120u32);
    for i in 0..n {
        let t = db.begin().unwrap();
        let rel = if i % 3 == 0 { b } else { a };
        db.write(t, rel, format!("k{:04}", rng.gen_range(0..200u32)).as_bytes(), &[i as u8; 24])
            .unwrap();
        if rng.gen_bool(0.1) {
            db.abort(t).unwrap();
        } else {
            db.commit(t).unwrap();
        }
    }
    if rng.gen_bool(0.5) {
        let r = db.audit().unwrap();
        assert!(r.is_clean(), "honest prefix must audit clean: {:?}", r.violations);
        let t = db.begin().unwrap();
        db.write(t, a, b"post-epoch", b"v").unwrap();
        db.commit(t).unwrap();
    }
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
}

/// Runs the serial oracle and the parallel pipeline over the same state and
/// asserts full observable agreement (including agreement on hard errors).
/// Returns whether the oracle found the state clean.
fn assert_equivalent(tag: &str, db: &CompliantDb) -> bool {
    let serial = db.audit_outcome_with(AuditConfig::serial());
    for threads in [2usize, 4] {
        for chunk in [1usize, DEFAULT_L_CHUNK_RECORDS] {
            let par = db.audit_outcome_with(
                AuditConfig::default().with_threads(threads).with_chunk_records(chunk),
            );
            match (&serial, &par) {
                (Ok(s), Ok(p)) => {
                    assert_eq!(
                        s.report.violations, p.report.violations,
                        "{tag}: violations diverge at threads={threads} chunk={chunk}"
                    );
                    assert_eq!(
                        s.report.forensics, p.report.forensics,
                        "{tag}: forensics diverge at threads={threads} chunk={chunk}"
                    );
                    assert_eq!(
                        s.tuple_hash, p.tuple_hash,
                        "{tag}: tuple hash diverges at threads={threads} chunk={chunk}"
                    );
                    // The headline property, stated directly: the pipeline
                    // flags whenever the oracle flags.
                    assert_eq!(
                        s.report.is_clean(),
                        p.report.is_clean(),
                        "{tag}: verdict diverges at threads={threads} chunk={chunk}"
                    );
                }
                (Err(se), Err(pe)) => {
                    assert_eq!(se.to_string(), pe.to_string(), "{tag}: errors diverge");
                }
                (s, p) => panic!(
                    "{tag}: serial ok={} but parallel ok={} at threads={threads} chunk={chunk}",
                    s.is_ok(),
                    p.is_ok()
                ),
            }
        }
    }
    serial.map(|s| s.report.is_clean()).unwrap_or(false)
}

/// Arbitrary single-byte flips (with and without checksum repair) never
/// split the verdict between the two auditors.
#[test]
fn arbitrary_byte_flips_never_split_the_verdict() {
    for case in 0..10u64 {
        let mut rng = SplitMix64::seed_from_u64(0xF11B_0000 + case);
        let d = TempDir::new();
        let db = open(&d, if rng.gen_bool(0.5) { Mode::HashOnRead } else { Mode::LogConsistent });
        honest_prefix(&db, &mut rng);

        let mala = Mala::new(db.engine().db_path());
        let len = std::fs::metadata(db.engine().db_path()).unwrap().len();
        assert!(len > 0);
        let flips = rng.gen_range(1..4u32);
        for _ in 0..flips {
            let off = rng.gen_range(0..len);
            let mask = rng.gen_range(0..=255u8);
            let fix = rng.gen_bool(0.7);
            assert!(mala.flip_byte(off, mask, fix).unwrap());
        }
        assert_equivalent(&format!("flip case {case}"), &db);
    }
}

/// The structured attack catalogue (alterations, deletions, back-dated
/// insertions, leaf swaps, separator corruption) is detected by the
/// parallel pipeline exactly when the serial oracle detects it — which,
/// for these attacks, is always.
#[test]
fn arbitrary_page_tampers_never_split_the_verdict() {
    for case in 0..10u64 {
        let mut rng = SplitMix64::seed_from_u64(0x7A3B_0000 + case);
        let d = TempDir::new();
        let db = open(&d, Mode::LogConsistent);
        let rel = db.create_relation("a", SplitPolicy::KeyOnly).unwrap();
        let n = 120u32;
        for i in 0..n {
            let t = db.begin().unwrap();
            db.write(t, rel, format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            db.commit(t).unwrap();
        }
        db.engine().run_stamper().unwrap();
        db.engine().clear_cache().unwrap();

        let mala = Mala::new(db.engine().db_path());
        let victim = format!("k{:04}", rng.gen_range(0..n));
        let tampered = match rng.gen_range(0..5u32) {
            0 => mala.alter_tuple_value(victim.as_bytes(), b"forged").unwrap(),
            1 => mala.delete_tuple(victim.as_bytes()).unwrap(),
            2 => mala.backdate_insert(rel, b"zzzz-forged", b"planted", Timestamp(7)).unwrap(),
            3 => mala.swap_leaf_entries().unwrap(),
            _ => mala.corrupt_separator().unwrap(),
        };
        let clean = assert_equivalent(&format!("attack case {case}"), &db);
        if tampered {
            assert!(!clean, "attack case {case}: a successful tamper went undetected");
        }
    }
}
