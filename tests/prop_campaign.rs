//! Property-based campaign verdict unity: for **arbitrary** seeded
//! campaign schedules — any interleaving of workload, virtual years,
//! holds, shred cycles, WORM migration, crashes, and Mala tampering the
//! generator can produce — the three auditors (serial oracle, parallel
//! pipeline, streaming daemon) must never split their verdict, and every
//! campaign must end detected or harmless.
//!
//! The campaign runner itself enforces verdict identity per engine and
//! fails the seed on any split, so this suite's property is simply that
//! `run_campaign_schedule` never reports such a failure over a widened,
//! shifted seed space (distinct from the default suite's fixed block, so
//! the two runs don't retread the same schedules). Gated behind the
//! non-default `proptest` cargo feature; each case's seed is in the
//! failure for deterministic replay.

#![cfg(feature = "proptest")]

use ccdb::common::SplitMix64;
use ccdb_bench::campaign::run_campaign_schedule;

fn cases() -> u64 {
    std::env::var("CCDB_PROP_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(48)
}

/// Arbitrary campaign schedules (seeds drawn from a meta-RNG across the
/// full u64 space) never split the three-auditor verdict and never end
/// effective-but-undetected.
#[test]
fn arbitrary_campaigns_never_split_the_verdict() {
    let meta_seed: u64 = std::env::var("CCDB_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    let mut meta = SplitMix64::seed_from_u64(meta_seed);
    let mut detected = 0u64;
    let mut tampered = 0u64;
    for case in 0..cases() {
        let seed = meta.gen_range(0..u64::MAX);
        let outcome = run_campaign_schedule(seed).unwrap_or_else(|e| {
            panic!("case {case} (meta seed {meta_seed}): {e}");
        });
        tampered += (outcome.tampers_landed > 0) as u64;
        detected += outcome.detected as u64;
        // Verdict-identity is enforced inside the runner; double-check the
        // detected flag is consistent with the agreed violation list.
        assert_eq!(
            outcome.detected,
            !outcome.violations.is_empty(),
            "case {case}, seed {seed}: detected flag disagrees with violations"
        );
    }
    println!(
        "prop campaigns: {} cases, {tampered} tampered, {detected} detected (meta {meta_seed})",
        cases()
    );
}
