//! Long-haul stress runs (ignored by default; run with
//! `cargo test --release --test stress -- --ignored`).

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("ccdb-stress-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Tens of thousands of mixed operations across several epochs, with
/// periodic crashes, vacuum, and migration — everything must audit clean
/// at every epoch boundary.
#[test]
#[ignore = "long-running stress test"]
fn fifty_thousand_ops_across_epochs() {
    let d = TempDir::new("50k");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    let mut db = CompliantDb::open(
        &d.0,
        clock.clone(),
        ComplianceConfig {
            mode: Mode::HashOnRead,
            regret_interval: Duration::from_mins(5),
            cache_pages: 512,
            auditor_seed: [42u8; 32],
            fsync: false,
            worm_artifact_retention: None,
        },
    )
    .unwrap();
    let ledger = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let hot = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.8 }).unwrap();
    let t = db.begin().unwrap();
    db.set_retention(t, "hot", Duration::from_mins(200)).unwrap();
    db.commit(t).unwrap();

    let mut committed_keys = 0u64;
    for epoch in 0..5u32 {
        for i in 0..10_000u32 {
            let t = db.begin().unwrap();
            let key = format!("e{epoch}-k{:05}", i % 4000);
            db.write(t, ledger, key.as_bytes(), &i.to_le_bytes()).unwrap();
            db.write(t, hot, format!("h{}", i % 16).as_bytes(), &i.to_le_bytes()).unwrap();
            if i % 97 == 13 {
                db.delete(t, ledger, key.as_bytes()).unwrap();
            }
            if i % 211 == 7 {
                db.abort(t).unwrap();
            } else {
                db.commit(t).unwrap();
                committed_keys += 1;
            }
            if i % 2500 == 2499 {
                db.engine().run_stamper().unwrap();
            }
        }
        if epoch % 2 == 1 {
            db = db.crash_and_recover().unwrap();
        }
        if epoch == 2 {
            db.migrate_to_worm(hot).unwrap();
        }
        if epoch == 3 {
            clock.advance(Duration::from_mins(300));
            db.remigrate_expired().unwrap();
            let vr = db.vacuum().unwrap();
            assert!(vr.shredded > 0);
        }
        let report = db.audit().unwrap();
        assert!(
            report.is_clean(),
            "epoch {epoch}: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
        println!(
            "epoch {epoch}: clean ({} records, {} tuples, {} reads verified)",
            report.stats.records_scanned, report.stats.tuples_final, report.stats.reads_verified
        );
    }
    assert!(committed_keys > 45_000);
}
