//! Stress runs: a bounded multi-threaded audit-under-load harness (runs by
//! default; size it with `CCDB_STRESS_TXNS`) and a long-haul single-threaded
//! run (ignored by default; run with
//! `cargo test --release --test stress -- --ignored`).

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, Timestamp, VirtualClock};
use ccdb::compliance::logger::epoch_log_name;
use ccdb::compliance::records::LogIter;
use ccdb::compliance::{ComplianceConfig, CompliantDb, LogRecord, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("ccdb-stress-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Per-writer transaction count for the concurrent harness. Defaults small
/// enough for a debug-mode test run; CI's release smoke raises it via
/// `CCDB_STRESS_TXNS`.
fn stress_txns() -> u32 {
    std::env::var("CCDB_STRESS_TXNS").ok().and_then(|v| v.parse().ok()).unwrap_or(150)
}

/// The audit-under-load harness: N writer threads and M reader threads hammer
/// one `CompliantDb` through commits, aborts, stamper ticks, and a mid-run
/// WORM migration. Afterwards:
///
/// * every commit timestamp handed out is globally unique,
/// * the compliance log `L` carries `STAMP_TRANS` records whose commit times
///   are *strictly increasing in append (offset) order* — the property the
///   auditor's single-pass replay depends on,
/// * the auditor replays everything clean, and
/// * no pending (unstamped) work is left behind once the stamper drains.
#[test]
fn concurrent_commit_pipeline_audits_clean() {
    let writers: u64 = 4;
    let readers: u64 = 2;
    let txns = stress_txns();

    let d = TempDir::new("mt");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    let db = Arc::new(
        CompliantDb::open(
            &d.0,
            clock.clone(),
            ComplianceConfig {
                mode: Mode::HashOnRead,
                regret_interval: Duration::from_mins(60),
                cache_pages: 256,
                auditor_seed: [7u8; 32],
                fsync: false,
                worm_artifact_retention: None,
                ..ComplianceConfig::default()
            },
        )
        .unwrap(),
    );
    let ledger = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let hot = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.8 }).unwrap();

    let mut all_commit_times: Vec<Timestamp> = Vec::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;

    // Two waves with a WORM migration between them, so readers and writers
    // also run against a partially migrated store.
    for wave in 0..2u32 {
        let mut handles = Vec::new();
        for w in 0..writers {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut times = Vec::new();
                let mut aborts = 0u64;
                for i in 0..txns {
                    let t = db.begin().unwrap();
                    let key = format!("w{w}-k{:04}", i % 97);
                    db.write(t, ledger, key.as_bytes(), &i.to_le_bytes()).unwrap();
                    if i % 5 == 2 {
                        db.write(t, hot, format!("h{w}-{}", i % 11).as_bytes(), &i.to_le_bytes())
                            .unwrap();
                    }
                    if i % 13 == 6 {
                        db.delete(t, ledger, key.as_bytes()).unwrap();
                    }
                    if i % 7 == 3 {
                        db.abort(t).unwrap();
                        aborts += 1;
                    } else {
                        times.push(db.commit(t).unwrap());
                    }
                    if i % 50 == 49 {
                        db.engine().run_stamper().unwrap();
                    }
                }
                (times, aborts)
            }));
        }
        let mut rhandles = Vec::new();
        for r in 0..readers {
            let db = db.clone();
            rhandles.push(std::thread::spawn(move || {
                let mut times = Vec::new();
                for i in 0..txns {
                    let t = db.begin().unwrap();
                    let key = format!("w{}-k{:04}", i as u64 % writers, (i * 7 + r as u32) % 97);
                    // Hash-on-read under concurrent commits: must never error
                    // and must never later be rejected by the auditor.
                    let (_val, _ticket) = db.read_verifiable(t, ledger, key.as_bytes()).unwrap();
                    times.push(db.commit(t).unwrap());
                }
                times
            }));
        }
        for h in handles {
            let (times, aborts) = h.join().unwrap();
            committed += times.len() as u64;
            aborted += aborts;
            all_commit_times.extend(times);
        }
        for h in rhandles {
            let times = h.join().unwrap();
            committed += times.len() as u64;
            all_commit_times.extend(times);
        }
        db.engine().run_stamper().unwrap();
        if wave == 0 {
            db.migrate_to_worm(hot).unwrap();
        }
        db.tick().unwrap();
    }
    assert!(committed > 0 && aborted > 0, "harness must exercise both paths");

    // 1. Commit timestamps are globally unique (and therefore totally
    //    ordered): the sequencing critical section hands them out.
    let mut sorted = all_commit_times.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), all_commit_times.len(), "duplicate commit timestamps");

    // 2. Nothing pending once the stamper has drained.
    let stats = db.engine().stats();
    assert_eq!(stats.stamp_queue_len, 0, "stamp queue must be fully drained");
    assert!(stats.group_commit_txns > 0, "commits must ride the pipeline");

    // 3. The auditor replays the whole load clean.
    let report = db.audit().unwrap();
    assert!(
        report.is_clean(),
        "audit under load: {:?}",
        &report.violations[..report.violations.len().min(5)]
    );

    // 4. `L` order is consistent with commit order: walking every epoch log
    //    in offset order, STAMP_TRANS commit times are strictly increasing.
    let mut last = Timestamp(0);
    let mut stamps = 0u64;
    for epoch in 0..=db.epoch() {
        let name = epoch_log_name(epoch);
        if !db.worm().exists(&name) {
            continue;
        }
        let bytes = db.worm().read_all(&name).unwrap();
        for item in LogIter::new(&bytes) {
            let (off, rec) = item.unwrap();
            if let LogRecord::StampTrans { commit_time, .. } = rec {
                assert!(
                    commit_time > last,
                    "epoch {epoch} offset {off}: STAMP_TRANS {commit_time:?} \
                     not after {last:?} — L order diverged from commit order"
                );
                last = commit_time;
                stamps += 1;
            }
        }
    }
    assert_eq!(stamps, committed, "every commit must reach L exactly once");
}

/// Tens of thousands of mixed operations across several epochs, with
/// periodic crashes, vacuum, and migration — everything must audit clean
/// at every epoch boundary.
#[test]
#[ignore = "long-running stress test"]
fn fifty_thousand_ops_across_epochs() {
    let d = TempDir::new("50k");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    let mut db = CompliantDb::open(
        &d.0,
        clock.clone(),
        ComplianceConfig {
            mode: Mode::HashOnRead,
            regret_interval: Duration::from_mins(5),
            cache_pages: 512,
            auditor_seed: [42u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    let ledger = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let hot = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.8 }).unwrap();
    let t = db.begin().unwrap();
    db.set_retention(t, "hot", Duration::from_mins(200)).unwrap();
    db.commit(t).unwrap();

    let mut committed_keys = 0u64;
    for epoch in 0..5u32 {
        for i in 0..10_000u32 {
            let t = db.begin().unwrap();
            let key = format!("e{epoch}-k{:05}", i % 4000);
            db.write(t, ledger, key.as_bytes(), &i.to_le_bytes()).unwrap();
            db.write(t, hot, format!("h{}", i % 16).as_bytes(), &i.to_le_bytes()).unwrap();
            if i % 97 == 13 {
                db.delete(t, ledger, key.as_bytes()).unwrap();
            }
            if i % 211 == 7 {
                db.abort(t).unwrap();
            } else {
                db.commit(t).unwrap();
                committed_keys += 1;
            }
            if i % 2500 == 2499 {
                db.engine().run_stamper().unwrap();
            }
        }
        if epoch % 2 == 1 {
            db = db.crash_and_recover().unwrap();
        }
        if epoch == 2 {
            db.migrate_to_worm(hot).unwrap();
        }
        if epoch == 3 {
            clock.advance(Duration::from_mins(300));
            db.remigrate_expired().unwrap();
            let vr = db.vacuum().unwrap();
            assert!(vr.shredded > 0);
        }
        let report = db.audit().unwrap();
        assert!(
            report.is_clean(),
            "epoch {epoch}: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
        println!(
            "epoch {epoch}: clean ({} records, {} tuples, {} reads verified)",
            report.stats.records_scanned, report.stats.tuples_final, report.stats.reads_verified
        );
    }
    assert!(committed_keys > 45_000);
}

/// Audit-under-migration: waves of commits interleave with WORM migrations
/// of time-split pages, and after every wave the serial oracle and the
/// parallel pipeline are run over the same state — with a **one-record
/// decode chunk** so each `MIGRATE` record sits on its own chunk boundary
/// at the migration frontier. Both auditors must exempt migrated pages
/// identically: same violations, same completeness hash, same snapshot
/// material, plus a clean verdict throughout.
#[test]
fn audit_under_migration_parallel_matches_serial() {
    use ccdb::compliance::AuditConfig;

    let d = TempDir::new("mig-diff");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    let db = CompliantDb::open(
        &d.0,
        clock,
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(60),
            cache_pages: 96,
            auditor_seed: [0x4D; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    let hot = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.7 }).unwrap();
    let cold = db.create_relation("cold", SplitPolicy::KeyOnly).unwrap();

    let mut migrated_total = 0usize;
    for wave in 0..4u32 {
        // Overwrite-heavy traffic so the time-split policy produces
        // historical pages for the migrator to take.
        for i in 0..120u32 {
            let t = db.begin().unwrap();
            let k = format!("h{:03}", i % 37);
            db.write(t, hot, k.as_bytes(), format!("w{wave}i{i}").as_bytes()).unwrap();
            if i % 5 == 0 {
                db.write(t, cold, format!("c{wave}-{i:03}").as_bytes(), b"archived").unwrap();
            }
            if i % 11 == 7 {
                db.abort(t).unwrap();
            } else {
                db.commit(t).unwrap();
            }
        }
        let rep = db.migrate_to_worm(hot).unwrap();
        migrated_total += rep.pages_migrated;

        // Dual audit over the post-migration state. chunk=1 puts every
        // MIGRATE record at a chunk boundary; the sweep also covers a
        // mid-size chunk so boundaries fall *inside* migration runs.
        let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
        assert!(
            serial.report.is_clean(),
            "wave {wave}: serial auditor flagged an honest migration: {:?}",
            serial.report.violations
        );
        for (threads, chunk) in [(2usize, 1usize), (4, 1), (4, 5), (8, 2)] {
            let par = db
                .audit_outcome_with(
                    AuditConfig::default().with_threads(threads).with_chunk_records(chunk),
                )
                .unwrap();
            assert_eq!(
                serial.report.violations, par.report.violations,
                "wave {wave} threads={threads} chunk={chunk}: violation divergence"
            );
            assert_eq!(
                serial.tuple_hash, par.tuple_hash,
                "wave {wave} threads={threads} chunk={chunk}: hash divergence"
            );
            assert_eq!(
                serial.snapshot_pages, par.snapshot_pages,
                "wave {wave} threads={threads} chunk={chunk}: snapshot divergence"
            );
        }

        // Roll the epoch every other wave so migrations also cross epoch
        // (snapshot-prefix) boundaries.
        if wave % 2 == 1 {
            let r = db.audit().unwrap();
            assert!(r.is_clean(), "wave {wave}: epoch-roll audit: {:?}", r.violations);
        }
    }
    assert!(migrated_total > 0, "the workload never migrated a page — test is vacuous");
}

/// Multi-tenant service under load: M tenants × N client connections hammer
/// one in-process `ccdb-server` over TCP loopback with commits, aborts, and
/// mid-transaction disconnects. Afterwards:
///
/// * every admission slot has drained back to zero (no leaked handles),
/// * per-tenant engine commit counters reconcile exactly with what clients
///   saw acknowledged (zero lost or duplicated commits),
/// * tenants are isolated (no cross-tenant reads), sharing one WORM volume
///   whose root view carries every tenant's namespace, and
/// * every tenant's audit is clean, with the serial single-pass oracle and
///   the parallel pipeline in verdict agreement.
#[test]
fn multi_tenant_server_under_load_audits_clean() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration as StdDuration, Instant};

    use ccdb_rpc::client::Client;
    use ccdb_server::{Server, ServerConfig};

    let tenants = 3u32;
    let clients = 4u32;
    let txns = (stress_txns() / 3).max(20);

    let d = TempDir::new("server-load");
    let config = ServerConfig::new(
        &d.0,
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 512,
            fsync: false,
            ..ComplianceConfig::default()
        },
    );
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    let server = Server::start(config, clock).unwrap();
    let addr = server.addr().to_string();

    let names: Vec<String> = (0..tenants).map(|t| format!("tenant{t}")).collect();
    for name in &names {
        let mut c = Client::connect(&addr, name).unwrap();
        c.create_relation("ledger").unwrap();
    }

    let commits_before: Vec<u64> = names
        .iter()
        .map(|n| server.tenants().tenant(n).unwrap().engine().stats().commits)
        .collect();

    // Per-tenant acknowledged-commit counters, for exact reconciliation
    // against the engine below.
    let acked: Vec<Arc<AtomicU64>> = (0..tenants).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut handles = Vec::new();
    for (ti, name) in names.iter().enumerate() {
        for w in 0..clients {
            let (name, addr, acked) = (name.clone(), addr.clone(), acked[ti].clone());
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr, &name).unwrap();
                let rel = c.rel_id("ledger").unwrap();
                for i in 0..txns {
                    let txn = c.begin().unwrap();
                    let key = format!("w{w}-k{:05}", i % 500);
                    c.write(txn, rel, key.as_bytes(), &i.to_le_bytes()).unwrap();
                    if i % 17 == 5 {
                        c.abort(txn).unwrap();
                    } else {
                        c.commit(txn).unwrap();
                        acked.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // One client per tenant hangs up with a transaction still
                // open: the server must abort it and release the slot.
                if w == 0 {
                    let txn = c.begin().unwrap();
                    c.write(txn, rel, b"orphan", b"never-committed").unwrap();
                    drop(c);
                }
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    // Disconnect cleanup is asynchronous (the connection thread observes the
    // dead socket); wait for the admission view to drain.
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while server.inflight_txns() > 0 {
        assert!(Instant::now() < deadline, "admission slots never drained");
        std::thread::sleep(StdDuration::from_millis(10));
    }

    // Zero lost/duplicated commits, per tenant: exactly the acknowledged
    // commits landed in that tenant's engine — no more (duplicates), no
    // fewer (losses), and never a neighbor's.
    for (ti, name) in names.iter().enumerate() {
        let total = server.tenants().tenant(name).unwrap().engine().stats().commits;
        assert_eq!(
            total - commits_before[ti],
            acked[ti].load(Ordering::Relaxed),
            "{name}: engine commit counter does not reconcile with acked commits"
        );
    }

    for name in &names {
        let mut c = Client::connect(&addr, name).unwrap();
        let rel = c.rel_id("ledger").unwrap();
        let txn = c.begin().unwrap();
        // The orphaned write never became visible.
        assert_eq!(c.read(txn, rel, b"orphan").unwrap(), None, "{name}: orphan txn leaked");
        // Cross-tenant isolation: another tenant's keys do not exist here,
        // and this tenant's own committed keys do.
        assert!(c.read(txn, rel, b"w0-k00000").unwrap().is_some(), "{name}: lost its own data");
        c.abort(txn).unwrap();
        // Serial oracle (dry run) and parallel pipeline agree, both clean.
        let serial = c.audit(true).unwrap();
        let parallel = c.audit(false).unwrap();
        assert!(serial.0, "{name}: serial audit dirty ({} violations)", serial.1);
        assert!(parallel.0, "{name}: parallel audit dirty ({} violations)", parallel.1);
        assert_eq!(serial, parallel, "{name}: serial oracle disagrees with parallel audit");
    }

    // One shared WORM volume, every tenant namespaced on it.
    let root_names: Vec<String> =
        server.tenants().worm().list("").into_iter().map(|(n, _)| n).collect();
    for name in &names {
        let prefix = format!("tenants/{name}/");
        assert!(
            root_names.iter().any(|n| n.starts_with(&prefix)),
            "{name}: no {prefix} artifacts on the shared volume"
        );
    }
}
