//! Differential proof of the parallel audit pipeline against the serial
//! oracle: for seeded workloads exercising commits, aborts, reads,
//! structure modifications, WORM migration, and shredding, the parallel
//! auditor must produce **identical** verdicts, violation sets, forensic
//! findings, completeness hashes, and snapshot material at every thread
//! count and chunk size — including degenerate 1-record chunks that place
//! every record at a chunk boundary.
//!
//! Seed control: `CCDB_AUDIT_DIFF_SEEDS` (comma-separated u64 list) widens
//! the seeded sweep in CI without recompiling.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, SplitMix64, VirtualClock};
use ccdb::compliance::{AuditConfig, AuditOutcome, ComplianceConfig, CompliantDb, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-adiff-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open(dir: &TempDir, mode: Mode) -> (CompliantDb, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(30)));
    let db = CompliantDb::open(
        &dir.0,
        clock.clone(),
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: 128,
            auditor_seed: [0xD1; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    (db, clock)
}

/// Drives one seeded workload: interleaved commits/aborts/updates/deletes
/// and reads over two relations (one time-split), with optional WORM
/// migration, retention expiry + vacuum, and a mid-run audit epoch roll.
fn seeded_workload(db: &CompliantDb, clock: &VirtualClock, seed: u64, epochs: u32) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let ledger = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let hot = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.8 }).unwrap();
    let _ = clock;
    for epoch in 0..epochs {
        let txns = rng.gen_range(120..240u32);
        for i in 0..txns {
            let t = db.begin().unwrap();
            let rel = if rng.gen_bool(0.3) { hot } else { ledger };
            let nwrites = rng.gen_range(1..5u32);
            for _ in 0..nwrites {
                let k = format!("s{seed}-k{:04}", rng.gen_range(0..600u32));
                if rng.gen_bool(0.12) {
                    db.delete(t, rel, k.as_bytes()).unwrap();
                } else {
                    let v = format!("e{epoch}i{i}v{}", rng.gen_range(0..u32::MAX));
                    db.write(t, rel, k.as_bytes(), v.as_bytes()).unwrap();
                }
            }
            if rng.gen_bool(0.25) {
                let k = format!("s{seed}-k{:04}", rng.gen_range(0..600u32));
                let _ = db.read(t, rel, k.as_bytes()).unwrap();
            }
            if rng.gen_bool(0.1) {
                db.abort(t).unwrap();
            } else {
                db.commit(t).unwrap();
            }
        }
        if rng.gen_bool(0.6) {
            // Time-split + WORM migration of historical pages.
            let _ = db.migrate_to_worm(hot).unwrap();
        }
        if rng.gen_bool(0.5) {
            // Expire and shred a slice of the ledger.
            let t = db.begin().unwrap();
            db.set_retention(t, "ledger", Duration::from_micros(1)).unwrap();
            db.commit(t).unwrap();
            let _ = db.vacuum().unwrap();
            // Restore a long retention so later epochs keep their tuples.
            let t = db.begin().unwrap();
            db.set_retention(t, "ledger", Duration::from_mins(60)).unwrap();
            db.commit(t).unwrap();
        }
        if epoch + 1 < epochs {
            // Roll the audit epoch so later dry-runs replay against a real
            // snapshot prefix (exercising the checkpoint fast path too).
            let report = db.audit().unwrap();
            assert!(report.is_clean(), "seed {seed} epoch {epoch}: {:?}", report.violations);
        }
    }
}

/// Asserts two audit outcomes are observably identical: verdict, violation
/// list, forensics, counts, completeness hash, and snapshot material.
#[track_caller]
fn assert_same_outcome(tag: &str, a: &AuditOutcome, b: &AuditOutcome) {
    assert_eq!(a.report.epoch, b.report.epoch, "{tag}: epoch");
    assert_eq!(a.report.violations, b.report.violations, "{tag}: violations");
    assert_eq!(a.report.forensics, b.report.forensics, "{tag}: forensics");
    assert_eq!(
        a.report.stats.records_scanned, b.report.stats.records_scanned,
        "{tag}: records_scanned"
    );
    assert_eq!(a.report.stats.tuples_final, b.report.stats.tuples_final, "{tag}: tuples_final");
    assert_eq!(
        a.report.stats.reads_verified, b.report.stats.reads_verified,
        "{tag}: reads_verified"
    );
    assert_eq!(a.tuple_hash, b.tuple_hash, "{tag}: tuple_hash");
    assert_eq!(a.snapshot_pages, b.snapshot_pages, "{tag}: snapshot_pages");
}

fn diff_seeds() -> Vec<u64> {
    match std::env::var("CCDB_AUDIT_DIFF_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("CCDB_AUDIT_DIFF_SEEDS: bad u64"))
            .collect(),
        Err(_) => vec![11, 42],
    }
}

/// The core differential sweep: serial oracle vs the parallel pipeline at
/// thread counts {1, 2, 4, 8} and several chunk sizes.
fn sweep(mode: Mode, tag: &str) {
    for seed in diff_seeds() {
        let d = TempDir::new(&format!("{tag}-{seed}"));
        let (db, clock) = open(&d, mode);
        seeded_workload(&db, &clock, seed, 2);

        let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
        assert_eq!(serial.report.stats.threads_used, 1);

        for threads in [1usize, 2, 4, 8] {
            for chunk in [1usize, 3, ccdb::compliance::DEFAULT_L_CHUNK_RECORDS] {
                let cfg = AuditConfig::default().with_threads(threads).with_chunk_records(chunk);
                let par = db.audit_outcome_with(cfg).unwrap();
                assert_eq!(par.report.stats.threads_used, threads as u64);
                assert_same_outcome(
                    &format!("{tag} seed={seed} threads={threads} chunk={chunk}"),
                    &serial,
                    &par,
                );
            }
        }
    }
}

#[test]
fn parallel_matches_serial_log_consistent() {
    sweep(Mode::LogConsistent, "lc");
}

#[test]
fn parallel_matches_serial_hash_on_read() {
    sweep(Mode::HashOnRead, "hor");
}

/// The checkpoint fast path must not change the differential result: with
/// checkpoints disabled, serial and parallel still agree with the
/// checkpointed runs bit-for-bit on everything but the skip counter.
#[test]
fn checkpoints_do_not_change_the_verdict() {
    let d = TempDir::new("ckpt-diff");
    let (db, clock) = open(&d, Mode::LogConsistent);
    seeded_workload(&db, &clock, 7, 3);

    let base = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    for cfg in [
        AuditConfig::serial().with_checkpoints(false),
        AuditConfig::default().with_threads(4),
        AuditConfig::default().with_threads(4).with_checkpoints(false),
    ] {
        let other = db.audit_outcome_with(cfg).unwrap();
        assert_same_outcome("ckpt-diff", &base, &other);
    }
}

/// Auto thread selection (0 = available parallelism) also matches.
#[test]
fn auto_threads_match_serial() {
    let d = TempDir::new("auto");
    let (db, clock) = open(&d, Mode::HashOnRead);
    seeded_workload(&db, &clock, 23, 1);
    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    let auto = db.audit_outcome_with(AuditConfig::default().with_threads(0)).unwrap();
    assert!(auto.report.stats.threads_used >= 1);
    assert_same_outcome("auto", &serial, &auto);
}
