//! The adversary campaign suite: seeded end-to-end campaigns of workload,
//! virtual years, litigation holds, shred cycles, WORM migration, crashes,
//! and Mala tampering — every one of which must end **detected or
//! harmless** with all three auditors verdict-identical.
//!
//! Each campaign is a pure function of its seed (printed in every failure
//! with its structured action trace). `CCDB_CAMPAIGN_SEEDS` overrides the
//! campaign count (CI's smoke job runs a handful; the default suite runs
//! 200). Replay a failing seed exactly with
//! `CCDB_CAMPAIGN_REPLAY_SEED=<seed> cargo test --test campaign \
//!  replay_campaign_seed -- --ignored --nocapture`.

use ccdb_bench::campaign::{run_campaign, run_campaign_schedule, CAMPAIGN_BASE_SEED};

fn campaign_size() -> u64 {
    std::env::var("CCDB_CAMPAIGN_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(200)
}

#[test]
fn adversary_campaigns_end_detected_or_harmless() {
    let n = campaign_size();
    let outcomes =
        run_campaign((0..n).map(|i| CAMPAIGN_BASE_SEED + i)).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(outcomes.len() as u64, n);

    // The campaign must not pass vacuously: across a full run the seeds
    // must actually tamper (and get caught), run tamper-free controls,
    // shred expired state, spare held tuples, cross deployment shapes, and
    // advance years of virtual time. (Thresholds are far below observed
    // rates — ~half of seeds tamper, ~a third of those are detected — so
    // they flag a broken generator, not ordinary seed drift.)
    if n >= 200 {
        let tampered = outcomes.iter().filter(|o| o.tampers_landed > 0).count();
        let detected = outcomes.iter().filter(|o| o.detected).count();
        let controls = outcomes.iter().filter(|o| o.tampers_drawn == 0).count();
        let harmless = outcomes.iter().filter(|o| o.tampers_landed > 0 && !o.detected).count();
        assert!(tampered * 4 >= outcomes.len(), "only {tampered}/{n} campaigns tampered");
        assert!(detected * 10 >= outcomes.len(), "only {detected}/{n} campaigns detected");
        assert!(controls * 10 >= outcomes.len(), "only {controls}/{n} tamper-free controls");
        assert!(harmless > 0, "no tampering campaign was verified harmless");
        let shredded: usize = outcomes.iter().map(|o| o.shredded).sum();
        let spared: usize = outcomes.iter().map(|o| o.held_spared).sum();
        assert!(shredded > 0, "no campaign shredded anything");
        assert!(spared > 0, "no hold ever spared a tuple from shredding");
        assert!(outcomes.iter().any(|o| o.crashes > 0), "no campaign crashed");
        assert!(outcomes.iter().any(|o| o.pages_migrated > 0), "no campaign migrated to WORM");
        for shape in ["single", "tenants", "sharded"] {
            assert!(
                outcomes.iter().any(|o| o.deployment == shape),
                "no campaign ran the {shape} deployment shape"
            );
        }
        let years: f64 = outcomes
            .iter()
            .map(|o| o.virtual_micros_advanced as f64 / (365.0 * 86_400.0 * 1e6))
            .sum();
        assert!(years >= 10.0, "campaigns advanced only {years:.1} virtual years");
    }

    let tampered = outcomes.iter().filter(|o| o.tampers_landed > 0).count();
    let detected = outcomes.iter().filter(|o| o.detected).count();
    println!(
        "campaigns: {n} seeds, {tampered} tampered, {detected} detected, \
         {} commits, {} shredded, {} hold-spared, {} sealed audits",
        outcomes.iter().map(|o| o.commits).sum::<usize>(),
        outcomes.iter().map(|o| o.shredded).sum::<usize>(),
        outcomes.iter().map(|o| o.held_spared).sum::<usize>(),
        outcomes.iter().map(|o| o.sealed_audits).sum::<usize>(),
    );
}

/// The same seed replays to the same campaign — the property every failure
/// message (and `CCDB_CAMPAIGN_REPLAY_SEED`) relies on.
#[test]
fn campaign_schedule_is_deterministic() {
    for seed in [CAMPAIGN_BASE_SEED + 2, CAMPAIGN_BASE_SEED + 11, 0xCA3B_1600_DEAD_BEEF] {
        let a = run_campaign_schedule(seed).unwrap_or_else(|e| panic!("{e}"));
        let b = run_campaign_schedule(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.trace, b.trace, "seed {seed}: action-trace divergence");
        assert_eq!(a.commits, b.commits, "seed {seed}: commit divergence");
        assert_eq!(a.detected, b.detected, "seed {seed}: verdict divergence");
        assert_eq!(a.violations, b.violations, "seed {seed}: violation divergence");
        assert_eq!(a.shredded, b.shredded, "seed {seed}: shred divergence");
    }
}

/// Regression: the bug class that exposed retroactive `ShredOfHeld` false
/// alarms during development — the auditor indicted a perfectly legal
/// shred because a hold covering the key was placed *afterwards* (the
/// fix evaluates holds as of the shred time, from the holds relation's
/// own version history). The schedule shreds, then places a hold, then
/// seals an audit; with the fix reverted it fails with `ShredOfHeld`,
/// with it the campaign runs clean end to end.
#[test]
fn replay_regression_hold_after_shred_is_not_a_violation() {
    let outcome = run_campaign_schedule(14572265208543183196).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.shredded > 0, "regression schedule no longer shreds");
    assert!(outcome.holds_placed > 0, "regression schedule no longer places a hold");
    assert!(outcome.sealed_audits > 0, "regression schedule no longer seals an audit");
    assert!(!outcome.detected, "tamper-free schedule flagged: {:?}", outcome.violations);
}

/// Regression: the seed that exposed `IndexMismatch` false alarms on
/// honest crash recovery — revision storms grew an index root in the
/// page cache, a time split swapped one of its children, WORM migration
/// ran, and the crash lost both the root's bytes and its index-delta
/// records. Recovery rebuilt the root from WAL images, and the
/// regenerated per-entry records could not retract the replay's stale
/// child entry (the fix: the first post-recovery pwrite of a baseline-
/// less internal page logs an authoritative `INDEX_IMAGE` that replaces
/// the replayed state). The schedule must run detected-free end to end
/// while still migrating and crashing.
#[test]
fn replay_regression_crash_lost_index_deltas_are_not_a_violation() {
    let outcome = run_campaign_schedule(14572265208543182960).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.pages_migrated > 0, "regression schedule no longer migrates");
    assert!(outcome.crashes > 0, "regression schedule no longer crashes");
    assert!(!outcome.detected, "tamper-free schedule flagged: {:?}", outcome.violations);
}

/// Regression: the seed that exposed unresumable WORM migration — a crash
/// between a page's WORM copy and its retire becoming durable left the
/// page on the historical list, and the next migration pass died forever
/// on "file already exists and may not be recreated". The fix resumes the
/// interrupted migration (verify-or-finish the immutable copy, re-assert
/// the MIGRATE record — which the auditors tolerate for already-verified
/// pages — then retire), reading the page as a trusted self-read so the
/// un-replayable READ hash raises no false alarm.
#[test]
fn replay_regression_crash_during_migration_is_resumable() {
    let outcome = run_campaign_schedule(14572265208543183146).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.pages_migrated > 0, "regression schedule no longer migrates");
    assert!(outcome.crashes > 0, "regression schedule no longer crashes");
    assert!(!outcome.detected, "tamper-free schedule flagged: {:?}", outcome.violations);
}

/// Regression: the seed that exposed false `StateMismatch` +
/// `CompletenessMismatch` alarms when the conventional copy of a migrated
/// page *survived* a crash that lost its retire — the MIGRATE record had
/// removed the page from the replay and the completeness universe, but
/// the Free image never became durable and the old bytes stayed on disk.
/// The final disk scan now accepts a historical leaf with no replayed
/// state iff it is byte-identical to its verified immutable WORM copy.
/// With the fix reverted this seed dies mid-campaign — an *honest*
/// sealing audit (before any tampering) comes back dirty, which the
/// campaign treats as a false alert. With the fix those audits seal
/// clean and the campaign runs on to its genuinely tampered ending,
/// which all three auditors then rightly detect.
#[test]
fn replay_regression_surviving_migrated_copy_is_not_a_violation() {
    let outcome = run_campaign_schedule(14572265208543183901).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.pages_migrated > 0, "regression schedule no longer migrates");
    assert!(outcome.crashes > 0, "regression schedule no longer crashes");
    assert!(outcome.sealed_audits > 0, "regression schedule no longer seals an honest audit");
    assert!(
        outcome.tampers_landed > 0 && outcome.detected,
        "regression schedule should end with its real tampering detected: {:?}",
        outcome.violations
    );
}

/// Replays one seed with its full action trace (for minimizing a failure
/// reported by the campaign): `CCDB_CAMPAIGN_REPLAY_SEED=<seed> cargo test
/// --test campaign replay_campaign_seed -- --ignored --nocapture`.
#[test]
#[ignore = "manual replay: set CCDB_CAMPAIGN_REPLAY_SEED"]
fn replay_campaign_seed() {
    let seed: u64 = std::env::var("CCDB_CAMPAIGN_REPLAY_SEED")
        .expect("set CCDB_CAMPAIGN_REPLAY_SEED=<seed>")
        .parse()
        .expect("CCDB_CAMPAIGN_REPLAY_SEED must be a u64");
    match run_campaign_schedule(seed) {
        Ok(o) => {
            println!("seed {seed}: OK ({} / {:?})", o.deployment, o.mode);
            for (i, a) in o.trace.iter().enumerate() {
                println!("  {:3}. {a}", i + 1);
            }
        }
        Err(e) => panic!("{e}"),
    }
}
