//! Property tests for **client-verifiable reads**: any committed read served
//! with a [`ccdb::compliance::ProvenRead`] must round-trip through the
//! engine-free `ccdb-verifier` crate, and any single byte flip anywhere in
//! the proof material (epoch head, signature, public key, or proof body)
//! must either fail verification or demote the result to a *different*
//! committed fact — never a false accept of the original claim.
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`]; each case's seed is printed on
//! failure for deterministic replay.

#![cfg(feature = "proptest")]

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, SplitMix64, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, EpochHeadManager, Mode};
use ccdb_verifier::verify_read;

const AUDITOR_SEED: [u8; 32] = [0xE4; 32];

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-prop-proof-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open(dir: &TempDir, mode: Mode) -> CompliantDb {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
    CompliantDb::open(
        &dir.0,
        clock,
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: 64,
            auditor_seed: AUDITOR_SEED,
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap()
}

/// Runs a seeded workload and returns the model: what each key's latest
/// committed state was when the epoch sealed (`None` = deleted).
fn workload(
    db: &CompliantDb,
    rng: &mut SplitMix64,
) -> (ccdb::common::RelId, HashMap<Vec<u8>, Option<Vec<u8>>>) {
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    let mut model: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
    let txns = rng.gen_range(30..90u32);
    for i in 0..txns {
        let t = db.begin().unwrap();
        let mut staged: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        for _ in 0..rng.gen_range(1..4u32) {
            let key = format!("k{:03}", rng.gen_range(0..120u32)).into_bytes();
            if rng.gen_bool(0.15) {
                db.delete(t, rel, &key).unwrap();
                staged.push((key, None));
            } else {
                let val = format!("v{i}-{}", rng.gen_range(0..u32::MAX)).into_bytes();
                db.write(t, rel, &key, &val).unwrap();
                staged.push((key, Some(val)));
            }
        }
        if rng.gen_bool(0.1) {
            db.abort(t).unwrap();
        } else {
            db.commit(t).unwrap();
            for (k, v) in staged {
                model.insert(k, v);
            }
        }
    }
    (rel, model)
}

/// Every committed read round-trips through the standalone verifier: the
/// proven value equals the model's latest committed state at seal time, the
/// signed head pins to the auditor's key lineage, and absent keys yield a
/// head but no proof.
#[test]
fn committed_reads_round_trip_through_the_verifier() {
    for case in 0..8u64 {
        let mut rng = SplitMix64::seed_from_u64(0x4EAD_0000 + case);
        let dir = TempDir::new();
        let mode = if rng.gen_bool(0.5) { Mode::HashOnRead } else { Mode::LogConsistent };
        let db = open(&dir, mode);
        let (rel, model) = workload(&db, &mut rng);
        let report = db.audit().unwrap();
        assert!(report.is_clean(), "case {case}: {:?}", report.violations);

        let fp = EpochHeadManager::new(db.worm().clone(), AUDITOR_SEED).fingerprint(0);
        for (key, expect) in &model {
            let (head, proven) = db.read_proof(rel, key).unwrap();
            let proven = proven.unwrap_or_else(|| panic!("case {case}: no proof for {key:?}"));
            assert_eq!(&proven.value, expect, "case {case}: proven value for {key:?}");
            let out = verify_read(
                &head.head_bytes,
                &head.sig_bytes,
                &head.pub_bytes,
                Some(&fp),
                &proven.proof_bytes,
                rel.0,
                key,
            )
            .unwrap_or_else(|e| panic!("case {case}: verify {key:?}: {e:?}"));
            assert_eq!(&out.value, expect, "case {case}: verified value for {key:?}");
            assert_eq!(out.head.epoch, 0, "case {case}: head epoch");
            assert_eq!(out.tuple.key, *key);
            assert_eq!(out.tuple.rel, rel.0);
            assert_eq!(out.tuple.commit_time, proven.commit_time.0);
        }

        // A key never written: signed head, no inclusion proof.
        let (head, absent) = db.read_proof(rel, b"never-written").unwrap();
        assert!(absent.is_none(), "case {case}: proof for an absent key");
        assert_eq!(head.head.epoch, 0);

        // Pinning to the wrong lineage fails even with intact blobs.
        let key = model.keys().next().unwrap().clone();
        let (head, proven) = db.read_proof(rel, &key).unwrap();
        let proven = proven.unwrap();
        let wrong = EpochHeadManager::new(db.worm().clone(), [0x11; 32]).fingerprint(0);
        let err = verify_read(
            &head.head_bytes,
            &head.sig_bytes,
            &head.pub_bytes,
            Some(&wrong),
            &proven.proof_bytes,
            rel.0,
            &key,
        );
        assert!(err.is_err(), "case {case}: wrong fingerprint accepted");
    }
}

/// Proofs follow epoch rolls: after a second clean audit, reads prove
/// against the epoch-1 head and verify under the epoch-1 fingerprint.
#[test]
fn proofs_follow_epoch_rolls() {
    let mut rng = SplitMix64::seed_from_u64(0x4EAD_E90C);
    let dir = TempDir::new();
    let db = open(&dir, Mode::LogConsistent);
    let (rel, _) = workload(&db, &mut rng);
    assert!(db.audit().unwrap().is_clean());
    // Epoch 1: overwrite a key, seal again.
    let t = db.begin().unwrap();
    db.write(t, rel, b"k000", b"epoch1-value").unwrap();
    db.commit(t).unwrap();
    assert!(db.audit().unwrap().is_clean());

    let (head, proven) = db.read_proof(rel, b"k000").unwrap();
    let proven = proven.unwrap();
    assert_eq!(head.head.epoch, 1, "proof must come from the latest sealed epoch");
    assert_eq!(proven.value.as_deref(), Some(&b"epoch1-value"[..]));
    let fp = EpochHeadManager::new(db.worm().clone(), AUDITOR_SEED).fingerprint(1);
    let out = verify_read(
        &head.head_bytes,
        &head.sig_bytes,
        &head.pub_bytes,
        Some(&fp),
        &proven.proof_bytes,
        rel.0,
        b"k000",
    )
    .unwrap();
    assert_eq!(out.value.as_deref(), Some(&b"epoch1-value"[..]));
}

/// Sensitivity: flipping any single bit in any proof component must not
/// produce a false accept. Verification either fails outright, or — when
/// the flip lands on e.g. the cell index and redirects the proof to another
/// *genuinely committed* version of the same key — yields a visibly
/// different fact than the original claim. It never re-authenticates the
/// original (tuple, value) claim from corrupted material.
#[test]
fn any_single_byte_flip_never_falsely_accepts() {
    for case in 0..8u64 {
        let mut rng = SplitMix64::seed_from_u64(0xF11B_0000 + case);
        let dir = TempDir::new();
        let db = open(&dir, Mode::LogConsistent);
        let (rel, model) = workload(&db, &mut rng);
        let report = db.audit().unwrap();
        assert!(report.is_clean(), "case {case}: {:?}", report.violations);
        let fp = EpochHeadManager::new(db.worm().clone(), AUDITOR_SEED).fingerprint(0);

        let keys: Vec<&Vec<u8>> = model.keys().collect();
        let key = keys[rng.gen_range(0..keys.len() as u32) as usize].clone();
        let (head, proven) = db.read_proof(rel, &key).unwrap();
        let proven = proven.unwrap();
        let baseline = verify_read(
            &head.head_bytes,
            &head.sig_bytes,
            &head.pub_bytes,
            Some(&fp),
            &proven.proof_bytes,
            rel.0,
            &key,
        )
        .unwrap();

        for trial in 0..60u32 {
            let mut blobs = [
                head.head_bytes.clone(),
                head.sig_bytes.clone(),
                head.pub_bytes.clone(),
                proven.proof_bytes.clone(),
            ];
            let which = rng.gen_range(0..4u32) as usize;
            let idx = rng.gen_range(0..blobs[which].len() as u32) as usize;
            let bit = 1u8 << rng.gen_range(0..8u32);
            blobs[which][idx] ^= bit;
            let tag = format!(
                "case {case} trial {trial}: blob {which} byte {idx} bit {bit:02x} key {:?}",
                String::from_utf8_lossy(&key)
            );
            match verify_read(&blobs[0], &blobs[1], &blobs[2], Some(&fp), &blobs[3], rel.0, &key) {
                Err(_) => {}
                Ok(out) => {
                    // The only tolerable accept is a *different* committed
                    // fact about the same key (the flip re-aimed the proof,
                    // e.g. at an older version). The original claim must
                    // not re-verify from corrupted bytes.
                    assert_eq!(out.tuple.key, key, "{tag}: key drifted");
                    assert!(
                        out.tuple.seq != baseline.tuple.seq
                            || out.tuple.commit_time != baseline.tuple.commit_time
                            || out.value != baseline.value,
                        "{tag}: corrupted material re-verified the original claim"
                    );
                }
            }
        }
    }
}
