//! Retention lifecycle: mandated shredding, litigation holds, and WORM
//! migration of cold history (Sections VI and VIII).
//!
//! A clinic must retain patient-contact records for a mandated period, then
//! *shred* them (cf. Code of Virginia §42.1-82 on social-security numbers) —
//! unless a litigation hold freezes specific records. Meanwhile, hot
//! versioned data migrates its history to WORM, shrinking future audits.
//!
//! ```text
//! cargo run --release --example data_retention
//! ```

use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Clock, Duration, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Hold, Mode};

fn main() {
    let dir = std::env::temp_dir().join(format!("ccdb-retention-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(
        &dir,
        clock.clone(),
        ComplianceConfig { mode: Mode::HashOnRead, ..ComplianceConfig::default() },
    )
    .unwrap();

    // --- retention policy lives in the (auditable) Expiry relation --------
    let patients = db.create_relation("patient_contacts", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.set_retention(t, "patient_contacts", Duration::from_mins(60)).unwrap();
    db.commit(t).unwrap();
    for i in 0..30 {
        let t = db.begin().unwrap();
        db.write(t, patients, format!("ssn-{i:03}").as_bytes(), b"123-45-6789 / 555-0100").unwrap();
        db.commit(t).unwrap();
    }
    println!("stored 30 patient records; retention period = 60 virtual minutes");
    assert!(db.audit().unwrap().is_clean());

    // --- a subpoena arrives: litigation hold on two patients --------------
    let t = db.begin().unwrap();
    db.place_hold(
        t,
        &Hold {
            id: "case-2008-cv-0117".into(),
            rel_name: "patient_contacts".into(),
            key_prefix: b"ssn-00".to_vec(),
        },
    )
    .unwrap();
    db.commit(t).unwrap();
    println!("litigation hold placed on ssn-00* (case 2008-cv-0117)");

    // --- time passes; everything expires; the vacuum runs -----------------
    clock.advance(Duration::from_mins(90));
    let vr = db.vacuum().unwrap();
    println!(
        "vacuum: {} versions shredded (SHREDDED records on WORM first), {} spared by the hold",
        vr.shredded, vr.held
    );
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, patients, b"ssn-015").unwrap(), None, "expired and shredded");
    assert!(db.read(t, patients, b"ssn-001").unwrap().is_some(), "held records survive");
    db.commit(t).unwrap();
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    println!("audit verifies every shred was legal (expired + not held): clean");

    // --- the case closes; the hold is released; the rest is shredded ------
    let t = db.begin().unwrap();
    db.release_hold(t, "case-2008-cv-0117").unwrap();
    db.commit(t).unwrap();
    let vr = db.vacuum().unwrap();
    println!("hold released; vacuum shredded the remaining {} versions", vr.shredded);
    assert!(db.audit().unwrap().is_clean());

    // --- WORM migration: hot audit-log relation sheds its history ---------
    let visits =
        db.create_relation("visit_counters", SplitPolicy::TimeSplit { threshold: 0.8 }).unwrap();
    for round in 0..150u32 {
        let t = db.begin().unwrap();
        for room in 0..8 {
            db.write(t, visits, format!("room-{room}").as_bytes(), &round.to_le_bytes()).unwrap();
        }
        db.commit(t).unwrap();
        db.engine().run_stamper().unwrap();
    }
    let before = db.engine().relation_pages(visits).unwrap();
    let early = clock.now();
    let mr = db.migrate_to_worm(visits).unwrap();
    let after = db.engine().relation_pages(visits).unwrap();
    println!(
        "\nTSB time splits produced {} historical pages; migrated {} pages / {} tuples to WORM",
        before.1, mr.pages_migrated, mr.tuples_migrated
    );
    println!("live pages before/after migration: {} / {}", before.0 + before.1, after.0);
    // Migrated history remains queryable through the WORM server.
    let t = db.begin().unwrap();
    let _now = db.read(t, visits, b"room-3").unwrap().unwrap();
    db.commit(t).unwrap();
    let historical = db.read_as_of(visits, b"room-3", early).unwrap();
    println!("temporal query over migrated history answered: {}", historical.is_some());
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    println!("audit verifies the migration and exempts the WORM pages: clean");

    std::fs::remove_dir_all(&dir).ok();
}
