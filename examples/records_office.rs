//! Government-records scenario: post-hoc insertion. The paper's secondary
//! threat — "the insertion of tuples with start times that have already
//! passed, in an attempt to make it appear that an activity took place
//! though in fact it did not … records of births, deaths, marriages,
//! property transfers, drivers' licenses, voter registrations."
//!
//! A clerk with root tries to forge a backdated property transfer directly
//! in the database file. The completeness check (every tuple in the final
//! state must be covered by the snapshot or a logged insertion) exposes it.
//!
//! ```text
//! cargo run --release --example records_office
//! ```

use std::sync::Arc;

use ccdb::adversary::Mala;
use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, Timestamp, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode, Violation};

fn main() {
    let dir = std::env::temp_dir().join(format!("ccdb-records-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(
        &dir,
        clock.clone(),
        ComplianceConfig { mode: Mode::LogConsistent, ..ComplianceConfig::default() },
    )
    .unwrap();

    // The county deeds registry.
    let deeds = db.create_relation("property_deeds", SplitPolicy::KeyOnly).unwrap();
    let mut legitimate_times = Vec::new();
    for parcel in 0..50 {
        let t = db.begin().unwrap();
        db.write(
            t,
            deeds,
            format!("parcel-{parcel:03}").as_bytes(),
            format!("owner=resident-{parcel}").as_bytes(),
        )
        .unwrap();
        legitimate_times.push(db.commit(t).unwrap());
    }
    // Year one closes with a clean audit; the signed snapshot goes to WORM.
    let report = db.audit().unwrap();
    assert!(report.is_clean());
    println!("year-1 audit: clean ({} deeds on record)", 50);

    // Temporal queries answer title searches from history.
    let mid = legitimate_times[25];
    let owner = db.read_as_of(deeds, b"parcel-010", mid).unwrap().unwrap();
    println!(
        "title search as of mid-year: parcel-010 owned by {}",
        String::from_utf8_lossy(&owner)
    );

    // Year two: the clerk forges a deed claiming a transfer happened during
    // year one. The forgery is careful — correct sort position, valid
    // checksum, a plausible old commit time.
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
    let mala = Mala::new(db.engine().db_path());
    let forged_time = Timestamp(legitimate_times[10].0 + 1);
    assert!(mala
        .backdate_insert(deeds, b"parcel-777", b"owner=the-clerks-cousin", forged_time)
        .unwrap());
    println!("\nclerk forged parcel-777 with a year-one timestamp, directly in the file");

    // A title search would now show the forged deed…
    let t = db.begin().unwrap();
    let forged = db.read(t, deeds, b"parcel-777").unwrap();
    db.commit(t).unwrap();
    println!(
        "queries now see: parcel-777 -> {:?}",
        forged.map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    // …but the year-two audit fails: the tuple is in the final state without
    // a NEW_TUPLE record on WORM or a place in the year-one snapshot.
    let report = db.audit().unwrap();
    assert!(!report.is_clean());
    let completeness =
        report.violations.iter().any(|v| matches!(v, Violation::CompletenessMismatch));
    println!("\nyear-2 audit: TAMPERING DETECTED (completeness mismatch: {})", completeness);
    println!("under current regulatory interpretation, detectable tampering");
    println!("leads to presumption of guilt — the forged deed cannot stand.");

    std::fs::remove_dir_all(&dir).ok();
}
