//! The paper's motivating scenario: a CEO ("Mala") tries to retroactively
//! hide asset shuffling recorded in the company's financial database, using
//! root access and a file editor. The SOX/Rule 17a-4 auditor catches every
//! variant — including the state-reversion attack, which only the
//! hash-page-on-read refinement can see.
//!
//! ```text
//! cargo run --release --example financial_audit
//! ```

use std::sync::Arc;

use ccdb::adversary::Mala;
use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode, Violation};

fn open(dir: &std::path::Path, mode: Mode) -> CompliantDb {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    CompliantDb::open(dir, clock, ComplianceConfig { mode, ..ComplianceConfig::default() })
        .expect("open compliant db")
}

fn seed_ledger(db: &CompliantDb) -> ccdb::common::RelId {
    let ledger = db.create_relation("general_ledger", SplitPolicy::KeyOnly).unwrap();
    for q in 1..=8 {
        let t = db.begin().unwrap();
        db.write(
            t,
            ledger,
            format!("2007-Q{q}-offshore-transfer").as_bytes(),
            format!("amount=${}M;approved=CEO", q * 3).as_bytes(),
        )
        .unwrap();
        db.commit(t).unwrap();
    }
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
    ledger
}

fn main() {
    println!("== Scenario 1: alter an incriminating ledger entry ==");
    let dir = std::env::temp_dir().join(format!("ccdb-fin1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = open(&dir, Mode::LogConsistent);
        seed_ledger(&db);
        let mala = Mala::new(db.engine().db_path());
        mala.alter_tuple_value(b"2007-Q3-offshore-transfer", b"amount=$0;approved=NOBODY").unwrap();
        println!("Mala rewrote Q3 with a file editor (checksum fixed, sort order kept)");
        let report = db.audit().unwrap();
        assert!(!report.is_clean());
        println!("audit result: TAMPERING DETECTED");
        for v in report.violations.iter().take(3) {
            println!("  - {v:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    println!("\n== Scenario 2: state reversion (tamper, serve queries, restore) ==");
    for (mode, label) in [
        (Mode::LogConsistent, "log-consistent architecture"),
        (Mode::HashOnRead, "hash-page-on-read refinement"),
    ] {
        let dir = std::env::temp_dir().join(format!("ccdb-fin2-{}-{:?}", std::process::id(), mode));
        let _ = std::fs::remove_dir_all(&dir);
        let db = open(&dir, mode);
        let ledger = seed_ledger(&db);
        let mala = Mala::new(db.engine().db_path());
        // Tamper, let a regulator's query read the fake value…
        let (pgno, pristine) =
            mala.snapshot_page_with(b"2007-Q5-offshore-transfer").unwrap().unwrap();
        mala.alter_tuple_value(b"2007-Q5-offshore-transfer", b"amount=$0;approved=NOBODY").unwrap();
        let t = db.begin().unwrap();
        let seen = db.read(t, ledger, b"2007-Q5-offshore-transfer").unwrap().unwrap();
        db.commit(t).unwrap();
        println!("[{label}] the regulator's query saw: {}", String::from_utf8_lossy(&seen));
        // …then restore the original bytes before the audit.
        db.engine().clear_cache().unwrap();
        mala.restore_page(pgno, &pristine).unwrap();
        let report = db.audit().unwrap();
        let caught =
            report.violations.iter().any(|v| matches!(v, Violation::ReadHashMismatch { .. }));
        println!(
            "[{label}] audit: {}",
            if report.is_clean() {
                "clean — the reversion left no trace this architecture can see"
            } else if caught {
                "ReadHashMismatch — the logged page-read hash betrays the tampered read"
            } else {
                "violations found"
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    println!("\nConclusion: the base architecture guarantees the *current* state;");
    println!("hash-page-on-read additionally guarantees every query read honest data.");
}
