//! Quickstart: open a compliant database, write data, crash, recover, and
//! pass an audit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, VirtualClock};
use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode};

fn main() -> ccdb::common::Result<()> {
    let dir = std::env::temp_dir().join(format!("ccdb-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A deterministic clock; deployments would use `SystemClock`.
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));

    // Open with the hash-page-on-read refinement (strongest assurances).
    let db = CompliantDb::open(
        &dir,
        clock.clone(),
        ComplianceConfig { mode: Mode::HashOnRead, ..ComplianceConfig::default() },
    )?;
    println!("opened compliant database (mode: {:?}) at {}", db.mode(), dir.display());

    // Ordinary transactional work. Every write creates an immutable version;
    // the compliance plugin streams NEW_TUPLE records to WORM.
    let accounts = db.create_relation("accounts", SplitPolicy::KeyOnly)?;
    let t1 = db.begin()?;
    db.write(t1, accounts, b"alice", b"balance=100")?;
    db.write(t1, accounts, b"bob", b"balance=250")?;
    let first_commit = db.commit(t1)?;

    // Updates never overwrite: the old version stays queryable.
    let t2 = db.begin()?;
    db.write(t2, accounts, b"alice", b"balance=75")?;
    db.commit(t2)?;
    let t = db.begin()?;
    println!(
        "alice now:          {:?}",
        String::from_utf8_lossy(&db.read(t, accounts, b"alice")?.unwrap())
    );
    db.commit(t)?;
    println!(
        "alice as of commit1: {:?}",
        String::from_utf8_lossy(&db.read_as_of(accounts, b"alice", first_commit)?.unwrap())
    );

    // Crash in the middle of a transaction; recovery is compliance-logged.
    let t3 = db.begin()?;
    db.write(t3, accounts, b"mallory", b"balance=1000000")?;
    println!("crashing with mallory's transaction in flight…");
    let db = db.crash_and_recover()?;
    let t = db.begin()?;
    assert_eq!(db.read(t, accounts, b"mallory")?, None, "the loser was rolled back");
    db.commit(t)?;
    println!("recovered: in-flight transaction rolled back, committed data intact");

    // The audit: one pass over the compliance log, the previous snapshot,
    // and the database verifies that nothing was tampered with.
    let report = db.audit()?;
    println!(
        "audit of epoch {}: {} — {} records scanned, {} tuples verified",
        report.epoch,
        if report.is_clean() { "CLEAN" } else { "VIOLATIONS FOUND" },
        report.stats.records_scanned,
        report.stats.tuples_final
    );
    assert!(report.is_clean());

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
