//! Inspect the raw evidence trail: dump the compliance log `L`, the stamp
//! index, and the WORM inventory for a small workload — the view a human
//! auditor (or prosecutor) gets of the term-immutable record.
//!
//! ```text
//! cargo run --release --example log_inspector
//! ```

use std::sync::Arc;

use ccdb::btree::SplitPolicy;
use ccdb::common::{Duration, VirtualClock};
use ccdb::compliance::records::LogIter;
use ccdb::compliance::{logger, ComplianceConfig, CompliantDb, LogRecord, Mode};

fn main() -> ccdb::common::Result<()> {
    let dir = std::env::temp_dir().join(format!("ccdb-inspect-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(
        &dir,
        clock.clone(),
        ComplianceConfig { mode: Mode::HashOnRead, ..ComplianceConfig::default() },
    )?;

    // A small mixed workload: inserts, an update, a delete, an abort, and a
    // physical read.
    let rel = db.create_relation("trades", SplitPolicy::KeyOnly)?;
    let t = db.begin()?;
    db.write(t, rel, b"trade-001", b"AAPL buy 100 @ 191.20")?;
    db.write(t, rel, b"trade-002", b"MSFT sell 50 @ 402.10")?;
    db.commit(t)?;
    let t = db.begin()?;
    db.write(t, rel, b"trade-001", b"AAPL buy 100 @ 191.20 (amended fee)")?;
    db.commit(t)?;
    let t = db.begin()?;
    db.write(t, rel, b"trade-003", b"fat finger")?;
    db.abort(t)?;
    let t = db.begin()?;
    db.delete(t, rel, b"trade-002")?;
    db.commit(t)?;
    db.engine().run_stamper()?;
    db.engine().clear_cache()?;
    let t = db.begin()?;
    let _ = db.read(t, rel, b"trade-001")?;
    db.commit(t)?;
    db.engine().quiesce()?;
    db.plugin().unwrap().logger().flush()?;

    // --- dump L -----------------------------------------------------------
    let epoch = db.epoch();
    let bytes = db.worm().read_all(&logger::epoch_log_name(epoch))?;
    println!("== compliance log L (epoch {epoch}, {} bytes) ==", bytes.len());
    for item in LogIter::new(&bytes) {
        let (off, rec) = item?;
        let line = match rec {
            LogRecord::NewTuple { pgno, rel, cell } => {
                let t = ccdb::storage::TupleVersion::decode_cell(&cell)?;
                format!(
                    "NEW_TUPLE   {pgno:?} {rel} key={:<12} seq={} time={:?} eol={} value={:?}",
                    String::from_utf8_lossy(&t.key),
                    t.seq,
                    t.time,
                    t.end_of_life,
                    String::from_utf8_lossy(&t.value)
                )
            }
            LogRecord::StampTrans { txn, commit_time } => {
                format!("STAMP_TRANS {txn} committed at {commit_time:?}")
            }
            LogRecord::Abort { txn } => format!("ABORT       {txn}"),
            LogRecord::Undo { pgno, cell, .. } => {
                let t = ccdb::storage::TupleVersion::decode_cell(&cell)?;
                format!(
                    "UNDO        {pgno:?} key={} seq={} (rolled back / shredded)",
                    String::from_utf8_lossy(&t.key),
                    t.seq
                )
            }
            LogRecord::Read { pgno, hs } => {
                format!("READ        {pgno:?} Hs={}…", ccdb::crypto::to_hex(&hs[..8]))
            }
            LogRecord::DummyStamp { time } => format!("HEARTBEAT   at {time:?}"),
            LogRecord::PageSplit { old, left, right, .. } => format!(
                "PAGE_SPLIT  {old:?} -> {:?} ({} cells) + {:?} ({} cells)",
                left.pgno,
                left.cells.len(),
                right.pgno,
                right.cells.len()
            ),
            LogRecord::IndexInsert { pgno, .. } => format!("IDX_INSERT  {pgno:?}"),
            LogRecord::IndexRemove { pgno, .. } => format!("IDX_REMOVE  {pgno:?}"),
            LogRecord::NewRoot { pgno, .. } => format!("NEW_ROOT    {pgno:?}"),
            LogRecord::IndexImage { pgno, cells } => {
                format!("IDX_IMAGE   {pgno:?} ({} cells, post-recovery)", cells.len())
            }
            LogRecord::Migrate { pgno, worm_file, .. } => {
                format!("MIGRATE     {pgno:?} -> worm:{worm_file}")
            }
            LogRecord::Shredded { key, shred_time, .. } => {
                format!("SHREDDED    key={} at {shred_time:?}", String::from_utf8_lossy(&key))
            }
            LogRecord::StartRecovery { time } => format!("START_RECOVERY at {time:?}"),
            LogRecord::TwoPcPrepare { gtxn, txn, shard, participants } => {
                format!("2PC_PREPARE gtxn={gtxn} {txn} shard={shard} participants={participants:?}")
            }
            LogRecord::TwoPcDecision { gtxn, commit } => {
                format!("2PC_DECIDE  gtxn={gtxn} {}", if commit { "COMMIT" } else { "ABORT" })
            }
        };
        println!("{off:>8}  {line}");
    }

    // --- stamp index --------------------------------------------------------
    let idx = db.worm().read_all(&logger::epoch_stamp_name(epoch))?;
    let entries = logger::StampIndexEntry::decode_all(&idx)?;
    println!("\n== auxiliary stamp index ({} entries) ==", entries.len());
    for e in entries {
        println!("  {e:?}");
    }

    // --- WORM inventory -------------------------------------------------------
    println!("\n== WORM inventory ==");
    for (name, meta) in db.worm().list("") {
        println!(
            "  {:<24} {:>8} bytes  created {:?}  sealed={}",
            name, meta.len, meta.create_time, meta.sealed
        );
    }

    let report = db.audit()?;
    println!("\naudit: {}", if report.is_clean() { "CLEAN" } else { "VIOLATIONS" });
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
