//! The physical tree-integrity checker of Section IV-C.
//!
//! "The auditor must also check that the slot pointers on the page are set up
//! correctly, the tuples are in sorted order across the pages, the different
//! versions of a tuple are all threaded together in commit-time order, and
//! all other stored metadata is correct. … The auditor checks for these
//! corruptions by scanning the leaf nodes to verify that their keys are
//! stored in increasing order … and then verifying that the keys and pointers
//! in internal nodes are consistent with the leaf nodes."
//!
//! These checks detect the Figure 2 attacks: swapped leaf entries (2b) break
//! the sort-order check; a tampered internal key (2c) breaks the
//! separator-vs-child-minimum check.

use ccdb_common::{PageNo, Result};
use ccdb_storage::{BufferPool, PageType, TupleVersion};

use crate::entry::{version_order, IndexEntry, TimeRank};
use crate::tree::BTree;

/// A specific physical inconsistency found in the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// A page failed structural validation or checksum.
    BadPage { pgno: PageNo, reason: String },
    /// Leaf entries are not in `(key, time)` order (Figure 2(b) attack).
    LeafOutOfOrder { pgno: PageNo, slot: usize },
    /// A child's minimum entry sorts below its parent separator
    /// (Figure 2(c) attack).
    SeparatorMismatch { parent: PageNo, child: PageNo },
    /// Separators within an internal node are not strictly increasing.
    InnerOutOfOrder { pgno: PageNo, slot: usize },
    /// A page of an unexpected type was reached during descent.
    WrongPageType { pgno: PageNo },
    /// Entries across sibling leaves overlap (right leaf starts at or below
    /// the left leaf's maximum).
    CrossPageOrder { left: PageNo, right: PageNo },
}

/// Walks the whole tree and returns every inconsistency found (empty when
/// the structure is intact).
pub fn check_tree(pool: &BufferPool, tree: &BTree) -> Result<Vec<IntegrityError>> {
    let mut errors = Vec::new();
    let mut last_leaf: Option<(PageNo, Vec<u8>, TimeRank)> = None;
    check_node(pool, tree.root(), None, &mut errors, &mut last_leaf)?;
    Ok(errors)
}

fn check_node(
    pool: &BufferPool,
    pgno: PageNo,
    parent_bound: Option<(&[u8], TimeRank, PageNo)>,
    errors: &mut Vec<IntegrityError>,
    last_leaf: &mut Option<(PageNo, Vec<u8>, TimeRank)>,
) -> Result<()> {
    let frame = match pool.fetch(pgno) {
        Ok(f) => f,
        Err(e) => {
            errors.push(IntegrityError::BadPage { pgno, reason: e.to_string() });
            return Ok(());
        }
    };
    let page = frame.read();
    if let Err(e) = page.validate_slots() {
        errors.push(IntegrityError::BadPage { pgno, reason: e.to_string() });
        return Ok(());
    }
    match page.page_type() {
        PageType::Leaf => {
            let mut prev: Option<(Vec<u8>, TimeRank)> = None;
            for (slot, cell) in page.cells().enumerate() {
                let t = match TupleVersion::decode_cell(cell) {
                    Ok(t) => t,
                    Err(e) => {
                        errors.push(IntegrityError::BadPage { pgno, reason: e.to_string() });
                        continue;
                    }
                };
                let o = version_order(&t);
                if let Some((pk, pr)) = &prev {
                    if (pk.as_slice(), *pr) > o {
                        errors.push(IntegrityError::LeafOutOfOrder { pgno, slot });
                    }
                }
                if slot == 0 {
                    if let Some((bk, br, parent)) = parent_bound {
                        if o < (bk, br) {
                            errors.push(IntegrityError::SeparatorMismatch { parent, child: pgno });
                        }
                    }
                    if let Some((lpg, lk, lr)) = &*last_leaf {
                        if (lk.as_slice(), *lr) > o {
                            errors.push(IntegrityError::CrossPageOrder { left: *lpg, right: pgno });
                        }
                    }
                }
                prev = Some((t.key.clone(), TimeRank::from(t.time)));
            }
            if let Some((k, r)) = prev {
                *last_leaf = Some((pgno, k, r));
            }
            Ok(())
        }
        PageType::Inner => {
            let entries: Vec<IndexEntry> = match page.cells().map(IndexEntry::decode).collect() {
                Ok(v) => v,
                Err(e) => {
                    errors.push(IntegrityError::BadPage { pgno, reason: e.to_string() });
                    return Ok(());
                }
            };
            for (slot, w) in entries.windows(2).enumerate() {
                if w[0].order() >= w[1].order() {
                    errors.push(IntegrityError::InnerOutOfOrder { pgno, slot: slot + 1 });
                }
            }
            drop(page);
            for (i, e) in entries.iter().enumerate() {
                // Child 0 inherits the parent's own bound semantics; children
                // i>0 are bounded by their separator.
                let bound: Option<(&[u8], TimeRank, PageNo)> =
                    if i == 0 { None } else { Some((&e.key, e.rank, pgno)) };
                check_node(pool, e.child, bound, errors, last_leaf)?;
            }
            Ok(())
        }
        _ => {
            errors.push(IntegrityError::WrongPageType { pgno });
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    // The checker's positive and negative paths are exercised together with
    // the tree in `tree_tests.rs` (clean trees pass; tampered trees produce
    // the specific errors).
}
