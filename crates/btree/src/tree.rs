//! The versioned B+-tree / time-split B+-tree.

use std::sync::Arc;

use ccdb_common::sync::{Mutex, RwLock};
use ccdb_common::{ClockRef, Error, PageNo, RelId, Result, Timestamp, TxnId};
use ccdb_storage::{BufferPool, Page, PageType, TupleVersion, WriteTime};
use ccdb_wal::{PageOp, PageOpSink, RelMetaOp};

use crate::entry::{version_order, IndexEntry, TimeRank};
use crate::hooks::{SplitKind, StructureHooks};

/// How leaves split when full.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitPolicy {
    /// Always split on the `(key, time)` order — an ordinary B+-tree.
    KeyOnly,
    /// TSB policy: a leaf whose distinct-key fraction is below `threshold`
    /// (and which holds at least one dead version) splits on time, moving
    /// historical versions to a WORM-destined page; otherwise on key.
    TimeSplit {
        /// The split-threshold parameter of Section VI.
        threshold: f64,
    },
}

/// Split counters for the Figure 4 experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf key splits performed.
    pub key_splits: u64,
    /// Leaf time splits performed.
    pub time_splits: u64,
    /// Internal-node splits performed.
    pub inner_splits: u64,
}

/// A versioned B+-tree over one relation.
///
/// # Concurrency
///
/// Each tree carries its own **operation lock** (`op`): mutations
/// (`insert`/`stamp`/`remove_version`) take it exclusively — a split
/// restructures multiple pages and must not interleave with a descent —
/// while scans take it shared, so readers of one relation run concurrently
/// with each other and operations on *different* relations (different
/// `BTree` instances) never serialize at all. Public entry points take the
/// lock exactly once and delegate to non-locking internals (std `RwLock` is
/// not reentrant). In the lock hierarchy the op lock ranks below the
/// engine's maps and above the buffer pool's shard locks.
pub struct BTree {
    pool: Arc<BufferPool>,
    clock: ClockRef,
    rel: RelId,
    policy: SplitPolicy,
    /// Tree-structure operation lock (see the type-level docs).
    op: RwLock<()>,
    root: Mutex<PageNo>,
    hooks: RwLock<Option<Arc<dyn StructureHooks>>>,
    sink: RwLock<Option<Arc<dyn PageOpSink>>>,
    historical: Mutex<Vec<PageNo>>,
    stats: Mutex<TreeStats>,
}

fn decode_tuples(page: &Page) -> Result<Vec<TupleVersion>> {
    page.cells().map(TupleVersion::decode_cell).collect()
}

fn decode_entries(page: &Page) -> Result<Vec<IndexEntry>> {
    page.cells().map(IndexEntry::decode).collect()
}

/// Whether `cells` (plus per-cell overhead) fit on one empty page.
fn cells_fit(cells: &[Vec<u8>]) -> bool {
    let need: usize = cells.iter().map(|c| c.len() + 2 + 2).sum();
    need <= ccdb_storage::PAGE_SIZE - ccdb_storage::page_header_size()
}

impl BTree {
    /// Creates a new empty tree (allocates its root leaf).
    pub fn create(
        pool: Arc<BufferPool>,
        clock: ClockRef,
        rel: RelId,
        policy: SplitPolicy,
    ) -> Result<BTree> {
        let (root, _frame) = pool.new_page(PageType::Leaf, rel)?;
        Ok(BTree {
            pool,
            clock,
            rel,
            policy,
            op: RwLock::new(()),
            root: Mutex::new(root),
            hooks: RwLock::new(None),
            sink: RwLock::new(None),
            historical: Mutex::new(Vec::new()),
            stats: Mutex::new(TreeStats::default()),
        })
    }

    /// Reopens a tree whose root and historical-page list were persisted by
    /// the catalog.
    pub fn open(
        pool: Arc<BufferPool>,
        clock: ClockRef,
        rel: RelId,
        policy: SplitPolicy,
        root: PageNo,
        historical: Vec<PageNo>,
    ) -> BTree {
        BTree {
            pool,
            clock,
            rel,
            policy,
            op: RwLock::new(()),
            root: Mutex::new(root),
            hooks: RwLock::new(None),
            sink: RwLock::new(None),
            historical: Mutex::new(historical),
            stats: Mutex::new(TreeStats::default()),
        }
    }

    /// Installs structure-modification hooks (the compliance plugin).
    pub fn set_hooks(&self, hooks: Arc<dyn StructureHooks>) {
        *self.hooks.write() = Some(hooks);
    }

    /// Installs the redo-log sink (the engine's WAL).
    pub fn set_sink(&self, sink: Arc<dyn PageOpSink>) {
        *self.sink.write() = Some(sink);
    }

    /// Logs one physiological op, applying the full-page-write rule: the
    /// *first* op against a clean page is logged as the complete post-op
    /// image instead. Cell-level redo presumes a readable base image, but a
    /// torn flush can leave a frankenpage no cell op applies to; promoting
    /// the first op after each flush to a `SetImage` guarantees every page
    /// modified since the last completed checkpoint has a full image in the
    /// redo window, from which recovery can rebuild the page regardless of
    /// what the tear left behind. The page is marked dirty here so the rest
    /// of a multi-op batch logs compact cell ops.
    ///
    /// Call sites mutate the page *before* logging, so `page.as_bytes()` is
    /// the post-op image and `page.dirty` still reflects pre-op cleanliness.
    fn log_op(&self, txn: TxnId, page: &mut Page, op: PageOp) -> Result<()> {
        if let Some(s) = self.sink.read().clone() {
            let op = if !page.dirty && !matches!(op, PageOp::SetImage { .. }) {
                PageOp::SetImage { pgno: page.pgno(), image: page.as_bytes().to_vec() }
            } else {
                op
            };
            let lsn = s.log_page_op(txn, &op)?;
            page.set_lsn(lsn);
            self.pool.mark_dirty(page);
        }
        Ok(())
    }

    fn log_image(&self, page: &mut Page) -> Result<()> {
        let op = PageOp::SetImage { pgno: page.pgno(), image: page.as_bytes().to_vec() };
        self.log_op(TxnId::NONE, page, op)
    }

    fn log_meta(&self, meta: RelMetaOp) -> Result<()> {
        if let Some(s) = self.sink.read().clone() {
            s.log_rel_meta(self.rel, &meta)?;
        }
        Ok(())
    }

    /// The relation this tree stores.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The current root page.
    pub fn root(&self) -> PageNo {
        *self.root.lock()
    }

    /// Pages produced by time splits, in creation order (WORM-migration
    /// candidates; the engine persists and migrates them).
    pub fn historical_pages(&self) -> Vec<PageNo> {
        self.historical.lock().clone()
    }

    /// Removes pages from the historical list (after WORM migration).
    pub fn forget_historical(&self, pgnos: &[PageNo]) {
        self.historical.lock().retain(|p| !pgnos.contains(p));
    }

    /// Adds a page to the historical list (re-migration from WORM).
    pub fn adopt_historical(&self, pgno: PageNo) {
        let mut h = self.historical.lock();
        if !h.contains(&pgno) {
            h.push(pgno);
        }
    }

    /// Split counters.
    pub fn stats(&self) -> TreeStats {
        *self.stats.lock()
    }

    fn with_hooks(&self, f: impl FnOnce(&dyn StructureHooks)) {
        if let Some(h) = self.hooks.read().clone() {
            f(h.as_ref());
        }
    }

    // --- search ---------------------------------------------------------

    /// Descends to the leaf that owns `(key, rank)`, returning the inner-node
    /// path as `(pgno, entry index taken)` plus the leaf page number.
    fn find_leaf(&self, key: &[u8], rank: TimeRank) -> Result<(Vec<(PageNo, usize)>, PageNo)> {
        let mut path = Vec::new();
        let mut cur = self.root();
        for _depth in 0..64 {
            let frame = self.pool.fetch(cur)?;
            let page = frame.read();
            match page.page_type() {
                PageType::Leaf => return Ok((path, cur)),
                PageType::Inner => {
                    let entries = decode_entries(&page)?;
                    if entries.is_empty() {
                        return Err(Error::corruption(format!("inner page {cur} has no entries")));
                    }
                    let mut idx = 0;
                    for (i, e) in entries.iter().enumerate() {
                        if e.order() <= (key, rank) {
                            idx = i;
                        } else {
                            break;
                        }
                    }
                    path.push((cur, idx));
                    cur = entries[idx].child;
                }
                t => {
                    return Err(Error::corruption(format!(
                        "page {cur} of type {t:?} reached during descent"
                    )))
                }
            }
        }
        Err(Error::corruption("tree deeper than 64 levels (cycle?)"))
    }

    /// Collects `(path, leaf)` for every leaf whose range intersects
    /// `[lo, hi]` (used by exact-match mutations, which must tolerate
    /// separator bounds that went stale when lazy stamping lowered ranks).
    #[allow(clippy::type_complexity)]
    fn leaf_paths_for_range(
        &self,
        lo: (&[u8], TimeRank),
        hi: (&[u8], TimeRank),
    ) -> Result<Vec<(Vec<(PageNo, usize)>, PageNo)>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.collect_leaf_paths(self.root(), lo, hi, &mut path, &mut out)?;
        Ok(out)
    }

    fn collect_leaf_paths(
        &self,
        pgno: PageNo,
        lo: (&[u8], TimeRank),
        hi: (&[u8], TimeRank),
        path: &mut Vec<(PageNo, usize)>,
        out: &mut Vec<(Vec<(PageNo, usize)>, PageNo)>,
    ) -> Result<()> {
        let frame = self.pool.fetch(pgno)?;
        let page = frame.read();
        match page.page_type() {
            PageType::Leaf => {
                out.push((path.clone(), pgno));
                Ok(())
            }
            PageType::Inner => {
                let entries = decode_entries(&page)?;
                drop(page);
                for (i, e) in entries.iter().enumerate() {
                    let upper_excludes =
                        entries.get(i + 1).map(|n| n.order() < lo).unwrap_or(false);
                    let lower_excludes = i > 0 && e.order() > hi;
                    if !upper_excludes && !lower_excludes {
                        path.push((pgno, i));
                        self.collect_leaf_paths(e.child, lo, hi, path, out)?;
                        path.pop();
                    }
                }
                Ok(())
            }
            t => Err(Error::corruption(format!("unexpected page type {t:?} in locate"))),
        }
    }

    /// Calls `f` on every live tuple version with order in `[lo, hi]`
    /// (inclusive), in order. Takes the tree's shared operation lock: scans
    /// run concurrently with each other but not with splits.
    pub fn scan_range(
        &self,
        lo: (&[u8], TimeRank),
        hi: (&[u8], TimeRank),
        f: &mut dyn FnMut(&TupleVersion) -> Result<()>,
    ) -> Result<()> {
        let _shared = self.op.read();
        self.scan_node(self.root(), lo, hi, f)
    }

    fn scan_node(
        &self,
        pgno: PageNo,
        lo: (&[u8], TimeRank),
        hi: (&[u8], TimeRank),
        f: &mut dyn FnMut(&TupleVersion) -> Result<()>,
    ) -> Result<()> {
        let frame = self.pool.fetch(pgno)?;
        let page = frame.read();
        match page.page_type() {
            PageType::Leaf => {
                for cell in page.cells() {
                    let t = TupleVersion::decode_cell(cell)?;
                    let o = version_order(&t);
                    if o >= lo && o <= hi {
                        f(&t)?;
                    }
                }
                Ok(())
            }
            PageType::Inner => {
                let entries = decode_entries(&page)?;
                drop(page);
                for (i, e) in entries.iter().enumerate() {
                    // Child i covers [bound_i, bound_{i+1}). Strict `<` on
                    // the upper bound deliberately over-visits one child
                    // when bound == lo — insurance against boundaries that
                    // coincide with the probe.
                    let upper_excludes =
                        entries.get(i + 1).map(|n| n.order() < lo).unwrap_or(false);
                    let lower_excludes = i > 0 && e.order() > hi;
                    if !upper_excludes && !lower_excludes {
                        self.scan_node(e.child, lo, hi, f)?;
                    }
                }
                Ok(())
            }
            t => Err(Error::corruption(format!("unexpected page type {t:?} in scan"))),
        }
    }

    /// All live versions of `key`, in time order (live tree only; historical
    /// pages are the engine's to search).
    pub fn versions(&self, key: &[u8]) -> Result<Vec<TupleVersion>> {
        let _shared = self.op.read();
        let mut out = Vec::new();
        self.scan_node(self.root(), (key, TimeRank::MIN), (key, TimeRank::MAX), &mut |t| {
            out.push(t.clone());
            Ok(())
        })?;
        Ok(out)
    }

    /// Every live tuple version in the tree, in `(key, time)` order.
    pub fn scan_all(&self, f: &mut dyn FnMut(&TupleVersion) -> Result<()>) -> Result<()> {
        let _shared = self.op.read();
        let mut leaves = Vec::new();
        self.collect_leaves(self.root(), &mut leaves)?;
        for leaf in leaves {
            let frame = self.pool.fetch(leaf)?;
            let page = frame.read();
            for cell in page.cells() {
                let t = TupleVersion::decode_cell(cell)?;
                f(&t)?;
            }
        }
        Ok(())
    }

    /// The leaf pages of the live tree, in key order.
    pub fn leaf_pgnos(&self) -> Result<Vec<PageNo>> {
        let _shared = self.op.read();
        let mut out = Vec::new();
        self.collect_leaves(self.root(), &mut out)?;
        Ok(out)
    }

    fn collect_leaves(&self, pgno: PageNo, out: &mut Vec<PageNo>) -> Result<()> {
        let frame = self.pool.fetch(pgno)?;
        let page = frame.read();
        match page.page_type() {
            PageType::Leaf => {
                out.push(pgno);
                Ok(())
            }
            PageType::Inner => {
                let entries = decode_entries(&page)?;
                drop(page);
                for e in entries {
                    self.collect_leaves(e.child, out)?;
                }
                Ok(())
            }
            t => Err(Error::corruption(format!("unexpected page type {t:?} in tree"))),
        }
    }

    /// Number of inner pages in the live tree.
    pub fn inner_page_count(&self) -> Result<usize> {
        let _shared = self.op.read();
        fn walk(tree: &BTree, pgno: PageNo, acc: &mut usize) -> Result<()> {
            let frame = tree.pool.fetch(pgno)?;
            let page = frame.read();
            if page.page_type() == PageType::Inner {
                *acc += 1;
                let entries = decode_entries(&page)?;
                drop(page);
                for e in entries {
                    walk(tree, e.child, acc)?;
                }
            }
            Ok(())
        }
        let mut n = 0;
        walk(self, self.root(), &mut n)?;
        Ok(n)
    }

    // --- mutation ---------------------------------------------------------

    /// Inserts a new tuple version. Every call creates a distinct physical
    /// version (transaction-time semantics: nothing is overwritten).
    pub fn insert(
        &self,
        key: &[u8],
        time: WriteTime,
        end_of_life: bool,
        value: Vec<u8>,
    ) -> Result<()> {
        let _excl = self.op.write();
        let rank = TimeRank::from(time);
        let mut tuple =
            TupleVersion { rel: self.rel, key: key.to_vec(), time, seq: 0, end_of_life, value };
        let probe_len = tuple.encode_cell().len();
        for _attempt in 0..16 {
            let (path, leaf) = self.find_leaf(key, rank)?;
            let frame = self.pool.fetch(leaf)?;
            let mut page = frame.write();
            if page.can_fit(probe_len) {
                // Position: after every entry ≤ (key, rank).
                let mut pos = page.cell_count();
                for i in 0..page.cell_count() {
                    let t = TupleVersion::decode_cell(page.cell(i))?;
                    if version_order(&t) > (key, rank) {
                        pos = i;
                        break;
                    }
                }
                tuple.seq = page.alloc_seq();
                let cell = tuple.encode_cell();
                page.insert_cell(pos, &cell)?;
                let txn_attr = tuple.time.pending().unwrap_or(TxnId::NONE);
                self.log_op(
                    txn_attr,
                    &mut page,
                    PageOp::InsertCell { pgno: leaf, idx: pos as u32, cell },
                )?;
                self.pool.mark_dirty(&mut page);
                return Ok(());
            }
            drop(page);
            drop(frame);
            self.split_leaf(&path, leaf)?;
        }
        Err(Error::Invalid("B+-tree insert made no progress after 16 splits".into()))
    }

    /// Stamps every pending version written by `txn` under `key` with its
    /// commit time (lazy timestamping). Returns how many were stamped.
    ///
    /// Stamping can *lower* a version's rank (pending ranks order above all
    /// committed ranks); if the stamped version is a leaf's minimum entry,
    /// any parent separator derived from it (a within-group split bound)
    /// must be lowered too, recursively. The engine stamps in commit order,
    /// so everything left of the stamped version is already committed and
    /// the lowered bound stays above the left sibling's maximum.
    pub fn stamp(&self, key: &[u8], txn: TxnId, commit: Timestamp) -> Result<usize> {
        let _excl = self.op.write();
        let rank = TimeRank::pending(txn);
        let mut stamped = 0;
        for (path, leaf) in self.leaf_paths_for_range((key, rank), (key, rank))? {
            let frame = self.pool.fetch(leaf)?;
            let mut page = frame.write();
            let mut here = 0;
            let mut min_changed = false;
            for i in 0..page.cell_count() {
                let t = TupleVersion::decode_cell(page.cell(i))?;
                if t.key == key && t.time == WriteTime::Pending(txn) {
                    let new = t.stamped(commit);
                    let cell = new.encode_cell();
                    page.replace_cell(i, &cell)?;
                    self.log_op(
                        TxnId::NONE,
                        &mut page,
                        PageOp::ReplaceCell { pgno: leaf, idx: i as u32, cell },
                    )?;
                    here += 1;
                    if i == 0 {
                        min_changed = true;
                    }
                }
            }
            if here > 0 {
                self.pool.mark_dirty(&mut page);
            }
            drop(page);
            drop(frame);
            if min_changed {
                self.refresh_parent_bounds(&path, leaf)?;
            }
            stamped += here;
        }
        Ok(stamped)
    }

    /// Lowers parent separators along `path` to match `child`'s (possibly
    /// just-reduced) minimum entry.
    fn refresh_parent_bounds(&self, path: &[(PageNo, usize)], child: PageNo) -> Result<()> {
        let mut child = child;
        let mut first: Option<(Vec<u8>, TimeRank)> = {
            let frame = self.pool.fetch(child)?;
            let page = frame.read();
            if page.cell_count() == 0 {
                return Ok(());
            }
            let t = TupleVersion::decode_cell(page.cell(0))?;
            Some((t.key.clone(), TimeRank::from(t.time)))
        };
        for (parent_pgno, idx) in path.iter().rev() {
            let Some((fk, fr)) = first.take() else { break };
            let frame = self.pool.fetch(*parent_pgno)?;
            let mut page = frame.write();
            let mut entries = decode_entries(&page)?;
            let Some(e) = entries.get_mut(*idx) else { break };
            if e.child != child || e.order() <= (fk.as_slice(), fr) {
                break; // bound already consistent (or stale path: give up)
            }
            e.key = fk;
            e.rank = fr;
            let cells: Vec<Vec<u8>> = entries.iter().map(IndexEntry::encode).collect();
            page.clear_cells();
            for c in &cells {
                page.append_cell(c)?;
            }
            self.log_image(&mut page)?;
            self.pool.mark_dirty(&mut page);
            if *idx != 0 {
                break; // only a first-entry change propagates upward
            }
            child = *parent_pgno;
            first = Some((entries[0].key.clone(), entries[0].rank));
        }
        Ok(())
    }

    /// Physically removes one version with exactly `(key, rank)` (rollback of
    /// an aborted write, or vacuuming of an expired version). Returns the
    /// removed version.
    pub fn remove_version(&self, key: &[u8], rank: TimeRank) -> Result<Option<TupleVersion>> {
        let _excl = self.op.write();
        for (_path, leaf) in self.leaf_paths_for_range((key, rank), (key, rank))? {
            let frame = self.pool.fetch(leaf)?;
            let mut page = frame.write();
            for i in 0..page.cell_count() {
                let t = TupleVersion::decode_cell(page.cell(i))?;
                if t.key == key && TimeRank::from(t.time) == rank {
                    page.remove_cell(i);
                    self.log_op(
                        TxnId::NONE,
                        &mut page,
                        PageOp::RemoveCell { pgno: leaf, idx: i as u32 },
                    )?;
                    self.pool.mark_dirty(&mut page);
                    return Ok(Some(t));
                }
            }
        }
        Ok(None)
    }

    // --- splitting --------------------------------------------------------

    fn decide_split(&self, tuples: &[TupleVersion]) -> SplitKind {
        match self.policy {
            SplitPolicy::KeyOnly => SplitKind::Key,
            SplitPolicy::TimeSplit { threshold } => {
                let mut distinct = 0usize;
                let mut dead = 0usize;
                for (i, t) in tuples.iter().enumerate() {
                    if i == 0 || tuples[i - 1].key != t.key {
                        distinct += 1;
                    }
                    // A version is dead if a *stamped* successor of the same
                    // key exists (its validity ended at the successor's start).
                    if let Some(next) = tuples.get(i + 1) {
                        if next.key == t.key && next.time.committed().is_some() {
                            dead += 1;
                        }
                    }
                }
                if dead > 0 && (distinct as f64) < threshold * (tuples.len() as f64) {
                    SplitKind::Time
                } else {
                    SplitKind::Key
                }
            }
        }
    }

    fn fill_leaf(&self, page: &mut Page, tuples: &[TupleVersion], inherit_seq: u16) -> Result<()> {
        for t in tuples {
            page.append_cell(&t.encode_cell())?;
        }
        page.bump_seq_to(inherit_seq);
        Ok(())
    }

    fn split_leaf(&self, path: &[(PageNo, usize)], leaf: PageNo) -> Result<()> {
        let frame = self.pool.fetch(leaf)?;
        let mut old = frame.write();
        let tuples = decode_tuples(&old)?;
        if tuples.len() < 2 {
            return Err(Error::TupleTooLarge {
                size: ccdb_storage::PAGE_USABLE,
                max: ccdb_storage::PAGE_USABLE,
            });
        }
        let inherit_seq = old.next_seq();
        let mut kind = self.decide_split(&tuples);

        if kind == SplitKind::Time {
            match self.time_split(&mut old, &tuples, inherit_seq, leaf, path)? {
                true => return Ok(()),
                false => kind = SplitKind::Key, // degenerate time split: fall back
            }
        }
        debug_assert_eq!(kind, SplitKind::Key);
        self.key_split(&mut old, &tuples, inherit_seq, leaf, path)
    }

    fn key_split(
        &self,
        old: &mut Page,
        tuples: &[TupleVersion],
        inherit_seq: u16,
        leaf: PageNo,
        path: &[(PageNo, usize)],
    ) -> Result<()> {
        // Split point: the key-group boundary nearest the middle, so that
        // (a) all versions of a key share a leaf (exact searches descend
        // once) and (b) parent separators can use the rank-stable form
        // `(key, MIN)` — a separator carrying a *pending* version's rank
        // would be invalidated when lazy timestamping later rewrites that
        // version's time.
        let half = tuples.len() / 2;
        let fwd = (half..tuples.len()).find(|&j| tuples[j].key != tuples[j - 1].key);
        let back = (1..=half).rev().find(|&j| tuples[j].key != tuples[j - 1].key);
        let (mid, within_group) = match (fwd, back) {
            (Some(f), Some(b)) => {
                if f - half <= half - b {
                    (f, false)
                } else {
                    (b, false)
                }
            }
            (Some(f), None) => (f, false),
            (None, Some(b)) => (b, false),
            (None, None) => {
                // Degenerate single-key page: split inside the version
                // group. The boundary must separate *distinct* orders (a
                // transaction writing the same key twice creates equal-rank
                // versions, which must stay on one leaf), and prefers a
                // committed boundary tuple (committed ranks never change).
                let distinct =
                    |j: usize| version_order(&tuples[j]) != version_order(&tuples[j - 1]);
                let j = (1..=half)
                    .rev()
                    .find(|&j| distinct(j) && tuples[j].time.committed().is_some())
                    .or_else(|| {
                        (half..tuples.len())
                            .find(|&j| distinct(j) && tuples[j].time.committed().is_some())
                    })
                    .or_else(|| (1..=half).rev().find(|&j| distinct(j)))
                    .or_else(|| (half..tuples.len()).find(|&j| distinct(j)))
                    .unwrap_or(half);
                (j.clamp(1, tuples.len() - 1), true)
            }
        };
        let (lp, l_frame) = self.pool.new_page(PageType::Leaf, self.rel)?;
        let (rp, r_frame) = self.pool.new_page(PageType::Leaf, self.rel)?;
        {
            let mut left = l_frame.write();
            let mut right = r_frame.write();
            self.fill_leaf(&mut left, &tuples[..mid], inherit_seq)?;
            self.fill_leaf(&mut right, &tuples[mid..], inherit_seq)?;
            self.log_image(&mut left)?;
            self.log_image(&mut right)?;
            self.pool.mark_dirty(&mut left);
            self.pool.mark_dirty(&mut right);
            self.with_hooks(|h| h.on_split(SplitKind::Key, old, &left, &right, &[]));
        }
        // Retire the input page.
        old.clear_cells();
        old.set_page_type(PageType::Free);
        self.log_image(old)?;
        self.pool.mark_dirty(old);
        self.stats.lock().key_splits += 1;

        // Separators: rank-stable `(key, MIN)` at key boundaries. A split
        // *inside* one key's version group must instead use real ranks on
        // both sides — two `(key, MIN)` bounds would be indistinguishable,
        // and a scan treats the span between equal bounds as empty.
        let e_left = IndexEntry {
            key: tuples[0].key.clone(),
            rank: if within_group { TimeRank::from(tuples[0].time) } else { TimeRank::MIN },
            child: lp,
        };
        let e_right = IndexEntry {
            key: tuples[mid].key.clone(),
            rank: if within_group { TimeRank::from(tuples[mid].time) } else { TimeRank::MIN },
            child: rp,
        };
        self.replace_in_parent(path, leaf, vec![e_left, e_right])
    }

    /// Performs a time split; returns `false` (and does nothing) if the split
    /// would not shrink the live page.
    fn time_split(
        &self,
        old: &mut Page,
        tuples: &[TupleVersion],
        inherit_seq: u16,
        leaf: PageNo,
        path: &[(PageNo, usize)],
    ) -> Result<bool> {
        let t_split = self.clock.now();
        let mut historical: Vec<TupleVersion> = Vec::new();
        let mut live: Vec<TupleVersion> = Vec::new();
        let mut intermediates: Vec<TupleVersion> = Vec::new();
        for (i, v) in tuples.iter().enumerate() {
            let next = tuples.get(i + 1).filter(|n| n.key == v.key);
            let next_commit = next.and_then(|n| n.time.committed());
            match v.time {
                WriteTime::Pending(_) => live.push(v.clone()), // in-flight: stays live as-is
                WriteTime::Committed(_start) => {
                    match next_commit {
                        Some(nc) if nc <= t_split => historical.push(v.clone()), // dead before t
                        // Successor exists but is still pending: with lazy
                        // timestamping its txn may already have committed at
                        // a time *before* `t_split`, so `v`'s death time is
                        // unknown here. It must stay live as-is — creating an
                        // intermediate at `t_split` would leave the live leaf
                        // out of (key, time) order once the successor stamps,
                        // and would shadow the successor for AS OF reads.
                        None if next.is_some() => live.push(v.clone()),
                        _ => {
                            // Current version: validity spans t_split.
                            // Original goes to the historical page; an
                            // intermediate version starting at t_split joins
                            // the live page (the paper's "(31,5)" example).
                            historical.push(v.clone());
                            intermediates.push(TupleVersion {
                                rel: v.rel,
                                key: v.key.clone(),
                                time: WriteTime::Committed(t_split),
                                seq: 0, // assigned on the live page below
                                end_of_life: v.end_of_life,
                                value: v.value.clone(),
                            });
                        }
                    }
                }
            }
        }
        if historical.is_empty() {
            return Ok(false);
        }
        // Merge intermediates into the live list in (key, rank) order.
        let live_count = live.len() + intermediates.len();
        if live_count >= tuples.len() {
            return Ok(false); // no progress: the live page would be as full
        }
        let (hp, h_frame) = self.pool.new_page(PageType::Leaf, self.rel)?;
        let (vp, v_frame) = self.pool.new_page(PageType::Leaf, self.rel)?;
        {
            let mut hist = h_frame.write();
            let mut livep = v_frame.write();
            self.fill_leaf(&mut hist, &historical, inherit_seq)?;
            hist.set_historical(true);
            hist.set_aux(t_split.0);
            livep.bump_seq_to(inherit_seq);
            // Interleave original live versions and intermediates in order;
            // the bool marks split-created intermediates, which need fresh
            // tuple-order numbers from the live page.
            let mut merged: Vec<(TupleVersion, bool)> = Vec::with_capacity(live_count);
            let mut a = live.into_iter().peekable();
            let mut b = intermediates.into_iter().peekable();
            loop {
                match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => {
                        if version_order(x) <= version_order(y) {
                            merged.push((a.next().expect("peeked"), false));
                        } else {
                            merged.push((b.next().expect("peeked"), true));
                        }
                    }
                    (Some(_), None) => merged.push((a.next().expect("peeked"), false)),
                    (None, Some(_)) => merged.push((b.next().expect("peeked"), true)),
                    (None, None) => break,
                }
            }
            let mut assigned = Vec::new();
            for (mut t, is_intermediate) in merged {
                if is_intermediate {
                    t.seq = livep.alloc_seq();
                    assigned.push(t.clone());
                }
                livep.append_cell(&t.encode_cell())?;
            }
            self.log_image(&mut hist)?;
            self.log_image(&mut livep)?;
            self.pool.mark_dirty(&mut hist);
            self.pool.mark_dirty(&mut livep);
            self.with_hooks(|h| h.on_split(SplitKind::Time, old, &hist, &livep, &assigned));
        }
        old.clear_cells();
        old.set_page_type(PageType::Free);
        self.log_image(old)?;
        self.pool.mark_dirty(old);
        self.stats.lock().time_splits += 1;
        self.historical.lock().push(hp);
        self.log_meta(RelMetaOp::HistoricalAdd(hp))?;

        let e_live = IndexEntry { key: tuples[0].key.clone(), rank: TimeRank::MIN, child: vp };
        self.replace_in_parent(path, leaf, vec![e_live])?;
        Ok(true)
    }

    fn replace_in_parent(
        &self,
        path: &[(PageNo, usize)],
        old_child: PageNo,
        new_entries: Vec<IndexEntry>,
    ) -> Result<()> {
        if path.is_empty() {
            // The old child was the root.
            if new_entries.len() == 1 {
                *self.root.lock() = new_entries[0].child;
                self.log_meta(RelMetaOp::Root(new_entries[0].child))?;
                return Ok(());
            }
            let (root_pgno, root_frame) = self.pool.new_page(PageType::Inner, self.rel)?;
            {
                let mut root = root_frame.write();
                let mut cells = Vec::new();
                for e in &new_entries {
                    let c = e.encode();
                    root.append_cell(&c)?;
                    cells.push(c);
                }
                self.log_image(&mut root)?;
                self.pool.mark_dirty(&mut root);
                self.with_hooks(|h| h.on_new_root(root_pgno, &cells));
            }
            *self.root.lock() = root_pgno;
            self.log_meta(RelMetaOp::Root(root_pgno))?;
            return Ok(());
        }
        let (parent_pgno, idx) = *path.last().expect("non-empty path");
        let frame = self.pool.fetch(parent_pgno)?;
        let mut page = frame.write();
        let mut entries = decode_entries(&page)?;
        if entries.get(idx).map(|e| e.child) != Some(old_child) {
            return Err(Error::corruption(format!(
                "parent {parent_pgno} entry {idx} does not reference split child {old_child}"
            )));
        }
        let old_cell = entries[idx].encode();
        self.with_hooks(|h| h.on_index_remove(parent_pgno, &old_cell));
        entries.remove(idx);
        for (k, e) in new_entries.iter().enumerate() {
            let cell = e.encode();
            self.with_hooks(|h| h.on_index_insert(parent_pgno, &cell));
            entries.insert(idx + k, e.clone());
        }
        let cells: Vec<Vec<u8>> = entries.iter().map(IndexEntry::encode).collect();
        if cells_fit(&cells) {
            page.clear_cells();
            for c in &cells {
                page.append_cell(c)?;
            }
            self.log_image(&mut page)?;
            self.pool.mark_dirty(&mut page);
            return Ok(());
        }
        // Inner split: retire the parent, create two new inner pages.
        let mid = entries.len() / 2;
        let (lp, l_frame) = self.pool.new_page(PageType::Inner, self.rel)?;
        let (rp, r_frame) = self.pool.new_page(PageType::Inner, self.rel)?;
        {
            let mut left = l_frame.write();
            let mut right = r_frame.write();
            for e in &entries[..mid] {
                left.append_cell(&e.encode())?;
            }
            for e in &entries[mid..] {
                right.append_cell(&e.encode())?;
            }
            self.log_image(&mut left)?;
            self.log_image(&mut right)?;
            self.pool.mark_dirty(&mut left);
            self.pool.mark_dirty(&mut right);
            self.with_hooks(|h| h.on_split(SplitKind::Inner, &page, &left, &right, &[]));
        }
        page.clear_cells();
        page.set_page_type(PageType::Free);
        self.log_image(&mut page)?;
        self.pool.mark_dirty(&mut page);
        drop(page);
        self.stats.lock().inner_splits += 1;
        let e_left = IndexEntry { key: entries[0].key.clone(), rank: entries[0].rank, child: lp };
        let e_right =
            IndexEntry { key: entries[mid].key.clone(), rank: entries[mid].rank, child: rp };
        self.replace_in_parent(&path[..path.len() - 1], parent_pgno, vec![e_left, e_right])
    }
}

impl core::fmt::Debug for BTree {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BTree")
            .field("rel", &self.rel)
            .field("root", &self.root())
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}
