//! Structure-modification hooks: how the tree tells the compliance plugin
//! about splits and index maintenance *before* pages reach disk.

use ccdb_common::PageNo;
use ccdb_storage::{Page, TupleVersion};

/// Whether a leaf split partitioned on key or on time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitKind {
    /// Ordinary B+-tree split on the `(key, rank)` order.
    Key,
    /// TSB time split: `right` is the live page, `left` the historical page
    /// (destined for WORM), split at the time recorded in `left.aux()`.
    Time,
    /// Internal-node split.
    Inner,
}

/// Callbacks the compliance plugin implements. Every callback fires while the
/// affected pages are still only in the buffer pool, so the plugin can put
/// its log records on WORM before any pwrite of those pages happens.
///
/// The default implementations do nothing, so the tree runs un-instrumented
/// (the "Regular TPC-C" baseline of Figure 3) when no plugin is installed.
pub trait StructureHooks: Send + Sync {
    /// A page split happened: `old` was retired, its content partitioned into
    /// `left` and `right` (post-split images). `intermediates` are tuple
    /// versions *created by* the split (the TSB "intermediate version at time
    /// t" for spanning tuples) — genuinely new tuples that must appear in the
    /// compliance log as insertions.
    fn on_split(
        &self,
        _kind: SplitKind,
        _old: &Page,
        _left: &Page,
        _right: &Page,
        _intermediates: &[TupleVersion],
    ) {
    }

    /// An entry was inserted into internal page `parent`.
    fn on_index_insert(&self, _parent: PageNo, _entry_cell: &[u8]) {}

    /// An entry was removed from internal page `parent`.
    fn on_index_remove(&self, _parent: PageNo, _entry_cell: &[u8]) {}

    /// A new root page came into service (`entries` are its initial cells).
    fn on_new_root(&self, _root: PageNo, _entries: &[Vec<u8>]) {}
}

/// The do-nothing hook set.
pub struct NoopHooks;

impl StructureHooks for NoopHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_are_callable() {
        use ccdb_common::RelId;
        use ccdb_storage::PageType;
        let h = NoopHooks;
        let p = Page::new(PageNo(1), PageType::Leaf, RelId(1));
        h.on_split(SplitKind::Key, &p, &p, &p, &[]);
        h.on_index_insert(PageNo(1), b"cell");
        h.on_index_remove(PageNo(1), b"cell");
        h.on_new_root(PageNo(2), &[]);
    }
}
