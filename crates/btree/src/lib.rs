//! B+-trees over versioned tuples, including the **time-split B+-tree**
//! (TSB-tree, Lomet & Salzberg) used by the WORM-migration refinement.
//!
//! Entries are ordered two-dimensionally, exactly as the paper defines:
//! `(k₁,t₁) ≤ (k₂,t₂) iff k₁ < k₂ ∨ (k₁ = k₂ ∧ t₁ ≤ t₂)` — all versions of a
//! key sit adjacently in start-time order, with any still-pending version
//! (carrying a transaction id under lazy timestamping) ordered after every
//! stamped version.
//!
//! Structural choices driven by the compliance architecture:
//!
//! * **Splits retire the old page and create two new pages.** The paper's
//!   `PAGE_SPLIT` record "contains the PGNO of the initial page, the PGNOs of
//!   the two new pages created, and the content of the two new pages
//!   immediately after the split"; giving each split fresh PGNOs keeps every
//!   page's logged history linear, which is what makes the auditor's
//!   single-pass page replay possible.
//! * **Structure-modification hooks.** Every split, index-entry change, and
//!   page retirement is reported through [`StructureHooks`] so the compliance
//!   plugin can write `PAGE_SPLIT` / `INDEX_INSERT` / `INDEX_REMOVE` records
//!   *before* the affected pages reach disk.
//! * **Key vs. time splits.** With a [`SplitPolicy::TimeSplit`] threshold θ, a
//!   leaf whose distinct-key fraction is below θ is split on time (historical
//!   versions move to a new *historical* page destined for WORM); otherwise
//!   it is split on key. (The paper's prose states the comparison both ways
//!   in different paragraphs; we implement the direction consistent with its
//!   Figure 4 analysis and the stated intuition — few distinct keys ⇒ many
//!   updates ⇒ time-split.)
//! * **No page merging.** A transaction-time database only grows; empty
//!   leaves are tolerated, matching append-mostly reality and keeping page
//!   histories simple for the auditor.

pub mod check;
pub mod entry;
pub mod hooks;
pub mod tree;

pub use check::{check_tree, IntegrityError};
pub use entry::{IndexEntry, TimeRank};
pub use hooks::{NoopHooks, SplitKind, StructureHooks};
pub use tree::{BTree, SplitPolicy, TreeStats};
