//! Two-dimensional entry ordering and internal-node entry encoding.

use ccdb_common::{ByteReader, ByteWriter, Error, PageNo, Result, Timestamp};
use ccdb_storage::{TupleVersion, WriteTime};

/// The total order on version times used by the tree: stamped versions order
/// by commit time; pending versions order after *all* stamped versions, by
/// transaction id. (A pending version is by construction the newest version
/// of its key, and transaction ids increase monotonically, so this agrees
/// with eventual commit-time order.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeRank {
    kind: u8,
    value: u64,
}

impl TimeRank {
    /// The minimal rank (orders before every real version).
    pub const MIN: TimeRank = TimeRank { kind: 0, value: 0 };
    /// The maximal rank (orders after every real version).
    pub const MAX: TimeRank = TimeRank { kind: 1, value: u64::MAX };

    /// Rank of a stamped commit time.
    pub fn committed(t: Timestamp) -> TimeRank {
        TimeRank { kind: 0, value: t.0 }
    }

    /// Rank of a pending (unstamped) version.
    pub fn pending(txn: ccdb_common::TxnId) -> TimeRank {
        TimeRank { kind: 1, value: txn.0 }
    }

    /// Encodes to 9 bytes.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.kind);
        w.put_u64(self.value);
    }

    /// Decodes from a reader.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TimeRank> {
        let kind = r.get_u8()?;
        if kind > 1 {
            return Err(Error::corruption(format!("bad time-rank kind {kind}")));
        }
        Ok(TimeRank { kind, value: r.get_u64()? })
    }
}

impl From<WriteTime> for TimeRank {
    fn from(t: WriteTime) -> TimeRank {
        match t {
            WriteTime::Committed(ts) => TimeRank::committed(ts),
            WriteTime::Pending(txn) => TimeRank::pending(txn),
        }
    }
}

/// The tree's composite ordering key for a tuple version.
pub fn version_order(t: &TupleVersion) -> (&[u8], TimeRank) {
    (&t.key, TimeRank::from(t.time))
}

/// An internal-node entry: the lower bound `(key, rank)` of the child's key
/// space, plus the child page number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Lower-bound key (inclusive).
    pub key: Vec<u8>,
    /// Lower-bound time rank (inclusive).
    pub rank: TimeRank,
    /// The child page.
    pub child: PageNo,
}

impl IndexEntry {
    /// The entry covering the start of the key space.
    pub fn minimal(child: PageNo) -> IndexEntry {
        IndexEntry { key: Vec::new(), rank: TimeRank::MIN, child }
    }

    /// The entry's ordering key.
    pub fn order(&self) -> (&[u8], TimeRank) {
        (&self.key, self.rank)
    }

    /// Encodes the entry as an internal-page cell.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.key.len() + 24);
        w.put_len_bytes(&self.key);
        self.rank.encode(&mut w);
        w.put_u64(self.child.0);
        w.into_vec()
    }

    /// Decodes an internal-page cell. Defensive (auditor parses raw pages).
    pub fn decode(cell: &[u8]) -> Result<IndexEntry> {
        let mut r = ByteReader::new(cell);
        let key = r.get_len_bytes()?.to_vec();
        let rank = TimeRank::decode(&mut r)?;
        let child = PageNo(r.get_u64()?);
        if !r.is_exhausted() {
            return Err(Error::corruption("trailing bytes after index entry"));
        }
        Ok(IndexEntry { key, rank, child })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::TxnId;

    #[test]
    fn rank_ordering_matches_paper() {
        let c5 = TimeRank::committed(Timestamp(5));
        let c9 = TimeRank::committed(Timestamp(9));
        let p1 = TimeRank::pending(TxnId(1));
        let p2 = TimeRank::pending(TxnId(2));
        assert!(TimeRank::MIN <= c5);
        assert!(c5 < c9);
        assert!(c9 < p1, "pending versions order after all stamped versions");
        assert!(p1 < p2);
    }

    #[test]
    fn version_order_key_major() {
        let a = TupleVersion {
            rel: ccdb_common::RelId(1),
            key: b"a".to_vec(),
            time: WriteTime::Committed(Timestamp(100)),
            seq: 0,
            end_of_life: false,
            value: vec![],
        };
        let b = TupleVersion {
            key: b"b".to_vec(),
            time: WriteTime::Committed(Timestamp(1)),
            ..a.clone()
        };
        assert!(version_order(&a) < version_order(&b));
    }

    #[test]
    fn index_entry_roundtrip() {
        let e = IndexEntry {
            key: b"warehouse-7".to_vec(),
            rank: TimeRank::committed(Timestamp(42)),
            child: PageNo(9),
        };
        assert_eq!(IndexEntry::decode(&e.encode()).unwrap(), e);
        let m = IndexEntry::minimal(PageNo(3));
        assert_eq!(IndexEntry::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rank_roundtrip() {
        for r in [TimeRank::MIN, TimeRank::committed(Timestamp(7)), TimeRank::pending(TxnId(9))] {
            let mut w = ByteWriter::new();
            r.encode(&mut w);
            let v = w.into_vec();
            let mut rd = ByteReader::new(&v);
            assert_eq!(TimeRank::decode(&mut rd).unwrap(), r);
        }
    }

    #[test]
    fn bad_rank_kind_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u64(1);
        let v = w.into_vec();
        let mut rd = ByteReader::new(&v);
        assert!(TimeRank::decode(&mut rd).is_err());
    }

    #[test]
    fn malformed_entry_rejected() {
        assert!(IndexEntry::decode(&[]).is_err());
        let mut enc = IndexEntry::minimal(PageNo(1)).encode();
        enc.push(9);
        assert!(IndexEntry::decode(&enc).is_err());
    }
}
