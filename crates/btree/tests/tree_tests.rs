//! Behavioral tests for the versioned B+-tree and its TSB refinement.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::{
    check_tree, BTree, IntegrityError, SplitKind, SplitPolicy, StructureHooks, TimeRank,
};
use ccdb_common::{Clock, Duration, PageNo, RelId, Timestamp, TxnId, VirtualClock};
use ccdb_storage::{BufferPool, DiskManager, Page, PageType, TupleVersion, WriteTime};

struct TempFile(PathBuf);
impl TempFile {
    fn new(tag: &str) -> TempFile {
        TempFile(std::env::temp_dir().join(format!(
            "ccdb-btree-{}-{}-{}.db",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        )))
    }
}
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn setup(tag: &str, policy: SplitPolicy) -> (Arc<BufferPool>, Arc<VirtualClock>, BTree, TempFile) {
    let tf = TempFile::new(tag);
    let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(10)));
    let pool = Arc::new(BufferPool::new(dm, clock.clone(), 256));
    let tree = BTree::create(pool.clone(), clock.clone(), RelId(1), policy).unwrap();
    (pool, clock, tree, tf)
}

fn committed(clock: &VirtualClock) -> WriteTime {
    WriteTime::Committed(clock.now())
}

#[test]
fn insert_and_lookup_single_version() {
    let (_pool, clock, tree, _tf) = setup("single", SplitPolicy::KeyOnly);
    tree.insert(b"alpha", committed(&clock), false, b"v1".to_vec()).unwrap();
    let vs = tree.versions(b"alpha").unwrap();
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].value, b"v1");
    assert!(tree.versions(b"beta").unwrap().is_empty());
}

#[test]
fn versions_accumulate_in_time_order() {
    let (_pool, clock, tree, _tf) = setup("versions", SplitPolicy::KeyOnly);
    for i in 0..5 {
        tree.insert(b"k", committed(&clock), false, vec![i]).unwrap();
    }
    let vs = tree.versions(b"k").unwrap();
    assert_eq!(vs.len(), 5);
    for (i, v) in vs.iter().enumerate() {
        assert_eq!(v.value, vec![i as u8]);
    }
    let times: Vec<_> = vs.iter().map(|v| v.time).collect();
    let mut sorted = times.clone();
    sorted.sort();
    assert_eq!(times, sorted);
}

#[test]
fn many_keys_split_and_stay_findable() {
    let (pool, clock, tree, _tf) = setup("split", SplitPolicy::KeyOnly);
    let n = 2000;
    for i in 0..n {
        let key = format!("key-{i:06}");
        tree.insert(key.as_bytes(), committed(&clock), false, format!("val-{i}").into_bytes())
            .unwrap();
    }
    for i in (0..n).step_by(37) {
        let key = format!("key-{i:06}");
        let vs = tree.versions(key.as_bytes()).unwrap();
        assert_eq!(vs.len(), 1, "{key}");
        assert_eq!(vs[0].value, format!("val-{i}").into_bytes());
    }
    assert!(tree.leaf_pgnos().unwrap().len() > 1);
    assert!(tree.stats().key_splits > 0);
    assert!(check_tree(&pool, &tree).unwrap().is_empty());
}

#[test]
fn scan_all_is_sorted_and_complete() {
    let (_pool, clock, tree, _tf) = setup("scan", SplitPolicy::KeyOnly);
    let mut expected = Vec::new();
    for i in (0..500).rev() {
        let key = format!("{i:05}");
        tree.insert(key.as_bytes(), committed(&clock), false, vec![]).unwrap();
        expected.push(key);
    }
    expected.sort();
    let mut got = Vec::new();
    tree.scan_all(&mut |t| {
        got.push(String::from_utf8(t.key.clone()).unwrap());
        Ok(())
    })
    .unwrap();
    assert_eq!(got, expected);
}

#[test]
fn scan_range_bounds_inclusive() {
    let (_pool, clock, tree, _tf) = setup("range", SplitPolicy::KeyOnly);
    for i in 0..100 {
        tree.insert(format!("{i:03}").as_bytes(), committed(&clock), false, vec![]).unwrap();
    }
    let mut got = Vec::new();
    tree.scan_range((b"010", TimeRank::MIN), (b"020", TimeRank::MAX), &mut |t| {
        got.push(String::from_utf8(t.key.clone()).unwrap());
        Ok(())
    })
    .unwrap();
    assert_eq!(got.len(), 11);
    assert_eq!(got[0], "010");
    assert_eq!(got[10], "020");
}

#[test]
fn pending_versions_rank_after_committed_and_stamp_in_place() {
    let (_pool, clock, tree, _tf) = setup("stamp", SplitPolicy::KeyOnly);
    tree.insert(b"acct", committed(&clock), false, b"old".to_vec()).unwrap();
    tree.insert(b"acct", WriteTime::Pending(TxnId(42)), false, b"new".to_vec()).unwrap();
    let vs = tree.versions(b"acct").unwrap();
    assert_eq!(vs.len(), 2);
    assert_eq!(vs[1].time, WriteTime::Pending(TxnId(42)));
    // Stamp it.
    let commit = clock.now();
    assert_eq!(tree.stamp(b"acct", TxnId(42), commit).unwrap(), 1);
    let vs = tree.versions(b"acct").unwrap();
    assert_eq!(vs[1].time, WriteTime::Committed(commit));
    assert_eq!(vs[1].value, b"new");
    // Stamping again finds nothing.
    assert_eq!(tree.stamp(b"acct", TxnId(42), commit).unwrap(), 0);
}

#[test]
fn multiple_writes_same_txn_same_key_all_stamped() {
    let (_pool, clock, tree, _tf) = setup("multiwrite", SplitPolicy::KeyOnly);
    tree.insert(b"k", WriteTime::Pending(TxnId(7)), false, b"a".to_vec()).unwrap();
    tree.insert(b"k", WriteTime::Pending(TxnId(7)), false, b"b".to_vec()).unwrap();
    let commit = clock.now();
    assert_eq!(tree.stamp(b"k", TxnId(7), commit).unwrap(), 2);
    let vs = tree.versions(b"k").unwrap();
    assert_eq!(vs.len(), 2);
    assert!(vs.iter().all(|v| v.time == WriteTime::Committed(commit)));
    // Insertion order preserved via page order.
    assert_eq!(vs[0].value, b"a");
    assert_eq!(vs[1].value, b"b");
}

#[test]
fn remove_version_rollback() {
    let (_pool, clock, tree, _tf) = setup("rollback", SplitPolicy::KeyOnly);
    tree.insert(b"k", committed(&clock), false, b"keep".to_vec()).unwrap();
    tree.insert(b"k", WriteTime::Pending(TxnId(9)), false, b"doomed".to_vec()).unwrap();
    let removed = tree.remove_version(b"k", TimeRank::pending(TxnId(9))).unwrap();
    assert_eq!(removed.unwrap().value, b"doomed");
    let vs = tree.versions(b"k").unwrap();
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].value, b"keep");
    // Removing again is a no-op.
    assert!(tree.remove_version(b"k", TimeRank::pending(TxnId(9))).unwrap().is_none());
}

#[test]
fn end_of_life_versions_stored() {
    let (_pool, clock, tree, _tf) = setup("eol", SplitPolicy::KeyOnly);
    tree.insert(b"k", committed(&clock), false, b"alive".to_vec()).unwrap();
    tree.insert(b"k", committed(&clock), true, vec![]).unwrap();
    let vs = tree.versions(b"k").unwrap();
    assert_eq!(vs.len(), 2);
    assert!(!vs[0].end_of_life);
    assert!(vs[1].end_of_life);
}

#[test]
fn time_split_moves_dead_versions_to_historical_pages() {
    let (pool, clock, tree, _tf) = setup("tsb", SplitPolicy::TimeSplit { threshold: 0.9 });
    // Few keys, many updates each: dead-version-heavy leaves.
    for round in 0..200 {
        for k in 0..10 {
            tree.insert(
                format!("hot-{k}").as_bytes(),
                committed(&clock),
                false,
                format!("r{round}").into_bytes(),
            )
            .unwrap();
        }
    }
    let stats = tree.stats();
    assert!(stats.time_splits > 0, "expected time splits, got {stats:?}");
    let hist = tree.historical_pages();
    assert!(!hist.is_empty());
    // Historical pages are flagged and carry their split time.
    for pgno in &hist {
        let frame = pool.fetch(*pgno).unwrap();
        let page = frame.read();
        assert!(page.is_historical());
        assert!(page.aux() > 0);
        assert_eq!(page.page_type(), PageType::Leaf);
    }
    // Current versions are still found in the live tree.
    for k in 0..10 {
        let vs = tree.versions(format!("hot-{k}").as_bytes()).unwrap();
        assert!(!vs.is_empty(), "hot-{k} lost from live tree");
        assert_eq!(vs.last().unwrap().value, b"r199");
    }
    assert!(check_tree(&pool, &tree).unwrap().is_empty());
}

#[test]
fn key_only_policy_never_time_splits() {
    let (_pool, clock, tree, _tf) = setup("keyonly", SplitPolicy::KeyOnly);
    for round in 0..100 {
        for k in 0..5 {
            tree.insert(format!("k{k}").as_bytes(), committed(&clock), false, vec![round]).unwrap();
        }
    }
    assert_eq!(tree.stats().time_splits, 0);
    assert!(tree.historical_pages().is_empty());
}

#[test]
fn uniform_single_update_workload_avoids_time_splits_below_half_threshold() {
    // The ORDER_LINE shape of Figure 4(b): every key updated at most once, so
    // distinct-key fraction ≥ 0.5 and thresholds < 0.5 never time-split.
    let (_pool, clock, tree, _tf) = setup("orderline", SplitPolicy::TimeSplit { threshold: 0.4 });
    for i in 0..1500 {
        let key = format!("ol-{i:06}");
        tree.insert(key.as_bytes(), committed(&clock), false, b"first".to_vec()).unwrap();
        tree.insert(key.as_bytes(), committed(&clock), false, b"second".to_vec()).unwrap();
    }
    assert_eq!(tree.stats().time_splits, 0, "{:?}", tree.stats());
    assert!(tree.stats().key_splits > 0);
}

#[test]
fn hooks_fire_on_splits_and_root_growth() {
    use ccdb_common::sync::Mutex;
    #[derive(Default)]
    struct Recorder {
        #[allow(clippy::type_complexity)]
        splits: Mutex<Vec<(SplitKind, PageNo, PageNo, PageNo, usize)>>,
        index_inserts: Mutex<usize>,
        index_removes: Mutex<usize>,
        new_roots: Mutex<usize>,
    }
    impl StructureHooks for Recorder {
        fn on_split(
            &self,
            kind: SplitKind,
            old: &Page,
            left: &Page,
            right: &Page,
            intermediates: &[TupleVersion],
        ) {
            self.splits.lock().push((
                kind,
                old.pgno(),
                left.pgno(),
                right.pgno(),
                intermediates.len(),
            ));
        }
        fn on_index_insert(&self, _parent: PageNo, _cell: &[u8]) {
            *self.index_inserts.lock() += 1;
        }
        fn on_index_remove(&self, _parent: PageNo, _cell: &[u8]) {
            *self.index_removes.lock() += 1;
        }
        fn on_new_root(&self, _root: PageNo, _entries: &[Vec<u8>]) {
            *self.new_roots.lock() += 1;
        }
    }
    let (_pool, clock, tree, _tf) = setup("hooks", SplitPolicy::KeyOnly);
    let rec = Arc::new(Recorder::default());
    tree.set_hooks(rec.clone());
    for i in 0..1200 {
        tree.insert(format!("{i:06}").as_bytes(), committed(&clock), false, vec![0u8; 16]).unwrap();
    }
    let splits = rec.splits.lock();
    assert!(!splits.is_empty());
    // Splits retire the old page: new pages always differ from the old.
    for (kind, old, l, r, inter) in splits.iter() {
        assert_ne!(old, l);
        assert_ne!(old, r);
        assert_ne!(l, r);
        if *kind == SplitKind::Key {
            assert_eq!(*inter, 0);
        }
    }
    assert!(*rec.new_roots.lock() >= 1);
    assert!(*rec.index_inserts.lock() > *rec.index_removes.lock());
}

#[test]
fn retired_pages_become_free() {
    let (pool, clock, tree, _tf) = setup("retire", SplitPolicy::KeyOnly);
    let initial_root = tree.root();
    for i in 0..500 {
        tree.insert(format!("{i:05}").as_bytes(), committed(&clock), false, vec![0u8; 8]).unwrap();
    }
    assert_ne!(tree.root(), initial_root);
    let frame = pool.fetch(initial_root).unwrap();
    let page = frame.read();
    assert_eq!(page.page_type(), PageType::Free);
    assert_eq!(page.cell_count(), 0);
}

#[test]
fn checker_detects_swapped_leaf_entries() {
    // Figure 2(b): two leaf elements exchanged.
    let (pool, clock, tree, _tf) = setup("fig2b", SplitPolicy::KeyOnly);
    for i in 0..10 {
        tree.insert(format!("k{i}").as_bytes(), committed(&clock), false, vec![]).unwrap();
    }
    let leaf = tree.leaf_pgnos().unwrap()[0];
    {
        let frame = pool.fetch(leaf).unwrap();
        let mut page = frame.write();
        let c2 = page.cell(2).to_vec();
        let c5 = page.cell(5).to_vec();
        page.replace_cell(2, &c5).unwrap();
        page.replace_cell(5, &c2).unwrap();
    }
    let errs = check_tree(&pool, &tree).unwrap();
    assert!(errs.iter().any(|e| matches!(e, IntegrityError::LeafOutOfOrder { .. })), "{errs:?}");
}

#[test]
fn checker_detects_tampered_separator() {
    // Figure 2(c): an internal-node key value altered.
    let (pool, clock, tree, _tf) = setup("fig2c", SplitPolicy::KeyOnly);
    for i in 0..1000 {
        tree.insert(format!("{i:06}").as_bytes(), committed(&clock), false, vec![0u8; 16]).unwrap();
    }
    let root = tree.root();
    {
        let frame = pool.fetch(root).unwrap();
        let mut page = frame.write();
        assert_eq!(page.page_type(), PageType::Inner);
        // Corrupt the second separator key upward so it exceeds its child's
        // minimum entry.
        let cell = page.cell(1).to_vec();
        let mut e = ccdb_btree::IndexEntry::decode(&cell).unwrap();
        e.key = {
            let mut k = e.key.clone();
            let last = k.len() - 1;
            k[last] = k[last].saturating_add(9);
            k
        };
        page.replace_cell(1, &e.encode()).unwrap();
    }
    let errs = check_tree(&pool, &tree).unwrap();
    assert!(
        errs.iter().any(|e| matches!(
            e,
            IntegrityError::SeparatorMismatch { .. } | IntegrityError::InnerOutOfOrder { .. }
        )),
        "{errs:?}"
    );
}

#[test]
fn checker_accepts_clean_tsb_tree() {
    let (pool, clock, tree, _tf) = setup("clean-tsb", SplitPolicy::TimeSplit { threshold: 0.8 });
    for round in 0..100 {
        for k in 0..20 {
            tree.insert(format!("key-{k:03}").as_bytes(), committed(&clock), false, vec![round])
                .unwrap();
        }
    }
    assert!(check_tree(&pool, &tree).unwrap().is_empty());
}

#[test]
fn tree_survives_reopen_via_root_handoff() {
    let tf = TempFile::new("reopen");
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(10)));
    let root;
    {
        let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
        let pool = Arc::new(BufferPool::new(dm, clock.clone(), 64));
        let tree =
            BTree::create(pool.clone(), clock.clone(), RelId(1), SplitPolicy::KeyOnly).unwrap();
        for i in 0..300 {
            tree.insert(
                format!("{i:04}").as_bytes(),
                WriteTime::Committed(clock.now()),
                false,
                vec![1],
            )
            .unwrap();
        }
        pool.flush_all().unwrap();
        root = tree.root();
    }
    let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
    let pool = Arc::new(BufferPool::new(dm, clock.clone(), 64));
    let tree =
        BTree::open(pool.clone(), clock.clone(), RelId(1), SplitPolicy::KeyOnly, root, vec![]);
    for i in (0..300).step_by(17) {
        assert_eq!(tree.versions(format!("{i:04}").as_bytes()).unwrap().len(), 1);
    }
    assert!(check_tree(&pool, &tree).unwrap().is_empty());
}

#[test]
fn intermediates_reported_on_time_split() {
    use ccdb_common::sync::Mutex;
    struct Grab {
        intermediates: Mutex<Vec<TupleVersion>>,
    }
    impl StructureHooks for Grab {
        fn on_split(
            &self,
            kind: SplitKind,
            _old: &Page,
            _left: &Page,
            _right: &Page,
            intermediates: &[TupleVersion],
        ) {
            if kind == SplitKind::Time {
                self.intermediates.lock().extend_from_slice(intermediates);
            }
        }
    }
    let (_pool, clock, tree, _tf) = setup("inter", SplitPolicy::TimeSplit { threshold: 0.95 });
    let grab = Arc::new(Grab { intermediates: Mutex::new(Vec::new()) });
    tree.set_hooks(grab.clone());
    for round in 0..300u32 {
        for k in 0..8 {
            tree.insert(
                format!("x{k}").as_bytes(),
                committed(&clock),
                false,
                round.to_le_bytes().to_vec(),
            )
            .unwrap();
        }
    }
    let inters = grab.intermediates.lock();
    assert!(!inters.is_empty(), "time splits should create intermediate versions");
    for t in inters.iter() {
        // Intermediates are stamped with the split time and carry the
        // current value of their key at that moment.
        assert!(t.time.committed().is_some());
    }
}

#[test]
fn timestamp_value_visible_in_time_rank_roundtrip() {
    let t = Timestamp(123);
    assert_eq!(TimeRank::committed(t), TimeRank::from(WriteTime::Committed(t)));
}

#[test]
fn time_split_with_lazily_stamped_versions_keeps_leaf_order() {
    // Lazy timestamping means a Pending version's txn may already have
    // committed — at a time *earlier* than any split that happens before the
    // stamper catches up. A time split must therefore never synthesize an
    // intermediate (at t_split) for a version whose successor is still
    // pending: when the successor later stamps below t_split, the leaf would
    // go out of (key, time) order and the intermediate would shadow the
    // successor for AS OF reads.
    let (pool, clock, tree, _tf) = setup("lazystamp", SplitPolicy::TimeSplit { threshold: 0.5 });
    let mut txn = 0u64;
    // (key, txn, commit time) not yet stamped — a tiny stamp queue.
    let mut queue: Vec<(String, TxnId, Timestamp)> = Vec::new();
    for round in 0..120u32 {
        for k in 0..8 {
            let key = format!("hot-{k}");
            txn += 1;
            tree.insert(key.as_bytes(), WriteTime::Pending(TxnId(txn)), false, vec![k as u8])
                .unwrap();
            // Commit "now", but stamp lazily a few rounds later — splits in
            // between see the version as Pending.
            queue.push((key, TxnId(txn), clock.now()));
        }
        if round % 5 == 4 {
            for (key, t, commit) in queue.drain(..) {
                assert_eq!(tree.stamp(key.as_bytes(), t, commit).unwrap(), 1);
            }
        }
    }
    for (key, t, commit) in queue.drain(..) {
        assert_eq!(tree.stamp(key.as_bytes(), t, commit).unwrap(), 1);
    }
    assert!(tree.stats().time_splits > 0, "workload must exercise time splits: {:?}", tree.stats());
    let errs = check_tree(&pool, &tree).unwrap();
    assert!(errs.is_empty(), "tree integrity after lazy stamping: {errs:?}");
    // Version history per key is in nondecreasing commit-time order.
    for k in 0..8 {
        let vs = tree.versions(format!("hot-{k}").as_bytes()).unwrap();
        let mut last = Timestamp(0);
        for v in &vs {
            let t = v.time.committed().expect("all stamped");
            assert!(t >= last, "hot-{k}: {t:?} after {last:?}");
            last = t;
        }
    }
}
