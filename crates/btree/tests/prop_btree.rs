//! Model-based property tests: the versioned B+-tree against a
//! `BTreeMap<(key, rank), version>` reference model, under inserts, aborts
//! (version removal), lazy stamping, and both split policies.
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`]; each case's seed is printed on
//! failure for deterministic replay.

#![cfg(feature = "proptest")]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::{check_tree, BTree, SplitPolicy, TimeRank};
use ccdb_common::{Clock, Duration, RelId, SplitMix64, TxnId, VirtualClock};
use ccdb_storage::{BufferPool, DiskManager, WriteTime};

struct TempFile(PathBuf);
impl TempFile {
    fn new() -> TempFile {
        TempFile(std::env::temp_dir().join(format!(
            "ccdb-prop-btree-{}-{}.db",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        )))
    }
}
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Insert a committed version of key `k`.
    Insert(u8, Vec<u8>),
    /// Insert a pending version of key `k` under a fresh txn, then either
    /// stamp it or remove it (commit vs rollback).
    PendingThen(u8, Vec<u8>, bool),
}

fn gen_value(rng: &mut SplitMix64) -> Vec<u8> {
    let len = rng.gen_range(0..48usize);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    let k = rng.gen_range(0..=255u8);
    let v = gen_value(rng);
    if rng.gen_bool(0.5) {
        Op::Insert(k, v)
    } else {
        Op::PendingThen(k, v, rng.gen_bool(0.5))
    }
}

fn gen_ops(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<Op> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| gen_op(rng)).collect()
}

fn run_model(case: u64, ops: Vec<Op>, policy: SplitPolicy) {
    let tf = TempFile::new();
    let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(3)));
    let pool = Arc::new(BufferPool::new(dm, clock.clone(), 64));
    let tree = BTree::create(pool.clone(), clock.clone(), RelId(1), policy).unwrap();
    let mut model: BTreeMap<(Vec<u8>, u64), (bool, Vec<u8>)> = BTreeMap::new();
    let mut next_txn = 1u64;
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let key = vec![b'k', k];
                let t = clock.now();
                tree.insert(&key, WriteTime::Committed(t), false, v.clone()).unwrap();
                model.insert((key, t.0), (false, v));
            }
            Op::PendingThen(k, v, commit) => {
                let key = vec![b'k', k];
                let txn = TxnId(next_txn);
                next_txn += 1;
                tree.insert(&key, WriteTime::Pending(txn), false, v.clone()).unwrap();
                if commit {
                    let t = clock.now();
                    let stamped = tree.stamp(&key, txn, t).unwrap();
                    assert_eq!(stamped, 1, "case seed {case}: the pending version must be stamped");
                    model.insert((key, t.0), (false, v));
                } else {
                    let removed = tree.remove_version(&key, TimeRank::pending(txn)).unwrap();
                    assert!(removed.is_some(), "case seed {case}: rollback must find the version");
                }
            }
        }
    }
    // The live tree's committed contents equal the model, in order.
    let mut got: Vec<(Vec<u8>, u64, Vec<u8>)> = Vec::new();
    tree.scan_all(&mut |t| {
        let ct = t.time.committed().expect("all versions resolved by now");
        got.push((t.key.clone(), ct.0, t.value.clone()));
        Ok(())
    })
    .unwrap();
    let want: Vec<(Vec<u8>, u64, Vec<u8>)> =
        model.iter().map(|((k, t), (_eol, v))| (k.clone(), *t, v.clone())).collect();
    if matches!(policy, SplitPolicy::KeyOnly) {
        // No migration, no intermediates: live contents are exactly the model.
        assert_eq!(&got, &want, "case seed {case}");
    }
    // Under either policy, every model version must be reachable (time
    // splits move originals to historical pages and add intermediates,
    // which are extra but never replace history).
    for (k, t, v) in &want {
        let vs = tree.versions(k).unwrap();
        let hist = historical_versions(&pool, &tree, k);
        let found = vs
            .iter()
            .chain(hist.iter())
            .any(|tv| tv.time.committed().map(|c| c.0) == Some(*t) && &tv.value == v);
        assert!(found, "case seed {case}: version ({k:?},{t}) lost");
    }
    // Physical integrity holds throughout.
    let errs = check_tree(&pool, &tree).unwrap();
    assert!(errs.is_empty(), "case seed {case}: {errs:?}");
}

fn historical_versions(
    pool: &BufferPool,
    tree: &BTree,
    key: &[u8],
) -> Vec<ccdb_storage::TupleVersion> {
    let mut out = Vec::new();
    for p in tree.historical_pages() {
        if let Ok(f) = pool.fetch(p) {
            for cell in f.read().cells() {
                if let Ok(t) = ccdb_storage::TupleVersion::decode_cell(cell) {
                    if t.key == key {
                        out.push(t);
                    }
                }
            }
        }
    }
    out
}

#[test]
fn key_only_tree_matches_model() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0xB7_EE00 + case);
        let ops = gen_ops(&mut rng, 0, 150);
        run_model(case, ops, SplitPolicy::KeyOnly);
    }
}

#[test]
fn scan_all_is_always_sorted() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x5C_A400 + case);
        let ops = gen_ops(&mut rng, 0, 150);
        let tf = TempFile::new();
        let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(3)));
        let pool = Arc::new(BufferPool::new(dm, clock.clone(), 64));
        let tree =
            BTree::create(pool.clone(), clock.clone(), RelId(1), SplitPolicy::KeyOnly).unwrap();
        let mut txn = 1u64;
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&[b'k', k], WriteTime::Committed(clock.now()), false, v).unwrap();
                }
                Op::PendingThen(k, v, _) => {
                    tree.insert(&[b'k', k], WriteTime::Pending(TxnId(txn)), false, v).unwrap();
                    txn += 1;
                }
            }
        }
        let mut prev: Option<(Vec<u8>, TimeRank)> = None;
        tree.scan_all(&mut |t| {
            let cur = (t.key.clone(), TimeRank::from(t.time));
            if let Some(p) = &prev {
                assert!(*p <= cur, "case seed {case}: scan out of order: {p:?} then {cur:?}");
            }
            prev = Some(cur);
            Ok(())
        })
        .unwrap();
    }
}

/// The TSB policy preserves all committed versions across live +
/// historical pages, at any threshold.
#[test]
fn tsb_tree_preserves_versions() {
    for case in 0..8u64 {
        let mut rng = SplitMix64::seed_from_u64(0x75_B000 + case);
        let ops = gen_ops(&mut rng, 50, 200);
        let threshold = rng.gen_range(0..1000u32) as f64 / 1000.0;
        run_model(case, ops, SplitPolicy::TimeSplit { threshold });
    }
}
