//! Model-based property tests: the versioned B+-tree against a
//! `BTreeMap<(key, rank), version>` reference model, under inserts, aborts
//! (version removal), lazy stamping, and both split policies.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::{check_tree, BTree, SplitPolicy, TimeRank};
use ccdb_common::{Clock, Duration, RelId, Timestamp, TxnId, VirtualClock};
use ccdb_storage::{BufferPool, DiskManager, WriteTime};
use proptest::prelude::*;

struct TempFile(PathBuf);
impl TempFile {
    fn new() -> TempFile {
        TempFile(std::env::temp_dir().join(format!(
            "ccdb-prop-btree-{}-{}.db",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        )))
    }
}
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Insert a committed version of key `k`.
    Insert(u8, Vec<u8>),
    /// Insert a pending version of key `k` under a fresh txn, then either
    /// stamp it or remove it (commit vs rollback).
    PendingThen(u8, Vec<u8>, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48), any::<bool>())
            .prop_map(|(k, v, commit)| Op::PendingThen(k, v, commit)),
    ]
}

fn run_model(ops: Vec<Op>, policy: SplitPolicy) -> Result<(), TestCaseError> {
    let tf = TempFile::new();
    let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(3)));
    let pool = Arc::new(BufferPool::new(dm, clock.clone(), 64));
    let tree = BTree::create(pool.clone(), clock.clone(), RelId(1), policy).unwrap();
    let mut model: BTreeMap<(Vec<u8>, u64), (bool, Vec<u8>)> = BTreeMap::new();
    let mut next_txn = 1u64;
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let key = vec![b'k', k];
                let t = clock.now();
                tree.insert(&key, WriteTime::Committed(t), false, v.clone()).unwrap();
                model.insert((key, t.0), (false, v));
            }
            Op::PendingThen(k, v, commit) => {
                let key = vec![b'k', k];
                let txn = TxnId(next_txn);
                next_txn += 1;
                tree.insert(&key, WriteTime::Pending(txn), false, v.clone()).unwrap();
                if commit {
                    let t = clock.now();
                    let stamped = tree.stamp(&key, txn, t).unwrap();
                    prop_assert_eq!(stamped, 1, "the pending version must be stamped");
                    model.insert((key, t.0), (false, v));
                } else {
                    let removed =
                        tree.remove_version(&key, TimeRank::pending(txn)).unwrap();
                    prop_assert!(removed.is_some(), "rollback must find the version");
                }
            }
        }
    }
    // The live tree's committed contents equal the model, in order.
    let mut got: Vec<(Vec<u8>, u64, Vec<u8>)> = Vec::new();
    tree.scan_all(&mut |t| {
        let ct = t.time.committed().expect("all versions resolved by now");
        got.push((t.key.clone(), ct.0, t.value.clone()));
        Ok(())
    })
    .unwrap();
    let want: Vec<(Vec<u8>, u64, Vec<u8>)> = model
        .iter()
        .map(|((k, t), (_eol, v))| (k.clone(), *t, v.clone()))
        .collect();
    if matches!(policy, SplitPolicy::KeyOnly) {
        // No migration, no intermediates: live contents are exactly the model.
        prop_assert_eq!(&got, &want);
    }
    // Under either policy, every model version must be reachable (time
    // splits move originals to historical pages and add intermediates,
    // which are extra but never replace history).
    for (k, t, v) in &want {
        let vs = tree.versions(k).unwrap();
        let hist = historical_versions(&pool, &tree, k);
        let found = vs
            .iter()
            .chain(hist.iter())
            .any(|tv| tv.time.committed().map(|c| c.0) == Some(*t) && &tv.value == v);
        prop_assert!(found, "version ({k:?},{t}) lost");
    }
    // Physical integrity holds throughout.
    let errs = check_tree(&pool, &tree).unwrap();
    prop_assert!(errs.is_empty(), "{errs:?}");
    Ok(())
}

fn historical_versions(
    pool: &BufferPool,
    tree: &BTree,
    key: &[u8],
) -> Vec<ccdb_storage::TupleVersion> {
    let mut out = Vec::new();
    for p in tree.historical_pages() {
        if let Ok(f) = pool.fetch(p) {
            for cell in f.read().cells() {
                if let Ok(t) = ccdb_storage::TupleVersion::decode_cell(cell) {
                    if t.key == key {
                        out.push(t);
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn key_only_tree_matches_model(ops in proptest::collection::vec(op_strategy(), 0..150)) {
        run_model(ops, SplitPolicy::KeyOnly)?;
    }

    #[test]
    fn scan_all_is_always_sorted(ops in proptest::collection::vec(op_strategy(), 0..150)) {
        let tf = TempFile::new();
        let dm = Arc::new(DiskManager::open(&tf.0).unwrap());
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(3)));
        let pool = Arc::new(BufferPool::new(dm, clock.clone(), 64));
        let tree = BTree::create(pool.clone(), clock.clone(), RelId(1), SplitPolicy::KeyOnly).unwrap();
        let mut txn = 1u64;
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&[b'k', k], WriteTime::Committed(clock.now()), false, v).unwrap();
                }
                Op::PendingThen(k, v, _) => {
                    tree.insert(&[b'k', k], WriteTime::Pending(TxnId(txn)), false, v).unwrap();
                    txn += 1;
                }
            }
        }
        let mut prev: Option<(Vec<u8>, TimeRank)> = None;
        tree.scan_all(&mut |t| {
            let cur = (t.key.clone(), TimeRank::from(t.time));
            if let Some(p) = &prev {
                assert!(*p <= cur, "scan out of order: {p:?} then {cur:?}");
            }
            prev = Some(cur);
            Ok(())
        })
        .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The TSB policy preserves all committed versions across live +
    /// historical pages, at any threshold.
    #[test]
    fn tsb_tree_preserves_versions(
        ops in proptest::collection::vec(op_strategy(), 50..200),
        threshold in 0.0f64..1.0,
    ) {
        run_model(ops, SplitPolicy::TimeSplit { threshold })?;
    }
}

/// `Timestamp` helper used by the model comparisons above.
#[allow(dead_code)]
fn ts(v: u64) -> Timestamp {
    Timestamp(v)
}
