//! End-to-end compliance lifecycle: run → audit, crash → recover → audit,
//! shred, migrate, holds — every path must audit clean when nobody tampers.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, Timestamp, VirtualClock};
use ccdb_core::{ComplianceConfig, CompliantDb, Hold, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-core-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(mode: Mode) -> ComplianceConfig {
    ComplianceConfig {
        mode,
        regret_interval: Duration::from_mins(5),
        cache_pages: 256,
        auditor_seed: [7u8; 32],
        fsync: false,
        worm_artifact_retention: None,
        ..ComplianceConfig::default()
    }
}

fn setup(tag: &str, mode: Mode) -> (CompliantDb, Arc<VirtualClock>, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
    let db = CompliantDb::open(&d.0, clock.clone(), config(mode)).unwrap();
    (db, clock, d)
}

fn run_workload(db: &CompliantDb, rel: ccdb_common::RelId, n: usize, tag: &str) {
    for i in 0..n {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("{tag}-{i:05}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        if i % 7 == 3 {
            // Update an earlier key too.
            db.write(t, rel, format!("{tag}-{:05}", i / 2).as_bytes(), b"updated").unwrap();
        }
        if i % 13 == 9 {
            db.abort(t).unwrap();
        } else {
            db.commit(t).unwrap();
        }
    }
}

#[test]
fn clean_run_audits_clean_log_consistent() {
    let (db, _clock, _d) = setup("clean-lc", Mode::LogConsistent);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 300, "k");
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(report.stats.records_scanned > 0);
    assert_eq!(db.epoch(), 1);
}

#[test]
fn clean_run_audits_clean_hash_on_read() {
    let (db, _clock, _d) = setup("clean-hor", Mode::HashOnRead);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 300, "k");
    // Force evictions/reads so READ records exist.
    db.engine().clear_cache().unwrap();
    for i in (0..300).step_by(11) {
        let t = db.begin().unwrap();
        let _ = db.read(t, rel, format!("k-{i:05}").as_bytes()).unwrap();
        db.commit(t).unwrap();
    }
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(report.stats.reads_verified > 0, "{:?}", report.stats);
}

#[test]
fn multiple_epochs_audit_clean() {
    let (db, _clock, _d) = setup("epochs", Mode::HashOnRead);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    for epoch in 0..3 {
        run_workload(&db, rel, 120, &format!("e{epoch}"));
        let report = db.audit().unwrap();
        assert!(report.is_clean(), "epoch {epoch}: {:?}", report.violations);
        assert_eq!(db.epoch(), epoch + 1);
    }
    // Data from all epochs still readable.
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"e0-00000").unwrap(), Some(b"v0".to_vec()));
    assert_eq!(db.read(t, rel, b"e2-00010").unwrap(), Some(b"v10".to_vec()));
    db.commit(t).unwrap();
}

#[test]
fn crash_recovery_then_clean_audit() {
    let (db, clock, d) = setup("crash", Mode::HashOnRead);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 150, "pre");
    // An in-flight transaction whose dirty pages hit disk (steal).
    let loser = db.begin().unwrap();
    db.write(loser, rel, b"loser-key", b"never-happened").unwrap();
    db.engine().pool().flush_all().unwrap();
    let db = db.crash_and_recover().unwrap();
    // The loser is gone; committed data survives.
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"loser-key").unwrap(), None);
    assert_eq!(db.read(t, rel, b"pre-00000").unwrap(), Some(b"v0".to_vec()));
    db.commit(t).unwrap();
    run_workload(&db, rel, 50, "post");
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    drop(db);
    drop((clock, d));
}

#[test]
fn repeated_crashes_across_epochs_audit_clean() {
    let (mut db, _clock, _d) = setup("multi-crash", Mode::LogConsistent);
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for round in 0..3 {
        run_workload(&db, rel, 80, &format!("r{round}"));
        db = db.crash_and_recover().unwrap();
        let report = db.audit().unwrap();
        assert!(report.is_clean(), "round {round}: {:?}", report.violations);
    }
}

#[test]
fn shred_lifecycle_audits_clean() {
    let (db, clock, _d) = setup("shred", Mode::HashOnRead);
    let rel = db.create_relation("pii", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.set_retention(t, "pii", Duration::from_mins(60)).unwrap();
    db.commit(t).unwrap();
    // Old data that will expire.
    for i in 0..40 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("ssn-{i:03}").as_bytes(), b"123-45-6789").unwrap();
        db.commit(t).unwrap();
    }
    // First audit retains everything (nothing expired yet).
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    // Time passes beyond the retention period; fresh data arrives.
    clock.advance(Duration::from_mins(90));
    for i in 0..10 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("new-{i:03}").as_bytes(), b"fresh").unwrap();
        db.commit(t).unwrap();
    }
    let vr = db.vacuum().unwrap();
    assert!(vr.shredded >= 40, "shredded {}", vr.shredded);
    // Expired data is gone; fresh data remains.
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"ssn-000").unwrap(), None);
    assert_eq!(db.read(t, rel, b"new-000").unwrap(), Some(b"fresh".to_vec()));
    db.commit(t).unwrap();
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn litigation_hold_blocks_shredding() {
    let (db, clock, _d) = setup("hold", Mode::LogConsistent);
    let rel = db.create_relation("mail", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.set_retention(t, "mail", Duration::from_mins(10)).unwrap();
    db.commit(t).unwrap();
    for i in 0..20 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("msg-{i:03}").as_bytes(), b"content").unwrap();
        db.commit(t).unwrap();
    }
    // Hold covers msg-00x (first ten).
    let t = db.begin().unwrap();
    db.place_hold(
        t,
        &Hold { id: "subpoena-9".into(), rel_name: "mail".into(), key_prefix: b"msg-00".to_vec() },
    )
    .unwrap();
    db.commit(t).unwrap();
    clock.advance(Duration::from_mins(30));
    let vr = db.vacuum().unwrap();
    assert!(vr.held >= 10, "held {}", vr.held);
    assert!(vr.shredded >= 10, "shredded {}", vr.shredded);
    // Held tuples survive; unheld expired tuples are gone.
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"msg-000").unwrap(), Some(b"content".to_vec()));
    assert_eq!(db.read(t, rel, b"msg-015").unwrap(), None);
    db.commit(t).unwrap();
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    // Release the hold; the next vacuum shreds the rest.
    let t = db.begin().unwrap();
    db.release_hold(t, "subpoena-9").unwrap();
    db.commit(t).unwrap();
    let vr2 = db.vacuum().unwrap();
    assert!(vr2.shredded >= 10, "after release shredded {}", vr2.shredded);
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn worm_migration_audits_clean_and_history_stays_queryable() {
    let (db, _clock, _d) = setup("migrate", Mode::HashOnRead);
    let rel = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.9 }).unwrap();
    let mut times: Vec<Timestamp> = Vec::new();
    for round in 0..200u32 {
        let t = db.begin().unwrap();
        for k in 0..8 {
            db.write(t, rel, format!("item-{k}").as_bytes(), &round.to_le_bytes()).unwrap();
        }
        times.push(db.commit(t).unwrap());
        db.engine().run_stamper().unwrap();
    }
    assert!(!db.engine().tree(rel).unwrap().historical_pages().is_empty(), "expected time splits");
    let mr = db.migrate_to_worm(rel).unwrap();
    assert!(mr.pages_migrated > 0);
    assert!(mr.tuples_migrated > 0);
    // Historical values remain reachable through WORM.
    let old = db.read_as_of(rel, b"item-3", times[20]).unwrap().expect("history on WORM");
    assert_eq!(u32::from_le_bytes(old.try_into().unwrap()), 20);
    // Current value unaffected.
    let t = db.begin().unwrap();
    let cur = db.read(t, rel, b"item-3").unwrap().unwrap();
    assert_eq!(u32::from_le_bytes(cur.try_into().unwrap()), 199);
    db.commit(t).unwrap();
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn regular_mode_runs_without_compliance() {
    let (db, _clock, _d) = setup("regular", Mode::Regular);
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 50, "k");
    assert!(db.plugin().is_none());
    assert!(db.audit().is_err(), "Regular mode has nothing to audit");
    // WORM untouched apart from nothing at all.
    assert_eq!(db.worm().stats().files, 0);
}

#[test]
fn heartbeats_and_witnesses_cover_idle_periods() {
    let (db, clock, _d) = setup("idle", Mode::LogConsistent);
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 30, "k");
    // Long idle stretch with periodic ticks (the deployment's timer).
    for _ in 0..10 {
        clock.advance(Duration::from_mins(3));
        db.tick().unwrap();
    }
    run_workload(&db, rel, 10, "late");
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn audit_rejects_active_transactions() {
    let (db, _clock, _d) = setup("active", Mode::LogConsistent);
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.write(t, rel, b"k", b"v").unwrap();
    assert!(db.audit().is_err(), "audit must wait for quiescence");
    db.commit(t).unwrap();
    assert!(db.audit().unwrap().is_clean());
}

#[test]
fn updates_and_deletes_across_audits() {
    let (db, _clock, _d) = setup("upd", Mode::HashOnRead);
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..60 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("k{i:02}").as_bytes(), b"v1").unwrap();
        db.commit(t).unwrap();
    }
    assert!(db.audit().unwrap().is_clean());
    // Epoch 1: update half, delete a few.
    for i in 0..30 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("k{i:02}").as_bytes(), b"v2").unwrap();
        db.commit(t).unwrap();
    }
    for i in 55..60 {
        let t = db.begin().unwrap();
        db.delete(t, rel, format!("k{i:02}").as_bytes()).unwrap();
        db.commit(t).unwrap();
    }
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"k00").unwrap(), Some(b"v2".to_vec()));
    assert_eq!(db.read(t, rel, b"k40").unwrap(), Some(b"v1".to_vec()));
    assert_eq!(db.read(t, rel, b"k57").unwrap(), None);
    db.commit(t).unwrap();
}

#[test]
fn query_verification_interval_closes_at_audit() {
    let (db, _clock, _d) = setup("qvi", Mode::HashOnRead);
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.write(t, rel, b"k", b"v").unwrap();
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    let (value, ticket) = db.read_verifiable(t, rel, b"k").unwrap();
    db.commit(t).unwrap();
    assert_eq!(value, Some(b"v".to_vec()));
    assert!(!ticket.is_verified(&db), "not verified until the epoch is audited");
    assert!(db.audit().unwrap().is_clean());
    assert!(ticket.is_verified(&db), "the clean audit closes the interval");
    // Under the base architecture the interval is infinite.
    let (db2, _c2, _d2) = setup("qvi-lc", Mode::LogConsistent);
    let rel2 = db2.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = db2.begin().unwrap();
    db2.write(t, rel2, b"k", b"v").unwrap();
    db2.commit(t).unwrap();
    let t = db2.begin().unwrap();
    let (_v, ticket2) = db2.read_verifiable(t, rel2, b"k").unwrap();
    db2.commit(t).unwrap();
    assert!(db2.audit().unwrap().is_clean());
    assert!(!ticket2.is_verified(&db2), "log-consistent alone never verifies reads (infinite QVI)");
}

#[test]
fn remigration_enables_shredding_of_worm_resident_history() {
    // Section VIII end-to-end: versions migrate to WORM, expire there, come
    // back to conventional media, get shredded, and the audit stays clean.
    let (db, clock, _d) = setup("remigrate", Mode::HashOnRead);
    let rel = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.9 }).unwrap();
    let t = db.begin().unwrap();
    db.set_retention(t, "hot", Duration::from_mins(60)).unwrap();
    db.commit(t).unwrap();
    for round in 0..150u32 {
        let t = db.begin().unwrap();
        for k in 0..8 {
            db.write(t, rel, format!("k{k}").as_bytes(), &round.to_le_bytes()).unwrap();
        }
        db.commit(t).unwrap();
        db.engine().run_stamper().unwrap();
    }
    let mr = db.migrate_to_worm(rel).unwrap();
    assert!(mr.pages_migrated > 0);
    assert!(db.audit().unwrap().is_clean());
    let history_before = db.version_history(rel, b"k3").unwrap().len();
    assert!(history_before > 100);
    // Everything migrated expires.
    clock.advance(Duration::from_mins(120));
    // Fresh activity so the current versions aren't the only thing left.
    let t = db.begin().unwrap();
    for k in 0..8 {
        db.write(t, rel, format!("k{k}").as_bytes(), b"fresh").unwrap();
    }
    db.commit(t).unwrap();
    let back = db.remigrate_expired().unwrap();
    assert!(back > 0, "expired WORM pages should come back");
    let vr = db.vacuum().unwrap();
    assert!(vr.shredded > 100, "shredded {}", vr.shredded);
    // Old values are no longer reachable through any tier.
    let history_after = db.version_history(rel, b"k3").unwrap();
    assert!(
        history_after.len() < history_before / 2,
        "history should shrink: {} -> {}",
        history_before,
        history_after.len()
    );
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", &report.violations[..report.violations.len().min(4)]);
}

#[test]
fn replay_checkpoint_skips_sealed_prefix() {
    use ccdb_core::{audit_ckpt_name, AuditConfig};
    let (db, _clock, _d) = setup("ckpt", Mode::LogConsistent);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 200, "a");
    let r0 = db.audit().unwrap();
    assert!(r0.is_clean(), "epoch-0 violations: {:?}", r0.violations);
    // The epoch-0 audit sealed a replay checkpoint on WORM.
    assert!(db.worm().exists(&audit_ckpt_name(0)), "missing epoch-0 replay checkpoint");

    run_workload(&db, rel, 150, "b");

    // Epoch-1 dry-run with checkpoints: the sealed snapshot prefix is not
    // re-folded because the checkpoint attests the stored tuple hash.
    let fast = db.audit_outcome_with(db.audit_config()).unwrap();
    assert!(fast.report.is_clean(), "fast violations: {:?}", fast.report.violations);
    assert!(fast.report.stats.snapshot_prefix_skipped > 0, "checkpoint fast path did not engage");

    // Without checkpoints: the full re-fold — identical verdict and hash.
    let slow = db.audit_outcome_with(db.audit_config().with_checkpoints(false)).unwrap();
    assert!(slow.report.is_clean(), "slow violations: {:?}", slow.report.violations);
    assert_eq!(slow.report.stats.snapshot_prefix_skipped, 0);
    assert_eq!(fast.tuple_hash, slow.tuple_hash);
    assert_eq!(fast.report.stats.tuples_final, slow.report.stats.tuples_final);

    // The serial oracle agrees with both.
    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    assert!(serial.report.is_clean(), "serial violations: {:?}", serial.report.violations);
    assert_eq!(serial.tuple_hash, fast.tuple_hash);
    assert_eq!(serial.report.stats.threads_used, 1);
}

#[test]
fn replay_checkpoint_ignored_when_snapshot_hash_differs() {
    // A checkpoint whose hash does not match the stored snapshot must not
    // engage the fast path (the full re-fold + compare runs instead).
    use ccdb_core::AuditConfig;
    let (db, _clock, _d) = setup("ckpt-mismatch", Mode::LogConsistent);
    let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
    run_workload(&db, rel, 120, "a");
    let r0 = db.audit().unwrap();
    assert!(r0.is_clean(), "{:?}", r0.violations);
    run_workload(&db, rel, 60, "b");
    let r1 = db.audit().unwrap();
    assert!(r1.is_clean(), "{:?}", r1.violations);
    run_workload(&db, rel, 60, "c");
    // Epoch 2 audits against the epoch-1 snapshot + epoch-1 checkpoint:
    // still clean, and equal with and without the fast path.
    let fast = db.audit_outcome_with(db.audit_config()).unwrap();
    let slow = db.audit_outcome_with(db.audit_config().with_checkpoints(false)).unwrap();
    let serial = db.audit_outcome_with(AuditConfig::serial()).unwrap();
    assert!(fast.report.is_clean(), "{:?}", fast.report.violations);
    assert_eq!(fast.tuple_hash, slow.tuple_hash);
    assert_eq!(fast.tuple_hash, serial.tuple_hash);
}
