//! Targeted tests for the hash-page-on-read corner cases of Section V.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, VirtualClock};
use ccdb_core::{ComplianceConfig, CompliantDb, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-rh-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(tag: &str) -> (CompliantDb, Arc<VirtualClock>, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
    let db = CompliantDb::open(
        &d.0,
        clock.clone(),
        ComplianceConfig {
            mode: Mode::HashOnRead,
            regret_interval: Duration::from_mins(5),
            cache_pages: 64,
            auditor_seed: [11u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    (db, clock, d)
}

/// "With fine-granularity locking, a transaction T1 that eventually commits
/// may read tuple t1 on a page p where tuple t2 has been written by another
/// transaction T2 that eventually aborts. … to verify that T1 read the right
/// content on p, the hashes of p computed by T1 and the auditor must both
/// include t2."
#[test]
fn read_hash_includes_later_aborted_tuple() {
    let (db, _clock, _d) = setup("aborted-read");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    // Committed background data.
    for i in 0..5 {
        let t = db.begin().unwrap();
        db.write(t, rel, &[b'k', i], b"base").unwrap();
        db.commit(t).unwrap();
    }
    // T2 writes t2 and its dirty page reaches disk (steal) while T2 is
    // still in flight.
    let t2 = db.begin().unwrap();
    db.write(t2, rel, b"k-doomed", b"will-abort").unwrap();
    db.engine().pool().flush_all().unwrap();
    // T1 reads the page *from disk* (cache dropped) — the READ hash it logs
    // includes the uncommitted tuple.
    db.engine().pool().drop_all_without_flush();
    let t1 = db.begin().unwrap();
    let seen = db.read(t1, rel, &[b'k', 2]).unwrap();
    assert_eq!(seen, Some(b"base".to_vec()));
    assert_eq!(db.read(t1, rel, b"k-doomed").unwrap(), None, "T2's write is invisible to T1");
    db.commit(t1).unwrap();
    // Now T2 aborts; the UNDO is logged when the page is next written.
    db.abort(t2).unwrap();
    // The audit must replay the page exactly: including t2 for the READ
    // that happened before the abort, excluding it afterwards.
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

/// Reads before and after lazy stamping hash the same tuple differently
/// (transaction id vs commit time); the auditor's offset rule matches both.
#[test]
fn read_hash_spans_lazy_stamping() {
    let (db, _clock, _d) = setup("stamp-read");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.write(t, rel, b"key", b"value").unwrap();
    db.commit(t).unwrap();
    // Flush with the version still pending, then read it back from disk.
    db.engine().pool().flush_all().unwrap();
    db.engine().pool().drop_all_without_flush();
    let r = db.begin().unwrap();
    db.read(r, rel, b"key").unwrap();
    db.commit(r).unwrap();
    // Stamp, flush, and read again — the stored form changed in place.
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
    let r = db.begin().unwrap();
    db.read(r, rel, b"key").unwrap();
    db.commit(r).unwrap();
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.stats.reads_verified >= 2, "{:?}", report.stats);
}

/// Reads of pages that split since the snapshot replay correctly (the
/// auditor reconstructs the page "exactly as it was at the moment when its
/// hash was appended to L", across PAGE_SPLIT records).
#[test]
fn read_hash_across_splits() {
    let (db, _clock, _d) = setup("split-read");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..200u32 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("{i:06}").as_bytes(), &[0u8; 64]).unwrap();
        db.commit(t).unwrap();
        if i % 37 == 5 {
            // Periodically force physical reads of post-split pages.
            db.engine().clear_cache().unwrap();
            let t = db.begin().unwrap();
            let _ = db.read(t, rel, format!("{:06}", i / 2).as_bytes()).unwrap();
            db.commit(t).unwrap();
        }
    }
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.stats.reads_verified > 5);
}

/// Reads during crash recovery replay correctly: recovery's preads are
/// hashed like any others, with the stamp index pre-loaded so times
/// normalize exactly as the auditor's offset rule expects.
#[test]
fn read_hashes_during_recovery_audit_clean() {
    let (db, _clock, d) = setup("recovery-read");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..80u32 {
        let t = db.begin().unwrap();
        db.write(t, rel, format!("{i:04}").as_bytes(), &[1u8; 48]).unwrap();
        db.commit(t).unwrap();
    }
    // Ensure some pages are on disk with *pending* versions, then crash.
    db.engine().pool().flush_all().unwrap();
    let db = db.crash_and_recover().unwrap();
    // Post-recovery reads from disk.
    let t = db.begin().unwrap();
    assert_eq!(db.read(t, rel, b"0042").unwrap(), Some(vec![1u8; 48]));
    db.commit(t).unwrap();
    let report = db.audit().unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    drop(d);
}

/// Temporal history assembled across live, historical, and migrated pages.
#[test]
fn version_history_spans_all_storage_tiers() {
    let (db, _clock, _d) = setup("history");
    let rel = db.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.9 }).unwrap();
    for round in 0..150u32 {
        let t = db.begin().unwrap();
        db.write(t, rel, b"sensor", &round.to_le_bytes()).unwrap();
        for pad in 0..4 {
            db.write(t, rel, format!("pad-{round}-{pad}").as_bytes(), &[0u8; 40]).unwrap();
        }
        db.commit(t).unwrap();
        db.engine().run_stamper().unwrap();
    }
    db.migrate_to_worm(rel).unwrap();
    let history = db.version_history(rel, b"sensor").unwrap();
    assert!(history.len() >= 150, "history shrank: {}", history.len());
    // Values are in commit order: first recorded round is 0, last is 149.
    assert_eq!(u32::from_le_bytes(history[0].2.clone().try_into().unwrap()), 0);
    assert_eq!(u32::from_le_bytes(history.last().unwrap().2.clone().try_into().unwrap()), 149);
    assert!(db.audit().unwrap().is_clean());
}
