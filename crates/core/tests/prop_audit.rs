//! Property tests for the audit: *soundness on honest runs* (no false
//! alarms for arbitrary workloads, including aborts, crashes, and multiple
//! epochs) and *sensitivity* (any single post-hoc byte-level tuple edit is
//! caught).
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`]; each case's seed is printed on
//! failure for deterministic replay.

#![cfg(feature = "proptest")]

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_adversary::Mala;
use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, SplitMix64, VirtualClock};
use ccdb_core::{ComplianceConfig, CompliantDb, Mode};

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-prop-audit-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Clone, Debug)]
enum Step {
    Txn { writes: Vec<(u8, u8, bool)>, commit: bool },
    Crash,
    Audit,
    Stamp,
}

fn gen_step(rng: &mut SplitMix64) -> Step {
    match rng.gen_range(0..9u32) {
        0..=5 => {
            let n = rng.gen_range(1..5usize);
            let writes = (0..n)
                .map(|_| (rng.gen_range(0..=255u8), rng.gen_range(0..=255u8), rng.gen_bool(0.1)))
                .collect();
            Step::Txn { writes, commit: rng.gen_bool(0.85) }
        }
        6 => Step::Crash,
        7 => Step::Audit,
        _ => Step::Stamp,
    }
}

fn config(mode: Mode) -> ComplianceConfig {
    ComplianceConfig {
        mode,
        regret_interval: Duration::from_mins(5),
        cache_pages: 48,
        auditor_seed: [5u8; 32],
        fsync: false,
        worm_artifact_retention: None,
        ..ComplianceConfig::default()
    }
}

/// Honest runs never produce violations, whatever the interleaving of
/// transactions, aborts, crashes, stamper runs, and audits.
#[test]
fn honest_runs_always_audit_clean() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::seed_from_u64(0xA0D1_7000 + case);
        let steps: Vec<Step> = (0..rng.gen_range(1..35usize)).map(|_| gen_step(&mut rng)).collect();
        let hash_on_read = rng.gen_bool(0.5);

        let dir = TempDir::new();
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
        let mode = if hash_on_read { Mode::HashOnRead } else { Mode::LogConsistent };
        let mut db = CompliantDb::open(&dir.0, clock.clone(), config(mode)).unwrap();
        let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        for step in steps {
            match step {
                Step::Txn { writes, commit } => {
                    let t = db.begin().unwrap();
                    for (k, v, del) in writes {
                        if del {
                            db.delete(t, rel, &[b'x', k]).unwrap();
                        } else {
                            db.write(t, rel, &[b'x', k], &[v; 32]).unwrap();
                        }
                    }
                    if commit {
                        db.commit(t).unwrap();
                    } else {
                        db.abort(t).unwrap();
                    }
                }
                Step::Crash => {
                    db = db.crash_and_recover().unwrap();
                }
                Step::Audit => {
                    let report = db.audit().unwrap();
                    assert!(
                        report.is_clean(),
                        "case seed {case}: mid-run audit: {:?}",
                        report.violations
                    );
                }
                Step::Stamp => {
                    db.engine().run_stamper().unwrap();
                }
            }
        }
        let report = db.audit().unwrap();
        assert!(report.is_clean(), "case seed {case}: final audit: {:?}", report.violations);
    }
}

/// Sensitivity: after a clean run, flipping any single committed tuple's
/// value on disk is always detected.
#[test]
fn any_single_tuple_edit_is_detected() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::seed_from_u64(0xED17_0000 + case);
        let n = rng.gen_range(5..60u8);
        let victim = rng.gen_range(0..=255u8);

        let dir = TempDir::new();
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
        let db = CompliantDb::open(&dir.0, clock, config(Mode::LogConsistent)).unwrap();
        let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        for i in 0..n {
            let t = db.begin().unwrap();
            db.write(t, rel, &[b'x', i], &[i; 32]).unwrap();
            db.commit(t).unwrap();
        }
        db.engine().run_stamper().unwrap();
        db.engine().clear_cache().unwrap();
        let victim_key = [b'x', victim % n];
        let mala = Mala::new(db.engine().db_path());
        assert!(mala.alter_tuple_value(&victim_key, b"forged-value-xx").unwrap());
        let report = db.audit().unwrap();
        assert!(!report.is_clean(), "case seed {case}: edit of {victim_key:?} went undetected");
    }
}
