//! Two paper-critical behaviors that only show under hostile conditions:
//!
//! * "If at any point we are unable to write to L, **transaction processing
//!   must halt** until the problem is fixed" (§IV) — WORM unavailability
//!   must stop page writes rather than let unlogged state reach disk.
//! * Witness files prove liveness through their **trusted create times**;
//!   an adversary who manufactures a witness after the fact (she *can* call
//!   the WORM API) gains nothing, because the compliance clock stamps her
//!   file with the real time.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Clock, Duration, Timestamp, TxnId, VirtualClock};
use ccdb_core::{logger, ComplianceConfig, CompliantDb, LogRecord, Mode, Violation};
use ccdb_storage::PageStore;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-halt-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(tag: &str) -> (CompliantDb, Arc<VirtualClock>, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
    let db = CompliantDb::open(
        &d.0,
        clock.clone(),
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 64,
            auditor_seed: [13u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    (db, clock, d)
}

/// When the epoch log can no longer be appended (here: the file is sealed,
/// standing in for an unreachable WORM server), flushing compliance records
/// fails with `ComplianceHalt`, and page writes — which must wait for their
/// records — fail with it too. No page with unlogged tuples reaches disk.
#[test]
fn worm_unavailability_halts_page_writes() {
    let (db, _clock, _d) = setup("halt");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.write(t, rel, b"k1", b"v1").unwrap();
    db.commit(t).unwrap();
    // Everything logged so far goes out cleanly.
    db.plugin().unwrap().logger().flush().unwrap();
    // Disaster: L becomes unwritable (sealed epoch ~ unreachable server).
    db.worm().seal(&logger::epoch_log_name(db.epoch())).unwrap();
    // New writes still enter the buffer…
    let t = db.begin().unwrap();
    db.write(t, rel, b"k2", b"v2").unwrap();
    db.commit(t).unwrap();
    // …but no dirty page can reach the (editable) disk: the flush must
    // halt rather than write state whose records are not on WORM.
    let err = db.engine().pool().flush_all().unwrap_err();
    assert!(
        matches!(err, ccdb_common::Error::ComplianceHalt(_) | ccdb_common::Error::WormViolation(_)),
        "{err}"
    );
    // The on-disk file still lacks the unlogged tuple (the halt worked):
    // reading raw disk through a fresh scan finds no k2 cell.
    let disk = db.engine().disk();
    let mut found = false;
    for i in 0..disk.page_count() {
        if let Ok(raw) = disk.read_raw(ccdb_common::PageNo(i)) {
            if raw.windows(2).any(|w| w == b"k2") {
                found = true;
            }
        }
    }
    assert!(!found, "unlogged tuple leaked to disk despite the halt");
}

/// Mala tries to backdate activity into a silent interval and to legitimize
/// it with a freshly created witness file. The witness's trusted create time
/// exposes the forgery.
#[test]
fn forged_witness_cannot_legitimize_backdated_activity() {
    let (db, clock, _d) = setup("forged-witness");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..20u8 {
        let t = db.begin().unwrap();
        db.write(t, rel, &[b'k', i], b"v").unwrap();
        db.commit(t).unwrap();
    }
    // A long silent gap (the DBMS idle, no ticks — legitimately dead time).
    clock.advance(Duration::from_mins(40));
    let t = db.begin().unwrap();
    db.write(t, rel, b"after-gap", b"v").unwrap();
    db.commit(t).unwrap();
    // Honest state of affairs would audit clean. Mala now appends a
    // STAMP_TRANS claiming a commit *inside* the dead gap, and forges the
    // witness file for that interval via the WORM API.
    let r = Duration::from_mins(5).0;
    let gap_time = Timestamp(clock.now().0 - Duration::from_mins(20).0);
    let gap_interval = gap_time.0 / r;
    let plugin = db.plugin().unwrap().clone();
    plugin
        .logger()
        .append_flush(&LogRecord::StampTrans { txn: TxnId(40_000), commit_time: gap_time })
        .unwrap();
    let witness = logger::witness_name(db.epoch(), gap_interval);
    assert!(!db.worm().exists(&witness), "the interval was genuinely dead");
    db.worm().create(&witness, Timestamp::MAX).unwrap(); // forged NOW
    let report = db.audit().unwrap();
    assert!(!report.is_clean());
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            // Caught twice over: the forged stamp's time runs backwards in
            // log order, and the forged witness's create time is outside
            // its interval.
            Violation::CommitTimesNotMonotonic { .. } | Violation::MissingWitness { .. }
        )),
        "{:?}",
        report.violations
    );
}

/// A backdated stamp placed *at the end of time* (no later honest stamps to
/// trip monotonicity) is still caught: its interval lacks a valid witness.
#[test]
fn backdated_stamp_with_no_successor_still_needs_a_witness() {
    let (db, clock, _d) = setup("tail-backdate");
    let rel = db.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = db.begin().unwrap();
    db.write(t, rel, b"k", b"v").unwrap();
    db.commit(t).unwrap();
    // Time moves on silently; Mala appends a stamp claiming activity in the
    // dead period, with a time LARGER than every honest stamp (so the
    // monotonicity check alone cannot see it).
    clock.advance(Duration::from_mins(60));
    let fake_time = Timestamp(clock.now().0 - Duration::from_mins(30).0);
    let plugin = db.plugin().unwrap().clone();
    plugin
        .logger()
        .append_flush(&LogRecord::StampTrans { txn: TxnId(50_000), commit_time: fake_time })
        .unwrap();
    let report = db.audit().unwrap();
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::MissingWitness { .. })),
        "{:?}",
        report.violations
    );
}
