//! The compliance plugin: a decorator over the engine's page store plus the
//! tree and transaction hooks — the paper's "compliance logging plugin that
//! taps into the pread/pwrite system calls".
//!
//! * **pwrite** — the plugin parses the outgoing page and diffs it against a
//!   cached pristine copy (populated on pread: "we reduce this cost by
//!   caching a separate copy of the page in available memory … on each
//!   pread"): versions present in the buffer image but not the pristine copy
//!   become `NEW_TUPLE` records; versions that disappeared become `UNDO`
//!   records; a version whose time changed from a transaction id to a commit
//!   time is recognized as an in-place lazy stamp and produces nothing (the
//!   `STAMP_TRANS` record already covers it). All buffered compliance records
//!   are flushed to WORM *before* the page write proceeds — "we require all
//!   data page writes to wait until their corresponding NEW_TUPLE and/or
//!   STAMP_TRANS records have reached the WORM server".
//! * **pread** (hash-page-on-read refinement) — the plugin hashes the page's
//!   content with the sequential hash `Hs` and appends a `READ` record. Leaf
//!   tuples are hashed in tuple-order-number order, each with its commit time
//!   if its transaction has committed by now, else with its transaction id —
//!   which makes the auditor's replay rule ("commit time iff the STAMP_TRANS
//!   record appears earlier in L than the READ") exact.
//! * **Structure hooks** — splits, index-entry changes, and root growth are
//!   logged (`PAGE_SPLIT` carries the full content of both new pages, as in
//!   the paper), and the pristine cache is primed with the post-split
//!   content so the move itself never manufactures `NEW_TUPLE` records.
//! * **Transaction hooks** — `STAMP_TRANS` on commit, `ABORT` after rollback,
//!   `START_RECOVERY` plus re-emitted status records around crash recovery.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ccdb_btree::{SplitKind, StructureHooks};
use ccdb_common::sync::Mutex;
use ccdb_common::{ClockRef, PageNo, Result, Timestamp, TxnId};
use ccdb_crypto::{Digest, HsChain};
use ccdb_engine::EngineHooks;
use ccdb_storage::{Page, PageStore, PageType, TupleVersion, WriteTime};

use crate::logger::ComplianceLogger;
use crate::records::{LogRecord, SplitSide};

/// The `Hs` element bytes for one leaf tuple with its time resolved:
/// `(rel, key, kind, time-or-txn, eol, value, seq)`.
pub fn hs_element_bytes(t: &TupleVersion, resolved_commit: Option<Timestamp>) -> Vec<u8> {
    let mut w = ccdb_common::ByteWriter::with_capacity(32 + t.key.len() + t.value.len());
    w.put_u32(t.rel.0);
    w.put_len_bytes(&t.key);
    match (t.time, resolved_commit) {
        (_, Some(ct)) => {
            w.put_u8(1);
            w.put_u64(ct.0);
        }
        (WriteTime::Committed(ct), None) => {
            w.put_u8(1);
            w.put_u64(ct.0);
        }
        (WriteTime::Pending(txn), None) => {
            w.put_u8(0);
            w.put_u64(txn.0);
        }
    }
    w.put_u8(if t.end_of_life { 1 } else { 0 });
    w.put_len_bytes(&t.value);
    w.put_u16(t.seq);
    w.into_vec()
}

/// `Hs` over a leaf page: tuples in tuple-order-number order, each resolved
/// through `resolve` (commit time if known).
pub fn leaf_hs(tuples: &[TupleVersion], resolve: impl Fn(TxnId) -> Option<Timestamp>) -> Digest {
    let mut sorted: Vec<&TupleVersion> = tuples.iter().collect();
    sorted.sort_by_key(|t| t.seq);
    let mut chain = HsChain::new();
    for t in sorted {
        let rc = t.time.pending().and_then(&resolve);
        chain.extend(&hs_element_bytes(t, rc));
    }
    chain.value()
}

/// `Hs` over an internal page: raw entry cells in slot order.
pub fn inner_hs<'a>(cells: impl Iterator<Item = &'a [u8]>) -> Digest {
    let mut chain = HsChain::new();
    for c in cells {
        chain.extend(c);
    }
    chain.value()
}

/// Counters the space-overhead experiment reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct PluginStats {
    /// `NEW_TUPLE` records emitted.
    pub new_tuples: u64,
    /// `UNDO` records emitted.
    pub undos: u64,
    /// `READ` records emitted (hash-page-on-read).
    pub reads_hashed: u64,
    /// `PAGE_SPLIT` records emitted.
    pub splits: u64,
    /// In-place lazy stamps recognized (no record needed).
    pub stamps_recognized: u64,
}

struct PluginState {
    /// Pristine (on-disk) tuple content per leaf page.
    pristine: HashMap<PageNo, Vec<TupleVersion>>,
    /// Pristine entry cells per internal page.
    pristine_inner: HashMap<PageNo, Vec<Vec<u8>>>,
    /// Pages retired by splits: their final Free-page write logs nothing.
    retired: HashSet<PageNo>,
    /// Pages migrated to WORM (reads/writes of these are unexpected).
    migrated: HashSet<PageNo>,
    /// Commit times known to the plugin (for read-hash normalization).
    commit_times: HashMap<TxnId, Timestamp>,
    /// Crash recovery in flight: reads are *not* hashed. Recovery reads the
    /// pre-crash disk state by design — pages whose compliance records
    /// reached WORM but whose pwrite was lost in the crash legitimately lag
    /// L, and redo is about to reconcile them with it. Hashing those
    /// self-reads would make every honest crash recovery indistinguishable
    /// from tampering in the audit; any divergence redo cannot justify still
    /// surfaces through the diff records the recovery-time pwrites emit.
    in_recovery: bool,
    /// Trusted (auditor) reads in flight: reads are *not* hashed. The
    /// auditor consults live relations (litigation holds, retention
    /// periods) while evaluating shred legality; those are its own trusted
    /// reads of state it is simultaneously verifying physically, not user
    /// query results needing the hash-page-on-read defense. Suppressing
    /// them keeps an audit side-effect-free on `L`, so back-to-back audit
    /// dry-runs (the serial/parallel differential harness) observe the
    /// same log.
    trusted_reads: usize,
    stats: PluginStats,
}

/// The compliance plugin. Install as the page store wrapper, the tree
/// structure hooks, and the engine hooks of one engine instance.
pub struct CompliancePlugin {
    inner: Arc<dyn PageStore>,
    logger: Arc<ComplianceLogger>,
    clock: ClockRef,
    hash_on_read: bool,
    state: Mutex<PluginState>,
}

impl CompliancePlugin {
    /// Wraps `inner`, logging to `logger`. `hash_on_read` enables the
    /// refinement of Section V.
    pub fn new(
        inner: Arc<dyn PageStore>,
        logger: Arc<ComplianceLogger>,
        clock: ClockRef,
        hash_on_read: bool,
    ) -> Arc<CompliancePlugin> {
        Arc::new(CompliancePlugin {
            inner,
            logger,
            clock,
            hash_on_read,
            state: Mutex::new(PluginState {
                pristine: HashMap::new(),
                pristine_inner: HashMap::new(),
                retired: HashSet::new(),
                migrated: HashSet::new(),
                commit_times: HashMap::new(),
                in_recovery: false,
                trusted_reads: 0,
                stats: PluginStats::default(),
            }),
        })
    }

    /// The logger this plugin appends to.
    pub fn logger(&self) -> &Arc<ComplianceLogger> {
        &self.logger
    }

    /// Emission counters.
    pub fn stats(&self) -> PluginStats {
        self.state.lock().stats
    }

    /// Zeroes the emission counters (benchmarks reset after the load phase).
    pub fn reset_stats(&self) {
        self.state.lock().stats = PluginStats::default();
    }

    /// Marks a page as migrated to WORM (called by the migration routine
    /// after the `MIGRATE` record is durable).
    pub fn note_migrated(&self, pgno: PageNo) {
        let mut st = self.state.lock();
        st.migrated.insert(pgno);
        st.pristine.remove(&pgno);
        st.pristine_inner.remove(&pgno);
    }

    /// Regret-interval housekeeping passthrough.
    pub fn tick(&self) -> Result<()> {
        self.logger.tick()
    }

    /// Enters a trusted-read section (auditor self-reads): page reads are
    /// served and cached but no `READ` records are logged. Nestable; must
    /// be balanced with [`CompliancePlugin::end_trusted_reads`].
    pub fn begin_trusted_reads(&self) {
        self.state.lock().trusted_reads += 1;
    }

    /// Leaves a trusted-read section.
    pub fn end_trusted_reads(&self) {
        let mut st = self.state.lock();
        st.trusted_reads = st.trusted_reads.saturating_sub(1);
    }

    fn diff_and_log(&self, page: &Page) -> Result<()> {
        let pgno = page.pgno();
        {
            let mut st = self.state.lock();
            if st.retired.contains(&pgno) {
                st.pristine.remove(&pgno);
                return Ok(());
            }
        }
        let new_tuples: Vec<TupleVersion> =
            page.cells().map(TupleVersion::decode_cell).collect::<Result<_>>()?;
        self.diff_against_pristine(pgno, new_tuples)
    }

    /// Diffs an internal page's entry cells against the pristine copy,
    /// emitting `INDEX_INSERT`/`INDEX_REMOVE` records. This (not a hook on
    /// the tree) is the source of index records, so crash recovery's
    /// physiological redo regenerates them at the next pwrite exactly like
    /// leaf `NEW_TUPLE` records; the auditor deduplicates.
    fn diff_inner_against_pristine(&self, pgno: PageNo, new_cells: Vec<Vec<u8>>) -> Result<()> {
        let mut st = self.state.lock();
        if st.retired.contains(&pgno) {
            st.pristine_inner.remove(&pgno);
            return Ok(());
        }
        let Some(old) = st.pristine_inner.remove(&pgno) else {
            // No baseline at all: in steady state every internal page is
            // primed at creation (split/new-root hooks) or on pread, so this
            // page was rebuilt by crash-recovery redo from its WAL images
            // and the entry deltas it took between its creation record and
            // the crash never reached L. Per-entry diffs cannot retract the
            // stale entries L still carries (an INDEX_INSERT's duplicate
            // tolerance has no authoritative "drop the rest"), so log the
            // full content as an image that *replaces* the replayed state.
            self.logger.append(&LogRecord::IndexImage { pgno, cells: new_cells.clone() })?;
            st.pristine_inner.insert(pgno, new_cells);
            return Ok(());
        };
        let mut old_counts: HashMap<&[u8], i64> = HashMap::new();
        for c in &old {
            *old_counts.entry(c.as_slice()).or_default() += 1;
        }
        for c in &new_cells {
            let e = old_counts.entry(c.as_slice()).or_default();
            if *e > 0 {
                *e -= 1;
            } else {
                self.logger.append(&LogRecord::IndexInsert { pgno, cell: c.clone() })?;
            }
        }
        let removed: Vec<Vec<u8>> = old_counts
            .iter()
            .flat_map(|(c, n)| std::iter::repeat_n(c.to_vec(), (*n).max(0) as usize))
            .collect();
        drop(st);
        for c in removed {
            self.logger.append(&LogRecord::IndexRemove { pgno, cell: c })?;
        }
        self.state.lock().pristine_inner.insert(pgno, new_cells);
        Ok(())
    }

    /// Diffs `new_tuples` against the pristine copy of `pgno`, emitting
    /// `NEW_TUPLE`/`UNDO` records and installing the new content as the
    /// pristine copy.
    fn diff_against_pristine(&self, pgno: PageNo, new_tuples: Vec<TupleVersion>) -> Result<()> {
        let mut st = self.state.lock();
        let old = st.pristine.remove(&pgno).unwrap_or_default();
        let mut old_map: HashMap<(Vec<u8>, u16), TupleVersion> =
            old.into_iter().map(|t| ((t.key.clone(), t.seq), t)).collect();
        for t in &new_tuples {
            match old_map.remove(&(t.key.clone(), t.seq)) {
                None => {
                    self.logger.append(&LogRecord::NewTuple {
                        pgno,
                        rel: t.rel,
                        cell: t.encode_cell(),
                    })?;
                    st.stats.new_tuples += 1;
                }
                Some(o) => {
                    if o == *t {
                        continue;
                    }
                    let is_stamp = o.time.pending().is_some()
                        && t.time.committed().is_some()
                        && o.key == t.key
                        && o.value == t.value
                        && o.end_of_life == t.end_of_life;
                    if is_stamp {
                        st.stats.stamps_recognized += 1;
                        continue;
                    }
                    // A version mutated in place: not a legal transaction-time
                    // operation. Log it faithfully; the audit will flag it.
                    self.logger.append(&LogRecord::Undo {
                        pgno,
                        rel: o.rel,
                        cell: o.encode_cell(),
                    })?;
                    self.logger.append(&LogRecord::NewTuple {
                        pgno,
                        rel: t.rel,
                        cell: t.encode_cell(),
                    })?;
                    st.stats.undos += 1;
                    st.stats.new_tuples += 1;
                }
            }
        }
        for (_, o) in old_map {
            self.logger.append(&LogRecord::Undo { pgno, rel: o.rel, cell: o.encode_cell() })?;
            st.stats.undos += 1;
        }
        st.pristine.insert(pgno, new_tuples);
        Ok(())
    }
}

impl PageStore for CompliancePlugin {
    fn pread(&self, pgno: PageNo) -> Result<Page> {
        let page = self.inner.pread(pgno)?;
        match page.page_type() {
            PageType::Leaf => {
                let tuples: Vec<TupleVersion> =
                    page.cells().map(TupleVersion::decode_cell).collect::<Result<_>>()?;
                // Hash + READ append happen under one state-lock hold: the
                // auditor's replay rule is "a tuple hashes with its commit
                // time iff its STAMP_TRANS appears earlier in L than the
                // READ". A concurrent commit interleaving its STAMP_TRANS
                // between our hash (which resolved the txn as pending) and
                // our READ append would make an honest read audit as a
                // violation, so both must be atomic against `on_commit`.
                let mut st = self.state.lock();
                if self.hash_on_read && !st.in_recovery && st.trusted_reads == 0 {
                    let hs = leaf_hs(&tuples, |txn| st.commit_times.get(&txn).copied());
                    self.logger.append(&LogRecord::Read { pgno, hs })?;
                    st.stats.reads_hashed += 1;
                }
                st.pristine.insert(pgno, tuples);
            }
            PageType::Inner => {
                let cells: Vec<Vec<u8>> = page.cells().map(|c| c.to_vec()).collect();
                let mut st = self.state.lock();
                if self.hash_on_read && !st.in_recovery && st.trusted_reads == 0 {
                    let hs = inner_hs(cells.iter().map(|c| c.as_slice()));
                    self.logger.append(&LogRecord::Read { pgno, hs })?;
                    st.stats.reads_hashed += 1;
                }
                st.pristine_inner.insert(pgno, cells);
            }
            _ => {}
        }
        Ok(page)
    }

    fn pwrite(&self, page: &mut Page) -> Result<()> {
        match page.page_type() {
            PageType::Leaf => self.diff_and_log(page)?,
            PageType::Inner => {
                let pgno = page.pgno();
                let retired = self.state.lock().retired.contains(&pgno);
                if !retired {
                    let cells: Vec<Vec<u8>> = page.cells().map(|c| c.to_vec()).collect();
                    self.diff_inner_against_pristine(pgno, cells)?;
                }
            }
            _ => {}
        }
        // Every record implied by (or preceding) this page state must be on
        // WORM before the bytes reach the (editable) database file.
        self.logger.flush()?;
        self.inner.pwrite(page)
    }

    fn allocate(&self) -> Result<PageNo> {
        self.inner.allocate()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

impl StructureHooks for CompliancePlugin {
    fn on_split(
        &self,
        kind: SplitKind,
        old: &Page,
        left: &Page,
        right: &Page,
        intermediates: &[TupleVersion],
    ) {
        let rec = LogRecord::PageSplit {
            old: old.pgno(),
            rel: old.rel_id(),
            left: SplitSide {
                pgno: left.pgno(),
                historical: left.is_historical(),
                cells: left.cells().map(|c| c.to_vec()).collect(),
            },
            right: SplitSide {
                pgno: right.pgno(),
                historical: right.is_historical(),
                cells: right.cells().map(|c| c.to_vec()).collect(),
            },
            intermediates: intermediates.iter().map(|t| t.encode_cell()).collect(),
        };
        // Content that never reached a pwrite (and thus has no NEW_TUPLE /
        // INDEX_INSERT record yet) must be logged before the split record,
        // or the auditor's replayed input state would be incomplete.
        if kind == SplitKind::Inner {
            let cells: Vec<Vec<u8>> = old.cells().map(|c| c.to_vec()).collect();
            let _ = self.diff_inner_against_pristine(old.pgno(), cells);
        } else if let Ok(tuples) =
            old.cells().map(TupleVersion::decode_cell).collect::<Result<Vec<_>>>()
        {
            if std::env::var("CCDB_PLUGIN_DEBUG").is_ok() {
                let st = self.state.lock();
                eprintln!(
                    "SPLIT-SYNC pgno={:?} page_tuples={} pristine={:?} retired={}",
                    old.pgno(),
                    tuples.len(),
                    st.pristine.get(&old.pgno()).map(|v| v.len()),
                    st.retired.contains(&old.pgno())
                );
            }
            let _ = self.diff_against_pristine(old.pgno(), tuples);
        }
        // Hook signatures are infallible (the tree cannot meaningfully
        // recover); a logging failure is latched and surfaces at the next
        // flush, halting transaction processing as the paper requires.
        let _ = self.logger.append(&rec);
        let mut st = self.state.lock();
        st.retired.insert(old.pgno());
        st.pristine.remove(&old.pgno());
        st.stats.splits += 1;
        st.pristine_inner.remove(&old.pgno());
        if kind == SplitKind::Inner {
            st.pristine_inner.insert(left.pgno(), left.cells().map(|c| c.to_vec()).collect());
            st.pristine_inner.insert(right.pgno(), right.cells().map(|c| c.to_vec()).collect());
        } else {
            let decode = |p: &Page| -> Vec<TupleVersion> {
                p.cells().filter_map(|c| TupleVersion::decode_cell(c).ok()).collect()
            };
            st.pristine.insert(left.pgno(), decode(left));
            st.pristine.insert(right.pgno(), decode(right));
        }
    }

    // Index-entry maintenance is captured by pwrite diffing of internal
    // pages (so crash recovery regenerates lost records); the per-operation
    // hooks need not log anything. A new root is primed into the pristine
    // cache so its first pwrite diffs from empty and emits its entries.
    fn on_new_root(&self, root: PageNo, entries: &[Vec<u8>]) {
        let _ = self.logger.append(&LogRecord::NewRoot {
            rel: ccdb_common::RelId(0),
            pgno: root,
            cells: entries.to_vec(),
        });
        self.state.lock().pristine_inner.insert(root, entries.to_vec());
    }
}

impl EngineHooks for CompliancePlugin {
    fn on_commit(&self, txn: TxnId, commit_time: Timestamp) -> Result<()> {
        // Commit-time installation and the STAMP_TRANS append are one
        // critical section (against the hash-on-read path in `pread`):
        // otherwise a reader could hash this txn as pending yet append its
        // READ *after* our STAMP_TRANS, which the auditor rejects. The
        // engine invokes this hook in ticket order, so STAMP_TRANS records
        // land on L in strictly increasing commit-time order.
        let mut st = self.state.lock();
        st.commit_times.insert(txn, commit_time);
        self.logger.append(&LogRecord::StampTrans { txn, commit_time })?;
        drop(st);
        Ok(())
    }

    fn on_abort(&self, txn: TxnId) -> Result<()> {
        self.logger.append(&LogRecord::Abort { txn })?;
        Ok(())
    }

    fn on_recovery_start(&self) -> Result<()> {
        self.state.lock().in_recovery = true;
        // Install the commit times already recorded on L (via the stamp
        // index) so post-recovery read hashes normalize exactly the way the
        // auditor's offset rule expects: a tuple is hashed with its commit
        // time iff its STAMP_TRANS is on L *before* the READ record.
        let epoch = self.logger.epoch();
        let stamp_name = crate::logger::epoch_stamp_name(epoch);
        if self.logger.worm().exists(&stamp_name) {
            let bytes = self.logger.worm().read_all(&stamp_name)?;
            let entries = crate::logger::StampIndexEntry::decode_all(&bytes)?;
            let mut st = self.state.lock();
            for e in entries {
                if let crate::logger::StampIndexEntry::Stamp { txn, time, .. } = e {
                    st.commit_times.insert(txn, time);
                }
            }
        }
        self.logger.append(&LogRecord::StartRecovery { time: self.clock.now() })?;
        self.logger.flush()
    }

    fn on_recovery_end(&self, committed: &[(TxnId, Timestamp)], aborted: &[TxnId]) -> Result<()> {
        // Re-emit status records for everything recovery decided; the
        // auditor tolerates duplicates. Commit times are also installed for
        // read-hash normalization of recovery-time reads.
        {
            let mut st = self.state.lock();
            for (txn, t) in committed {
                st.commit_times.insert(*txn, *t);
            }
        }
        for (txn, t) in committed {
            self.logger.append(&LogRecord::StampTrans { txn: *txn, commit_time: *t })?;
        }
        for txn in aborted {
            self.logger.append(&LogRecord::Abort { txn: *txn })?;
        }
        self.logger.flush()?;
        self.state.lock().in_recovery = false;
        Ok(())
    }
}

/// Computes the SHA-256 content hash of a page's cells (used by `MIGRATE`
/// and snapshot records to bind copies to originals).
pub fn page_content_hash(cells: &[Vec<u8>]) -> Digest {
    let mut h = ccdb_crypto::Sha256::new();
    for c in cells {
        h.update(&(c.len() as u32).to_le_bytes());
        h.update(c);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::RelId;

    fn tv(key: &[u8], seq: u16, time: WriteTime, value: &[u8]) -> TupleVersion {
        TupleVersion {
            rel: RelId(1),
            key: key.to_vec(),
            time,
            seq,
            end_of_life: false,
            value: value.to_vec(),
        }
    }

    #[test]
    fn leaf_hs_sorts_by_seq() {
        let a = tv(b"a", 2, WriteTime::Committed(Timestamp(5)), b"x");
        let b = tv(b"b", 1, WriteTime::Committed(Timestamp(6)), b"y");
        let h1 = leaf_hs(&[a.clone(), b.clone()], |_| None);
        let h2 = leaf_hs(&[b, a], |_| None);
        assert_eq!(h1, h2, "Hs depends on tuple-order numbers, not slot order");
    }

    #[test]
    fn leaf_hs_normalizes_pending_times() {
        let pending = tv(b"a", 0, WriteTime::Pending(TxnId(9)), b"x");
        let stamped = tv(b"a", 0, WriteTime::Committed(Timestamp(55)), b"x");
        let resolved =
            leaf_hs(std::slice::from_ref(&pending), |t| (t == TxnId(9)).then_some(Timestamp(55)));
        let direct = leaf_hs(&[stamped], |_| None);
        assert_eq!(resolved, direct, "a resolvable pending tuple hashes as committed");
        let unresolved = leaf_hs(&[pending], |_| None);
        assert_ne!(unresolved, direct);
    }

    #[test]
    fn inner_hs_is_order_sensitive() {
        let a: &[u8] = b"entry-a";
        let b: &[u8] = b"entry-b";
        assert_ne!(inner_hs([a, b].into_iter()), inner_hs([b, a].into_iter()));
    }

    #[test]
    fn content_hash_is_boundary_safe() {
        let x = page_content_hash(&[b"ab".to_vec(), b"c".to_vec()]);
        let y = page_content_hash(&[b"a".to_vec(), b"bc".to_vec()]);
        assert_ne!(x, y);
    }
}
