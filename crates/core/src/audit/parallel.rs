//! The parallel audit pipeline: the three-stage restructuring of the
//! paper's single-pass audit, proven verdict-identical to the serial oracle
//! by the differential and property suites.
//!
//! # Stage 1 — chunked decode + sharded replay of `L`
//!
//! The frame scan (a cheap sequential walk of the `len ‖ checksum ‖ body`
//! framing) finds record boundaries; decode + checksum verification of the
//! bodies — the CPU-heavy part — then fans out over
//! [`l_chunk_records`](super::AuditConfig::l_chunk_records)-sized chunks on
//! the worker pool. Replay is sharded by **page-split-connected
//! components**: a union-find over `PAGE_SPLIT` records guarantees every
//! record that can touch a given page's state lands in the same shard, so
//! the per-shard [`Replayer`]s own disjoint state maps and each shard sees
//! its records in global offset order. Cross-shard effects (the
//! completeness fold's `seen`-membership semantics, shred consumption) are
//! made deterministic by construction:
//!
//! * fold operations are *recorded* per shard with `(offset, sub)` keys and
//!   applied against the global membership set in one sorted pass — the
//!   exact order the serial oracle applied them in;
//! * `SHREDDED`/`UNDO` consumption is precomputed in a sequential pass over
//!   the decoded records (it needs only the records, not page state), and
//!   shards read the per-offset decisions.
//!
//! Any partitioning therefore yields identical merged results — which the
//! differential suite checks by running thread counts {1,2,4,8} and chunk
//! sizes down to one record per chunk.
//!
//! # Stage 2 — concurrent tree verification
//!
//! Per-relation physical tree checks run as independent tasks over one
//! shared raw (cache-bypassing) buffer pool — the pool is sharded since the
//! concurrent-commit work, so readers do not serialize.
//!
//! # Stage 3 — parallel completeness join
//!
//! The final-state scan (`Df`) fans out over page ranges; each task folds
//! its pages into a partial ADD-HASH. Addition mod 2^512 is associative and
//! commutative, so merging partial sums in any grouping yields the same
//! `H(Df)` byte-for-byte, compared against the replayed `H(Ds ∪ L)`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use ccdb_common::codec::checksum32;
use ccdb_common::sync::parallel_map;
use ccdb_common::{Error, PageNo, RelId, Result, Timestamp};
use ccdb_crypto::AddHash;
use ccdb_engine::Engine;
use ccdb_storage::{BufferPool, PageStore, TupleVersion, WriteTime};

use crate::logger::epoch_log_name;
use crate::records::LogRecord;

use super::{
    apply_fold_op, check_relation_tree, effective_threads, leftover_states_check, scan_final_page,
    shred_legality, two_pc_checks, AuditOutcome, AuditReport, AuditStats, Auditor, FinalScan,
    FoldOp, PageState, ReplaySink, Replayer, ShredConsume, ShredMap, SnapFold, TwoPcBook,
    Violation,
};

/// One decoded `L` chunk: records before the first error, then the error
/// string (if any) that stops the ordered merge at that chunk.
type DecodedChunk = (Vec<(u64, LogRecord)>, Option<String>);
/// One shard's replay input: its routed snapshot page states plus its
/// routed slice of decoded records in `L` order.
type ShardInput = (HashMap<PageNo, PageState>, Vec<(u64, LogRecord)>);

/// SplitMix64 finalizer: decorrelates page numbers from shard indices so
/// dense page ranges spread evenly.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Union-find over page numbers (path-halving), keyed sparsely: pages never
/// mentioned in a `PAGE_SPLIT` are their own singleton components.
#[derive(Default)]
struct PageUnionFind {
    parent: HashMap<u64, u64>,
}

impl PageUnionFind {
    fn find(&mut self, mut p: u64) -> u64 {
        while let Some(&up) = self.parent.get(&p) {
            if up == p {
                break;
            }
            let next = self.parent.get(&up).copied().unwrap_or(up);
            self.parent.insert(p, next);
            p = next;
        }
        p
    }

    fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// The page (and thus component/shard) whose replayed state a record
/// mutates or reads. `None` = the record carries no page state: status
/// records are no-ops in replay, and `SHREDDED`/`START_RECOVERY` are
/// consumed by the sequential routing pass.
fn record_page(rec: &LogRecord) -> Option<PageNo> {
    match rec {
        LogRecord::NewTuple { pgno, .. }
        | LogRecord::Undo { pgno, .. }
        | LogRecord::Read { pgno, .. }
        | LogRecord::IndexInsert { pgno, .. }
        | LogRecord::IndexRemove { pgno, .. }
        | LogRecord::IndexImage { pgno, .. }
        | LogRecord::NewRoot { pgno, .. }
        | LogRecord::Migrate { pgno, .. } => Some(*pgno),
        LogRecord::PageSplit { old, .. } => Some(*old),
        LogRecord::StampTrans { .. }
        | LogRecord::Abort { .. }
        | LogRecord::DummyStamp { .. }
        | LogRecord::Shredded { .. }
        | LogRecord::StartRecovery { .. }
        | LogRecord::TwoPcPrepare { .. }
        | LogRecord::TwoPcDecision { .. } => None,
    }
}

/// The sharded sink: records fold ops under `(offset, sub)` keys for the
/// deterministic merge and reads precomputed shred-consumption decisions.
/// `SHREDDED`/`START_RECOVERY` records are never routed to shards, so those
/// hooks are unreachable here.
struct ShardSink<'a> {
    decisions: &'a HashMap<u64, ShredConsume>,
    ops: Vec<(u64, u32, FoldOp)>,
}

impl ReplaySink for ShardSink<'_> {
    fn fold(&mut self, off: u64, op: FoldOp) {
        // Sub-ordinal within one record's emissions (a split's
        // intermediates, a migration's tuples): preserves the serial
        // within-offset application order across the global sort.
        let sub = match self.ops.last() {
            Some((o, s, _)) if *o == off => s + 1,
            _ => 0,
        };
        self.ops.push((off, sub, op));
    }

    fn consume_shred(
        &mut self,
        off: u64,
        _rel: RelId,
        _key: &[u8],
        _ct: Timestamp,
        _seq: u16,
    ) -> ShredConsume {
        self.decisions.get(&off).copied().unwrap_or(ShredConsume::NotFound)
    }

    fn shredded(
        &mut self,
        _off: u64,
        _rel: RelId,
        _key: Vec<u8>,
        _start: Timestamp,
        _shred: Timestamp,
    ) {
    }

    fn recovery(&mut self, _off: u64, _time: Timestamp) {}
}

/// One shard's replay output, merged deterministically by the coordinator.
struct ShardOut {
    states: HashMap<PageNo, PageState>,
    migrated: HashSet<PageNo>,
    migrated_versions: HashSet<(RelId, Vec<u8>, Timestamp)>,
    violations: Vec<Violation>,
    reads_verified: u64,
    ops: Vec<(u64, u32, FoldOp)>,
}

/// A phase-D task: a whole relation's tree check, or a final-state page
/// range. Tree tasks are listed first (they are the long poles); page
/// ranges follow in ascending order so the merged snapshot stays
/// pgno-sorted.
enum DTask {
    Tree(RelId),
    Pages(u64, u64),
}

enum DOut {
    Tree(Vec<Violation>, u64),
    Scan(FinalScan),
    Failed(Error),
}

/// The parallel pipeline. Same contract as the serial oracle; the caller
/// ([`Auditor::audit`]) canonicalizes the report afterwards.
pub(super) fn audit_parallel(a: &Auditor, engine: &Engine, epoch: u64) -> Result<AuditOutcome> {
    let threads = effective_threads(&a.config);
    let mut v: Vec<Violation> = Vec::new();
    let mut stats = AuditStats { threads_used: threads as u64, ..AuditStats::default() };

    a.phase0_worm_integrity(&mut v);

    // --- Phase A: previous snapshot --------------------------------------
    let t0 = Instant::now();
    let SnapFold { states: snap_states, acc: acc0, seen: seen0 } =
        a.phase_a_snapshot(epoch, &mut v, &mut stats);
    stats.snapshot_us = t0.elapsed().as_micros() as u64;

    // --- Phase B: stamp index --------------------------------------------
    let idx = a.phase_b_stamp_index(epoch, &mut v);

    // --- Phase C stage 1: frame scan + chunked decode ---------------------
    let t1 = Instant::now();
    let log_bytes = match a.worm.read_all(&epoch_log_name(epoch)) {
        Ok(b) => b,
        Err(e) => {
            // A truncated or checksum-divergent log is itself evidence;
            // audit what can still be audited instead of erroring out.
            v.push(Violation::LogUnreadable { reason: e.to_string() });
            Vec::new()
        }
    };
    stats.log_bytes = log_bytes.len() as u64;

    let td = Instant::now();
    // Frame scan: record boundaries only (offset, body start, body len,
    // claimed checksum). Framing errors terminate the scan exactly where
    // the serial iterator would stop.
    let mut frames: Vec<(u64, usize, usize, u32)> = Vec::new();
    let mut frame_err: Option<String> = None;
    {
        let b = &log_bytes;
        let mut pos = 0usize;
        while pos < b.len() {
            if pos + 8 > b.len() {
                frame_err = Some(Error::corruption("truncated compliance-log frame").to_string());
                break;
            }
            let len = u32::from_le_bytes(b[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let sum = u32::from_le_bytes(b[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if pos + 8 + len > b.len() {
                frame_err = Some(Error::corruption("truncated compliance-log record").to_string());
                break;
            }
            frames.push((pos as u64, pos + 8, len, sum));
            pos += 8 + len;
        }
    }
    // Chunked checksum + decode on the pool. Each chunk reports the records
    // it decoded before its first error (if any), mirroring the serial
    // stop-at-first-error semantics after the ordered merge below.
    let chunk = a.config.l_chunk_records.max(1);
    let chunks: Vec<&[(u64, usize, usize, u32)]> = frames.chunks(chunk).collect();
    stats.l_chunks = chunks.len() as u64;
    let bytes_ref = &log_bytes;
    let decoded: Vec<DecodedChunk> = parallel_map(threads, chunks, |frames| {
        let mut recs = Vec::with_capacity(frames.len());
        let mut err = None;
        for &(off, start, len, sum) in frames {
            let body = &bytes_ref[start..start + len];
            if checksum32(body) != sum {
                err = Some(Error::corruption("compliance-log checksum mismatch").to_string());
                break;
            }
            match LogRecord::decode_body(body) {
                Ok(r) => recs.push((off, r)),
                Err(e) => {
                    err = Some(e.to_string());
                    break;
                }
            }
        }
        (recs, err)
    });
    let mut records: Vec<(u64, LogRecord)> = Vec::with_capacity(frames.len());
    let mut decode_err: Option<String> = None;
    for (recs, err) in decoded {
        records.extend(recs);
        if let Some(e) = err {
            decode_err = Some(e);
            break;
        }
    }
    // A decode/checksum error precedes the end-of-buffer framing error in
    // log order; report whichever the serial scan would have hit first.
    if decode_err.is_none() {
        decode_err = frame_err;
    }
    if let Some(reason) = decode_err {
        v.push(Violation::LogUnreadable { reason });
    }
    stats.records_scanned = records.len() as u64;
    stats.log_decode_us = td.elapsed().as_micros() as u64;

    let debug = std::env::var("CCDB_AUDIT_DEBUG").is_ok();
    if debug {
        for (off, rec) in &records {
            let d = format!("{rec:?}");
            eprintln!("AUDIT {off}: {}", &d[..d.len().min(160)]);
        }
    }

    // --- Phase C stage 1b: component routing + sequential precompute ------
    let tr = Instant::now();
    let mut uf = PageUnionFind::default();
    for (_, rec) in &records {
        if let LogRecord::PageSplit { old, left, right, .. } = rec {
            uf.union(old.0, left.pgno.0);
            uf.union(old.0, right.pgno.0);
        }
    }
    // Shred book + per-UNDO consumption decisions, computed in offset order
    // exactly as the serial oracle consumes them (needs only the record
    // stream, no page state, so it stays a cheap sequential pass). The 2PC
    // book rides the same pass — its records are global-ordering facts with
    // no page state.
    let mut shreds = ShredMap::new();
    let mut two_pc = TwoPcBook::default();
    let mut undo_decisions: HashMap<u64, ShredConsume> = HashMap::new();
    for (off, rec) in &records {
        two_pc.ingest(*off, rec);
        match rec {
            LogRecord::Shredded { rel, key, start_time, shred_time, .. } => {
                let entry = shreds
                    .entry((*rel, key.clone(), *start_time))
                    .or_insert((*shred_time, HashSet::new()));
                entry.0 = *shred_time;
            }
            LogRecord::Undo { cell, .. } => {
                if let Ok(t) = TupleVersion::decode_cell(cell) {
                    if let WriteTime::Committed(ct) = t.time {
                        let d = match shreds.get_mut(&(t.rel, t.key.clone(), ct)) {
                            Some(entry) => {
                                if entry.1.insert(t.seq) {
                                    ShredConsume::First
                                } else {
                                    ShredConsume::Duplicate
                                }
                            }
                            None => ShredConsume::NotFound,
                        };
                        undo_decisions.insert(*off, d);
                    }
                }
            }
            _ => {}
        }
    }
    let nshards = threads.max(1);
    let shard_of = |uf: &mut PageUnionFind, pgno: PageNo| -> usize {
        (mix64(uf.find(pgno.0)) % nshards as u64) as usize
    };
    let mut shard_states: Vec<HashMap<PageNo, PageState>> =
        (0..nshards).map(|_| HashMap::new()).collect();
    for (pgno, st) in snap_states {
        let s = shard_of(&mut uf, pgno);
        shard_states[s].insert(pgno, st);
    }
    let mut shard_records: Vec<Vec<(u64, LogRecord)>> = (0..nshards).map(|_| Vec::new()).collect();
    for (off, rec) in records {
        if let Some(pgno) = record_page(&rec) {
            let s = shard_of(&mut uf, pgno);
            shard_records[s].push((off, rec));
        }
    }
    stats.log_route_us = tr.elapsed().as_micros() as u64;

    // --- Phase C stage 1c: sharded replay ---------------------------------
    let tp = Instant::now();
    let stamps = &idx.stamps;
    let aborts = &idx.aborts;
    let worm = &*a.worm;
    let verify_reads = a.config.verify_reads;
    let decisions = &undo_decisions;
    let inputs: Vec<ShardInput> = shard_states.into_iter().zip(shard_records).collect();
    let shard_outs: Vec<ShardOut> = parallel_map(threads, inputs, |(states, recs)| {
        let sink = ShardSink { decisions, ops: Vec::new() };
        let mut rp = Replayer::new(worm, stamps, aborts, verify_reads, false, states, sink);
        for (off, rec) in recs {
            rp.replay(off, rec);
        }
        ShardOut {
            states: rp.states,
            migrated: rp.migrated,
            migrated_versions: rp.migrated_versions,
            violations: rp.violations,
            reads_verified: rp.reads_verified,
            ops: rp.sink.ops,
        }
    });
    stats.log_replay_us = tp.elapsed().as_micros() as u64;

    // --- Phase C stage 1d: deterministic merge ----------------------------
    let tm = Instant::now();
    let mut states: HashMap<PageNo, PageState> = HashMap::new();
    let mut migrated: HashSet<PageNo> = HashSet::new();
    let mut migrated_versions: HashSet<(RelId, Vec<u8>, Timestamp)> = HashSet::new();
    let mut ops: Vec<(u64, u32, FoldOp)> = Vec::new();
    for out in shard_outs {
        states.extend(out.states);
        migrated.extend(out.migrated);
        migrated_versions.extend(out.migrated_versions);
        v.extend(out.violations);
        stats.reads_verified += out.reads_verified;
        ops.extend(out.ops);
    }
    // Re-establish the serial application order: membership (`seen`)
    // updates do not commute, so fold ops replay in (offset, sub) order
    // against the global set — the order invariance is over *sharding*,
    // never over application order.
    ops.sort_by_key(|(off, sub, _)| (*off, *sub));
    let mut seen = seen0;
    let mut acc = acc0;
    for (_, _, op) in ops {
        apply_fold_op(&mut seen, &mut acc, op);
    }
    let _ = seen;
    stats.log_merge_us = tm.elapsed().as_micros() as u64;
    stats.log_scan_us = t1.elapsed().as_micros() as u64;

    // --- Liveness / shred legality / WAL tail -----------------------------
    let mut liveness = idx.liveness;
    a.liveness_and_witness(epoch, &mut liveness, &mut v);
    shred_legality(engine, &shreds, &mut v);
    two_pc_checks(&two_pc, &idx.stamps, &mut v);
    let tw = Instant::now();
    a.wal_tail_check(engine, epoch, &idx.stamps, &shreds, &migrated_versions, threads, &mut v);
    stats.wal_tail_us = tw.elapsed().as_micros() as u64;

    // --- Phase D (stages 2 + 3): tree checks + completeness join ----------
    let t2 = Instant::now();
    let disk = engine.disk();
    let page_count = disk.page_count();
    let raw_pool =
        Arc::new(BufferPool::new(disk.clone() as Arc<dyn PageStore>, engine.clock().clone(), 1024));
    let mut tasks: Vec<DTask> =
        engine.user_relations().into_iter().map(|(_, r)| DTask::Tree(r)).collect();
    let range = (page_count / (4 * threads as u64).max(1)).max(8);
    let mut start = 0u64;
    while start < page_count {
        let end = (start + range).min(page_count);
        tasks.push(DTask::Pages(start, end));
        start = end;
    }
    let states_ref = &states;
    let stamps_ref = &idx.stamps;
    let outs: Vec<DOut> = parallel_map(threads, tasks, |t| match t {
        DTask::Tree(rel) => {
            let tt = Instant::now();
            let vs = check_relation_tree(engine, &raw_pool, rel);
            DOut::Tree(vs, tt.elapsed().as_micros() as u64)
        }
        DTask::Pages(s, e) => {
            let mut fs = FinalScan::new();
            for i in s..e {
                if let Err(err) =
                    scan_final_page(disk, &a.worm, PageNo(i), states_ref, stamps_ref, &mut fs)
                {
                    return DOut::Failed(err);
                }
            }
            DOut::Scan(fs)
        }
    });
    let mut h_final = AddHash::new();
    let mut forensics = Vec::new();
    let mut snapshot_pages = Vec::new();
    for out in outs {
        match out {
            DOut::Tree(vs, us) => {
                v.extend(vs);
                stats.tree_verify_us += us;
            }
            DOut::Scan(fs) => {
                // ADD-HASH partial sums merge grouping-independently.
                h_final.merge(&fs.h_final);
                stats.tuples_final += fs.tuples_final;
                v.extend(fs.violations);
                forensics.extend(fs.forensics);
                snapshot_pages.extend(fs.snapshot_pages);
            }
            DOut::Failed(e) => return Err(e),
        }
    }
    leftover_states_check(&states, &migrated, page_count, &mut v);
    if acc != h_final {
        v.push(Violation::CompletenessMismatch);
    }
    stats.completeness_join_us = t2.elapsed().as_micros() as u64;
    stats.final_state_us = t2.elapsed().as_micros() as u64;
    stats.snapshot_pages = snapshot_pages.len() as u64;

    Ok(AuditOutcome {
        report: AuditReport { epoch, violations: v, forensics, stats },
        snapshot_pages,
        tuple_hash: h_final,
        two_pc,
    })
}
