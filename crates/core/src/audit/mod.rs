//! The auditor: one pass over the compliance log, the previous snapshot, and
//! the final database state.
//!
//! The checks, keyed to the paper:
//!
//! * **Tuple completeness** (§IV): `Df = Ds ∪ L`, verified with the
//!   commutative incremental ADD-HASH in a single pass — no sorting. A fold
//!   identity is a tuple's canonical bytes (relation, key, commit time,
//!   end-of-life flag, value) plus its tuple-order number; page splits and
//!   recovery duplicates therefore never double-count.
//! * **Status-record discipline** (§IV-B): at most one commit time per
//!   transaction, never both `STAMP_TRANS` and `ABORT`, commit times
//!   strictly increasing, no gap between consecutive stamps/heartbeats
//!   longer than one regret interval except across a logged crash recovery,
//!   a witness file for every interval the DBMS claims to have been alive.
//! * **Page-read verification** (§V): the auditor replays every page's
//!   content from `L` and checks each logged `READ` hash, resolving each
//!   tuple's time by the offset rule — commit time iff the transaction's
//!   `STAMP_TRANS` appears earlier in `L` than the `READ`.
//! * **Split and migration verification** (§V–VI): the union of a split's
//!   output pages must equal the input page plus the declared intermediate
//!   versions; a migrated page's WORM copy must match its replayed state.
//! * **Shred verification** (§VIII): every `UNDO` is justified by a prior
//!   `ABORT` or `SHREDDED`; every shredded version had expired under the
//!   retention period in force at shred time and was not under an active
//!   litigation hold; everything listed as shredded is gone.
//! * **Physical integrity** (§IV-C): slot structure, leaf sort order, and
//!   parent/child separator consistency over every relation's tree — the
//!   Figure 2 attacks.
//!
//! # Two execution strategies, one verdict
//!
//! The audit runs in one of two modes selected by [`AuditConfig`]:
//!
//! * the **serial oracle** ([`AuditConfig::serial`]) — the paper's literal
//!   single pass over `L` and the trees, kept as an independent
//!   implementation;
//! * the **parallel pipeline** (default; the `parallel` submodule) — a
//!   three-stage restructuring: (1) chunked decode of `L` plus a sharded
//!   replay partitioned by page-split-connected components, joined by a
//!   deterministic offset-ordered merge; (2) concurrent per-relation tree
//!   verification over a shared raw buffer pool; (3) a parallel
//!   `Df = Ds ∪ L` completeness join over per-shard ADD-HASH partial sums.
//!
//! The per-record replay logic exists **once**, in [`Replayer`]: the serial
//! oracle drives it with a sink that applies fold operations immediately,
//! the parallel pipeline with a sink that records them for the deterministic
//! merge. Both paths end in [`AuditReport`] canonicalization (findings
//! sorted under a total order), and the differential/property suites in
//! `tests/` assert that they produce byte-identical verdicts and finding
//! sets on every state, tampered or clean, at every thread count and chunk
//! size.

mod parallel;
pub mod stream;

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use ccdb_btree::{check_tree, BTree, IntegrityError, TimeRank};
use ccdb_common::sync::parallel_map;
use ccdb_common::{ByteReader, ByteWriter, Duration, PageNo, RelId, Result, Timestamp, TxnId};
use ccdb_crypto::{sha256, AddHash, Digest};
use ccdb_engine::Engine;
use ccdb_storage::{BufferPool, DiskManager, Page, PageStore, PageType, TupleVersion, WriteTime};
use ccdb_worm::WormServer;

use crate::logger::{
    epoch_log_name, epoch_stamp_name, waltail_name, witness_name, StampIndexEntry,
};
use crate::migrate::MigratedPage;
use crate::plugin::{hs_element_bytes, inner_hs};
use crate::records::{LogIter, LogRecord, SplitSide};
use crate::shred::{Hold, HOLDS_RELATION};
use crate::snapshot::{SnapPage, Snapshot, SnapshotManager};

/// A specific piece of tamper evidence (or audit-process failure).
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// `H(Ds ∪ L) ≠ H(Df)` — tuples were altered, removed, or inserted
    /// outside the logged history.
    CompletenessMismatch,
    /// A tuple's writing transaction has neither a `STAMP_TRANS` nor an
    /// `ABORT` on `L`.
    UnstampedTransaction {
        /// The unresolved transaction.
        txn: TxnId,
    },
    /// A transaction has conflicting status records (two different commit
    /// times, or both a stamp and an abort) — e.g. Mala appending spurious
    /// `ABORT` records "to try to hide the existence of tuples that she
    /// regrets".
    ConflictingStatus {
        /// The transaction with conflicting records.
        txn: TxnId,
    },
    /// Commit times on `L` are not strictly increasing.
    CommitTimesNotMonotonic {
        /// Offset of the offending record.
        offset: u64,
    },
    /// Consecutive stamps/heartbeats are more than one regret interval
    /// apart with no crash recovery explaining the gap.
    RegretGapExceeded {
        /// Start of the gap.
        from: Timestamp,
        /// End of the gap.
        to: Timestamp,
    },
    /// No witness file exists for a regret interval the system should have
    /// been alive in.
    MissingWitness {
        /// The interval index.
        interval: u64,
    },
    /// A logged page-read hash does not match the replayed page content —
    /// the state-reversion attack.
    ReadHashMismatch {
        /// The page read.
        pgno: PageNo,
        /// Offset of the `READ` record.
        offset: u64,
    },
    /// A page split's outputs do not partition its input (plus declared
    /// intermediates).
    SplitMismatch {
        /// The split input page.
        old: PageNo,
    },
    /// A physical tuple removal with no justifying `ABORT` or `SHREDDED`.
    UnjustifiedUndo {
        /// The affected page.
        pgno: PageNo,
    },
    /// A page's final on-disk content differs from its replayed state.
    StateMismatch {
        /// The affected page.
        pgno: PageNo,
    },
    /// An internal page's final content differs from the replayed index.
    IndexMismatch {
        /// The affected page.
        pgno: PageNo,
    },
    /// A page failed structural validation or its checksum.
    BadPage {
        /// The affected page.
        pgno: PageNo,
        /// Why.
        reason: String,
    },
    /// A B+-tree physical-integrity failure (Figure 2 attacks).
    TreeIntegrity(IntegrityError),
    /// A version listed in a `SHREDDED` record is still present.
    ShredIncomplete {
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
    },
    /// A shredded version had not expired under the retention policy.
    ShredOfUnexpired {
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
    },
    /// A shredded version was covered by an active litigation hold.
    ShredOfHeld {
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// The violated hold.
        hold: String,
    },
    /// A migrated page's WORM copy does not match its replayed state.
    MigrationMismatch {
        /// The migrated page.
        pgno: PageNo,
    },
    /// The previous snapshot failed to load or verify.
    SnapshotInvalid {
        /// Why.
        reason: String,
    },
    /// The compliance log or stamp index is unreadable.
    LogUnreadable {
        /// Why.
        reason: String,
    },
    /// The WORM WAL tail records a committed transaction that the
    /// compliance log and database do not reflect — evidence the local WAL
    /// was wiped within the regret window (the attack the WORM-resident
    /// tail exists to defeat, Section IV-B).
    WalTailInconsistent {
        /// The transaction whose durable commit vanished.
        txn: TxnId,
    },
    /// A WORM file's backing store is *shorter* than its trusted metadata
    /// length — acknowledged compliance-log bytes have been destroyed. The
    /// WORM device promises term immutability; a truncated tail means that
    /// promise (the architecture's root of trust) was violated, so the
    /// auditor names the file rather than failing with an I/O error.
    WormTruncated {
        /// The damaged WORM file.
        file: String,
        /// Length the trusted metadata acknowledges.
        trusted_len: u64,
        /// Length actually present on the backing store.
        backing_len: u64,
    },
    /// A transaction prepared for cross-shard 2PC has no decision record on
    /// this shard's log. Prepare and decision land in the same epoch (the
    /// coordinator resolves in-doubt transactions before any seal), so a
    /// missing decision is either a dropped record or an atomicity breach.
    TwoPcUndecided {
        /// The global (cross-shard) transaction id.
        gtxn: u64,
        /// The shard-local participant transaction.
        txn: TxnId,
    },
    /// A shard's 2PC decision record disagrees with the participant's
    /// actual outcome on that shard: a commit decision with no
    /// `STAMP_TRANS`, or an abort decision that was stamped anyway. This is
    /// the flipped-decision / diverged-outcome attack.
    TwoPcOutcomeMismatch {
        /// The global transaction id.
        gtxn: u64,
        /// The shard-local participant transaction.
        txn: TxnId,
        /// What the decision record on this shard's log says.
        decided_commit: bool,
    },
    /// One shard's log carries two 2PC decision records with opposite
    /// outcomes for the same global transaction.
    TwoPcConflictingDecision {
        /// The global transaction id.
        gtxn: u64,
    },
    /// A 2PC decision record with no matching prepare on this shard's log —
    /// a forged or misrouted decision.
    TwoPcOrphanDecision {
        /// The global transaction id.
        gtxn: u64,
    },
    /// The cross-shard join found participants of one global transaction
    /// whose logged decisions disagree — atomicity was violated across the
    /// deployment even though each shard may be locally consistent.
    TwoPcDivergentDecision {
        /// The global transaction id.
        gtxn: u64,
    },
}

/// Timing and volume measurements (the audit-time table of Section VII-c).
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditStats {
    /// Time to load + fold the previous snapshot (µs wall).
    pub snapshot_us: u64,
    /// Time to scan `L` (µs wall).
    pub log_scan_us: u64,
    /// Time to scan + fold the final state (µs wall).
    pub final_state_us: u64,
    /// Records scanned in `L`.
    pub records_scanned: u64,
    /// Bytes of `L` scanned.
    pub log_bytes: u64,
    /// `READ` hashes verified.
    pub reads_verified: u64,
    /// Tuples folded from the final state.
    pub tuples_final: u64,
    /// Pages in the new snapshot.
    pub snapshot_pages: u64,
    /// Worker threads the audit actually used (1 for the serial oracle).
    pub threads_used: u64,
    /// Decode chunks the parallel `L` scan was split into (0 when serial).
    pub l_chunks: u64,
    /// Parallel pipeline: frame-scan + chunked decode of `L` (µs wall).
    pub log_decode_us: u64,
    /// Parallel pipeline: component routing + shred/undo precompute (µs).
    pub log_route_us: u64,
    /// Parallel pipeline: sharded replay of `L` (µs wall across the pool).
    pub log_replay_us: u64,
    /// Parallel pipeline: deterministic merge of shard results (µs).
    pub log_merge_us: u64,
    /// Physical tree verification (µs; part of `final_state_us`).
    pub tree_verify_us: u64,
    /// The `Df = Ds ∪ L` completeness join: final-state fold + compare
    /// against the replayed accumulator (µs; part of `final_state_us`).
    pub completeness_join_us: u64,
    /// Snapshot tuples whose ADD-HASH fold was skipped because a sealed
    /// WORM checkpoint from the previous clean audit already attests the
    /// prefix (0 = the full snapshot was re-folded).
    pub snapshot_prefix_skipped: u64,
    /// WAL-tail cross-check (µs wall; per-transaction presence probes fan
    /// out on the worker pool in the parallel pipeline).
    pub wal_tail_us: u64,
    /// Streaming auditor: records appended to `L` this epoch but not yet
    /// ingested by the stream at the last poll (0 for batch audits and for
    /// a fully caught-up stream).
    pub audit_lag_records: u64,
    /// Streaming auditor: wall-clock µs the last poll spent catching up
    /// (0 for batch audits).
    pub audit_lag_us: u64,
}

/// A per-tuple forensic finding, localizing *what* was tampered where. The
/// paper: storing the full snapshot "enables fine-grained forensic analysis
/// if the next audit finds evidence of tampering."
#[derive(Clone, Debug, PartialEq)]
pub enum TupleFinding {
    /// A tuple exists on disk with a different value/time than every logged
    /// version at its position.
    Altered {
        /// Page holding the tuple.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// Tuple-order number.
        seq: u16,
        /// The value the log history predicts.
        expected: Vec<u8>,
        /// The value found on disk.
        found: Vec<u8>,
    },
    /// A logged tuple version is gone from its page without an `UNDO` or
    /// `SHREDDED` justification.
    Missing {
        /// Page that should hold the tuple.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// Tuple-order number.
        seq: u16,
    },
    /// A tuple exists on disk that no logged insertion accounts for
    /// (post-hoc insertion).
    Forged {
        /// Page holding the tuple.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// Tuple-order number.
        seq: u16,
    },
}

/// The outcome of an audit.
#[derive(Debug)]
pub struct AuditReport {
    /// The epoch audited.
    pub epoch: u64,
    /// Every violation found (empty for a compliant database).
    pub violations: Vec<Violation>,
    /// Per-tuple forensic localization of state mismatches (empty when
    /// clean; complements the coarse [`Violation`] list).
    pub forensics: Vec<TupleFinding>,
    /// Measurements.
    pub stats: AuditStats,
}

impl AuditReport {
    /// Whether the database passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Auditor configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// The regret interval the deployment promises.
    pub regret_interval: Duration,
    /// Verify logged `READ` hashes (hash-page-on-read refinement).
    pub verify_reads: bool,
    /// Enforce witness-file continuity.
    pub check_witnesses: bool,
    /// Run the single-pass serial oracle instead of the parallel pipeline.
    pub serial: bool,
    /// Worker threads for the parallel pipeline. `0` = auto (the machine's
    /// available parallelism). Values above the core count still help when
    /// the database lives on high-latency (emulated-remote) storage: the
    /// final-state scan is I/O-bound and blocked readers overlap.
    pub audit_threads: usize,
    /// Records per decode chunk in the parallel `L` scan (the chunked
    /// stage-1 fan-out granularity). Small values stress chunk boundaries;
    /// the default amortizes dispatch overhead.
    pub l_chunk_records: usize,
    /// Use sealed WORM replay checkpoints from prior clean audits to skip
    /// re-folding the snapshot prefix of the completeness hash. Disabled by
    /// the checkpoint regression tests to exercise the full re-fold path.
    pub use_checkpoints: bool,
}

/// Default decode-chunk size for the parallel `L` scan.
pub const DEFAULT_L_CHUNK_RECORDS: usize = 4096;

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            regret_interval: Duration::from_mins(5),
            verify_reads: true,
            check_witnesses: true,
            serial: false,
            audit_threads: 0,
            l_chunk_records: DEFAULT_L_CHUNK_RECORDS,
            use_checkpoints: true,
        }
    }
}

impl AuditConfig {
    /// The serial oracle: the paper's literal single pass. The parallel
    /// pipeline is proven against this configuration by the differential
    /// suites.
    pub fn serial() -> AuditConfig {
        AuditConfig { serial: true, audit_threads: 1, ..AuditConfig::default() }
    }

    /// Returns the config with the serial/pipeline switch set.
    pub fn with_serial(mut self, serial: bool) -> AuditConfig {
        self.serial = serial;
        if serial {
            self.audit_threads = 1;
        }
        self
    }

    /// Returns the config with an explicit worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> AuditConfig {
        self.audit_threads = threads;
        self
    }

    /// Returns the config with an explicit decode-chunk size.
    pub fn with_chunk_records(mut self, records: usize) -> AuditConfig {
        self.l_chunk_records = records;
        self
    }

    /// Returns the config with the checkpoint fast path enabled/disabled.
    pub fn with_checkpoints(mut self, on: bool) -> AuditConfig {
        self.use_checkpoints = on;
        self
    }
}

/// The number of worker threads a config resolves to (1 for the oracle,
/// `available_parallelism` for `audit_threads == 0`).
fn effective_threads(config: &AuditConfig) -> usize {
    if config.serial {
        return 1;
    }
    match config.audit_threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Replayed state of one page. (Some metadata fields are retained for
/// forensic dumps and future checks even though the core audit path does
/// not read them.)
#[derive(Clone, Debug, Default)]
#[allow(dead_code)]
struct PageState {
    rel: RelId,
    kind: Option<PageType>,
    historical: bool,
    aux: u64,
    /// Leaf: stored tuple versions. Inner: raw entry cells.
    tuples: Vec<TupleVersion>,
    cells: Vec<Vec<u8>>,
}

/// The auditor.
pub struct Auditor {
    worm: Arc<WormServer>,
    snapshots: SnapshotManager,
    config: AuditConfig,
}

/// Result of an audit, including the material to write the next snapshot.
pub struct AuditOutcome {
    /// The report.
    pub report: AuditReport,
    /// The verified final state, ready to become the next snapshot.
    pub snapshot_pages: Vec<SnapPage>,
    /// The fold over the final canonical tuple set.
    pub tuple_hash: AddHash,
    /// This shard's 2PC book (empty for an unsharded deployment), for the
    /// deployment-level cross-shard join.
    pub two_pc: TwoPcBook,
}

fn fold_identity(t: &TupleVersion, commit: Timestamp) -> Vec<u8> {
    let mut b = t.canonical_bytes_with_time(commit);
    b.extend_from_slice(&t.seq.to_le_bytes());
    b
}

/// A tuple resolved for comparison: `(key, seq, commit-or-pending, eol, value)`.
type ResolvedTuple = (Vec<u8>, u16, (u8, u64), bool, Vec<u8>);

fn resolve_tuple(t: &TupleVersion, stamps: &HashMap<TxnId, (Timestamp, u64)>) -> ResolvedTuple {
    let time = match t.time {
        WriteTime::Committed(ct) => (1u8, ct.0),
        WriteTime::Pending(txn) => match stamps.get(&txn) {
            Some((ct, _)) => (1u8, ct.0),
            None => (0u8, txn.0),
        },
    };
    (t.key.clone(), t.seq, time, t.end_of_life, t.value.clone())
}

// ---------------------------------------------------------------------------
// WORM replay checkpoints
// ---------------------------------------------------------------------------

/// WORM name of the sealed replay checkpoint written after a clean audit of
/// `epoch`: it attests the snapshot's tuple ADD-HASH so the *next* audit can
/// skip re-folding the sealed prefix of the completeness universe.
pub fn audit_ckpt_name(epoch: u64) -> String {
    format!("auditckpt/epoch-{epoch}")
}

const CKPT_MAGIC: u64 = 0xCCDB_AC99;

// ---------------------------------------------------------------------------
// Shared replay machinery (one implementation, two sinks)
// ---------------------------------------------------------------------------

/// `(rel, key, start) → (shred_time, consumed seqs)` — the `SHREDDED`
/// bookkeeping both auditors share. Consumption is tracked **per version
/// seq**: a transaction may write the same key several times at one commit
/// instant (same `(rel, key, start)`, distinct seqs), and the vacuum shreds
/// each version with its own `UNDO`. Keying consumption by seq folds every
/// distinct version out of the completeness accumulator while still
/// tolerating byte-identical crash-recovery replays of the same `UNDO`
/// (same seq → duplicate).
type ShredMap = BTreeMap<(RelId, Vec<u8>, Timestamp), (Timestamp, HashSet<u16>)>;

/// A deferred mutation of the completeness accumulator. The serial oracle
/// applies these immediately; the parallel pipeline records them per shard
/// and applies them in `(offset, sub)` order during the deterministic merge
/// — membership (`seen`) semantics are order-sensitive, so replaying the
/// exact serial order is what makes the two verdicts identical.
#[derive(Clone, Debug)]
enum FoldOp {
    /// `if seen.insert(id) { acc.add(&id) }`.
    AddIfNew(Vec<u8>),
    /// `if seen.remove(&id) { acc.remove(&id) }`.
    RemoveIfSeen(Vec<u8>),
}

/// Applies one fold op against the global membership set + accumulator.
fn apply_fold_op(seen: &mut HashSet<Vec<u8>>, acc: &mut AddHash, op: FoldOp) {
    match op {
        FoldOp::AddIfNew(id) => {
            if seen.insert(id.clone()) {
                acc.add(&id);
            }
        }
        FoldOp::RemoveIfSeen(id) => {
            if seen.remove(&id) {
                acc.remove(&id);
            }
        }
    }
}

/// What an `UNDO` of a committed version found in the shred book.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShredConsume {
    /// First consumption of a live `SHREDDED` entry (the version leaves the
    /// completeness universe).
    First,
    /// The entry was already consumed (crash-recovery duplicate; tolerated).
    Duplicate,
    /// No matching `SHREDDED` entry — the undo is unjustified.
    NotFound,
}

/// The strategy half of the replay: where fold ops go and how shred
/// consumption is decided. [`Replayer`] holds the per-record logic once;
/// implementations of this trait make it serial or sharded.
trait ReplaySink {
    /// Record (or apply) a completeness-fold operation emitted at `off`.
    fn fold(&mut self, off: u64, op: FoldOp);
    /// Decide/perform consumption of a `SHREDDED` entry by an `UNDO` at
    /// `off` for the version `(rel, key, ct, seq)`.
    fn consume_shred(
        &mut self,
        off: u64,
        rel: RelId,
        key: &[u8],
        ct: Timestamp,
        seq: u16,
    ) -> ShredConsume;
    /// A `SHREDDED` record was replayed.
    fn shredded(&mut self, off: u64, rel: RelId, key: Vec<u8>, start: Timestamp, shred: Timestamp);
    /// A `START_RECOVERY` record was replayed.
    fn recovery(&mut self, off: u64, time: Timestamp);
}

/// The serial oracle's sink: owns the global membership set, accumulator,
/// shred book, and recovery windows, mutating them in log order.
struct SerialSink {
    seen: HashSet<Vec<u8>>,
    acc: AddHash,
    shreds: ShredMap,
    recovery_windows: Vec<(u64, Timestamp)>,
}

impl ReplaySink for SerialSink {
    fn fold(&mut self, _off: u64, op: FoldOp) {
        apply_fold_op(&mut self.seen, &mut self.acc, op);
    }

    fn consume_shred(
        &mut self,
        _off: u64,
        rel: RelId,
        key: &[u8],
        ct: Timestamp,
        seq: u16,
    ) -> ShredConsume {
        match self.shreds.get_mut(&(rel, key.to_vec(), ct)) {
            Some(entry) => {
                if entry.1.insert(seq) {
                    ShredConsume::First
                } else {
                    ShredConsume::Duplicate
                }
            }
            None => ShredConsume::NotFound,
        }
    }

    fn shredded(
        &mut self,
        _off: u64,
        rel: RelId,
        key: Vec<u8>,
        start: Timestamp,
        shred: Timestamp,
    ) {
        let entry = self.shreds.entry((rel, key, start)).or_insert((shred, HashSet::new()));
        entry.0 = shred;
    }

    fn recovery(&mut self, off: u64, time: Timestamp) {
        self.recovery_windows.push((off, time));
    }
}

/// The single shared implementation of per-record replay. Both auditors
/// construct one of these (over the whole log, or over one shard's slice)
/// and feed it `(offset, record)` pairs in offset order.
struct Replayer<'a, S: ReplaySink> {
    worm: &'a WormServer,
    stamps: &'a HashMap<TxnId, (Timestamp, u64)>,
    aborts: &'a HashMap<TxnId, u64>,
    verify_reads: bool,
    debug: bool,
    states: HashMap<PageNo, PageState>,
    migrated: HashSet<PageNo>,
    migrated_versions: HashSet<(RelId, Vec<u8>, Timestamp)>,
    violations: Vec<Violation>,
    reads_verified: u64,
    sink: S,
}

impl<'a, S: ReplaySink> Replayer<'a, S> {
    fn new(
        worm: &'a WormServer,
        stamps: &'a HashMap<TxnId, (Timestamp, u64)>,
        aborts: &'a HashMap<TxnId, u64>,
        verify_reads: bool,
        debug: bool,
        states: HashMap<PageNo, PageState>,
        sink: S,
    ) -> Self {
        Replayer {
            worm,
            stamps,
            aborts,
            verify_reads,
            debug,
            states,
            migrated: HashSet::new(),
            migrated_versions: HashSet::new(),
            violations: Vec::new(),
            reads_verified: 0,
            sink,
        }
    }

    /// Replays one record at offset `off`.
    fn replay(&mut self, off: u64, rec: LogRecord) {
        match rec {
            LogRecord::NewTuple { pgno, rel, cell } => {
                let t = match TupleVersion::decode_cell(&cell) {
                    Ok(t) => t,
                    Err(e) => {
                        self.violations.push(Violation::LogUnreadable {
                            reason: format!("NEW_TUPLE cell at {off}: {e}"),
                        });
                        return;
                    }
                };
                // Resolve the commit time (the auditor "must replace any
                // transaction ID by the commit time").
                let resolved = match t.time {
                    WriteTime::Committed(ct) => Some(ct),
                    WriteTime::Pending(txn) => self.stamps.get(&txn).map(|(ct, _)| *ct),
                };
                let aborted =
                    t.time.pending().map(|txn| self.aborts.contains_key(&txn)).unwrap_or(false);
                if let Some(ct) = resolved {
                    self.sink.fold(off, FoldOp::AddIfNew(fold_identity(&t, ct)));
                } else if !aborted {
                    if let Some(txn) = t.time.pending() {
                        self.violations.push(Violation::UnstampedTransaction { txn });
                    }
                }
                // Page state: the physical tuple (stored form) joins the
                // page unless this NEW_TUPLE is a recovery duplicate of
                // something already there.
                let st = self.states.entry(pgno).or_insert_with(|| PageState {
                    rel,
                    kind: Some(PageType::Leaf),
                    ..PageState::default()
                });
                if !st.tuples.iter().any(|e| e.key == t.key && e.seq == t.seq) {
                    st.tuples.push(t);
                }
            }
            LogRecord::Undo { pgno, rel: _, cell } => {
                let t = match TupleVersion::decode_cell(&cell) {
                    Ok(t) => t,
                    Err(e) => {
                        self.violations.push(Violation::LogUnreadable {
                            reason: format!("UNDO cell at {off}: {e}"),
                        });
                        return;
                    }
                };
                let justified = match t.time {
                    WriteTime::Pending(txn) => self.aborts.contains_key(&txn),
                    WriteTime::Committed(ct) => {
                        match self.sink.consume_shred(off, t.rel, &t.key, ct, t.seq) {
                            ShredConsume::First => {
                                // The shredded version leaves the
                                // completeness universe.
                                self.sink.fold(off, FoldOp::RemoveIfSeen(fold_identity(&t, ct)));
                                true
                            }
                            ShredConsume::Duplicate => true,
                            ShredConsume::NotFound => false,
                        }
                    }
                };
                if !justified {
                    self.violations.push(Violation::UnjustifiedUndo { pgno });
                }
                if let Some(st) = self.states.get_mut(&pgno) {
                    if let Some(pos) =
                        st.tuples.iter().position(|e| e.key == t.key && e.seq == t.seq)
                    {
                        st.tuples.remove(pos);
                    }
                    // Absent: a duplicate UNDO from crash recovery — the
                    // paper tolerates these.
                }
            }
            LogRecord::Read { pgno, hs } => {
                if self.verify_reads {
                    let expect = match self.states.get(&pgno) {
                        Some(st) if st.kind == Some(PageType::Inner) => {
                            inner_hs(st.cells.iter().map(|c| c.as_slice()))
                        }
                        Some(st) => leaf_read_hash(&st.tuples, self.stamps, off),
                        None => leaf_read_hash(&[], self.stamps, off),
                    };
                    if expect != hs {
                        if self.debug {
                            eprintln!(
                                "AUDIT MISMATCH {off} pg={pgno:?} replayed tuples {:?}",
                                self.states.get(&pgno).map(|st| st
                                    .tuples
                                    .iter()
                                    .map(|t| (t.key.clone(), t.seq, t.time))
                                    .collect::<Vec<_>>())
                            );
                        }
                        self.violations.push(Violation::ReadHashMismatch { pgno, offset: off });
                    }
                    self.reads_verified += 1;
                }
            }
            LogRecord::PageSplit { old, rel, left, right, intermediates } => {
                let old_state = self.states.remove(&old).unwrap_or_default();
                let is_leaf = !matches!(old_state.kind, Some(PageType::Inner));
                if is_leaf {
                    // Union check on resolved tuples.
                    let stamps = self.stamps;
                    let mut input: Vec<ResolvedTuple> =
                        old_state.tuples.iter().map(|t| resolve_tuple(t, stamps)).collect();
                    let mut inters = Vec::new();
                    for c in &intermediates {
                        match TupleVersion::decode_cell(c) {
                            Ok(t) => {
                                input.push(resolve_tuple(&t, stamps));
                                inters.push(t);
                            }
                            Err(e) => self.violations.push(Violation::LogUnreadable {
                                reason: format!("split intermediate at {off}: {e}"),
                            }),
                        }
                    }
                    let mut output: Vec<ResolvedTuple> = Vec::new();
                    let mut install =
                        |side: &SplitSide, states: &mut HashMap<PageNo, PageState>| -> Result<()> {
                            let mut st = PageState {
                                rel,
                                kind: Some(PageType::Leaf),
                                historical: side.historical,
                                ..PageState::default()
                            };
                            for c in &side.cells {
                                let t = TupleVersion::decode_cell(c)?;
                                output.push(resolve_tuple(&t, stamps));
                                st.tuples.push(t);
                            }
                            states.insert(side.pgno, st);
                            Ok(())
                        };
                    if install(&left, &mut self.states).is_err()
                        || install(&right, &mut self.states).is_err()
                    {
                        self.violations.push(Violation::SplitMismatch { old });
                    } else {
                        input.sort();
                        output.sort();
                        if input != output {
                            if self.debug {
                                let only_in: Vec<_> =
                                    input.iter().filter(|x| !output.contains(x)).collect();
                                let only_out: Vec<_> =
                                    output.iter().filter(|x| !input.contains(x)).collect();
                                eprintln!("SPLIT MISMATCH old={old:?} in-not-out={only_in:?} out-not-in={only_out:?}");
                            }
                            self.violations.push(Violation::SplitMismatch { old });
                        }
                    }
                    // Intermediates are genuinely new tuples.
                    for t in inters {
                        if let WriteTime::Committed(ct) = t.time {
                            self.sink.fold(off, FoldOp::AddIfNew(fold_identity(&t, ct)));
                        } else {
                            self.violations.push(Violation::SplitMismatch { old });
                        }
                    }
                } else {
                    // Inner split: the record's content is authoritative.
                    // (The tree rebuilds a parent's entry list in memory
                    // — remove one child entry, add two — and splits the
                    // *modified* list, so the physical input page never
                    // holds the split's exact input; a union check would
                    // be vacuous. Index integrity is enforced by the
                    // final-state comparison plus the physical
                    // parent/child checks, which is where the Figure 2(c)
                    // attack is caught.)
                    let _ = old_state;
                    for side in [&left, &right] {
                        self.states.insert(
                            side.pgno,
                            PageState {
                                rel,
                                kind: Some(PageType::Inner),
                                cells: side.cells.clone(),
                                ..PageState::default()
                            },
                        );
                    }
                }
            }
            LogRecord::IndexInsert { pgno, cell } => {
                let st = self.states.entry(pgno).or_insert_with(|| PageState {
                    kind: Some(PageType::Inner),
                    ..PageState::default()
                });
                // Crash recovery regenerates index records at the next
                // pwrite; duplicates are skipped (entries are unique).
                if !st.cells.contains(&cell) {
                    let pos = st
                        .cells
                        .iter()
                        .position(|c| entry_order(c) > entry_order(&cell))
                        .unwrap_or(st.cells.len());
                    st.cells.insert(pos, cell);
                }
            }
            LogRecord::IndexRemove { pgno, cell } => {
                // Absent entries are tolerated (duplicate removals from
                // recovery); real index tampering is caught by the
                // final-state comparison.
                if let Some(st) = self.states.get_mut(&pgno) {
                    if let Some(pos) = st.cells.iter().position(|c| *c == cell) {
                        st.cells.remove(pos);
                    }
                }
            }
            LogRecord::NewRoot { rel: _, pgno, cells } => {
                self.states.entry(pgno).or_insert_with(|| PageState {
                    kind: Some(PageType::Inner),
                    cells,
                    ..PageState::default()
                });
            }
            LogRecord::IndexImage { pgno, cells } => {
                // Post-recovery authoritative content: crash recovery
                // rebuilt this internal page from WAL images, and the entry
                // deltas between its creation record and the crash were
                // never logged. The image *replaces* the replayed state —
                // in particular it retracts stale entries (e.g. a child
                // since supplanted by a time split) that no logged
                // INDEX_REMOVE ever covered.
                let rel = self.states.get(&pgno).map(|st| st.rel).unwrap_or_default();
                self.states.insert(
                    pgno,
                    PageState { rel, kind: Some(PageType::Inner), cells, ..PageState::default() },
                );
            }
            LogRecord::Migrate { pgno, rel, worm_file, content_hash } => {
                let prior = self.states.remove(&pgno);
                // A MIGRATE for a page this replay has *no state for* can
                // only honestly be a re-assertion of a migration verified
                // in a sealed epoch: a page live at the seal is in the
                // snapshot, and a page born in the tail has tail records —
                // only one already migrated (and thus already strictly
                // verified copy-vs-state) replays as unknown.
                let reassert = self.migrated.contains(&pgno) || prior.is_none();
                let st = prior.unwrap_or_default();
                match self.worm.read_all(&worm_file).and_then(|b| MigratedPage::decode(&b)) {
                    Ok(mp) => {
                        let stored_hash = crate::plugin::page_content_hash(&mp.cells);
                        let mut copy: Vec<ResolvedTuple> = Vec::new();
                        let mut ok = stored_hash == content_hash;
                        for c in &mp.cells {
                            match TupleVersion::decode_cell(c) {
                                Ok(t) => copy.push(resolve_tuple(&t, self.stamps)),
                                Err(_) => ok = false,
                            }
                        }
                        let mut orig: Vec<ResolvedTuple> =
                            st.tuples.iter().map(|t| resolve_tuple(t, self.stamps)).collect();
                        copy.sort();
                        orig.sort();
                        // A crash between a MIGRATE's flush and its retire
                        // becoming durable makes the next migration pass
                        // *re-assert* the migration. The copy was verified
                        // strictly when the first MIGRATE replayed; the
                        // re-assertion's state may hold nothing (the
                        // retire was the only loss) or the page's content
                        // again (the crash also lost the page bytes and
                        // the resurrected page's re-emitted records are
                        // retracted below) — either way it must not exceed
                        // the verified copy.
                        let matches = if reassert {
                            orig.iter().all(|t| copy.binary_search(t).is_ok())
                        } else {
                            copy == orig
                        };
                        if !ok || !matches {
                            self.violations.push(Violation::MigrationMismatch { pgno });
                        } else {
                            // Verified: the page's tuples leave the
                            // auditing universe.
                            for t in &st.tuples {
                                let ct = match t.time {
                                    WriteTime::Committed(ct) => Some(ct),
                                    WriteTime::Pending(txn) => {
                                        self.stamps.get(&txn).map(|(c, _)| *c)
                                    }
                                };
                                if let Some(ct) = ct {
                                    self.sink.fold(off, FoldOp::RemoveIfSeen(fold_identity(t, ct)));
                                    self.migrated_versions.insert((rel, t.key.clone(), ct));
                                }
                            }
                            self.migrated.insert(pgno);
                        }
                    }
                    Err(e) => {
                        self.violations.push(Violation::MigrationMismatch { pgno });
                        let _ = (e, rel);
                    }
                }
            }
            LogRecord::Shredded { rel, key, start_time, pgno: _, content_hash: _, shred_time } => {
                self.sink.shredded(off, rel, key, start_time, shred_time);
            }
            LogRecord::StartRecovery { time } => {
                self.sink.recovery(off, time);
            }
            // Status and 2PC records carry no page traffic; they are
            // collected in the sequential passes (stamp index / TwoPcBook)
            // and judged by the dedicated checks.
            LogRecord::StampTrans { .. }
            | LogRecord::Abort { .. }
            | LogRecord::DummyStamp { .. }
            | LogRecord::TwoPcPrepare { .. }
            | LogRecord::TwoPcDecision { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Shared phase state
// ---------------------------------------------------------------------------

/// Phase A output: the replayed snapshot pages plus the completeness-fold
/// starting point (`acc` over the snapshot's committed tuples, `seen` their
/// fold identities).
struct SnapFold {
    states: HashMap<PageNo, PageState>,
    acc: AddHash,
    seen: HashSet<Vec<u8>>,
}

/// Phase B output: the epoch's transaction-status book.
struct StampIndex {
    stamps: HashMap<TxnId, (Timestamp, u64)>,
    aborts: HashMap<TxnId, u64>,
    liveness: Vec<(Timestamp, u64)>,
}

// ---------------------------------------------------------------------------
// Cross-shard 2PC book
// ---------------------------------------------------------------------------

/// One shard's view of the cross-shard 2PC traffic in its log: every
/// `2PC_PREPARE` and `2PC_DECISION` record, collected in a sequential pass
/// (the records are global-ordering facts, like status records, so all
/// three audit strategies gather them the same way and feed the same
/// checks). Exposed on [`AuditOutcome`] so a deployment-level auditor can
/// join the books of all shards and catch decisions that diverge *between*
/// shards even when each shard is locally consistent.
#[derive(Clone, Debug, Default)]
pub struct TwoPcBook {
    /// `gtxn → (local participant txn, shard id, participant set, offset)`.
    pub prepares: BTreeMap<u64, (TxnId, u32, Vec<u32>, u64)>,
    /// `gtxn → (commit?, offset of first decision)`.
    pub decisions: BTreeMap<u64, (bool, u64)>,
    /// Global transactions with two opposite-outcome decisions on this log.
    pub conflicting: Vec<u64>,
}

impl TwoPcBook {
    /// Records a `2PC_PREPARE` replayed at `off`.
    pub fn add_prepare(&mut self, off: u64, gtxn: u64, txn: TxnId, shard: u32, parts: Vec<u32>) {
        // First-win: a crash-recovery duplicate of the same prepare is
        // byte-identical and harmless.
        self.prepares.entry(gtxn).or_insert((txn, shard, parts, off));
    }

    /// Records a `2PC_DECISION` replayed at `off`.
    pub fn add_decision(&mut self, off: u64, gtxn: u64, commit: bool) {
        match self.decisions.get(&gtxn) {
            Some((prev, _)) if *prev != commit => {
                if !self.conflicting.contains(&gtxn) {
                    self.conflicting.push(gtxn);
                }
            }
            Some(_) => {} // idempotent re-append (crash resolution)
            None => {
                self.decisions.insert(gtxn, (commit, off));
            }
        }
    }

    /// Ingests one log record if it is 2PC traffic (convenience for the
    /// sequential collection passes).
    pub fn ingest(&mut self, off: u64, rec: &LogRecord) {
        match rec {
            LogRecord::TwoPcPrepare { gtxn, txn, shard, participants } => {
                self.add_prepare(off, *gtxn, *txn, *shard, participants.clone());
            }
            LogRecord::TwoPcDecision { gtxn, commit } => {
                self.add_decision(off, *gtxn, *commit);
            }
            _ => {}
        }
    }
}

/// The per-shard 2PC discipline, shared by all three audit strategies:
/// every prepare must have a decision, every decision a prepare, no
/// conflicting decisions, and the decision must agree with the
/// participant's actual outcome (stamped iff decided-commit).
fn two_pc_checks(
    book: &TwoPcBook,
    stamps: &HashMap<TxnId, (Timestamp, u64)>,
    v: &mut Vec<Violation>,
) {
    for gtxn in &book.conflicting {
        v.push(Violation::TwoPcConflictingDecision { gtxn: *gtxn });
    }
    for (gtxn, (txn, _shard, _parts, _off)) in &book.prepares {
        match book.decisions.get(gtxn) {
            None => v.push(Violation::TwoPcUndecided { gtxn: *gtxn, txn: *txn }),
            Some((commit, _)) => {
                let stamped = stamps.contains_key(txn);
                if *commit != stamped {
                    v.push(Violation::TwoPcOutcomeMismatch {
                        gtxn: *gtxn,
                        txn: *txn,
                        decided_commit: *commit,
                    });
                }
            }
        }
    }
    for gtxn in book.decisions.keys() {
        if !book.prepares.contains_key(gtxn) {
            v.push(Violation::TwoPcOrphanDecision { gtxn: *gtxn });
        }
    }
}

/// The deployment-level cross-shard join: given every shard's
/// [`TwoPcBook`], flag global transactions whose decisions disagree across
/// participants. Each shard's book may be locally clean; only the join sees
/// the divergence.
pub fn two_pc_cross_shard_join(books: &[TwoPcBook]) -> Vec<Violation> {
    let mut outcome: BTreeMap<u64, bool> = BTreeMap::new();
    let mut divergent: Vec<u64> = Vec::new();
    for book in books {
        for (gtxn, (commit, _)) in &book.decisions {
            match outcome.get(gtxn) {
                Some(prev) if prev != commit => {
                    if !divergent.contains(gtxn) {
                        divergent.push(*gtxn);
                    }
                }
                Some(_) => {}
                None => {
                    outcome.insert(*gtxn, *commit);
                }
            }
        }
    }
    divergent.into_iter().map(|gtxn| Violation::TwoPcDivergentDecision { gtxn }).collect()
}

/// Accumulator for the final-state scan (phase D): partial completeness
/// fold, page-compare violations, forensics, and snapshot material. The
/// serial oracle uses one over all pages; the parallel pipeline one per
/// page-range task, merged in range order (ADD-HASH addition is
/// grouping-independent, so `h_final` is byte-identical).
struct FinalScan {
    h_final: AddHash,
    tuples_final: u64,
    violations: Vec<Violation>,
    forensics: Vec<TupleFinding>,
    snapshot_pages: Vec<SnapPage>,
}

impl FinalScan {
    fn new() -> FinalScan {
        FinalScan {
            h_final: AddHash::new(),
            tuples_final: 0,
            violations: Vec::new(),
            forensics: Vec::new(),
            snapshot_pages: Vec::new(),
        }
    }
}

/// Scans one final-state page: folds its resolvable tuples into the
/// completeness hash, compares it against the replayed state (with
/// per-tuple forensics on mismatch), and captures it for the next snapshot.
fn scan_final_page(
    disk: &DiskManager,
    worm: &WormServer,
    pgno: PageNo,
    states: &HashMap<PageNo, PageState>,
    stamps: &HashMap<TxnId, (Timestamp, u64)>,
    out: &mut FinalScan,
) -> Result<()> {
    let raw = disk.read_raw(pgno)?;
    if raw.iter().all(|b| *b == 0) {
        return Ok(()); // allocated, never written
    }
    let page = match Page::from_bytes(&raw) {
        Ok(p) => p,
        Err(e) => {
            out.violations.push(Violation::BadPage { pgno, reason: e.to_string() });
            return Ok(());
        }
    };
    if !page.verify_checksum() {
        out.violations.push(Violation::BadPage { pgno, reason: "checksum mismatch".into() });
    }
    match page.page_type() {
        PageType::Free => {}
        PageType::Leaf => {
            let mut tuples = Vec::new();
            for cell in page.cells() {
                match TupleVersion::decode_cell(cell) {
                    Ok(t) => tuples.push(t),
                    Err(e) => out
                        .violations
                        .push(Violation::BadPage { pgno, reason: format!("cell: {e}") }),
                }
            }
            // A live historical page with no replayed state can be the
            // conventional copy of a migrated page surviving a crash that
            // lost its retire: the MIGRATE record removed it from the
            // replay and the completeness universe, but the Free image
            // never became durable. Harmless iff the surviving bytes are
            // exactly the verified immutable WORM copy (its content stays
            // out of the final fold, matching the MIGRATE's removal);
            // anything else is judged below as usual.
            let replay_empty = states.get(&pgno).map(|st| st.tuples.is_empty()).unwrap_or(true);
            if replay_empty && page.is_historical() && !tuples.is_empty() {
                let name = crate::migrate::migrated_page_name(page.rel_id(), pgno);
                let survivor = worm
                    .read_all(&name)
                    .ok()
                    .and_then(|b| MigratedPage::decode(&b).ok())
                    .is_some_and(|mp| mp.cells.iter().map(|c| c.as_slice()).eq(page.cells()));
                if survivor {
                    return Ok(());
                }
            }
            for t in &tuples {
                let ct = match t.time {
                    WriteTime::Committed(ct) => Some(ct),
                    WriteTime::Pending(txn) => {
                        let r = stamps.get(&txn).map(|(c, _)| *c);
                        if r.is_none() {
                            out.violations.push(Violation::UnstampedTransaction { txn });
                        }
                        r
                    }
                };
                if let Some(ct) = ct {
                    out.h_final.add(&fold_identity(t, ct));
                    out.tuples_final += 1;
                }
            }
            // Replay comparison, with per-tuple forensic diffing on
            // mismatch: match disk vs replayed tuples by (key, seq);
            // value/time disagreements are alterations, replay-only
            // entries are missing tuples, disk-only entries are
            // forgeries.
            let replayed: &[TupleVersion] =
                states.get(&pgno).map(|st| st.tuples.as_slice()).unwrap_or(&[]);
            let mut a: Vec<ResolvedTuple> =
                tuples.iter().map(|t| resolve_tuple(t, stamps)).collect();
            let mut b: Vec<ResolvedTuple> =
                replayed.iter().map(|t| resolve_tuple(t, stamps)).collect();
            a.sort();
            b.sort();
            if a != b {
                out.violations.push(Violation::StateMismatch { pgno });
                let rel = page.rel_id();
                let mut disk_by: HashMap<(Vec<u8>, u16), &TupleVersion> =
                    tuples.iter().map(|t| ((t.key.clone(), t.seq), t)).collect();
                for r in replayed {
                    match disk_by.remove(&(r.key.clone(), r.seq)) {
                        Some(d) => {
                            if resolve_tuple(d, stamps) != resolve_tuple(r, stamps) {
                                out.forensics.push(TupleFinding::Altered {
                                    pgno,
                                    rel,
                                    key: r.key.clone(),
                                    seq: r.seq,
                                    expected: r.value.clone(),
                                    found: d.value.clone(),
                                });
                            }
                        }
                        None => out.forensics.push(TupleFinding::Missing {
                            pgno,
                            rel,
                            key: r.key.clone(),
                            seq: r.seq,
                        }),
                    }
                }
                for ((key, seq), _d) in disk_by {
                    out.forensics.push(TupleFinding::Forged { pgno, rel, key, seq });
                }
            }
            out.snapshot_pages.push(SnapPage {
                pgno,
                rel: page.rel_id(),
                kind: PageType::Leaf,
                historical: page.is_historical(),
                aux: page.aux(),
                cells: page.cells().map(|c| c.to_vec()).collect(),
            });
        }
        PageType::Inner => {
            let cells: Vec<Vec<u8>> = page.cells().map(|c| c.to_vec()).collect();
            if let Some(st) = states.get(&pgno) {
                let mut a = cells.clone();
                let mut b = st.cells.clone();
                a.sort();
                b.sort();
                if a != b {
                    if std::env::var("CCDB_AUDIT_DEBUG").is_ok() {
                        let only_disk: Vec<_> = a.iter().filter(|c| !b.contains(c)).collect();
                        let only_replay: Vec<_> = b.iter().filter(|c| !a.contains(c)).collect();
                        eprintln!(
                            "INDEX MISMATCH {pgno:?}: disk={} replay={} disk-only={only_disk:?} replay-only={only_replay:?}",
                            a.len(),
                            b.len()
                        );
                    }
                    out.violations.push(Violation::IndexMismatch { pgno });
                }
            }
            out.snapshot_pages.push(SnapPage {
                pgno,
                rel: page.rel_id(),
                kind: PageType::Inner,
                historical: false,
                aux: page.aux(),
                cells,
            });
        }
        PageType::Meta => {}
    }
    Ok(())
}

/// Replayed pages that no longer exist on disk (and were not migrated)
/// indicate shredding of whole pages outside the protocol.
fn leftover_states_check(
    states: &HashMap<PageNo, PageState>,
    migrated: &HashSet<PageNo>,
    page_count: u64,
    v: &mut Vec<Violation>,
) {
    for (pgno, st) in states {
        if st.kind == Some(PageType::Leaf)
            && !st.tuples.is_empty()
            && !migrated.contains(pgno)
            && pgno.0 >= page_count
        {
            v.push(Violation::StateMismatch { pgno: *pgno });
        }
    }
}

/// Physical tree integrity (Figure 2 checks) for one relation, over a raw
/// (cache-bypassing) pool shared by concurrent tree tasks.
fn check_relation_tree(engine: &Engine, raw_pool: &Arc<BufferPool>, rel: RelId) -> Vec<Violation> {
    let mut v = Vec::new();
    if let Ok(tree) = engine.tree(rel) {
        let shadow = BTree::open(
            raw_pool.clone(),
            engine.clock().clone(),
            rel,
            ccdb_btree::SplitPolicy::KeyOnly,
            tree.root(),
            vec![],
        );
        match check_tree(raw_pool, &shadow) {
            Ok(errs) => v.extend(errs.into_iter().map(Violation::TreeIntegrity)),
            Err(e) => {
                v.push(Violation::BadPage { pgno: tree.root(), reason: format!("tree walk: {e}") })
            }
        }
    }
    v
}

/// Canonicalizes a report: findings are sorted under a total (Debug-string)
/// order, so the parallel pipeline and the serial oracle — and any two runs
/// of either — yield byte-identical reports. (`HashMap` iteration otherwise
/// leaks nondeterministic ordering into several phases.)
fn canonicalize(report: &mut AuditReport) {
    report.violations.sort_by_cached_key(|x| format!("{x:?}"));
    report.forensics.sort_by_cached_key(|x| format!("{x:?}"));
}

fn shred_legality(engine: &Engine, shreds: &ShredMap, v: &mut Vec<Violation>) {
    // A shred is illegal only against holds active *at the shred* — a hold
    // placed afterwards must not retroactively indict an already-legal
    // shred, and a hold released since does not pardon one that violated
    // it. Memoized per shred time (vacuum stamps a whole pass identically).
    let mut holds_memo: BTreeMap<Timestamp, Vec<Hold>> = BTreeMap::new();
    for ((rel, key, start), (shred_time, consumed)) in shreds {
        if consumed.is_empty() {
            v.push(Violation::ShredIncomplete { rel: *rel, key: key.clone() });
        }
        let rel_name = engine.user_relations().into_iter().find(|(_, r)| r == rel).map(|(n, _)| n);
        if let Some(name) = rel_name {
            let retention = retention_as_of(engine, &name, *shred_time).unwrap_or(None);
            match retention {
                Some(rho) => {
                    if start.saturating_add(rho) > *shred_time {
                        v.push(Violation::ShredOfUnexpired { rel: *rel, key: key.clone() });
                    }
                }
                None => v.push(Violation::ShredOfUnexpired { rel: *rel, key: key.clone() }),
            }
            let holds = holds_memo
                .entry(*shred_time)
                .or_insert_with(|| holds_as_of(engine, *shred_time).unwrap_or_default());
            for h in holds.iter() {
                if h.covers(&name, key) {
                    v.push(Violation::ShredOfHeld {
                        rel: *rel,
                        key: key.clone(),
                        hold: h.id.clone(),
                    });
                }
            }
        }
    }
}

impl Auditor {
    /// Creates an auditor over a WORM server with the given master seed
    /// (snapshot signing lineage).
    pub fn new(worm: Arc<WormServer>, master_seed: [u8; 32], config: AuditConfig) -> Auditor {
        Auditor { worm: worm.clone(), snapshots: SnapshotManager::new(worm, master_seed), config }
    }

    /// The snapshot manager (exposed so the facade can write the post-audit
    /// snapshot after a clean report).
    pub fn snapshots(&self) -> &SnapshotManager {
        &self.snapshots
    }

    /// Audits `epoch`: verifies the database's final state against the
    /// previous snapshot and the epoch's compliance log. The engine must be
    /// quiescent (checkpointed, no active transactions); the auditor reads
    /// the final state from raw disk, bypassing the buffer cache and plugin.
    ///
    /// Dispatches to the serial oracle or the parallel pipeline per the
    /// config; either way the report comes back canonicalized, so verdicts
    /// and finding sets are directly comparable across strategies.
    pub fn audit(&self, engine: &Engine, epoch: u64) -> Result<AuditOutcome> {
        let mut outcome = if self.config.serial {
            self.audit_serial(engine, epoch)?
        } else {
            parallel::audit_parallel(self, engine, epoch)?
        };
        canonicalize(&mut outcome.report);
        Ok(outcome)
    }

    /// The paper's literal single pass (the oracle the parallel pipeline is
    /// differentially tested against).
    fn audit_serial(&self, engine: &Engine, epoch: u64) -> Result<AuditOutcome> {
        let mut v: Vec<Violation> = Vec::new();
        let mut stats = AuditStats { threads_used: 1, ..AuditStats::default() };

        self.phase0_worm_integrity(&mut v);

        // --- Phase A: previous snapshot -----------------------------------
        let t0 = Instant::now();
        let snap = self.phase_a_snapshot(epoch, &mut v, &mut stats);
        stats.snapshot_us = t0.elapsed().as_micros() as u64;

        // --- Phase B: stamp index ------------------------------------------
        let idx = self.phase_b_stamp_index(epoch, &mut v);

        // --- Phase C: main scan over L --------------------------------------
        let t1 = Instant::now();
        let log_bytes = match self.worm.read_all(&epoch_log_name(epoch)) {
            Ok(b) => b,
            Err(e) => {
                // A truncated or checksum-divergent log is itself evidence;
                // audit what can still be audited instead of erroring out.
                v.push(Violation::LogUnreadable { reason: e.to_string() });
                Vec::new()
            }
        };
        stats.log_bytes = log_bytes.len() as u64;

        // `CCDB_AUDIT_DEBUG=1` dumps the replayed record stream with offsets
        // — the fastest way to localize an audit divergence when replaying a
        // torture seed.
        let debug = std::env::var("CCDB_AUDIT_DEBUG").is_ok();
        let sink = SerialSink {
            seen: snap.seen,
            acc: snap.acc,
            shreds: ShredMap::new(),
            recovery_windows: Vec::new(),
        };
        let mut rp = Replayer::new(
            &self.worm,
            &idx.stamps,
            &idx.aborts,
            self.config.verify_reads,
            debug,
            snap.states,
            sink,
        );
        let mut two_pc = TwoPcBook::default();
        for item in LogIter::new(&log_bytes) {
            let (off, rec) = match item {
                Ok(x) => x,
                Err(e) => {
                    rp.violations.push(Violation::LogUnreadable { reason: e.to_string() });
                    break;
                }
            };
            stats.records_scanned += 1;
            if debug {
                let d = format!("{rec:?}");
                eprintln!("AUDIT {off}: {}", &d[..d.len().min(160)]);
            }
            two_pc.ingest(off, &rec);
            rp.replay(off, rec);
        }
        stats.log_scan_us = t1.elapsed().as_micros() as u64;
        stats.reads_verified = rp.reads_verified;
        let Replayer { states, migrated, migrated_versions, violations, sink, .. } = rp;
        v.extend(violations);
        let SerialSink { seen: _, acc, shreds, recovery_windows } = sink;
        let _ = &recovery_windows;
        let _ = migrated;

        // --- Liveness discipline ------------------------------------------
        let mut liveness = idx.liveness;
        self.liveness_and_witness(epoch, &mut liveness, &mut v);

        // --- Shred legality -----------------------------------------------
        shred_legality(engine, &shreds, &mut v);

        // --- 2PC discipline -----------------------------------------------
        two_pc_checks(&two_pc, &idx.stamps, &mut v);

        // --- WAL-tail cross-check -----------------------------------------
        let tw = Instant::now();
        self.wal_tail_check(engine, epoch, &idx.stamps, &shreds, &migrated_versions, 1, &mut v);
        stats.wal_tail_us = tw.elapsed().as_micros() as u64;

        // --- Phase D: final state -----------------------------------------
        let t2 = Instant::now();
        let disk = engine.disk();
        let mut scan = FinalScan::new();
        for i in 0..disk.page_count() {
            scan_final_page(disk, &self.worm, PageNo(i), &states, &idx.stamps, &mut scan)?;
        }
        let FinalScan { h_final, tuples_final, violations: dv, forensics, snapshot_pages } = scan;
        v.extend(dv);
        stats.tuples_final = tuples_final;
        leftover_states_check(&states, &migrated, disk.page_count(), &mut v);
        if acc != h_final {
            v.push(Violation::CompletenessMismatch);
        }
        stats.completeness_join_us = t2.elapsed().as_micros() as u64;
        // Physical tree integrity (Figure 2 checks) over a fresh raw pool.
        let t3 = Instant::now();
        {
            let raw_pool = Arc::new(BufferPool::new(
                disk.clone() as Arc<dyn PageStore>,
                engine.clock().clone(),
                1024,
            ));
            for (_name, rel) in engine.user_relations() {
                v.extend(check_relation_tree(engine, &raw_pool, rel));
            }
        }
        stats.tree_verify_us = t3.elapsed().as_micros() as u64;
        stats.final_state_us = t2.elapsed().as_micros() as u64;
        stats.snapshot_pages = snapshot_pages.len() as u64;

        Ok(AuditOutcome {
            report: AuditReport { epoch, violations: v, forensics, stats },
            snapshot_pages,
            tuple_hash: h_final,
            two_pc,
        })
    }

    /// Phase 0: WORM device integrity. Before trusting any artifact,
    /// confirm each live WORM file's backing store is at least as long as
    /// its trusted metadata says. A short backing file means acknowledged
    /// bytes were destroyed (tail truncation) — the named violation a
    /// compliance officer acts on, as opposed to an unreadable-log I/O
    /// error.
    fn phase0_worm_integrity(&self, v: &mut Vec<Violation>) {
        for (name, meta) in self.worm.list("") {
            if let Ok(backing) = self.worm.backing_len(&name) {
                if backing < meta.len {
                    v.push(Violation::WormTruncated {
                        file: name,
                        trusted_len: meta.len,
                        backing_len: backing,
                    });
                }
            }
        }
    }

    /// Phase A: loads the previous snapshot and folds its committed tuples
    /// into the completeness starting point. When a sealed replay
    /// checkpoint from the previous clean audit attests the snapshot's
    /// tuple hash, the per-tuple ADD-HASH fold (and the fold-vs-stored
    /// comparison it feeds) is skipped — the membership set and page states
    /// are still built in full, so replay semantics are unchanged. Sound
    /// because `snapshots.load` signature-verifies the stored hash and the
    /// checkpoint was sealed only after a clean audit compared content
    /// against it.
    fn phase_a_snapshot(
        &self,
        epoch: u64,
        v: &mut Vec<Violation>,
        stats: &mut AuditStats,
    ) -> SnapFold {
        let prev: Option<Snapshot> = if epoch == 0 {
            None
        } else {
            match self.snapshots.load(epoch - 1) {
                Ok(s) => s,
                Err(e) => {
                    v.push(Violation::SnapshotInvalid { reason: e.to_string() });
                    None
                }
            }
        };
        let mut states: HashMap<PageNo, PageState> = HashMap::new();
        let mut acc = AddHash::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        if let Some(snap) = &prev {
            let sealed = self.config.use_checkpoints
                && epoch > 0
                && self.load_checkpoint(epoch - 1).is_some_and(|h| h == snap.tuple_hash);
            let mut folded = AddHash::new();
            for p in &snap.pages {
                let mut st = PageState {
                    rel: p.rel,
                    kind: Some(p.kind),
                    historical: p.historical,
                    aux: p.aux,
                    ..PageState::default()
                };
                match p.kind {
                    PageType::Leaf => {
                        for cell in &p.cells {
                            match TupleVersion::decode_cell(cell) {
                                Ok(t) => {
                                    match t.time {
                                        WriteTime::Committed(ct) => {
                                            let id = fold_identity(&t, ct);
                                            if sealed {
                                                stats.snapshot_prefix_skipped += 1;
                                            } else {
                                                folded.add(&id);
                                            }
                                            seen.insert(id);
                                        }
                                        WriteTime::Pending(txn) => {
                                            v.push(Violation::UnstampedTransaction { txn });
                                        }
                                    }
                                    st.tuples.push(t);
                                }
                                Err(e) => v.push(Violation::BadPage {
                                    pgno: p.pgno,
                                    reason: format!("snapshot cell: {e}"),
                                }),
                            }
                        }
                    }
                    _ => st.cells = p.cells.clone(),
                }
                states.insert(p.pgno, st);
            }
            if sealed {
                acc = snap.tuple_hash;
            } else {
                if folded != snap.tuple_hash {
                    v.push(Violation::SnapshotInvalid {
                        reason: "stored snapshot hash disagrees with snapshot content".into(),
                    });
                }
                acc = folded;
            }
        }
        SnapFold { states, acc, seen }
    }

    /// Phase B: decodes the epoch's stamp index into the status book and
    /// flags conflicting status records.
    fn phase_b_stamp_index(&self, epoch: u64, v: &mut Vec<Violation>) -> StampIndex {
        let mut stamps: HashMap<TxnId, (Timestamp, u64)> = HashMap::new();
        let mut aborts: HashMap<TxnId, u64> = HashMap::new();
        let mut liveness: Vec<(Timestamp, u64)> = Vec::new();
        match self.worm.read_all(&epoch_stamp_name(epoch)) {
            Ok(bytes) => match StampIndexEntry::decode_all(&bytes) {
                Ok(entries) => {
                    for e in entries {
                        match e {
                            StampIndexEntry::Stamp { txn, time, offset } => {
                                match stamps.get(&txn) {
                                    Some((t0, _)) if *t0 != time => {
                                        v.push(Violation::ConflictingStatus { txn });
                                    }
                                    Some(_) => {} // duplicate (recovery re-emission)
                                    None => {
                                        stamps.insert(txn, (time, offset));
                                        liveness.push((time, offset));
                                    }
                                }
                            }
                            StampIndexEntry::Abort { txn, offset } => {
                                aborts.entry(txn).or_insert(offset);
                            }
                            StampIndexEntry::Dummy { time, offset } => {
                                liveness.push((time, offset));
                            }
                        }
                    }
                }
                Err(e) => v.push(Violation::LogUnreadable { reason: e.to_string() }),
            },
            Err(e) => v.push(Violation::LogUnreadable { reason: e.to_string() }),
        }
        for txn in stamps.keys() {
            if aborts.contains_key(txn) {
                v.push(Violation::ConflictingStatus { txn: *txn });
            }
        }
        StampIndex { stamps, aborts, liveness }
    }

    /// Liveness discipline:
    /// 1. Commit/heartbeat times are non-decreasing in log order — a
    ///    backdated record appended later in L is caught here.
    /// 2. Every liveness event falls in an interval with a *valid*
    ///    witness file: one whose trusted WORM create time lies in (or
    ///    just after) that interval. Mala cannot retro-create a witness —
    ///    the compliance clock stamps her file with the real time.
    /// 3. Every witnessed interval strictly between the first and last
    ///    event contains at least one liveness event (the system promises
    ///    a heartbeat per live interval, bounding the backdating window
    ///    to one regret interval).
    fn liveness_and_witness(
        &self,
        epoch: u64,
        liveness: &mut [(Timestamp, u64)],
        v: &mut Vec<Violation>,
    ) {
        liveness.sort_by_key(|(_, off)| *off);
        let mut last: Option<Timestamp> = None;
        for (time, off) in liveness.iter() {
            if let Some(pt) = last {
                if *time < pt {
                    v.push(Violation::CommitTimesNotMonotonic { offset: *off });
                }
            }
            last = Some(*time);
        }
        if self.config.check_witnesses && self.config.regret_interval.0 > 0 {
            let r = self.config.regret_interval.0;
            let valid_witness = |interval: u64| -> bool {
                match self.worm.stat(&witness_name(epoch, interval)) {
                    Ok(meta) => {
                        let ct = meta.create_time.0;
                        ct >= interval * r && ct < (interval + 2) * r
                    }
                    Err(_) => false,
                }
            };
            let mut event_intervals: HashSet<u64> = HashSet::new();
            for (time, _) in liveness.iter() {
                event_intervals.insert(time.0 / r);
            }
            for interval in &event_intervals {
                if !valid_witness(*interval) {
                    v.push(Violation::MissingWitness { interval: *interval });
                }
            }
            if let (Some((first, _)), Some((last, _))) = (liveness.first(), liveness.last()) {
                let lo = first.0 / r;
                let hi = last.0 / r;
                for interval in lo + 1..hi {
                    if valid_witness(interval) && !event_intervals.contains(&interval) {
                        v.push(Violation::RegretGapExceeded {
                            from: Timestamp(interval * r),
                            to: Timestamp((interval + 1) * r),
                        });
                    }
                }
            }
        }
    }

    /// WAL-tail cross-check. "This is why we require the tail of the
    /// transaction log … to be on WORM, and that it be retained until the
    /// next audit": commits that are durable in the tail must be
    /// acknowledged by L (a STAMP_TRANS) and their writes present in the
    /// final state — a wiped local WAL cannot silently unwind recent
    /// commits.
    #[allow(clippy::too_many_arguments)] // audit-index plumbing, internal only
    fn wal_tail_check(
        &self,
        engine: &Engine,
        epoch: u64,
        stamps: &HashMap<TxnId, (Timestamp, u64)>,
        shreds: &ShredMap,
        migrated_versions: &HashSet<(RelId, Vec<u8>, Timestamp)>,
        threads: usize,
        v: &mut Vec<Violation>,
    ) {
        if !self.worm.exists(&waltail_name(epoch)) {
            return;
        }
        let tail_bytes = match self.worm.read_all(&waltail_name(epoch)) {
            Ok(b) => b,
            Err(e) => {
                v.push(Violation::LogUnreadable { reason: format!("WAL tail: {e}") });
                Vec::new()
            }
        };
        let mut reader = ccdb_wal::WalReader::from_bytes(tail_bytes);
        let mut tail_commits: HashSet<TxnId> = HashSet::new();
        let mut tail_inserts: HashMap<TxnId, Vec<(RelId, Vec<u8>)>> = HashMap::new();
        while let Some((_lsn, rec)) = reader.next_record() {
            match rec {
                ccdb_wal::WalRecord::Commit { txn, .. } => {
                    tail_commits.insert(txn);
                }
                ccdb_wal::WalRecord::Insert { txn, rel, key, .. } => {
                    tail_inserts.entry(txn).or_default().push((rel, key));
                }
                _ => {}
            }
        }
        let mut jobs: Vec<TxnId> = Vec::new();
        for txn in &tail_commits {
            if !stamps.contains_key(txn) {
                v.push(Violation::WalTailInconsistent { txn: *txn });
            } else {
                jobs.push(*txn);
            }
        }
        // The per-transaction presence probes are independent read-only
        // B-tree lookups — on emulated remote storage they dominate this
        // check, so they fan out on the pool (`threads == 1` runs the
        // identical loop inline). Each probe keeps the serial first-miss
        // semantics: at most one violation per transaction, determined by
        // the WAL-tail insert order.
        let debug = std::env::var("CCDB_AUDIT_DEBUG").is_ok();
        let tail_inserts = &tail_inserts;
        let results: Vec<Option<Violation>> = parallel_map(threads, jobs, |txn| {
            let ct = stamps[&txn].0;
            for (rel, key) in tail_inserts.get(&txn).map(|v| v.as_slice()).unwrap_or(&[]) {
                let present = engine
                    .tree(*rel)
                    .ok()
                    .and_then(|tree| tree.versions(key).ok())
                    .map(|vs| {
                        vs.iter().any(|t| {
                            t.time == WriteTime::Committed(ct) || t.time == WriteTime::Pending(txn)
                        })
                    })
                    .unwrap_or(false)
                    || engine
                        .historical_versions(*rel, key)
                        .map(|vs| vs.iter().any(|t| t.time == WriteTime::Committed(ct)))
                        .unwrap_or(false);
                // Vacuumed (legally shredded) and WORM-migrated
                // versions are excused — they are accounted elsewhere.
                let shredded = shreds.contains_key(&(*rel, key.clone(), ct));
                let on_worm = migrated_versions.contains(&(*rel, key.clone(), ct));
                if !present && !shredded && !on_worm {
                    if debug {
                        eprintln!("TAIL MISS txn={txn:?} rel={rel:?} key={key:02x?} ct={ct:?}");
                    }
                    return Some(Violation::WalTailInconsistent { txn });
                }
            }
            None
        });
        v.extend(results.into_iter().flatten());
    }

    /// Writes the sealed replay checkpoint for a just-audited-clean epoch:
    /// `magic ‖ epoch ‖ tuple ADD-HASH ‖ tuple count`. Idempotent (a
    /// checkpoint already on WORM is left alone — WORM files are immutable
    /// anyway).
    pub fn write_checkpoint(
        &self,
        epoch: u64,
        tuple_hash: &AddHash,
        tuples: u64,
        retention_until: Timestamp,
    ) -> Result<()> {
        let name = audit_ckpt_name(epoch);
        if self.worm.exists(&name) {
            return Ok(());
        }
        let mut w = ByteWriter::new();
        w.put_u64(CKPT_MAGIC);
        w.put_u64(epoch);
        w.put_bytes(&tuple_hash.to_bytes());
        w.put_u64(tuples);
        let f = self.worm.create(&name, retention_until)?;
        self.worm.append(&f, w.as_slice())?;
        self.worm.seal(&name)?;
        Ok(())
    }

    /// Loads a sealed replay checkpoint, or `None` if absent, unsealed, or
    /// malformed (the audit then falls back to the full re-fold — a missing
    /// checkpoint is never an error, only a missed optimization).
    fn load_checkpoint(&self, epoch: u64) -> Option<AddHash> {
        let name = audit_ckpt_name(epoch);
        let meta = self.worm.stat(&name).ok()?;
        if !meta.sealed {
            return None;
        }
        let bytes = self.worm.read_all(&name).ok()?;
        let mut r = ByteReader::new(&bytes);
        if r.get_u64().ok()? != CKPT_MAGIC || r.get_u64().ok()? != epoch {
            return None;
        }
        let h = r.get_bytes(64).ok()?;
        let mut b = [0u8; 64];
        b.copy_from_slice(h);
        Some(AddHash::from_bytes(&b))
    }
}

/// Read-hash of a leaf page state at a given `READ` offset: each pending
/// tuple is hashed with its commit time iff its `STAMP_TRANS` appears
/// earlier in `L` than the read.
fn leaf_read_hash(
    tuples: &[TupleVersion],
    stamps: &HashMap<TxnId, (Timestamp, u64)>,
    read_offset: u64,
) -> Digest {
    let mut sorted: Vec<&TupleVersion> = tuples.iter().collect();
    sorted.sort_by_key(|t| t.seq);
    let mut chain = ccdb_crypto::HsChain::new();
    for t in sorted {
        let rc = t.time.pending().and_then(|txn| match stamps.get(&txn) {
            Some((ct, soff)) if *soff < read_offset => Some(*ct),
            _ => None,
        });
        chain.extend(&hs_element_bytes(t, rc));
    }
    chain.value()
}

/// The `(key, rank)` order of an encoded index entry; undecodable cells sort
/// last (and will be flagged by the physical checks).
fn entry_order(cell: &[u8]) -> (Vec<u8>, (u8, u64)) {
    match ccdb_btree::IndexEntry::decode(cell) {
        Ok(e) => {
            let mut w = ccdb_common::ByteWriter::new();
            e.rank.encode(&mut w);
            let v = w.into_vec();
            (e.key, (v[0], u64::from_le_bytes(v[1..9].try_into().expect("8"))))
        }
        Err(_) => (vec![0xFF; 64], (0xFF, u64::MAX)),
    }
}

/// The litigation holds active as of `t`. Holds are version-tracked in a
/// normal relation (placement writes a version, release writes an
/// end-of-life version), so every hold id ever recorded is still
/// enumerable from the tree and resolvable as of any past instant.
fn holds_as_of(engine: &Engine, t: Timestamp) -> Result<Vec<Hold>> {
    let Some(rel) = engine.rel_id(HOLDS_RELATION) else {
        return Ok(Vec::new());
    };
    let mut ids: HashSet<Vec<u8>> = HashSet::new();
    engine.tree(rel)?.scan_range(
        (&[], TimeRank::MIN),
        (&[0xFF; 64], TimeRank::MAX),
        &mut |ver| {
            ids.insert(ver.key.clone());
            Ok(())
        },
    )?;
    let mut holds = Vec::new();
    let mut sorted: Vec<Vec<u8>> = ids.into_iter().collect();
    sorted.sort();
    for id in sorted {
        if let Some(val) = engine.read_as_of(rel, &id, t)? {
            holds.push(Hold::decode(&id, &val)?);
        }
    }
    Ok(holds)
}

/// Retention period for `rel_name` as of time `t`, read from the Expiry
/// relation's version history.
fn retention_as_of(engine: &Engine, rel_name: &str, t: Timestamp) -> Result<Option<Duration>> {
    let Some(expiry) = engine.rel_id(ccdb_engine::engine::EXPIRY_RELATION) else {
        return Ok(None);
    };
    Ok(engine.read_as_of(expiry, rel_name.as_bytes(), t)?.map(|val| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&val[..8]);
        Duration(u64::from_le_bytes(b))
    }))
}

/// Cheap helper used by tests: the rank ordering of a pending version.
pub fn pending_rank(txn: TxnId) -> TimeRank {
    TimeRank::pending(txn)
}

/// Content hash of a canonical tuple (shared with `SHREDDED` records).
pub fn tuple_content_hash(t: &TupleVersion) -> Digest {
    sha256(&t.canonical_bytes())
}
