//! The streaming auditor: a per-tenant daemon-facing incremental audit.
//!
//! The batch auditors (serial oracle and parallel pipeline) re-replay the
//! whole epoch log on every audit. The streaming auditor instead **tails**
//! `L` with bounded lag: each [`StreamAuditor::poll`] reads only the bytes
//! appended since the previous poll, folds them into the carried replay
//! state (page states, completeness accumulator, status book, shred book),
//! and raises a typed [`TamperAlert`] as soon as new log-level evidence
//! appears. A [`StreamAuditor::verdict`] quiesces the database, catches the
//! tail up, and finishes with the *same* finalization the serial oracle
//! runs (final-state scan, completeness join, liveness/witness, shred
//! legality, WAL-tail cross-check, physical tree checks) — over a **clone**
//! of the carried state, so streaming continues afterwards.
//!
//! # Equivalence to the batch auditor
//!
//! The per-record replay logic is the shared [`Replayer`]; the streaming
//! auditor drives it batch-by-batch with the [`SerialSink`]. Two per-record
//! decisions in the `Replayer` consult the *complete* epoch status book,
//! which a tail-follower does not yet have:
//!
//! * a `NEW_TUPLE` whose transaction has no status yet (its `STAMP_TRANS`
//!   or `ABORT` may simply not have been appended) — the serial oracle
//!   would either fold it (stamped later in `L`) or flag
//!   `UnstampedTransaction` (never resolved);
//! * an `UNDO` of a pending version whose `ABORT` has not arrived yet —
//!   the serial oracle would either accept it (aborted later) or flag
//!   `UnjustifiedUndo`.
//!
//! Both are **deferred**: the page-state mutation is applied immediately
//! (it does not depend on the future), while the judgment/fold is parked
//! per transaction and resolved when the status record is replayed — or at
//! verdict time, when "no status by now" is final, exactly as in the batch
//! audit. Every other record either looks only backwards in `L` (the
//! stamp-index mirror guarantees any `STAMP_TRANS` a committed cell relies
//! on precedes it in `L`) or is judged against WORM artifacts, so it is
//! replayed verbatim. Each poll also pre-scans its batch for status
//! records before replaying it, mirroring the batch auditor's phase B, so
//! within a batch the book is as complete as the serial oracle's.
//!
//! The differential suite (`tests/audit_stream_diff.rs`) pauses the stream
//! at random points and asserts the verdict, fold hash, and full finding
//! set are byte-identical to the cold serial oracle and the parallel
//! pipeline.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use ccdb_common::{Error, PageNo, RelId, Result, Timestamp, TxnId};
use ccdb_crypto::AddHash;
use ccdb_engine::Engine;
use ccdb_storage::{BufferPool, PageStore, PageType, TupleVersion, WriteTime};

use crate::db::CompliantDb;
use crate::logger::epoch_log_name;
use crate::records::{LogIter, LogRecord};

use super::{
    canonicalize, check_relation_tree, fold_identity, leftover_states_check, scan_final_page,
    shred_legality, two_pc_checks, AuditOutcome, AuditReport, AuditStats, Auditor, FinalScan,
    FoldOp, PageState, ReplaySink, Replayer, SerialSink, ShredMap, TwoPcBook, Violation,
};

/// Evidence surfaced by the streaming auditor: the violations that became
/// visible since the previous alert (shallow polls) or the full dirty
/// finding set (deep polls).
#[derive(Clone, Debug)]
pub struct TamperAlert {
    /// The epoch the evidence belongs to.
    pub epoch: u64,
    /// The newly-visible violations.
    pub violations: Vec<Violation>,
}

/// Streaming-auditor counters (the scrape-endpoint source).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// The epoch currently being tailed.
    pub epoch: u64,
    /// Polls performed (this attach).
    pub polls: u64,
    /// Records ingested from `L` in the current epoch.
    pub records_ingested: u64,
    /// Bytes of `L` ingested in the current epoch.
    pub bytes_ingested: u64,
    /// Records appended to `L` but not yet ingested at the last poll.
    pub lag_records: u64,
    /// Wall-clock µs the last poll spent.
    pub last_poll_us: u64,
    /// Epoch rolls observed (audits that sealed cleanly under the stream).
    pub epochs_sealed: u64,
    /// Tamper alerts raised.
    pub tamper_alerts: u64,
    /// Violations currently held against the epoch.
    pub violations: u64,
    /// `READ` hashes verified so far this epoch.
    pub reads_verified: u64,
    /// Snapshot tuples whose re-fold was skipped at seed time thanks to the
    /// sealed replay checkpoint (0 when checkpoints are disabled).
    pub snapshot_prefix_skipped: u64,
}

/// A transaction's parked judgments, waiting on its status record.
#[derive(Clone, Debug, Default)]
struct DeferredTxn {
    /// `NEW_TUPLE` versions to fold once a `STAMP_TRANS` resolves them.
    adds: Vec<TupleVersion>,
    /// Pages whose pending-version `UNDO` awaits an `ABORT` justification.
    undo_pages: Vec<PageNo>,
}

/// The streaming auditor. Single-threaded by design: one instance tails one
/// tenant's epoch log; the server runs one daemon thread iterating tenants.
pub struct StreamAuditor {
    auditor: Auditor,
    epoch: u64,
    seeded: bool,
    poisoned: bool,
    debug: bool,
    max_batch_records: Option<usize>,

    // Carried replay state (the serial oracle's mid-scan state).
    states: HashMap<PageNo, PageState>,
    seen: HashSet<Vec<u8>>,
    acc: AddHash,
    shreds: ShredMap,
    recovery_windows: Vec<(u64, Timestamp)>,
    migrated: HashSet<PageNo>,
    migrated_versions: HashSet<(RelId, Vec<u8>, Timestamp)>,
    reads_verified: u64,

    // Status book, built from the status records inline in `L` (the logger
    // mirrors exactly these into the stamp index, with the same offsets).
    stamps: HashMap<TxnId, (Timestamp, u64)>,
    aborts: HashMap<TxnId, u64>,
    liveness: Vec<(Timestamp, u64)>,
    two_pc: TwoPcBook,

    deferred: HashMap<TxnId, DeferredTxn>,
    violations: Vec<Violation>,
    alerted: usize,
    last_deep: Option<Vec<Violation>>,

    byte_pos: u64,
    records_ingested: u64,
    snapshot_prefix_skipped: u64,

    polls: u64,
    epochs_sealed: u64,
    tamper_alerts: u64,
    last_lag_records: u64,
    last_poll_us: u64,
}

impl StreamAuditor {
    /// Attaches a streaming auditor to an epoch of the given auditor's WORM
    /// volume. Seeding from the previous snapshot happens lazily on the
    /// first poll.
    pub fn attach(auditor: Auditor, epoch: u64) -> StreamAuditor {
        let debug = std::env::var("CCDB_AUDIT_DEBUG").is_ok();
        StreamAuditor {
            auditor,
            epoch,
            seeded: false,
            poisoned: false,
            debug,
            max_batch_records: None,
            states: HashMap::new(),
            seen: HashSet::new(),
            acc: AddHash::new(),
            shreds: ShredMap::new(),
            recovery_windows: Vec::new(),
            migrated: HashSet::new(),
            migrated_versions: HashSet::new(),
            reads_verified: 0,
            stamps: HashMap::new(),
            aborts: HashMap::new(),
            liveness: Vec::new(),
            two_pc: TwoPcBook::default(),
            deferred: HashMap::new(),
            violations: Vec::new(),
            alerted: 0,
            last_deep: None,
            byte_pos: 0,
            records_ingested: 0,
            snapshot_prefix_skipped: 0,
            polls: 0,
            epochs_sealed: 0,
            tamper_alerts: 0,
            last_lag_records: 0,
            last_poll_us: 0,
        }
    }

    /// The epoch currently tailed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Caps how many records one poll ingests (the differential suite uses
    /// small caps to stress batch boundaries). `None` = ingest everything
    /// available.
    pub fn set_max_batch_records(&mut self, cap: Option<usize>) {
        self.max_batch_records = cap;
    }

    /// Current counters.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            epoch: self.epoch,
            polls: self.polls,
            records_ingested: self.records_ingested,
            bytes_ingested: self.byte_pos,
            lag_records: self.last_lag_records,
            last_poll_us: self.last_poll_us,
            epochs_sealed: self.epochs_sealed,
            tamper_alerts: self.tamper_alerts,
            violations: self.violations.len() as u64,
            reads_verified: self.reads_verified,
            snapshot_prefix_skipped: self.snapshot_prefix_skipped,
        }
    }

    /// One shallow poll: follow epoch rolls, seed if needed, ingest the new
    /// tail of `L`, and alert on any newly-visible log-level violation.
    /// Never quiesces or reads the engine — safe to run under full load.
    pub fn poll(&mut self, db: &CompliantDb) -> Result<Option<TamperAlert>> {
        let t0 = Instant::now();
        let plugin = db
            .plugin()
            .ok_or_else(|| Error::Invalid("streaming audit requires a compliance mode".into()))?;
        let db_epoch = db.epoch();
        if db_epoch != self.epoch {
            // The epoch only advances on a clean audit: the sealed epoch's
            // evidence (none) is settled; restart against the new epoch.
            self.epochs_sealed += db_epoch.saturating_sub(self.epoch);
            self.reset_for_epoch(db_epoch);
        }
        if !self.seeded {
            self.seed();
        }
        self.ingest_batch()?;
        self.polls += 1;
        self.last_lag_records =
            plugin.logger().records_appended().saturating_sub(self.records_ingested);
        self.last_poll_us = t0.elapsed().as_micros() as u64;
        if self.violations.len() > self.alerted {
            let alert = TamperAlert {
                epoch: self.epoch,
                violations: self.violations[self.alerted..].to_vec(),
            };
            self.alerted = self.violations.len();
            self.tamper_alerts += 1;
            return Ok(Some(alert));
        }
        Ok(None)
    }

    /// A deep poll: a shallow poll plus a full [`StreamAuditor::verdict`].
    /// Catches state-level tampering (disk edits the log never mentions)
    /// that only the final-state comparison can see. Alerts when the dirty
    /// finding set changed since the last deep poll.
    pub fn poll_deep(&mut self, db: &CompliantDb) -> Result<Option<TamperAlert>> {
        let shallow = self.poll(db)?;
        let out = self.verdict(db)?;
        if out.report.is_clean() {
            self.last_deep = None;
            return Ok(shallow);
        }
        if self.last_deep.as_ref() == Some(&out.report.violations) {
            return Ok(shallow);
        }
        self.last_deep = Some(out.report.violations.clone());
        self.tamper_alerts += 1;
        self.alerted = self.violations.len();
        Ok(Some(TamperAlert { epoch: self.epoch, violations: out.report.violations }))
    }

    /// Quiesces the database, catches the tail up completely, and finishes
    /// the audit over a **clone** of the carried state — the exact
    /// finalization sequence of the serial oracle. The stream keeps
    /// running afterwards; on a clean verdict the caller may invoke the
    /// regular [`CompliantDb::audit`] to seal the epoch (the stream then
    /// follows the roll on its next poll).
    pub fn verdict(&mut self, db: &CompliantDb) -> Result<AuditOutcome> {
        let plugin = db
            .plugin()
            .ok_or_else(|| Error::Invalid("streaming audit requires a compliance mode".into()))?;
        let engine = db.engine();
        engine.quiesce()?;
        plugin.logger().flush()?;
        plugin.tick()?;
        let db_epoch = db.epoch();
        if db_epoch != self.epoch {
            self.epochs_sealed += db_epoch.saturating_sub(self.epoch);
            self.reset_for_epoch(db_epoch);
        }
        if !self.seeded {
            self.seed();
        }
        let t0 = Instant::now();
        // Catch up the whole durable tail (caps do not apply to a verdict).
        loop {
            let before = self.byte_pos;
            self.ingest_slice(None)?;
            if self.byte_pos == before {
                break;
            }
        }
        // The finalization's own relation reads (holds, retention, WAL-tail
        // probes, tree walks) are trusted self-reads, exactly as in the
        // batch audit path.
        plugin.begin_trusted_reads();
        let out = self.finalize(engine, t0);
        plugin.end_trusted_reads();
        out
    }

    fn reset_for_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.seeded = false;
        self.poisoned = false;
        self.states = HashMap::new();
        self.seen = HashSet::new();
        self.acc = AddHash::new();
        self.shreds = ShredMap::new();
        self.recovery_windows = Vec::new();
        self.migrated = HashSet::new();
        self.migrated_versions = HashSet::new();
        self.reads_verified = 0;
        self.stamps = HashMap::new();
        self.aborts = HashMap::new();
        self.liveness = Vec::new();
        self.two_pc = TwoPcBook::default();
        self.deferred = HashMap::new();
        self.violations = Vec::new();
        self.alerted = 0;
        self.last_deep = None;
        self.byte_pos = 0;
        self.records_ingested = 0;
        self.snapshot_prefix_skipped = 0;
    }

    /// Phase A: fold the previous epoch's snapshot into the carried state,
    /// honoring the sealed-checkpoint fast path (`use_checkpoints`).
    fn seed(&mut self) {
        let mut v = Vec::new();
        let mut stats = AuditStats::default();
        let snap = self.auditor.phase_a_snapshot(self.epoch, &mut v, &mut stats);
        self.states = snap.states;
        self.acc = snap.acc;
        self.seen = snap.seen;
        self.snapshot_prefix_skipped = stats.snapshot_prefix_skipped;
        self.violations.extend(v);
        self.seeded = true;
    }

    fn ingest_batch(&mut self) -> Result<()> {
        self.ingest_slice(self.max_batch_records)
    }

    /// Reads the durable epoch log, cuts one batch of *complete* frames off
    /// the unread tail (up to `cap` records), pre-scans its status records,
    /// and replays it.
    fn ingest_slice(&mut self, cap: Option<usize>) -> Result<()> {
        if self.poisoned {
            return Ok(());
        }
        let log = match self.auditor.worm.read_all(&epoch_log_name(self.epoch)) {
            Ok(b) => b,
            Err(e) => {
                // Mirror the batch auditor: an unreadable log is evidence,
                // not an audit failure. Poison so it is recorded once.
                self.violations.push(Violation::LogUnreadable { reason: e.to_string() });
                self.poisoned = true;
                return Ok(());
            }
        };
        if (log.len() as u64) < self.byte_pos {
            // The trusted log shrank beneath the cursor — WORM truncation.
            // phase 0 of the next verdict names the file; stop ingesting.
            return Ok(());
        }
        let tail = &log[self.byte_pos as usize..];
        let batch_len = complete_frames_len(tail, cap);
        if batch_len == 0 {
            return Ok(());
        }
        let batch = &tail[..batch_len];
        let base = self.byte_pos;

        // Pre-scan: merge the batch's status records into the book first
        // (mirrors phase B over the stamp index, which holds exactly these
        // records at exactly these offsets), so replay decisions within the
        // batch see the same book the batch auditor would.
        for item in LogIter::new(batch) {
            let Ok((rel_off, rec)) = item else { break };
            let off = base + rel_off;
            // 2PC records are global-ordering facts like status records;
            // the book rides the same pre-scan.
            self.two_pc.ingest(off, &rec);
            match rec {
                LogRecord::StampTrans { txn, commit_time } => match self.stamps.get(&txn) {
                    Some((t0, _)) if *t0 != commit_time => {
                        self.violations.push(Violation::ConflictingStatus { txn });
                    }
                    Some(_) => {} // duplicate (recovery re-emission)
                    None => {
                        self.stamps.insert(txn, (commit_time, off));
                        self.liveness.push((commit_time, off));
                    }
                },
                LogRecord::Abort { txn } => {
                    self.aborts.entry(txn).or_insert(off);
                }
                LogRecord::DummyStamp { time } => {
                    self.liveness.push((time, off));
                }
                _ => {}
            }
        }

        // Replay. The Replayer borrows the status book, so the book and the
        // sink state move into locals for the duration of the batch.
        let stamps = std::mem::take(&mut self.stamps);
        let aborts = std::mem::take(&mut self.aborts);
        let sink = SerialSink {
            seen: std::mem::take(&mut self.seen),
            acc: self.acc,
            shreds: std::mem::take(&mut self.shreds),
            recovery_windows: std::mem::take(&mut self.recovery_windows),
        };
        let mut rp = Replayer::new(
            &self.auditor.worm,
            &stamps,
            &aborts,
            self.auditor.config.verify_reads,
            self.debug,
            std::mem::take(&mut self.states),
            sink,
        );
        rp.migrated = std::mem::take(&mut self.migrated);
        rp.migrated_versions = std::mem::take(&mut self.migrated_versions);

        for item in LogIter::new(batch) {
            let (rel_off, rec) = match item {
                Ok(x) => x,
                Err(e) => {
                    rp.violations.push(Violation::LogUnreadable { reason: e.to_string() });
                    self.poisoned = true;
                    break;
                }
            };
            let off = base + rel_off;
            self.records_ingested += 1;
            if self.debug {
                let d = format!("{rec:?}");
                eprintln!("STREAM {off}: {}", &d[..d.len().min(160)]);
            }
            // Park the two future-dependent judgments; everything else is
            // the shared replay, verbatim.
            match &rec {
                LogRecord::NewTuple { pgno, rel, cell } => {
                    if let Ok(t) = TupleVersion::decode_cell(cell) {
                        if let WriteTime::Pending(txn) = t.time {
                            if !stamps.contains_key(&txn) && !aborts.contains_key(&txn) {
                                let st = rp.states.entry(*pgno).or_insert_with(|| PageState {
                                    rel: *rel,
                                    kind: Some(PageType::Leaf),
                                    ..PageState::default()
                                });
                                if !st.tuples.iter().any(|e| e.key == t.key && e.seq == t.seq) {
                                    st.tuples.push(t.clone());
                                }
                                self.deferred.entry(txn).or_default().adds.push(t);
                                continue;
                            }
                        }
                    }
                }
                LogRecord::Undo { pgno, rel: _, cell } => {
                    if let Ok(t) = TupleVersion::decode_cell(cell) {
                        if let WriteTime::Pending(txn) = t.time {
                            if !aborts.contains_key(&txn) {
                                if let Some(st) = rp.states.get_mut(pgno) {
                                    if let Some(pos) = st
                                        .tuples
                                        .iter()
                                        .position(|e| e.key == t.key && e.seq == t.seq)
                                    {
                                        st.tuples.remove(pos);
                                    }
                                }
                                self.deferred.entry(txn).or_default().undo_pages.push(*pgno);
                                continue;
                            }
                        }
                    }
                }
                LogRecord::StampTrans { txn, .. } => {
                    // Resolve this transaction's parked NEW_TUPLEs at the
                    // stamp's offset, in park order, with the book's
                    // (first-win) commit time. Parked UNDOs stay: only an
                    // ABORT justifies them, and one may still arrive.
                    if let Some((ct, _)) = stamps.get(txn) {
                        if let Some(d) = self.deferred.get_mut(txn) {
                            for t in d.adds.drain(..) {
                                rp.sink.fold(off, FoldOp::AddIfNew(fold_identity(&t, *ct)));
                            }
                            if d.undo_pages.is_empty() {
                                self.deferred.remove(txn);
                            }
                        }
                    }
                }
                LogRecord::Abort { txn } => {
                    // Parked UNDOs are justified. Parked NEW_TUPLEs stay: a
                    // conflicting later stamp would still fold them, exactly
                    // as the batch auditor's full status book would.
                    if let Some(d) = self.deferred.get_mut(txn) {
                        d.undo_pages.clear();
                        if d.adds.is_empty() {
                            self.deferred.remove(txn);
                        }
                    }
                }
                _ => {}
            }
            rp.replay(off, rec);
        }

        let Replayer {
            states, migrated, migrated_versions, violations, reads_verified, sink, ..
        } = rp;
        self.states = states;
        self.migrated = migrated;
        self.migrated_versions = migrated_versions;
        self.violations.extend(violations);
        self.reads_verified += reads_verified;
        let SerialSink { seen, acc, shreds, recovery_windows } = sink;
        self.seen = seen;
        self.acc = acc;
        self.shreds = shreds;
        self.recovery_windows = recovery_windows;
        self.stamps = stamps;
        self.aborts = aborts;
        self.byte_pos += batch_len as u64;
        Ok(())
    }

    /// The serial oracle's post-scan phases over a clone of the carried
    /// state. `t0` anchors the lag/catch-up timing reported in the stats.
    fn finalize(&self, engine: &Engine, t0: Instant) -> Result<AuditOutcome> {
        let mut v = self.violations.clone();

        self.auditor.phase0_worm_integrity(&mut v);

        // Resolve the parked judgments: no status by verdict time is final.
        for (txn, d) in &self.deferred {
            if self.aborts.contains_key(txn) {
                continue; // aborted: adds fold nothing, undos are justified
            }
            if !self.stamps.contains_key(txn) {
                for _ in &d.adds {
                    v.push(Violation::UnstampedTransaction { txn: *txn });
                }
            }
            for pgno in &d.undo_pages {
                v.push(Violation::UnjustifiedUndo { pgno: *pgno });
            }
        }

        // Phase B's closing pass: a transaction with both a stamp and an
        // abort has conflicting status.
        for txn in self.stamps.keys() {
            if self.aborts.contains_key(txn) {
                v.push(Violation::ConflictingStatus { txn: *txn });
            }
        }

        let mut liveness = self.liveness.clone();
        self.auditor.liveness_and_witness(self.epoch, &mut liveness, &mut v);

        shred_legality(engine, &self.shreds, &mut v);

        two_pc_checks(&self.two_pc, &self.stamps, &mut v);

        self.auditor.wal_tail_check(
            engine,
            self.epoch,
            &self.stamps,
            &self.shreds,
            &self.migrated_versions,
            1,
            &mut v,
        );

        let disk = engine.disk();
        let mut scan = FinalScan::new();
        for i in 0..disk.page_count() {
            scan_final_page(
                disk,
                &self.auditor.worm,
                PageNo(i),
                &self.states,
                &self.stamps,
                &mut scan,
            )?;
        }
        let FinalScan { h_final, tuples_final, violations: dv, forensics, snapshot_pages } = scan;
        v.extend(dv);
        leftover_states_check(&self.states, &self.migrated, disk.page_count(), &mut v);
        if self.acc != h_final {
            v.push(Violation::CompletenessMismatch);
        }
        {
            let raw_pool = Arc::new(BufferPool::new(
                disk.clone() as Arc<dyn PageStore>,
                engine.clock().clone(),
                1024,
            ));
            for (_name, rel) in engine.user_relations() {
                v.extend(check_relation_tree(engine, &raw_pool, rel));
            }
        }

        let stats = AuditStats {
            threads_used: 1,
            records_scanned: self.records_ingested,
            log_bytes: self.byte_pos,
            reads_verified: self.reads_verified,
            tuples_final,
            snapshot_pages: snapshot_pages.len() as u64,
            snapshot_prefix_skipped: self.snapshot_prefix_skipped,
            audit_lag_records: 0, // a verdict is fully caught up by definition
            audit_lag_us: t0.elapsed().as_micros() as u64,
            ..AuditStats::default()
        };
        let mut report = AuditReport { epoch: self.epoch, violations: v, forensics, stats };
        canonicalize(&mut report);
        Ok(AuditOutcome {
            report,
            snapshot_pages,
            tuple_hash: h_final,
            two_pc: self.two_pc.clone(),
        })
    }
}

/// Length of the longest prefix of `bytes` consisting of complete record
/// frames (`len ‖ checksum ‖ body`), capped at `cap` records. A trailing
/// partial frame (a flush racing the read) is left for the next poll.
fn complete_frames_len(bytes: &[u8], cap: Option<usize>) -> usize {
    let mut pos = 0usize;
    let mut n = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else { break };
        if end > bytes.len() {
            break;
        }
        pos = end;
        n += 1;
        if cap.is_some_and(|c| n >= c) {
            break;
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body_len: usize) -> Vec<u8> {
        let mut f = (body_len as u32).to_le_bytes().to_vec();
        f.extend_from_slice(&[0u8; 4]); // checksum (unchecked by the scan)
        f.extend(vec![0xAB; body_len]);
        f
    }

    #[test]
    fn frame_scan_cuts_at_partial_tail() {
        let mut bytes = frame(3);
        bytes.extend(frame(5));
        let whole = bytes.len();
        bytes.extend_from_slice(&frame(9)[..6]); // torn tail
        assert_eq!(complete_frames_len(&bytes, None), whole);
        assert_eq!(complete_frames_len(&bytes, Some(1)), frame(3).len());
        assert_eq!(complete_frames_len(&[], None), 0);
        assert_eq!(complete_frames_len(&bytes[..4], None), 0);
    }
}
