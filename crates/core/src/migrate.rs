//! The WORM-migration refinement (Section VI).
//!
//! Historical pages produced by TSB time splits "will never be split again,
//! and hence can be put on WORM. … Then the historical pages on WORM can be
//! exempted from future audits." Migration:
//!
//! 1. read the historical page (through the plugin, so the read itself is
//!    hash-logged under hash-page-on-read);
//! 2. copy its content into a sealed WORM file;
//! 3. append a `MIGRATE` record binding the page to the copy by content
//!    hash, and flush it;
//! 4. retire the conventional-media page and drop it from the relation's
//!    historical list (both WAL-logged).
//!
//! The auditor verifies each `MIGRATE` by comparing the WORM copy against
//! its replayed page state, then removes the page's tuples from the
//! completeness universe — they remain queryable from WORM (trusted) but no
//! longer need auditing.

use std::sync::Arc;

use ccdb_common::{ByteReader, ByteWriter, Error, PageNo, RelId, Result, Timestamp};
use ccdb_engine::Engine;
use ccdb_worm::WormServer;

use crate::plugin::{page_content_hash, CompliancePlugin};
use crate::records::LogRecord;

/// WORM file name of a migrated page.
pub fn migrated_page_name(rel: RelId, pgno: PageNo) -> String {
    format!("hist/rel{}-pg{}", rel.0, pgno.0)
}

/// WORM marker recording that a migrated page was re-migrated back to
/// conventional media (query paths skip the stale copy; the copy itself is
/// immutable until its file-level retention expires).
pub fn retired_marker_name(worm_name: &str) -> String {
    format!("hist-retired/{}", worm_name.trim_start_matches("hist/"))
}

/// A migrated page as stored on WORM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigratedPage {
    /// Original page number.
    pub pgno: PageNo,
    /// Owning relation.
    pub rel: RelId,
    /// The TSB split time of the page.
    pub split_time: u64,
    /// Full cell content.
    pub cells: Vec<Vec<u8>>,
}

impl MigratedPage {
    /// Encodes for WORM storage.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(0xCCDB_0157);
        w.put_u64(self.pgno.0);
        w.put_u32(self.rel.0);
        w.put_u64(self.split_time);
        w.put_u32(self.cells.len() as u32);
        for c in &self.cells {
            w.put_len_bytes(c);
        }
        w.into_vec()
    }

    /// Decodes from WORM bytes.
    pub fn decode(bytes: &[u8]) -> Result<MigratedPage> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != 0xCCDB_0157 {
            return Err(Error::corruption("bad migrated-page magic"));
        }
        let pgno = PageNo(r.get_u64()?);
        let rel = RelId(r.get_u32()?);
        let split_time = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut cells = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            cells.push(r.get_len_bytes()?.to_vec());
        }
        if !r.is_exhausted() {
            return Err(Error::corruption("trailing bytes in migrated page"));
        }
        Ok(MigratedPage { pgno, rel, split_time, cells })
    }
}

/// Outcome of a migration pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Pages moved to WORM.
    pub pages_migrated: usize,
    /// Tuple versions those pages carried.
    pub tuples_migrated: usize,
}

/// Migrates every pending historical page of `rel` to WORM. When the
/// relation has a retention period, the WORM file's own retention is set to
/// the expiry of its youngest tuple — "the migration of time-split tuples
/// … will be most effective if all the migrated data in the file will
/// expire at approximately the same time. Then … the entire file can be
/// deleted at once."
pub fn migrate_relation(
    engine: &Engine,
    plugin: &Arc<CompliancePlugin>,
    worm: &Arc<WormServer>,
    rel: RelId,
) -> Result<MigrationReport> {
    let tree = engine.tree(rel)?;
    let retention = engine
        .user_relations()
        .into_iter()
        .find(|(_, r)| *r == rel)
        .and_then(|(name, _)| engine.retention(&name).ok().flatten());
    let mut report = MigrationReport::default();
    for pgno in tree.historical_pages() {
        let name = migrated_page_name(rel, pgno);
        // Resuming a migration a crash interrupted: the page is already on
        // WORM (in whole or in part), so this pass's page read is engine
        // bookkeeping, not an audited data read — the replayed state its
        // READ hash would be checked against left the auditing universe
        // with the first MIGRATE record.
        let resumed = worm.exists(&name);
        if resumed {
            plugin.begin_trusted_reads();
        }
        let fetched = engine.pool().fetch(pgno);
        if resumed {
            plugin.end_trusted_reads();
        }
        let frame = fetched?;
        let (cells, split_time) = {
            let page = frame.read();
            if !page.is_historical() {
                // A previous pass retired this page (the WAL'd Free image
                // survived the crash) but its `HistoricalRemove` did not.
                // The MIGRATE record is flushed before the retire, so the
                // migration itself is durable — finish the bookkeeping.
                if page.page_type() == ccdb_storage::PageType::Free && worm.exists(&name) {
                    plugin.note_migrated(pgno);
                    engine.forget_historical(rel, pgno)?;
                    continue;
                }
                return Err(Error::Invalid(format!(
                    "{pgno} is on the historical list but not flagged historical"
                )));
            }
            (page.cells().map(|c| c.to_vec()).collect::<Vec<_>>(), page.aux())
        };
        let content_hash = page_content_hash(&cells);
        let mp = MigratedPage { pgno, rel, split_time, cells };
        let file_retention = match retention {
            Some(rho) => mp
                .cells
                .iter()
                .filter_map(|c| {
                    ccdb_storage::TupleVersion::decode_cell(c).ok().and_then(|t| t.time.committed())
                })
                .max()
                .map(|t| t.saturating_add(rho))
                .unwrap_or(Timestamp::MAX),
            None => Timestamp::MAX,
        };
        let encoded = mp.encode();
        if worm.exists(&name) {
            // A previous pass copied this page but crashed before its
            // retire became durable. The copy is immutable, so resume
            // instead of recreating: the existing bytes must be a prefix
            // of (or exactly) what we would write — historical pages never
            // change — then the tail is appended and the file sealed. The
            // (possibly duplicate) MIGRATE record below re-asserts the
            // migration; the auditor tolerates re-assertions of an
            // already-verified copy.
            let meta = worm.stat(&name)?;
            let existing = worm.read_all(&name)?;
            if meta.sealed {
                if existing != encoded {
                    return Err(Error::Invalid(format!(
                        "sealed WORM copy {name:?} does not match the live page it claims to hold"
                    )));
                }
            } else {
                if !encoded.starts_with(&existing) {
                    return Err(Error::Invalid(format!(
                        "partial WORM copy {name:?} is not a prefix of the live page content"
                    )));
                }
                if existing.len() < encoded.len() {
                    let f = worm.handle(&name)?;
                    worm.append(&f, &encoded[existing.len()..])?;
                }
                worm.extend_retention(&name, file_retention)?;
                worm.seal(&name)?;
            }
        } else {
            let f = worm.create(&name, file_retention)?;
            worm.append(&f, &encoded)?;
            worm.seal(&name)?;
        }
        // The MIGRATE record must be durable before the live copy dies.
        plugin.logger().append_flush(&LogRecord::Migrate {
            pgno,
            rel,
            worm_file: name,
            content_hash,
        })?;
        plugin.note_migrated(pgno);
        engine.retire_page(pgno)?;
        engine.forget_historical(rel, pgno)?;
        report.pages_migrated += 1;
        report.tuples_migrated += mp.cells.len();
    }
    Ok(report)
}

/// Reads a migrated page back from WORM (temporal queries over migrated
/// history; re-migration for shredding).
pub fn read_migrated(worm: &WormServer, rel: RelId, pgno: PageNo) -> Result<MigratedPage> {
    let bytes = worm.read_all(&migrated_page_name(rel, pgno))?;
    MigratedPage::decode(&bytes)
}

/// Re-migrates a WORM page's content back to conventional media as a fresh
/// historical page (so the normal vacuum can shred its expired tuples). The
/// tuples re-enter the auditing universe through the ordinary `NEW_TUPLE`
/// path when the adopted page is first written out. The stale WORM copy
/// remains until its own file-level retention expires — "one cannot truly
/// delete a page on WORM until the file in which it resides has expired".
pub fn remigrate_page(
    engine: &Engine,
    worm: &Arc<WormServer>,
    rel: RelId,
    worm_name: &str,
) -> Result<ccdb_common::PageNo> {
    let bytes = worm.read_all(worm_name)?;
    let mp = MigratedPage::decode(&bytes)?;
    if mp.rel != rel {
        return Err(Error::Invalid(format!(
            "WORM page {worm_name} belongs to {}, not {rel}",
            mp.rel
        )));
    }
    let pgno = engine.adopt_historical_page(rel, &mp.cells, mp.split_time)?;
    let marker = retired_marker_name(worm_name);
    if !worm.exists(&marker) {
        worm.create(&marker, Timestamp::MAX)?;
    }
    Ok(pgno)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrated_page_roundtrip() {
        let mp = MigratedPage {
            pgno: PageNo(12),
            rel: RelId(3),
            split_time: 999,
            cells: vec![b"a".to_vec(), b"bb".to_vec()],
        };
        assert_eq!(MigratedPage::decode(&mp.encode()).unwrap(), mp);
    }

    #[test]
    fn corrupt_migrated_page_rejected() {
        let mp = MigratedPage { pgno: PageNo(1), rel: RelId(1), split_time: 0, cells: vec![] };
        let mut b = mp.encode();
        b[0] ^= 1;
        assert!(MigratedPage::decode(&b).is_err());
        assert!(MigratedPage::decode(&[]).is_err());
    }
}
