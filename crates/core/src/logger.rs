//! The compliance logger: the append path to the log `L` on WORM.
//!
//! `L` is epoch-structured: one file per audit period (`L/epoch-N`). At each
//! audit the current file is permanently sealed and a new one opened ("the
//! current file for L is permanently closed, a new one is opened"). Alongside
//! `L` the logger maintains:
//!
//! * the **auxiliary stamp index** (`Lstamp/epoch-N`) listing every
//!   `STAMP_TRANS` / `ABORT` / heartbeat with its offset in `L`, so the
//!   auditor can build its transaction table without a pre-pass over the
//!   (much larger) main log;
//! * **witness files** (`witness/eN-iK`) — one empty file per regret
//!   interval, whose trusted create time proves the DBMS was alive then;
//! * heartbeat `DUMMY_STAMP` records when a regret interval would otherwise
//!   pass without a transaction ending.
//!
//! Records are buffered in memory and reach WORM on [`ComplianceLogger::flush`]
//! — which the plugin invokes before any data page is written, and the
//! regret-interval tick invokes unconditionally. Transactions therefore never
//! wait on WORM at commit, yet every `NEW_TUPLE` is on WORM within one regret
//! interval of its page write, and every page write follows its records.

use std::sync::Arc;

use ccdb_common::sync::Mutex;
use ccdb_common::{ByteReader, ByteWriter, ClockRef, Duration, Error, Result, Timestamp, TxnId};
use ccdb_worm::{WormFile, WormServer};

use crate::records::LogRecord;

/// One entry of the auxiliary stamp index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StampIndexEntry {
    /// A `STAMP_TRANS` at `offset` in `L`.
    Stamp {
        /// Committed transaction.
        txn: TxnId,
        /// Commit time.
        time: Timestamp,
        /// Offset of the record in `L`.
        offset: u64,
    },
    /// An `ABORT` at `offset`.
    Abort {
        /// Aborted transaction.
        txn: TxnId,
        /// Offset of the record in `L`.
        offset: u64,
    },
    /// A heartbeat at `offset`.
    Dummy {
        /// Heartbeat time.
        time: Timestamp,
        /// Offset of the record in `L`.
        offset: u64,
    },
}

impl StampIndexEntry {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(26);
        match self {
            StampIndexEntry::Stamp { txn, time, offset } => {
                w.put_u8(1);
                w.put_u64(txn.0);
                w.put_u64(time.0);
                w.put_u64(*offset);
            }
            StampIndexEntry::Abort { txn, offset } => {
                w.put_u8(2);
                w.put_u64(txn.0);
                w.put_u64(*offset);
            }
            StampIndexEntry::Dummy { time, offset } => {
                w.put_u8(3);
                w.put_u64(time.0);
                w.put_u64(*offset);
            }
        }
        w.into_vec()
    }

    /// Decodes one entry from the reader.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<StampIndexEntry> {
        Ok(match r.get_u8()? {
            1 => StampIndexEntry::Stamp {
                txn: TxnId(r.get_u64()?),
                time: Timestamp(r.get_u64()?),
                offset: r.get_u64()?,
            },
            2 => StampIndexEntry::Abort { txn: TxnId(r.get_u64()?), offset: r.get_u64()? },
            3 => StampIndexEntry::Dummy { time: Timestamp(r.get_u64()?), offset: r.get_u64()? },
            t => return Err(Error::corruption(format!("bad stamp-index tag {t}"))),
        })
    }

    /// Decodes a whole stamp-index file.
    pub fn decode_all(bytes: &[u8]) -> Result<Vec<StampIndexEntry>> {
        let mut r = ByteReader::new(bytes);
        let mut out = Vec::new();
        while !r.is_exhausted() {
            out.push(StampIndexEntry::decode(&mut r)?);
        }
        Ok(out)
    }
}

/// WORM file name of an `L` epoch.
pub fn epoch_log_name(epoch: u64) -> String {
    format!("L/epoch-{epoch}")
}

/// WORM file name of a stamp-index epoch.
pub fn epoch_stamp_name(epoch: u64) -> String {
    format!("Lstamp/epoch-{epoch}")
}

/// WORM file name of a witness file.
pub fn witness_name(epoch: u64, interval: u64) -> String {
    format!("witness/e{epoch}-i{interval}")
}

/// WORM file name of the WAL-tail mirror for an epoch.
pub fn waltail_name(epoch: u64) -> String {
    format!("waltail/epoch-{epoch}")
}

struct EpochState {
    epoch: u64,
    log: WormFile,
    stamp: WormFile,
    /// Durable length of the epoch log on WORM.
    durable: u64,
    /// Buffered (not yet on WORM) record bytes.
    pending: Vec<u8>,
    stamp_pending: Vec<u8>,
    last_stamp_time: Timestamp,
    last_witness_interval: Option<u64>,
    records_appended: u64,
}

/// The compliance logger.
pub struct ComplianceLogger {
    worm: Arc<WormServer>,
    clock: ClockRef,
    regret: Duration,
    /// Retention horizon applied to epoch artifacts at creation
    /// (`Timestamp::MAX` = indefinite). The paper's lifecycle: "the
    /// compliance log file can be deleted after every audit" — so artifacts
    /// only need to outlive the *next* audit; deployments set this to a
    /// comfortable multiple of the audit period.
    artifact_retention: Mutex<Duration>,
    state: Mutex<EpochState>,
}

impl ComplianceLogger {
    /// Opens the logger for `epoch`, creating the epoch files if they do not
    /// exist (re-opening after a crash continues the same epoch).
    pub fn open(
        worm: Arc<WormServer>,
        clock: ClockRef,
        regret: Duration,
        epoch: u64,
    ) -> Result<ComplianceLogger> {
        let log_name = epoch_log_name(epoch);
        let stamp_name = epoch_stamp_name(epoch);
        let log = if worm.exists(&log_name) {
            worm.handle(&log_name)?
        } else {
            worm.create(&log_name, Timestamp::MAX)?
        };
        let stamp = if worm.exists(&stamp_name) {
            worm.handle(&stamp_name)?
        } else {
            worm.create(&stamp_name, Timestamp::MAX)?
        };
        let durable = worm.stat(&log_name)?.len;
        let now = clock.now();
        Ok(ComplianceLogger {
            worm,
            clock,
            regret,
            artifact_retention: Mutex::new(Duration(u64::MAX)),
            state: Mutex::new(EpochState {
                epoch,
                log,
                stamp,
                durable,
                pending: Vec::new(),
                stamp_pending: Vec::new(),
                last_stamp_time: now,
                last_witness_interval: None,
                records_appended: 0,
            }),
        })
    }

    /// The regret interval this logger enforces.
    pub fn regret_interval(&self) -> Duration {
        self.regret
    }

    /// Sets the retention horizon stamped on artifacts created from now on.
    pub fn set_artifact_retention(&self, d: Duration) {
        *self.artifact_retention.lock() = d;
    }

    fn artifact_expiry(&self) -> Timestamp {
        let d = *self.artifact_retention.lock();
        if d.0 == u64::MAX {
            Timestamp::MAX
        } else {
            self.clock.now().saturating_add(d)
        }
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Appends a record to the epoch log buffer, returning its offset in `L`.
    /// `STAMP_TRANS`/`ABORT`/heartbeat records are mirrored into the stamp
    /// index automatically.
    pub fn append(&self, rec: &LogRecord) -> Result<u64> {
        let mut st = self.state.lock();
        let offset = st.durable + st.pending.len() as u64;
        let framed = rec.encode_framed();
        st.pending.extend_from_slice(&framed);
        st.records_appended += 1;
        match rec {
            LogRecord::StampTrans { txn, commit_time } => {
                let e = StampIndexEntry::Stamp { txn: *txn, time: *commit_time, offset };
                st.stamp_pending.extend_from_slice(&e.encode());
                st.last_stamp_time = st.last_stamp_time.max(*commit_time);
            }
            LogRecord::Abort { txn } => {
                let e = StampIndexEntry::Abort { txn: *txn, offset };
                st.stamp_pending.extend_from_slice(&e.encode());
            }
            LogRecord::DummyStamp { time } => {
                let e = StampIndexEntry::Dummy { time: *time, offset };
                st.stamp_pending.extend_from_slice(&e.encode());
                st.last_stamp_time = st.last_stamp_time.max(*time);
            }
            _ => {}
        }
        Ok(offset)
    }

    /// Appends and immediately flushes.
    pub fn append_flush(&self, rec: &LogRecord) -> Result<u64> {
        let off = self.append(rec)?;
        self.flush()?;
        Ok(off)
    }

    /// Pushes all buffered records to WORM. A failure here must halt the
    /// caller ("transaction processing must halt until the problem is
    /// fixed").
    pub fn flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        if !st.pending.is_empty() {
            let bytes = std::mem::take(&mut st.pending);
            self.worm
                .append(&st.log, &bytes)
                .map_err(|e| Error::ComplianceHalt(format!("cannot write to L: {e}")))?;
            st.durable += bytes.len() as u64;
        }
        if !st.stamp_pending.is_empty() {
            let bytes = std::mem::take(&mut st.stamp_pending);
            self.worm
                .append(&st.stamp, &bytes)
                .map_err(|e| Error::ComplianceHalt(format!("cannot write stamp index: {e}")))?;
        }
        Ok(())
    }

    /// Offset one past the last appended record.
    pub fn end_offset(&self) -> u64 {
        let st = self.state.lock();
        st.durable + st.pending.len() as u64
    }

    /// Total records appended this epoch.
    pub fn records_appended(&self) -> u64 {
        self.state.lock().records_appended
    }

    /// Regret-interval housekeeping: flushes buffers, creates the witness
    /// file for the current interval, and emits a heartbeat if no
    /// transaction ended during the last interval. Call at least once per
    /// regret interval.
    pub fn tick(&self) -> Result<()> {
        let now = self.clock.now();
        let interval = now.0.checked_div(self.regret.0).unwrap_or(0);
        let interval_start = Timestamp(interval.saturating_mul(self.regret.0.max(1)));
        let (need_witness, need_heartbeat, epoch) = {
            let st = self.state.lock();
            (
                st.last_witness_interval != Some(interval),
                st.last_stamp_time < interval_start || st.last_witness_interval.is_none(),
                st.epoch,
            )
        };
        if need_heartbeat {
            self.append(&LogRecord::DummyStamp { time: now })?;
        }
        self.flush()?;
        if need_witness {
            let name = witness_name(epoch, interval);
            if !self.worm.exists(&name) {
                let until = self.artifact_expiry();
                self.worm.create(&name, until)?;
            }
            self.state.lock().last_witness_interval = Some(interval);
        }
        Ok(())
    }

    /// Simulates the logger's volatile state vanishing in a crash (buffered
    /// records are lost; WORM retains the durable prefix).
    pub fn simulate_crash_drop_pending(&self) {
        let mut st = self.state.lock();
        st.pending.clear();
        st.stamp_pending.clear();
    }

    /// Seals the current epoch (at audit) and returns the sealed epoch
    /// number. The caller opens a fresh logger for the next epoch.
    pub fn seal_epoch(&self) -> Result<u64> {
        self.flush()?;
        let st = self.state.lock();
        self.worm.seal(&epoch_log_name(st.epoch))?;
        self.worm.seal(&epoch_stamp_name(st.epoch))?;
        Ok(st.epoch)
    }

    /// Seals the current epoch and switches to `new_epoch` (audit rotation:
    /// "the current file for L is permanently closed, a new one is opened").
    pub fn advance_epoch(&self, new_epoch: u64) -> Result<()> {
        self.seal_epoch()?;
        let until = self.artifact_expiry();
        let log = self.worm.create(&epoch_log_name(new_epoch), until)?;
        let stamp = self.worm.create(&epoch_stamp_name(new_epoch), until)?;
        let now = self.clock.now();
        let mut st = self.state.lock();
        *st = EpochState {
            epoch: new_epoch,
            log,
            stamp,
            durable: 0,
            pending: Vec::new(),
            stamp_pending: Vec::new(),
            last_stamp_time: now,
            last_witness_interval: None,
            records_appended: 0,
        };
        Ok(())
    }

    /// The WORM server the logger writes to.
    pub fn worm(&self) -> &Arc<WormServer> {
        &self.worm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::LogIter;
    use ccdb_common::{Clock, VirtualClock};
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let p = std::env::temp_dir().join(format!(
                "ccdb-logger-{}-{}-{}",
                std::process::id(),
                tag,
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn setup(tag: &str) -> (Arc<WormServer>, Arc<VirtualClock>, ComplianceLogger, TempDir) {
        let d = TempDir::new(tag);
        let clock = Arc::new(VirtualClock::new());
        let worm = Arc::new(WormServer::open(&d.0, clock.clone()).unwrap());
        let logger =
            ComplianceLogger::open(worm.clone(), clock.clone(), Duration::from_mins(5), 0).unwrap();
        (worm, clock, logger, d)
    }

    #[test]
    fn records_land_on_worm_in_order_with_offsets() {
        let (worm, _c, logger, _d) = setup("order");
        let r1 = LogRecord::StampTrans { txn: TxnId(1), commit_time: Timestamp(10) };
        let r2 = LogRecord::Abort { txn: TxnId(2) };
        let o1 = logger.append(&r1).unwrap();
        let o2 = logger.append(&r2).unwrap();
        assert!(o2 > o1);
        logger.flush().unwrap();
        let bytes = worm.read_all(&epoch_log_name(0)).unwrap();
        let got: Vec<(u64, LogRecord)> =
            LogIter::new(&bytes).collect::<ccdb_common::Result<_>>().unwrap();
        assert_eq!(got, vec![(o1, r1), (o2, r2)]);
    }

    #[test]
    fn stamp_index_mirrors_status_records() {
        let (worm, _c, logger, _d) = setup("stampidx");
        let o1 = logger
            .append(&LogRecord::StampTrans { txn: TxnId(5), commit_time: Timestamp(50) })
            .unwrap();
        logger
            .append(&LogRecord::NewTuple {
                pgno: ccdb_common::PageNo(1),
                rel: ccdb_common::RelId(1),
                cell: b"x".to_vec(),
            })
            .unwrap();
        let o2 = logger.append(&LogRecord::Abort { txn: TxnId(6) }).unwrap();
        logger.flush().unwrap();
        let bytes = worm.read_all(&epoch_stamp_name(0)).unwrap();
        let entries = StampIndexEntry::decode_all(&bytes).unwrap();
        assert_eq!(
            entries,
            vec![
                StampIndexEntry::Stamp { txn: TxnId(5), time: Timestamp(50), offset: o1 },
                StampIndexEntry::Abort { txn: TxnId(6), offset: o2 },
            ]
        );
    }

    #[test]
    fn crash_drops_buffered_records() {
        let (worm, _c, logger, _d) = setup("crash");
        logger.append_flush(&LogRecord::Abort { txn: TxnId(1) }).unwrap();
        logger.append(&LogRecord::Abort { txn: TxnId(2) }).unwrap();
        logger.simulate_crash_drop_pending();
        logger.flush().unwrap();
        let bytes = worm.read_all(&epoch_log_name(0)).unwrap();
        let got: Vec<(u64, LogRecord)> =
            LogIter::new(&bytes).collect::<ccdb_common::Result<_>>().unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn reopen_continues_epoch_offsets() {
        let d = TempDir::new("reopen");
        let clock = Arc::new(VirtualClock::new());
        let worm = Arc::new(WormServer::open(&d.0, clock.clone()).unwrap());
        let o1;
        {
            let logger =
                ComplianceLogger::open(worm.clone(), clock.clone(), Duration::from_mins(5), 3)
                    .unwrap();
            o1 = logger.append_flush(&LogRecord::Abort { txn: TxnId(1) }).unwrap();
        }
        let logger =
            ComplianceLogger::open(worm.clone(), clock.clone(), Duration::from_mins(5), 3).unwrap();
        let o2 = logger.append_flush(&LogRecord::Abort { txn: TxnId(2) }).unwrap();
        assert!(o2 > o1);
        let bytes = worm.read_all(&epoch_log_name(3)).unwrap();
        assert_eq!(LogIter::new(&bytes).count(), 2);
    }

    #[test]
    fn tick_creates_witness_and_heartbeat() {
        let (worm, clock, logger, _d) = setup("tick");
        clock.advance(Duration::from_mins(6)); // a regret interval passes idle
        logger.tick().unwrap();
        let interval = clock.now().0 / Duration::from_mins(5).0;
        assert!(worm.exists(&witness_name(0, interval)));
        // Heartbeat was emitted (no commits happened).
        let bytes = worm.read_all(&epoch_log_name(0)).unwrap();
        let recs: Vec<(u64, LogRecord)> =
            LogIter::new(&bytes).collect::<ccdb_common::Result<_>>().unwrap();
        assert!(matches!(recs[0].1, LogRecord::DummyStamp { .. }));
        // Second tick in the same interval adds nothing new.
        logger.tick().unwrap();
        let bytes2 = worm.read_all(&epoch_log_name(0)).unwrap();
        assert_eq!(bytes.len(), bytes2.len());
    }

    #[test]
    fn recent_commit_suppresses_heartbeat() {
        let (worm, clock, logger, _d) = setup("hb");
        logger.tick().unwrap(); // startup heartbeat + witness for interval 0
        clock.advance(Duration::from_mins(6)); // interval 1
        logger.append(&LogRecord::StampTrans { txn: TxnId(1), commit_time: clock.now() }).unwrap();
        logger.tick().unwrap(); // same interval as the stamp: no extra heartbeat
        let bytes = worm.read_all(&epoch_log_name(0)).unwrap();
        let recs: Vec<(u64, LogRecord)> =
            LogIter::new(&bytes).collect::<ccdb_common::Result<_>>().unwrap();
        let dummies =
            recs.iter().filter(|(_, r)| matches!(r, LogRecord::DummyStamp { .. })).count();
        assert_eq!(dummies, 1, "only the startup heartbeat: {recs:?}");
        assert!(recs.iter().any(|(_, r)| matches!(r, LogRecord::StampTrans { .. })));
    }

    #[test]
    fn sealed_epoch_refuses_appends() {
        let (worm, _c, logger, _d) = setup("seal");
        logger.append_flush(&LogRecord::Abort { txn: TxnId(1) }).unwrap();
        assert_eq!(logger.seal_epoch().unwrap(), 0);
        logger.append(&LogRecord::Abort { txn: TxnId(2) }).unwrap();
        assert!(logger.flush().is_err(), "appending to a sealed epoch must fail");
        drop(worm);
    }
}
