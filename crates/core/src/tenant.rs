//! Multi-tenant hosting: many [`CompliantDb`] stacks sharing one WORM
//! volume and one compliance clock.
//!
//! # Model
//!
//! Each tenant is a full compliant database — its own relation catalog,
//! retention (Expiry) relation, WAL, and buffer pool — rooted at
//! `dir/tenants/<name>` for conventional media, with every compliance
//! artifact written through a [`WormServer::namespace`] view under
//! `tenants/<name>/` on the *shared* WORM volume (`dir/worm`).
//!
//! That split buys the two properties the service layer needs:
//!
//! - **Per-tenant audits**: an audit quiesces (checkpoints, snapshots) the
//!   database it examines. Partitioned engines mean auditing tenant A never
//!   blocks tenant B's commits, and A's replay reads only A's L-stream.
//! - **Global verifiability**: all tenants append to one WORM device with a
//!   single append-sequence space and one metadata journal, so a regulator
//!   holding the volume can still order every artifact across tenants —
//!   namespaces are name prefixes, not separate trust domains.
//!
//! Tenant names are restricted to `[a-z0-9_-]` so they are safe as both
//! directory components and WORM name prefixes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ccdb_common::sync::Mutex;
use ccdb_common::{ClockRef, Error, Result};
use ccdb_worm::WormServer;

use crate::db::{ComplianceConfig, CompliantDb};

/// WORM namespace prefix under which every tenant lives.
pub const TENANT_NS_ROOT: &str = "tenants";

/// Validates a tenant name: non-empty, `[a-z0-9_-]` only, ≤ 64 bytes.
pub fn validate_tenant_name(name: &str) -> Result<()> {
    if name.is_empty() || name.len() > 64 {
        return Err(Error::Invalid(format!(
            "tenant name must be 1..=64 bytes, got {}",
            name.len()
        )));
    }
    if !name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
    {
        return Err(Error::Invalid(format!("tenant name {name:?} must match [a-z0-9_-]+")));
    }
    Ok(())
}

/// A set of tenant databases sharing one WORM volume and clock.
pub struct TenantRegistry {
    dir: PathBuf,
    clock: ClockRef,
    config: ComplianceConfig,
    worm: Arc<WormServer>,
    tenants: Mutex<BTreeMap<String, Arc<CompliantDb>>>,
}

impl TenantRegistry {
    /// Opens (or creates) the shared volume under `dir/worm` and re-opens
    /// every tenant that already exists on it (tenants are discovered from
    /// the WORM metadata journal, not the conventional filesystem — the
    /// journal is the tamper-evident record of which tenants exist).
    pub fn open(
        dir: impl AsRef<Path>,
        clock: ClockRef,
        config: ComplianceConfig,
    ) -> Result<TenantRegistry> {
        let dir = dir.as_ref().to_path_buf();
        let worm = Arc::new(WormServer::open(dir.join("worm"), clock.clone())?);
        let reg = TenantRegistry { dir, clock, config, worm, tenants: Mutex::new(BTreeMap::new()) };
        for name in reg.names_on_volume() {
            reg.create_or_open(&name)?;
        }
        Ok(reg)
    }

    /// The shared WORM volume (root view — sees every tenant's artifacts
    /// under `tenants/<name>/...`).
    pub fn worm(&self) -> &Arc<WormServer> {
        &self.worm
    }

    /// Tenant names currently open, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.lock().keys().cloned().collect()
    }

    /// Tenant names present on the WORM volume (open or not), derived from
    /// artifact prefixes in the metadata journal.
    fn names_on_volume(&self) -> Vec<String> {
        let mut out = Vec::new();
        let prefix = format!("{TENANT_NS_ROOT}/");
        for (name, _meta) in self.worm.list(&prefix) {
            let rest = &name[prefix.len()..];
            if let Some(t) = rest.split('/').next() {
                if !t.is_empty() && out.iter().all(|x: &String| x != t) {
                    out.push(t.to_string());
                }
            }
        }
        out.sort();
        out
    }

    /// Returns the tenant if it is open, `None` otherwise.
    pub fn tenant(&self, name: &str) -> Option<Arc<CompliantDb>> {
        self.tenants.lock().get(name).cloned()
    }

    /// Opens `name`, creating it on first use. Idempotent; concurrent
    /// callers get the same instance.
    pub fn create_or_open(&self, name: &str) -> Result<Arc<CompliantDb>> {
        validate_tenant_name(name)?;
        let mut tenants = self.tenants.lock();
        if let Some(db) = tenants.get(name) {
            return Ok(db.clone());
        }
        let ns = self.worm.namespace(&format!("{TENANT_NS_ROOT}/{name}"))?;
        let db = Arc::new(CompliantDb::open_with_worm(
            self.dir.join(TENANT_NS_ROOT).join(name),
            self.clock.clone(),
            self.config.clone(),
            Arc::new(ns),
        )?);
        tenants.insert(name.to_string(), db.clone());
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Mode;
    use ccdb_common::{Duration, VirtualClock};

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "ccdb-tenant-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn cfg() -> ComplianceConfig {
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 256,
            fsync: false,
            ..ComplianceConfig::default()
        }
    }

    fn clock() -> ClockRef {
        Arc::new(VirtualClock::ticking(Duration::from_micros(50)))
    }

    #[test]
    fn tenants_are_isolated_but_share_the_volume() {
        let dir = tmp("iso");
        let reg = TenantRegistry::open(&dir, clock(), cfg()).unwrap();
        let a = reg.create_or_open("alpha").unwrap();
        let b = reg.create_or_open("beta").unwrap();

        let ra = a.create_relation("orders", ccdb_btree::SplitPolicy::KeyOnly).unwrap();
        let rb = b.create_relation("invoices", ccdb_btree::SplitPolicy::KeyOnly).unwrap();
        let ta = a.begin().unwrap();
        a.write(ta, ra, b"k1", b"va").unwrap();
        let t_commit = a.commit(ta).unwrap();
        let tb = b.begin().unwrap();
        b.write(tb, rb, b"k1", b"vb").unwrap();
        b.commit(tb).unwrap();

        // Catalogs are disjoint.
        assert!(a.engine().rel_id("invoices").is_none());
        assert!(b.engine().rel_id("orders").is_none());

        // Both audit clean, independently.
        assert!(a.audit().unwrap().is_clean());
        assert!(b.audit().unwrap().is_clean());

        // The shared volume sees both tenants' artifacts under their
        // prefixes; each tenant's namespaced view sees only its own.
        let root_names: Vec<String> = reg.worm().list("").into_iter().map(|(n, _)| n).collect();
        assert!(root_names.iter().any(|n| n.starts_with("tenants/alpha/")));
        assert!(root_names.iter().any(|n| n.starts_with("tenants/beta/")));
        assert!(a.worm().list("").iter().all(|(n, _)| !n.contains("tenants/")));
        drop((a, b));

        // Reopen: tenants are rediscovered from the volume.
        drop(reg);
        let reg = TenantRegistry::open(&dir, clock(), cfg()).unwrap();
        assert_eq!(reg.names(), vec!["alpha".to_string(), "beta".to_string()]);
        let a = reg.tenant("alpha").unwrap();
        let rel = a.engine().rel_id("orders").unwrap();
        assert_eq!(a.read_as_of(rel, b"k1", t_commit).unwrap().unwrap(), b"va");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_names_are_validated() {
        let dir = tmp("names");
        let reg = TenantRegistry::open(&dir, clock(), cfg()).unwrap();
        for bad in ["", "Upper", "a/b", "a b", "..", &"x".repeat(65)] {
            assert!(reg.create_or_open(bad).is_err(), "accepted {bad:?}");
        }
        assert!(reg.create_or_open("ok-tenant_0").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
