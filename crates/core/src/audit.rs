//! The auditor: one pass over the compliance log, the previous snapshot, and
//! the final database state.
//!
//! The checks, keyed to the paper:
//!
//! * **Tuple completeness** (§IV): `Df = Ds ∪ L`, verified with the
//!   commutative incremental ADD-HASH in a single pass — no sorting. A fold
//!   identity is a tuple's canonical bytes (relation, key, commit time,
//!   end-of-life flag, value) plus its tuple-order number; page splits and
//!   recovery duplicates therefore never double-count.
//! * **Status-record discipline** (§IV-B): at most one commit time per
//!   transaction, never both `STAMP_TRANS` and `ABORT`, commit times
//!   strictly increasing, no gap between consecutive stamps/heartbeats
//!   longer than one regret interval except across a logged crash recovery,
//!   a witness file for every interval the DBMS claims to have been alive.
//! * **Page-read verification** (§V): the auditor replays every page's
//!   content from `L` and checks each logged `READ` hash, resolving each
//!   tuple's time by the offset rule — commit time iff the transaction's
//!   `STAMP_TRANS` appears earlier in `L` than the `READ`.
//! * **Split and migration verification** (§V–VI): the union of a split's
//!   output pages must equal the input page plus the declared intermediate
//!   versions; a migrated page's WORM copy must match its replayed state.
//! * **Shred verification** (§VIII): every `UNDO` is justified by a prior
//!   `ABORT` or `SHREDDED`; every shredded version had expired under the
//!   retention period in force at shred time and was not under an active
//!   litigation hold; everything listed as shredded is gone.
//! * **Physical integrity** (§IV-C): slot structure, leaf sort order, and
//!   parent/child separator consistency over every relation's tree — the
//!   Figure 2 attacks.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use ccdb_btree::{check_tree, BTree, IntegrityError, TimeRank};
use ccdb_common::{Duration, PageNo, RelId, Result, Timestamp, TxnId};
use ccdb_crypto::{sha256, AddHash, Digest};
use ccdb_engine::Engine;
use ccdb_storage::{BufferPool, Page, PageStore, PageType, TupleVersion, WriteTime};
use ccdb_worm::WormServer;

use crate::logger::{
    epoch_log_name, epoch_stamp_name, waltail_name, witness_name, StampIndexEntry,
};
use crate::migrate::MigratedPage;
use crate::plugin::{hs_element_bytes, inner_hs};
use crate::records::{LogIter, LogRecord};
use crate::shred::{Hold, HOLDS_RELATION};
use crate::snapshot::{SnapPage, Snapshot, SnapshotManager};

/// A specific piece of tamper evidence (or audit-process failure).
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// `H(Ds ∪ L) ≠ H(Df)` — tuples were altered, removed, or inserted
    /// outside the logged history.
    CompletenessMismatch,
    /// A tuple's writing transaction has neither a `STAMP_TRANS` nor an
    /// `ABORT` on `L`.
    UnstampedTransaction {
        /// The unresolved transaction.
        txn: TxnId,
    },
    /// A transaction has conflicting status records (two different commit
    /// times, or both a stamp and an abort) — e.g. Mala appending spurious
    /// `ABORT` records "to try to hide the existence of tuples that she
    /// regrets".
    ConflictingStatus {
        /// The transaction with conflicting records.
        txn: TxnId,
    },
    /// Commit times on `L` are not strictly increasing.
    CommitTimesNotMonotonic {
        /// Offset of the offending record.
        offset: u64,
    },
    /// Consecutive stamps/heartbeats are more than one regret interval
    /// apart with no crash recovery explaining the gap.
    RegretGapExceeded {
        /// Start of the gap.
        from: Timestamp,
        /// End of the gap.
        to: Timestamp,
    },
    /// No witness file exists for a regret interval the system should have
    /// been alive in.
    MissingWitness {
        /// The interval index.
        interval: u64,
    },
    /// A logged page-read hash does not match the replayed page content —
    /// the state-reversion attack.
    ReadHashMismatch {
        /// The page read.
        pgno: PageNo,
        /// Offset of the `READ` record.
        offset: u64,
    },
    /// A page split's outputs do not partition its input (plus declared
    /// intermediates).
    SplitMismatch {
        /// The split input page.
        old: PageNo,
    },
    /// A physical tuple removal with no justifying `ABORT` or `SHREDDED`.
    UnjustifiedUndo {
        /// The affected page.
        pgno: PageNo,
    },
    /// A page's final on-disk content differs from its replayed state.
    StateMismatch {
        /// The affected page.
        pgno: PageNo,
    },
    /// An internal page's final content differs from the replayed index.
    IndexMismatch {
        /// The affected page.
        pgno: PageNo,
    },
    /// A page failed structural validation or its checksum.
    BadPage {
        /// The affected page.
        pgno: PageNo,
        /// Why.
        reason: String,
    },
    /// A B+-tree physical-integrity failure (Figure 2 attacks).
    TreeIntegrity(IntegrityError),
    /// A version listed in a `SHREDDED` record is still present.
    ShredIncomplete {
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
    },
    /// A shredded version had not expired under the retention policy.
    ShredOfUnexpired {
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
    },
    /// A shredded version was covered by an active litigation hold.
    ShredOfHeld {
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// The violated hold.
        hold: String,
    },
    /// A migrated page's WORM copy does not match its replayed state.
    MigrationMismatch {
        /// The migrated page.
        pgno: PageNo,
    },
    /// The previous snapshot failed to load or verify.
    SnapshotInvalid {
        /// Why.
        reason: String,
    },
    /// The compliance log or stamp index is unreadable.
    LogUnreadable {
        /// Why.
        reason: String,
    },
    /// The WORM WAL tail records a committed transaction that the
    /// compliance log and database do not reflect — evidence the local WAL
    /// was wiped within the regret window (the attack the WORM-resident
    /// tail exists to defeat, Section IV-B).
    WalTailInconsistent {
        /// The transaction whose durable commit vanished.
        txn: TxnId,
    },
    /// A WORM file's backing store is *shorter* than its trusted metadata
    /// length — acknowledged compliance-log bytes have been destroyed. The
    /// WORM device promises term immutability; a truncated tail means that
    /// promise (the architecture's root of trust) was violated, so the
    /// auditor names the file rather than failing with an I/O error.
    WormTruncated {
        /// The damaged WORM file.
        file: String,
        /// Length the trusted metadata acknowledges.
        trusted_len: u64,
        /// Length actually present on the backing store.
        backing_len: u64,
    },
}

/// Timing and volume measurements (the audit-time table of Section VII-c).
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditStats {
    /// Time to load + fold the previous snapshot (µs wall).
    pub snapshot_us: u64,
    /// Time to scan `L` (µs wall).
    pub log_scan_us: u64,
    /// Time to scan + fold the final state (µs wall).
    pub final_state_us: u64,
    /// Records scanned in `L`.
    pub records_scanned: u64,
    /// Bytes of `L` scanned.
    pub log_bytes: u64,
    /// `READ` hashes verified.
    pub reads_verified: u64,
    /// Tuples folded from the final state.
    pub tuples_final: u64,
    /// Pages in the new snapshot.
    pub snapshot_pages: u64,
}

/// A per-tuple forensic finding, localizing *what* was tampered where. The
/// paper: storing the full snapshot "enables fine-grained forensic analysis
/// if the next audit finds evidence of tampering."
#[derive(Clone, Debug, PartialEq)]
pub enum TupleFinding {
    /// A tuple exists on disk with a different value/time than every logged
    /// version at its position.
    Altered {
        /// Page holding the tuple.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// Tuple-order number.
        seq: u16,
        /// The value the log history predicts.
        expected: Vec<u8>,
        /// The value found on disk.
        found: Vec<u8>,
    },
    /// A logged tuple version is gone from its page without an `UNDO` or
    /// `SHREDDED` justification.
    Missing {
        /// Page that should hold the tuple.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// Tuple-order number.
        seq: u16,
    },
    /// A tuple exists on disk that no logged insertion accounts for
    /// (post-hoc insertion).
    Forged {
        /// Page holding the tuple.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// Tuple key.
        key: Vec<u8>,
        /// Tuple-order number.
        seq: u16,
    },
}

/// The outcome of an audit.
#[derive(Debug)]
pub struct AuditReport {
    /// The epoch audited.
    pub epoch: u64,
    /// Every violation found (empty for a compliant database).
    pub violations: Vec<Violation>,
    /// Per-tuple forensic localization of state mismatches (empty when
    /// clean; complements the coarse [`Violation`] list).
    pub forensics: Vec<TupleFinding>,
    /// Measurements.
    pub stats: AuditStats,
}

impl AuditReport {
    /// Whether the database passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Auditor configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// The regret interval the deployment promises.
    pub regret_interval: Duration,
    /// Verify logged `READ` hashes (hash-page-on-read refinement).
    pub verify_reads: bool,
    /// Enforce witness-file continuity.
    pub check_witnesses: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            regret_interval: Duration::from_mins(5),
            verify_reads: true,
            check_witnesses: true,
        }
    }
}

/// Replayed state of one page. (Some metadata fields are retained for
/// forensic dumps and future checks even though the core audit path does
/// not read them.)
#[derive(Clone, Debug, Default)]
#[allow(dead_code)]
struct PageState {
    rel: RelId,
    kind: Option<PageType>,
    historical: bool,
    aux: u64,
    /// Leaf: stored tuple versions. Inner: raw entry cells.
    tuples: Vec<TupleVersion>,
    cells: Vec<Vec<u8>>,
}

/// The auditor.
pub struct Auditor {
    worm: Arc<WormServer>,
    snapshots: SnapshotManager,
    config: AuditConfig,
}

/// Result of an audit, including the material to write the next snapshot.
pub struct AuditOutcome {
    /// The report.
    pub report: AuditReport,
    /// The verified final state, ready to become the next snapshot.
    pub snapshot_pages: Vec<SnapPage>,
    /// The fold over the final canonical tuple set.
    pub tuple_hash: AddHash,
}

fn fold_identity(t: &TupleVersion, commit: Timestamp) -> Vec<u8> {
    let mut b = t.canonical_bytes_with_time(commit);
    b.extend_from_slice(&t.seq.to_le_bytes());
    b
}

/// A tuple resolved for comparison: `(key, seq, commit-or-pending, eol, value)`.
type ResolvedTuple = (Vec<u8>, u16, (u8, u64), bool, Vec<u8>);

fn resolve_tuple(t: &TupleVersion, stamps: &HashMap<TxnId, (Timestamp, u64)>) -> ResolvedTuple {
    let time = match t.time {
        WriteTime::Committed(ct) => (1u8, ct.0),
        WriteTime::Pending(txn) => match stamps.get(&txn) {
            Some((ct, _)) => (1u8, ct.0),
            None => (0u8, txn.0),
        },
    };
    (t.key.clone(), t.seq, time, t.end_of_life, t.value.clone())
}

impl Auditor {
    /// Creates an auditor over a WORM server with the given master seed
    /// (snapshot signing lineage).
    pub fn new(worm: Arc<WormServer>, master_seed: [u8; 32], config: AuditConfig) -> Auditor {
        Auditor { worm: worm.clone(), snapshots: SnapshotManager::new(worm, master_seed), config }
    }

    /// The snapshot manager (exposed so the facade can write the post-audit
    /// snapshot after a clean report).
    pub fn snapshots(&self) -> &SnapshotManager {
        &self.snapshots
    }

    /// Audits `epoch`: verifies the database's final state against the
    /// previous snapshot and the epoch's compliance log. The engine must be
    /// quiescent (checkpointed, no active transactions); the auditor reads
    /// the final state from raw disk, bypassing the buffer cache and plugin.
    pub fn audit(&self, engine: &Engine, epoch: u64) -> Result<AuditOutcome> {
        let mut v: Vec<Violation> = Vec::new();
        let mut stats = AuditStats::default();

        // --- Phase 0: WORM device integrity -------------------------------
        // Before trusting any artifact, confirm each live WORM file's backing
        // store is at least as long as its trusted metadata says. A short
        // backing file means acknowledged bytes were destroyed (tail
        // truncation) — the named violation a compliance officer acts on,
        // as opposed to an unreadable-log I/O error.
        for (name, meta) in self.worm.list("") {
            if let Ok(backing) = self.worm.backing_len(&name) {
                if backing < meta.len {
                    v.push(Violation::WormTruncated {
                        file: name,
                        trusted_len: meta.len,
                        backing_len: backing,
                    });
                }
            }
        }

        // --- Phase A: previous snapshot -----------------------------------
        let t0 = Instant::now();
        let prev: Option<Snapshot> = if epoch == 0 {
            None
        } else {
            match self.snapshots.load(epoch - 1) {
                Ok(s) => s,
                Err(e) => {
                    v.push(Violation::SnapshotInvalid { reason: e.to_string() });
                    None
                }
            }
        };
        let mut states: HashMap<PageNo, PageState> = HashMap::new();
        let mut acc = AddHash::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        if let Some(snap) = &prev {
            let mut folded = AddHash::new();
            for p in &snap.pages {
                let mut st = PageState {
                    rel: p.rel,
                    kind: Some(p.kind),
                    historical: p.historical,
                    aux: p.aux,
                    ..PageState::default()
                };
                match p.kind {
                    PageType::Leaf => {
                        for cell in &p.cells {
                            match TupleVersion::decode_cell(cell) {
                                Ok(t) => {
                                    match t.time {
                                        WriteTime::Committed(ct) => {
                                            let id = fold_identity(&t, ct);
                                            folded.add(&id);
                                            seen.insert(id);
                                        }
                                        WriteTime::Pending(txn) => {
                                            v.push(Violation::UnstampedTransaction { txn });
                                        }
                                    }
                                    st.tuples.push(t);
                                }
                                Err(e) => v.push(Violation::BadPage {
                                    pgno: p.pgno,
                                    reason: format!("snapshot cell: {e}"),
                                }),
                            }
                        }
                    }
                    _ => st.cells = p.cells.clone(),
                }
                states.insert(p.pgno, st);
            }
            if folded != snap.tuple_hash {
                v.push(Violation::SnapshotInvalid {
                    reason: "stored snapshot hash disagrees with snapshot content".into(),
                });
            }
            acc = folded;
        }
        stats.snapshot_us = t0.elapsed().as_micros() as u64;

        // --- Phase B: stamp index ------------------------------------------
        let mut stamps: HashMap<TxnId, (Timestamp, u64)> = HashMap::new();
        let mut aborts: HashMap<TxnId, u64> = HashMap::new();
        let mut liveness: Vec<(Timestamp, u64)> = Vec::new();
        match self.worm.read_all(&epoch_stamp_name(epoch)) {
            Ok(bytes) => match StampIndexEntry::decode_all(&bytes) {
                Ok(entries) => {
                    for e in entries {
                        match e {
                            StampIndexEntry::Stamp { txn, time, offset } => {
                                match stamps.get(&txn) {
                                    Some((t0, _)) if *t0 != time => {
                                        v.push(Violation::ConflictingStatus { txn });
                                    }
                                    Some(_) => {} // duplicate (recovery re-emission)
                                    None => {
                                        stamps.insert(txn, (time, offset));
                                        liveness.push((time, offset));
                                    }
                                }
                            }
                            StampIndexEntry::Abort { txn, offset } => {
                                aborts.entry(txn).or_insert(offset);
                            }
                            StampIndexEntry::Dummy { time, offset } => {
                                liveness.push((time, offset));
                            }
                        }
                    }
                }
                Err(e) => v.push(Violation::LogUnreadable { reason: e.to_string() }),
            },
            Err(e) => v.push(Violation::LogUnreadable { reason: e.to_string() }),
        }
        for txn in stamps.keys() {
            if aborts.contains_key(txn) {
                v.push(Violation::ConflictingStatus { txn: *txn });
            }
        }

        // --- Phase C: main scan over L --------------------------------------
        let t1 = Instant::now();
        let log_bytes = match self.worm.read_all(&epoch_log_name(epoch)) {
            Ok(b) => b,
            Err(e) => {
                // A truncated or checksum-divergent log is itself evidence;
                // audit what can still be audited instead of erroring out.
                v.push(Violation::LogUnreadable { reason: e.to_string() });
                Vec::new()
            }
        };
        stats.log_bytes = log_bytes.len() as u64;
        let mut recovery_windows: Vec<(u64, Timestamp)> = Vec::new();
        // (rel, key, start) → (shred_time, pgno, consumed)
        let mut shreds: BTreeMap<(RelId, Vec<u8>, Timestamp), (Timestamp, bool)> = BTreeMap::new();
        let mut migrated: HashSet<PageNo> = HashSet::new();
        // Versions verified to live on WORM after migration: (rel, key, ct).
        let mut migrated_versions: HashSet<(RelId, Vec<u8>, Timestamp)> = HashSet::new();

        // `CCDB_AUDIT_DEBUG=1` dumps the replayed record stream with offsets
        // — the fastest way to localize an audit divergence when replaying a
        // torture seed.
        let debug = std::env::var("CCDB_AUDIT_DEBUG").is_ok();
        for item in LogIter::new(&log_bytes) {
            let (off, rec) = match item {
                Ok(x) => x,
                Err(e) => {
                    v.push(Violation::LogUnreadable { reason: e.to_string() });
                    break;
                }
            };
            stats.records_scanned += 1;
            if debug {
                let d = format!("{rec:?}");
                eprintln!("AUDIT {off}: {}", &d[..d.len().min(160)]);
            }
            match rec {
                LogRecord::NewTuple { pgno, rel, cell } => {
                    let t = match TupleVersion::decode_cell(&cell) {
                        Ok(t) => t,
                        Err(e) => {
                            v.push(Violation::LogUnreadable {
                                reason: format!("NEW_TUPLE cell at {off}: {e}"),
                            });
                            continue;
                        }
                    };
                    // Resolve the commit time (the auditor "must replace any
                    // transaction ID by the commit time").
                    let resolved = match t.time {
                        WriteTime::Committed(ct) => Some(ct),
                        WriteTime::Pending(txn) => stamps.get(&txn).map(|(ct, _)| *ct),
                    };
                    let aborted =
                        t.time.pending().map(|txn| aborts.contains_key(&txn)).unwrap_or(false);
                    if let Some(ct) = resolved {
                        let id = fold_identity(&t, ct);
                        if seen.insert(id.clone()) {
                            acc.add(&id);
                        }
                    } else if !aborted {
                        if let Some(txn) = t.time.pending() {
                            v.push(Violation::UnstampedTransaction { txn });
                        }
                    }
                    // Page state: the physical tuple (stored form) joins the
                    // page unless this NEW_TUPLE is a recovery duplicate of
                    // something already there.
                    let st = states.entry(pgno).or_insert_with(|| PageState {
                        rel,
                        kind: Some(PageType::Leaf),
                        ..PageState::default()
                    });
                    if !st.tuples.iter().any(|e| e.key == t.key && e.seq == t.seq) {
                        st.tuples.push(t);
                    }
                }
                LogRecord::Undo { pgno, rel: _, cell } => {
                    let t = match TupleVersion::decode_cell(&cell) {
                        Ok(t) => t,
                        Err(e) => {
                            v.push(Violation::LogUnreadable {
                                reason: format!("UNDO cell at {off}: {e}"),
                            });
                            continue;
                        }
                    };
                    let justified = match t.time {
                        WriteTime::Pending(txn) => aborts.contains_key(&txn),
                        WriteTime::Committed(ct) => {
                            match shreds.get_mut(&(t.rel, t.key.clone(), ct)) {
                                Some(entry) => {
                                    if !entry.1 {
                                        entry.1 = true;
                                        // The shredded version leaves the
                                        // completeness universe.
                                        let id = fold_identity(&t, ct);
                                        if seen.remove(&id) {
                                            acc.remove(&id);
                                        }
                                    }
                                    true
                                }
                                None => false,
                            }
                        }
                    };
                    if !justified {
                        v.push(Violation::UnjustifiedUndo { pgno });
                    }
                    if let Some(st) = states.get_mut(&pgno) {
                        if let Some(pos) =
                            st.tuples.iter().position(|e| e.key == t.key && e.seq == t.seq)
                        {
                            st.tuples.remove(pos);
                        }
                        // Absent: a duplicate UNDO from crash recovery — the
                        // paper tolerates these.
                    }
                }
                LogRecord::Read { pgno, hs } => {
                    if self.config.verify_reads {
                        let expect = match states.get(&pgno) {
                            Some(st) if st.kind == Some(PageType::Inner) => {
                                inner_hs(st.cells.iter().map(|c| c.as_slice()))
                            }
                            Some(st) => leaf_read_hash(&st.tuples, &stamps, off),
                            None => leaf_read_hash(&[], &stamps, off),
                        };
                        if expect != hs {
                            if debug {
                                eprintln!(
                                    "AUDIT MISMATCH {off} pg={pgno:?} replayed tuples {:?}",
                                    states.get(&pgno).map(|st| st
                                        .tuples
                                        .iter()
                                        .map(|t| (t.key.clone(), t.seq, t.time))
                                        .collect::<Vec<_>>())
                                );
                            }
                            v.push(Violation::ReadHashMismatch { pgno, offset: off });
                        }
                        stats.reads_verified += 1;
                    }
                }
                LogRecord::PageSplit { old, rel, left, right, intermediates } => {
                    let old_state = states.remove(&old).unwrap_or_default();
                    let is_leaf = !matches!(old_state.kind, Some(PageType::Inner));
                    if is_leaf {
                        // Union check on resolved tuples.
                        let mut input: Vec<ResolvedTuple> =
                            old_state.tuples.iter().map(|t| resolve_tuple(t, &stamps)).collect();
                        let mut inters = Vec::new();
                        for c in &intermediates {
                            match TupleVersion::decode_cell(c) {
                                Ok(t) => {
                                    input.push(resolve_tuple(&t, &stamps));
                                    inters.push(t);
                                }
                                Err(e) => v.push(Violation::LogUnreadable {
                                    reason: format!("split intermediate at {off}: {e}"),
                                }),
                            }
                        }
                        let mut output: Vec<ResolvedTuple> = Vec::new();
                        let mut install = |side: &crate::records::SplitSide,
                                           states: &mut HashMap<PageNo, PageState>|
                         -> Result<()> {
                            let mut st = PageState {
                                rel,
                                kind: Some(PageType::Leaf),
                                historical: side.historical,
                                ..PageState::default()
                            };
                            for c in &side.cells {
                                let t = TupleVersion::decode_cell(c)?;
                                output.push(resolve_tuple(&t, &stamps));
                                st.tuples.push(t);
                            }
                            states.insert(side.pgno, st);
                            Ok(())
                        };
                        if install(&left, &mut states).is_err()
                            || install(&right, &mut states).is_err()
                        {
                            v.push(Violation::SplitMismatch { old });
                        } else {
                            input.sort();
                            output.sort();
                            if input != output {
                                if std::env::var("CCDB_AUDIT_DEBUG").is_ok() {
                                    let only_in: Vec<_> =
                                        input.iter().filter(|x| !output.contains(x)).collect();
                                    let only_out: Vec<_> =
                                        output.iter().filter(|x| !input.contains(x)).collect();
                                    eprintln!("SPLIT MISMATCH old={old:?} in-not-out={only_in:?} out-not-in={only_out:?}");
                                }
                                v.push(Violation::SplitMismatch { old });
                            }
                        }
                        // Intermediates are genuinely new tuples.
                        for t in inters {
                            if let WriteTime::Committed(ct) = t.time {
                                let id = fold_identity(&t, ct);
                                if seen.insert(id.clone()) {
                                    acc.add(&id);
                                }
                            } else {
                                v.push(Violation::SplitMismatch { old });
                            }
                        }
                    } else {
                        // Inner split: the record's content is authoritative.
                        // (The tree rebuilds a parent's entry list in memory
                        // — remove one child entry, add two — and splits the
                        // *modified* list, so the physical input page never
                        // holds the split's exact input; a union check would
                        // be vacuous. Index integrity is enforced by the
                        // final-state comparison plus the physical
                        // parent/child checks, which is where the Figure 2(c)
                        // attack is caught.)
                        let _ = old_state;
                        for side in [&left, &right] {
                            states.insert(
                                side.pgno,
                                PageState {
                                    rel,
                                    kind: Some(PageType::Inner),
                                    cells: side.cells.clone(),
                                    ..PageState::default()
                                },
                            );
                        }
                    }
                }
                LogRecord::IndexInsert { pgno, cell } => {
                    let st = states.entry(pgno).or_insert_with(|| PageState {
                        kind: Some(PageType::Inner),
                        ..PageState::default()
                    });
                    // Crash recovery regenerates index records at the next
                    // pwrite; duplicates are skipped (entries are unique).
                    if !st.cells.contains(&cell) {
                        let pos = st
                            .cells
                            .iter()
                            .position(|c| entry_order(c) > entry_order(&cell))
                            .unwrap_or(st.cells.len());
                        st.cells.insert(pos, cell);
                    }
                }
                LogRecord::IndexRemove { pgno, cell } => {
                    // Absent entries are tolerated (duplicate removals from
                    // recovery); real index tampering is caught by the
                    // final-state comparison.
                    if let Some(st) = states.get_mut(&pgno) {
                        if let Some(pos) = st.cells.iter().position(|c| *c == cell) {
                            st.cells.remove(pos);
                        }
                    }
                }
                LogRecord::NewRoot { rel: _, pgno, cells } => {
                    states.entry(pgno).or_insert_with(|| PageState {
                        kind: Some(PageType::Inner),
                        cells,
                        ..PageState::default()
                    });
                }
                LogRecord::Migrate { pgno, rel, worm_file, content_hash } => {
                    let st = states.remove(&pgno).unwrap_or_default();
                    match self.worm.read_all(&worm_file).and_then(|b| MigratedPage::decode(&b)) {
                        Ok(mp) => {
                            let stored_hash = crate::plugin::page_content_hash(&mp.cells);
                            let mut copy: Vec<ResolvedTuple> = Vec::new();
                            let mut ok = stored_hash == content_hash;
                            for c in &mp.cells {
                                match TupleVersion::decode_cell(c) {
                                    Ok(t) => copy.push(resolve_tuple(&t, &stamps)),
                                    Err(_) => ok = false,
                                }
                            }
                            let mut orig: Vec<ResolvedTuple> =
                                st.tuples.iter().map(|t| resolve_tuple(t, &stamps)).collect();
                            copy.sort();
                            orig.sort();
                            if !ok || copy != orig {
                                v.push(Violation::MigrationMismatch { pgno });
                            } else {
                                // Verified: the page's tuples leave the
                                // auditing universe.
                                for t in &st.tuples {
                                    let ct = match t.time {
                                        WriteTime::Committed(ct) => Some(ct),
                                        WriteTime::Pending(txn) => {
                                            stamps.get(&txn).map(|(c, _)| *c)
                                        }
                                    };
                                    if let Some(ct) = ct {
                                        let id = fold_identity(t, ct);
                                        if seen.remove(&id) {
                                            acc.remove(&id);
                                        }
                                        migrated_versions.insert((rel, t.key.clone(), ct));
                                    }
                                }
                                migrated.insert(pgno);
                            }
                        }
                        Err(e) => {
                            v.push(Violation::MigrationMismatch { pgno });
                            let _ = (e, rel);
                        }
                    }
                }
                LogRecord::Shredded {
                    rel,
                    key,
                    start_time,
                    pgno: _,
                    content_hash: _,
                    shred_time,
                } => {
                    shreds.insert((rel, key, start_time), (shred_time, false));
                }
                LogRecord::StartRecovery { time } => {
                    recovery_windows.push((off, time));
                }
                LogRecord::StampTrans { .. }
                | LogRecord::Abort { .. }
                | LogRecord::DummyStamp { .. } => {}
            }
        }
        stats.log_scan_us = t1.elapsed().as_micros() as u64;

        // --- Liveness discipline ----------------------------------------------
        // 1. Commit/heartbeat times are non-decreasing in log order — a
        //    backdated record appended later in L is caught here.
        // 2. Every liveness event falls in an interval with a *valid*
        //    witness file: one whose trusted WORM create time lies in (or
        //    just after) that interval. Mala cannot retro-create a witness —
        //    the compliance clock stamps her file with the real time.
        // 3. Every witnessed interval strictly between the first and last
        //    event contains at least one liveness event (the system promises
        //    a heartbeat per live interval, bounding the backdating window
        //    to one regret interval).
        liveness.sort_by_key(|(_, off)| *off);
        let mut last: Option<Timestamp> = None;
        for (time, off) in &liveness {
            if let Some(pt) = last {
                if *time < pt {
                    v.push(Violation::CommitTimesNotMonotonic { offset: *off });
                }
            }
            last = Some(*time);
        }
        let _ = &recovery_windows;
        if self.config.check_witnesses && self.config.regret_interval.0 > 0 {
            let r = self.config.regret_interval.0;
            let valid_witness = |interval: u64| -> bool {
                match self.worm.stat(&witness_name(epoch, interval)) {
                    Ok(meta) => {
                        let ct = meta.create_time.0;
                        ct >= interval * r && ct < (interval + 2) * r
                    }
                    Err(_) => false,
                }
            };
            let mut event_intervals: HashSet<u64> = HashSet::new();
            for (time, _) in &liveness {
                event_intervals.insert(time.0 / r);
            }
            for interval in &event_intervals {
                if !valid_witness(*interval) {
                    v.push(Violation::MissingWitness { interval: *interval });
                }
            }
            if let (Some((first, _)), Some((last, _))) = (liveness.first(), liveness.last()) {
                let lo = first.0 / r;
                let hi = last.0 / r;
                for interval in lo + 1..hi {
                    if valid_witness(interval) && !event_intervals.contains(&interval) {
                        v.push(Violation::RegretGapExceeded {
                            from: Timestamp(interval * r),
                            to: Timestamp((interval + 1) * r),
                        });
                    }
                }
            }
        }

        // --- Shred legality ---------------------------------------------------
        let holds = holds_as_of_now(engine).unwrap_or_default();
        for ((rel, key, start), (shred_time, consumed)) in &shreds {
            if !consumed {
                v.push(Violation::ShredIncomplete { rel: *rel, key: key.clone() });
            }
            let rel_name =
                engine.user_relations().into_iter().find(|(_, r)| r == rel).map(|(n, _)| n);
            if let Some(name) = rel_name {
                let retention = retention_as_of(engine, &name, *shred_time).unwrap_or(None);
                match retention {
                    Some(rho) => {
                        if start.saturating_add(rho) > *shred_time {
                            v.push(Violation::ShredOfUnexpired { rel: *rel, key: key.clone() });
                        }
                    }
                    None => v.push(Violation::ShredOfUnexpired { rel: *rel, key: key.clone() }),
                }
                for h in &holds {
                    if h.covers(&name, key) {
                        v.push(Violation::ShredOfHeld {
                            rel: *rel,
                            key: key.clone(),
                            hold: h.id.clone(),
                        });
                    }
                }
            }
        }

        // --- WAL-tail cross-check ---------------------------------------------
        // "This is why we require the tail of the transaction log … to be on
        // WORM, and that it be retained until the next audit": commits that
        // are durable in the tail must be acknowledged by L (a STAMP_TRANS)
        // and their writes present in the final state — a wiped local WAL
        // cannot silently unwind recent commits.
        if self.worm.exists(&waltail_name(epoch)) {
            let tail_bytes = match self.worm.read_all(&waltail_name(epoch)) {
                Ok(b) => b,
                Err(e) => {
                    v.push(Violation::LogUnreadable { reason: format!("WAL tail: {e}") });
                    Vec::new()
                }
            };
            let mut reader = ccdb_wal::WalReader::from_bytes(tail_bytes);
            let mut tail_commits: HashSet<TxnId> = HashSet::new();
            let mut tail_inserts: HashMap<TxnId, Vec<(RelId, Vec<u8>)>> = HashMap::new();
            while let Some((_lsn, rec)) = reader.next_record() {
                match rec {
                    ccdb_wal::WalRecord::Commit { txn, .. } => {
                        tail_commits.insert(txn);
                    }
                    ccdb_wal::WalRecord::Insert { txn, rel, key, .. } => {
                        tail_inserts.entry(txn).or_default().push((rel, key));
                    }
                    _ => {}
                }
            }
            for txn in &tail_commits {
                if !stamps.contains_key(txn) {
                    v.push(Violation::WalTailInconsistent { txn: *txn });
                    continue;
                }
                let ct = stamps[txn].0;
                for (rel, key) in tail_inserts.get(txn).map(|v| v.as_slice()).unwrap_or(&[]) {
                    let present = engine
                        .tree(*rel)
                        .ok()
                        .and_then(|tree| tree.versions(key).ok())
                        .map(|vs| {
                            vs.iter().any(|t| {
                                t.time == WriteTime::Committed(ct)
                                    || t.time == WriteTime::Pending(*txn)
                            })
                        })
                        .unwrap_or(false)
                        || engine
                            .historical_versions(*rel, key)
                            .map(|vs| vs.iter().any(|t| t.time == WriteTime::Committed(ct)))
                            .unwrap_or(false);
                    // Vacuumed (legally shredded) and WORM-migrated
                    // versions are excused — they are accounted elsewhere.
                    let shredded = shreds.contains_key(&(*rel, key.clone(), ct));
                    let on_worm = migrated_versions.contains(&(*rel, key.clone(), ct));
                    if !present && !shredded && !on_worm {
                        if std::env::var("CCDB_AUDIT_DEBUG").is_ok() {
                            eprintln!("TAIL MISS txn={txn:?} rel={rel:?} key={key:02x?} ct={ct:?}");
                        }
                        v.push(Violation::WalTailInconsistent { txn: *txn });
                        break;
                    }
                }
            }
        }

        // --- Phase D: final state ----------------------------------------------
        let t2 = Instant::now();
        let disk = engine.disk();
        let mut h_final = AddHash::new();
        let mut forensics: Vec<TupleFinding> = Vec::new();
        let mut snapshot_pages: Vec<SnapPage> = Vec::new();
        for i in 0..disk.page_count() {
            let pgno = PageNo(i);
            let raw = disk.read_raw(pgno)?;
            if raw.iter().all(|b| *b == 0) {
                continue; // allocated, never written
            }
            let page = match Page::from_bytes(&raw) {
                Ok(p) => p,
                Err(e) => {
                    v.push(Violation::BadPage { pgno, reason: e.to_string() });
                    continue;
                }
            };
            if !page.verify_checksum() {
                v.push(Violation::BadPage { pgno, reason: "checksum mismatch".into() });
            }
            match page.page_type() {
                PageType::Free => continue,
                PageType::Leaf => {
                    let mut tuples = Vec::new();
                    for cell in page.cells() {
                        match TupleVersion::decode_cell(cell) {
                            Ok(t) => tuples.push(t),
                            Err(e) => {
                                v.push(Violation::BadPage { pgno, reason: format!("cell: {e}") })
                            }
                        }
                    }
                    for t in &tuples {
                        let ct = match t.time {
                            WriteTime::Committed(ct) => Some(ct),
                            WriteTime::Pending(txn) => {
                                let r = stamps.get(&txn).map(|(c, _)| *c);
                                if r.is_none() {
                                    v.push(Violation::UnstampedTransaction { txn });
                                }
                                r
                            }
                        };
                        if let Some(ct) = ct {
                            h_final.add(&fold_identity(t, ct));
                            stats.tuples_final += 1;
                        }
                    }
                    // Replay comparison, with per-tuple forensic diffing on
                    // mismatch: match disk vs replayed tuples by (key, seq);
                    // value/time disagreements are alterations, replay-only
                    // entries are missing tuples, disk-only entries are
                    // forgeries.
                    let replayed: &[TupleVersion] =
                        states.get(&pgno).map(|st| st.tuples.as_slice()).unwrap_or(&[]);
                    let mut a: Vec<ResolvedTuple> =
                        tuples.iter().map(|t| resolve_tuple(t, &stamps)).collect();
                    let mut b: Vec<ResolvedTuple> =
                        replayed.iter().map(|t| resolve_tuple(t, &stamps)).collect();
                    a.sort();
                    b.sort();
                    if a != b {
                        v.push(Violation::StateMismatch { pgno });
                        let rel = page.rel_id();
                        use std::collections::HashMap as Map;
                        let mut disk_by: Map<(Vec<u8>, u16), &TupleVersion> =
                            tuples.iter().map(|t| ((t.key.clone(), t.seq), t)).collect();
                        for r in replayed {
                            match disk_by.remove(&(r.key.clone(), r.seq)) {
                                Some(d) => {
                                    if resolve_tuple(d, &stamps) != resolve_tuple(r, &stamps) {
                                        forensics.push(TupleFinding::Altered {
                                            pgno,
                                            rel,
                                            key: r.key.clone(),
                                            seq: r.seq,
                                            expected: r.value.clone(),
                                            found: d.value.clone(),
                                        });
                                    }
                                }
                                None => forensics.push(TupleFinding::Missing {
                                    pgno,
                                    rel,
                                    key: r.key.clone(),
                                    seq: r.seq,
                                }),
                            }
                        }
                        for ((key, seq), _d) in disk_by {
                            forensics.push(TupleFinding::Forged { pgno, rel, key, seq });
                        }
                    }
                    snapshot_pages.push(SnapPage {
                        pgno,
                        rel: page.rel_id(),
                        kind: PageType::Leaf,
                        historical: page.is_historical(),
                        aux: page.aux(),
                        cells: page.cells().map(|c| c.to_vec()).collect(),
                    });
                }
                PageType::Inner => {
                    let cells: Vec<Vec<u8>> = page.cells().map(|c| c.to_vec()).collect();
                    if let Some(st) = states.get(&pgno) {
                        let mut a = cells.clone();
                        let mut b = st.cells.clone();
                        a.sort();
                        b.sort();
                        if a != b {
                            v.push(Violation::IndexMismatch { pgno });
                        }
                    }
                    snapshot_pages.push(SnapPage {
                        pgno,
                        rel: page.rel_id(),
                        kind: PageType::Inner,
                        historical: false,
                        aux: page.aux(),
                        cells,
                    });
                }
                PageType::Meta => {}
            }
        }
        // Replayed pages that no longer exist on disk (and were not
        // migrated) indicate shredding of whole pages outside the protocol.
        for (pgno, st) in &states {
            if st.kind == Some(PageType::Leaf)
                && !st.tuples.is_empty()
                && !migrated.contains(pgno)
                && pgno.0 >= disk.page_count()
            {
                v.push(Violation::StateMismatch { pgno: *pgno });
            }
        }
        if acc != h_final {
            v.push(Violation::CompletenessMismatch);
        }
        // Physical tree integrity (Figure 2 checks) over a fresh raw pool.
        {
            let raw_pool = Arc::new(BufferPool::new(
                disk.clone() as Arc<dyn ccdb_storage::PageStore>,
                engine.clock().clone(),
                1024,
            ));
            for (_name, rel) in engine.user_relations() {
                if let Ok(tree) = engine.tree(rel) {
                    let shadow = BTree::open(
                        raw_pool.clone(),
                        engine.clock().clone(),
                        rel,
                        ccdb_btree::SplitPolicy::KeyOnly,
                        tree.root(),
                        vec![],
                    );
                    match check_tree(&raw_pool, &shadow) {
                        Ok(errs) => v.extend(errs.into_iter().map(Violation::TreeIntegrity)),
                        Err(e) => v.push(Violation::BadPage {
                            pgno: tree.root(),
                            reason: format!("tree walk: {e}"),
                        }),
                    }
                }
            }
        }
        stats.final_state_us = t2.elapsed().as_micros() as u64;
        stats.snapshot_pages = snapshot_pages.len() as u64;

        Ok(AuditOutcome {
            report: AuditReport { epoch, violations: v, forensics, stats },
            snapshot_pages,
            tuple_hash: h_final,
        })
    }
}

/// Read-hash of a leaf page state at a given `READ` offset: each pending
/// tuple is hashed with its commit time iff its `STAMP_TRANS` appears
/// earlier in `L` than the read.
fn leaf_read_hash(
    tuples: &[TupleVersion],
    stamps: &HashMap<TxnId, (Timestamp, u64)>,
    read_offset: u64,
) -> Digest {
    let mut sorted: Vec<&TupleVersion> = tuples.iter().collect();
    sorted.sort_by_key(|t| t.seq);
    let mut chain = ccdb_crypto::HsChain::new();
    for t in sorted {
        let rc = t.time.pending().and_then(|txn| match stamps.get(&txn) {
            Some((ct, soff)) if *soff < read_offset => Some(*ct),
            _ => None,
        });
        chain.extend(&hs_element_bytes(t, rc));
    }
    chain.value()
}

/// The `(key, rank)` order of an encoded index entry; undecodable cells sort
/// last (and will be flagged by the physical checks).
fn entry_order(cell: &[u8]) -> (Vec<u8>, (u8, u64)) {
    match ccdb_btree::IndexEntry::decode(cell) {
        Ok(e) => {
            let mut w = ccdb_common::ByteWriter::new();
            e.rank.encode(&mut w);
            let v = w.into_vec();
            (e.key, (v[0], u64::from_le_bytes(v[1..9].try_into().expect("8"))))
        }
        Err(_) => (vec![0xFF; 64], (0xFF, u64::MAX)),
    }
}

/// The litigation holds currently active (used for shred legality; holds
/// are themselves version-tracked so a forensic auditor can also evaluate
/// them as of the shred time).
fn holds_as_of_now(engine: &Engine) -> Result<Vec<Hold>> {
    let Some(rel) = engine.rel_id(HOLDS_RELATION) else {
        return Ok(Vec::new());
    };
    let mut holds = Vec::new();
    engine.range_current(TxnId::NONE, rel, &[], &[0xFF; 64], &mut |k, val| {
        holds.push(Hold::decode(k, val)?);
        Ok(())
    })?;
    Ok(holds)
}

/// Retention period for `rel_name` as of time `t`, read from the Expiry
/// relation's version history.
fn retention_as_of(engine: &Engine, rel_name: &str, t: Timestamp) -> Result<Option<Duration>> {
    let Some(expiry) = engine.rel_id(ccdb_engine::engine::EXPIRY_RELATION) else {
        return Ok(None);
    };
    Ok(engine.read_as_of(expiry, rel_name.as_bytes(), t)?.map(|val| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&val[..8]);
        Duration(u64::from_le_bytes(b))
    }))
}

/// Cheap helper used by tests: the rank ordering of a pending version.
pub fn pending_rank(txn: TxnId) -> TimeRank {
    TimeRank::pending(txn)
}

/// Content hash of a canonical tuple (shared with `SHREDDED` records).
pub fn tuple_content_hash(t: &TupleVersion) -> Digest {
    sha256(&t.canonical_bytes())
}
