//! Sharded deployments: N engine instances over one shared WORM volume,
//! with cross-shard transactions made atomic — and *auditable* — by a 2PC
//! protocol whose prepare and decision records are part of each shard's
//! compliance log.
//!
//! # Model
//!
//! A [`ShardedDb`] partitions keys across `N` full [`CompliantDb`] stacks
//! (own WAL, buffer pool, group-commit pipeline, L-stream) rooted at
//! `dir/shards/<i>`, with compliance artifacts under the `shards/<i>/`
//! prefix of the shared WORM volume — shards are siblings of tenants in the
//! namespace tree. The partition function is a deterministic [`ShardMap`]
//! persisted (and sealed) on WORM, so the routing itself is part of the
//! tamper-evident record: a reopened deployment refuses a different shard
//! count.
//!
//! # 2PC on L
//!
//! A cross-shard transaction is a set of shard-local transactions driven by
//! the coordinator in [`ShardedDb::commit`]:
//!
//! 1. **Prepare** — each participant durably logs a WAL `Prepare` record
//!    (the transaction may no longer write and survives a crash as
//!    in-doubt), then a `2PC_PREPARE` record naming the global transaction
//!    id, the local participant transaction, and the full participant set
//!    is appended **and flushed** to that shard's L.
//! 2. **Decision** — a `2PC_DECISION` record is appended and flushed to
//!    *every* participant's L. The first durable decision record is the
//!    commit point.
//! 3. **Completion** — each participant commits (or aborts) locally,
//!    producing the ordinary `STAMP_TRANS`/`ABORT` records.
//!
//! Presumed abort: a prepared transaction with no decision record anywhere
//! resolves to abort at reopen ([`ShardedDb::crash_and_recover`] /
//! [`ShardedDb::crash_shard`]); a decision found on *any* participant is
//! re-appended to the participants that missed it and applied everywhere.
//! Because the engine refuses to quiesce with prepared transactions
//! outstanding, a prepare and its decision always land in the same epoch's
//! log — the auditor never needs to match records across epochs.
//!
//! # What the auditor verifies
//!
//! Each shard's audit (batch or streaming) checks the local 2PC discipline:
//! every prepare decided, every decision prepared, no conflicting
//! decisions, and the decision agreeing with the participant's actual
//! outcome (`STAMP_TRANS` iff decided-commit). The deployment-level join
//! ([`two_pc_cross_shard_join`]) then compares decisions *across* shards:
//! participants of one global transaction whose logs decide differently are
//! a typed atomicity violation even when each shard is locally consistent.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::codec::checksum32;
use ccdb_common::{ByteReader, ByteWriter, ClockRef, Error, RelId, Result, Timestamp, TxnId};
use ccdb_worm::WormServer;

use crate::audit::{
    two_pc_cross_shard_join, AuditConfig, AuditOutcome, AuditReport, TwoPcBook, Violation,
};
use crate::db::{ComplianceConfig, CompliantDb};
use crate::logger::epoch_log_name;
use crate::records::{LogIter, LogRecord};

/// WORM namespace prefix under which every shard lives.
pub const SHARD_NS_ROOT: &str = "shards";

/// WORM name of the sealed shard-map file.
pub const SHARDMAP_FILE: &str = "shardmap";

const SHARDMAP_MAGIC: u64 = 0xCCDB_5A4D;
const SHARDMAP_VERSION: u32 = 1;

/// The deterministic partition function, persisted on WORM so the routing
/// is part of the audited deployment: reopening with a different shard
/// count is refused rather than silently re-routing keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n: u32,
}

impl ShardMap {
    /// A map over `n` shards (`n ≥ 1`).
    pub fn new(n: u32) -> Result<ShardMap> {
        if n == 0 {
            return Err(Error::Invalid("shard count must be ≥ 1".into()));
        }
        Ok(ShardMap { n })
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.n
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (checksum32(key) % self.n) as usize
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(SHARDMAP_MAGIC);
        w.put_u32(SHARDMAP_VERSION);
        w.put_u32(self.n);
        w.into_vec()
    }

    fn decode(bytes: &[u8]) -> Result<ShardMap> {
        let mut r = ByteReader::new(bytes);
        if r.get_u64()? != SHARDMAP_MAGIC {
            return Err(Error::corruption("bad shard-map magic"));
        }
        let version = r.get_u32()?;
        if version != SHARDMAP_VERSION {
            return Err(Error::corruption(format!("unknown shard-map version {version}")));
        }
        ShardMap::new(r.get_u32()?)
    }

    /// Loads the map from the shared volume, or persists (and seals) a
    /// fresh one for `n` shards. An existing map pins the shard count.
    pub fn load_or_create(worm: &WormServer, n: u32) -> Result<ShardMap> {
        if worm.exists(SHARDMAP_FILE) {
            let map = ShardMap::decode(&worm.read_all(SHARDMAP_FILE)?)?;
            if map.n != n {
                return Err(Error::Invalid(format!(
                    "WORM shard map pins {} shards; refusing to open with {n}",
                    map.n
                )));
            }
            return Ok(map);
        }
        let map = ShardMap::new(n)?;
        let f = worm.create(SHARDMAP_FILE, Timestamp::MAX)?;
        worm.append(&f, &map.encode())?;
        worm.seal(SHARDMAP_FILE)?;
        Ok(map)
    }
}

/// A distributed (possibly cross-shard) transaction: shard-local
/// transactions begun lazily as the workload touches shards, under one
/// global transaction id.
#[derive(Debug)]
pub struct DistTxn {
    gtxn: u64,
    /// `shard → (local txn, wrote?)`, in shard order.
    locals: BTreeMap<usize, (TxnId, bool)>,
}

impl DistTxn {
    /// The global transaction id.
    pub fn gtxn(&self) -> u64 {
        self.gtxn
    }

    /// Shards this transaction has touched so far (writers and readers).
    pub fn touched(&self) -> Vec<usize> {
        self.locals.keys().copied().collect()
    }

    /// Shards this transaction has written on.
    pub fn writers(&self) -> Vec<usize> {
        self.locals.iter().filter(|(_, (_, w))| *w).map(|(s, _)| *s).collect()
    }

    /// The shard-local transaction on `shard`, if begun. Exposed so test
    /// harnesses can drive (and sabotage) the 2PC phases by hand.
    pub fn local_txn(&self, shard: usize) -> Option<TxnId> {
        self.locals.get(&shard).map(|(t, _)| *t)
    }
}

/// The per-shard outcome of a deployment audit plus the cross-shard join.
#[derive(Debug)]
pub struct DeploymentAudit {
    /// One report per shard, in shard order.
    pub shard_reports: Vec<AuditReport>,
    /// Violations only the cross-shard decision join can see.
    pub cross_shard: Vec<Violation>,
}

impl DeploymentAudit {
    /// Whether every shard passed and the cross-shard join found nothing.
    pub fn is_clean(&self) -> bool {
        self.cross_shard.is_empty() && self.shard_reports.iter().all(|r| r.is_clean())
    }

    /// All violations, shard-local and cross-shard.
    pub fn all_violations(&self) -> Vec<Violation> {
        let mut v: Vec<Violation> =
            self.shard_reports.iter().flat_map(|r| r.violations.clone()).collect();
        v.extend(self.cross_shard.clone());
        v
    }
}

/// A sharded compliant deployment: N engines over one WORM volume, with a
/// compliant 2PC coordinator for cross-shard transactions.
pub struct ShardedDb {
    dir: PathBuf,
    clock: ClockRef,
    config: ComplianceConfig,
    worm: Arc<WormServer>,
    map: ShardMap,
    shards: Vec<Arc<CompliantDb>>,
    next_gtxn: AtomicU64,
}

impl ShardedDb {
    /// Opens (or creates) a deployment of `n` shards under `dir`, with the
    /// shared volume at `dir/worm`. Resolves any in-doubt prepared
    /// transactions left by a crash before returning.
    pub fn open(
        dir: impl AsRef<Path>,
        clock: ClockRef,
        config: ComplianceConfig,
        n: u32,
    ) -> Result<ShardedDb> {
        let dir = dir.as_ref().to_path_buf();
        let worm = Arc::new(WormServer::open(dir.join("worm"), clock.clone())?);
        Self::open_with_worm(dir, clock, config, worm, n)
    }

    /// Opens a sharded deployment over a caller-supplied WORM server —
    /// typically a [`WormServer::namespace`] view, so a sharded *tenant*
    /// nests as `tenants/<name>/shards/<i>/...` on the shared volume.
    pub fn open_with_worm(
        dir: impl AsRef<Path>,
        clock: ClockRef,
        config: ComplianceConfig,
        worm: Arc<WormServer>,
        n: u32,
    ) -> Result<ShardedDb> {
        let dir = dir.as_ref().to_path_buf();
        let map = ShardMap::load_or_create(&worm, n)?;
        let mut shards = Vec::with_capacity(map.shards() as usize);
        for i in 0..map.shards() {
            shards.push(Arc::new(Self::open_shard(&dir, &clock, &config, &worm, i)?));
        }
        let db = ShardedDb { dir, clock, config, worm, map, shards, next_gtxn: AtomicU64::new(1) };
        db.resolve_indoubt()?;
        Ok(db)
    }

    fn open_shard(
        dir: &Path,
        clock: &ClockRef,
        config: &ComplianceConfig,
        worm: &Arc<WormServer>,
        i: u32,
    ) -> Result<CompliantDb> {
        let ns = worm.namespace(&format!("{SHARD_NS_ROOT}/{i}"))?;
        CompliantDb::open_with_worm(
            dir.join(SHARD_NS_ROOT).join(i.to_string()),
            clock.clone(),
            config.clone(),
            Arc::new(ns),
        )
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard databases, in shard order.
    pub fn shards(&self) -> &[Arc<CompliantDb>] {
        &self.shards
    }

    /// The shared WORM volume (root view).
    pub fn worm(&self) -> &Arc<WormServer> {
        &self.worm
    }

    /// The deployment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    // --- schema -----------------------------------------------------------

    /// Creates a relation on every shard. Shards replay schema operations
    /// in the same order, so the relation id is identical everywhere; a
    /// divergence (only possible by tampering with one shard's catalog)
    /// is refused.
    pub fn create_relation(&self, name: &str, policy: SplitPolicy) -> Result<RelId> {
        let mut rel = None;
        for db in &self.shards {
            let r = db.create_relation(name, policy)?;
            match rel {
                None => rel = Some(r),
                Some(r0) if r0 != r => {
                    return Err(Error::Invalid(format!(
                        "relation {name:?} has diverging ids across shards ({r0:?} vs {r:?})"
                    )))
                }
                Some(_) => {}
            }
        }
        rel.ok_or_else(|| Error::Invalid("deployment has no shards".into()))
    }

    /// The relation id for `name` (identical on every shard).
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.shards.first().and_then(|db| db.engine().rel_id(name))
    }

    /// Sets a relation's retention period on every shard.
    pub fn set_retention(&self, name: &str, period: ccdb_common::Duration) -> Result<()> {
        for db in &self.shards {
            let txn = db.begin()?;
            db.set_retention(txn, name, period)?;
            db.commit(txn)?;
        }
        Ok(())
    }

    /// Places a litigation hold on every shard. Keys route by content, so a
    /// hold's prefix may cover tuples on any shard — each shard records the
    /// hold in its own (version-tracked, audited) holds relation.
    pub fn place_hold(&self, hold: &crate::shred::Hold) -> Result<()> {
        for db in &self.shards {
            let txn = db.begin()?;
            db.place_hold(txn, hold)?;
            db.commit(txn)?;
        }
        Ok(())
    }

    /// Releases a litigation hold on every shard.
    pub fn release_hold(&self, hold_id: &str) -> Result<()> {
        for db in &self.shards {
            let txn = db.begin()?;
            db.release_hold(txn, hold_id)?;
            db.commit(txn)?;
        }
        Ok(())
    }

    /// The holds active on the deployment (read from the first shard; every
    /// shard carries the same hold set when holds are managed through
    /// [`ShardedDb::place_hold`] / [`ShardedDb::release_hold`]).
    pub fn active_holds(&self) -> Result<Vec<crate::shred::Hold>> {
        match self.shards.first() {
            Some(db) => db.active_holds(),
            None => Ok(Vec::new()),
        }
    }

    /// Runs the auditable vacuum on every shard, summing the reports.
    pub fn vacuum(&self) -> Result<crate::shred::VacuumReport> {
        let mut total = crate::shred::VacuumReport::default();
        for db in &self.shards {
            let r = db.vacuum()?;
            total.shredded += r.shredded;
            total.held += r.held;
            total.revacuumed += r.revacuumed;
        }
        Ok(total)
    }

    /// Re-migrates expired WORM-resident pages back to conventional media
    /// on every shard (so the next [`ShardedDb::vacuum`] can shred them).
    /// Returns the total pages re-migrated.
    pub fn remigrate_expired(&self) -> Result<usize> {
        let mut total = 0;
        for db in &self.shards {
            total += db.remigrate_expired()?;
        }
        Ok(total)
    }

    /// Migrates `rel`'s historical (time-split) pages to WORM on every
    /// shard, summing the reports.
    pub fn migrate_to_worm(&self, rel: RelId) -> Result<crate::migrate::MigrationReport> {
        let mut total = crate::migrate::MigrationReport::default();
        for db in &self.shards {
            let r = db.migrate_to_worm(rel)?;
            total.pages_migrated += r.pages_migrated;
            total.tuples_migrated += r.tuples_migrated;
        }
        Ok(total)
    }

    // --- distributed transactions ----------------------------------------

    /// Begins a distributed transaction. Shard-local transactions are begun
    /// lazily as the transaction touches shards.
    pub fn begin(&self) -> DistTxn {
        DistTxn { gtxn: self.next_gtxn.fetch_add(1, Ordering::SeqCst), locals: BTreeMap::new() }
    }

    fn local(&self, dtx: &mut DistTxn, shard: usize) -> Result<TxnId> {
        if let Some((txn, _)) = dtx.locals.get(&shard) {
            return Ok(*txn);
        }
        let txn = self.shards[shard].begin()?;
        dtx.locals.insert(shard, (txn, false));
        Ok(txn)
    }

    /// Writes a tuple version, routed by key.
    pub fn write(&self, dtx: &mut DistTxn, rel: RelId, key: &[u8], value: &[u8]) -> Result<()> {
        let s = self.map.shard_of(key);
        let txn = self.local(dtx, s)?;
        self.shards[s].write(txn, rel, key, value)?;
        dtx.locals.get_mut(&s).expect("local just begun").1 = true;
        Ok(())
    }

    /// Deletes a tuple (end-of-life version), routed by key.
    pub fn delete(&self, dtx: &mut DistTxn, rel: RelId, key: &[u8]) -> Result<()> {
        let s = self.map.shard_of(key);
        let txn = self.local(dtx, s)?;
        self.shards[s].delete(txn, rel, key)?;
        dtx.locals.get_mut(&s).expect("local just begun").1 = true;
        Ok(())
    }

    /// Reads the current value, routed by key.
    pub fn read(&self, dtx: &mut DistTxn, rel: RelId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let s = self.map.shard_of(key);
        let txn = self.local(dtx, s)?;
        self.shards[s].read(txn, rel, key)
    }

    /// Commits the distributed transaction.
    ///
    /// Zero or one *writing* participant commits locally with no 2PC
    /// traffic (read-only locals just commit their empty transactions).
    /// With two or more writers the full protocol runs: WAL prepare +
    /// `2PC_PREPARE` on each writer's L, then the `2PC_DECISION` commit
    /// point on every writer's L, then local commits.
    pub fn commit(&self, dtx: DistTxn) -> Result<Timestamp> {
        let gtxn = dtx.gtxn;
        let writers: Vec<(usize, TxnId)> = dtx
            .locals
            .iter()
            .filter(|(_, (_, wrote))| *wrote)
            .map(|(s, (t, _))| (*s, *t))
            .collect();
        let readers: Vec<(usize, TxnId)> = dtx
            .locals
            .iter()
            .filter(|(_, (_, wrote))| !*wrote)
            .map(|(s, (t, _))| (*s, *t))
            .collect();
        let mut latest = Timestamp(0);
        // Read-only participants never prepared; their commit is local.
        for (s, txn) in &readers {
            latest = latest.max(self.shards[*s].commit(*txn)?);
        }
        if writers.len() <= 1 {
            for (s, txn) in &writers {
                latest = latest.max(self.shards[*s].commit(*txn)?);
            }
            return Ok(latest);
        }
        let participants: Vec<u32> = writers.iter().map(|(s, _)| *s as u32).collect();

        // Phase 1: prepare. Engine-prepare first (durable WAL record), then
        // the L prepare. A failure anywhere decides abort.
        let mut prepared_l: Vec<(usize, TxnId)> = Vec::new();
        let mut failure: Option<Error> = None;
        'prep: for (s, txn) in &writers {
            if let Err(e) = self.shards[*s].prepare(*txn) {
                failure = Some(e);
                break 'prep;
            }
            let rec = LogRecord::TwoPcPrepare {
                gtxn,
                txn: *txn,
                shard: *s as u32,
                participants: participants.clone(),
            };
            if let Err(e) = self.shards[*s].log_2pc(&rec) {
                failure = Some(e);
                break 'prep;
            }
            prepared_l.push((*s, *txn));
        }
        if let Some(e) = failure {
            // Abort decision for every participant whose L saw the prepare;
            // participants that never reached L abort cleanly (presumed
            // abort needs no record there).
            for (s, _) in &prepared_l {
                let _ = self.shards[*s].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: false });
            }
            for (s, txn) in &writers {
                let _ = self.shards[*s].abort(*txn);
            }
            return Err(e);
        }

        // Phase 2: the decision records — the commit point. Appended and
        // flushed on every participant before any local commit, so a crash
        // in this window leaves the outcome recoverable from any survivor.
        for (s, _) in &writers {
            self.shards[*s].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true })?;
        }

        // Phase 3: local completion.
        for (s, txn) in &writers {
            latest = latest.max(self.shards[*s].commit(*txn)?);
        }
        Ok(latest)
    }

    /// Aborts the distributed transaction. Called before any prepare
    /// reached a log, no 2PC records are needed: an unprepared local
    /// transaction aborts cleanly under presumed-abort.
    pub fn abort(&self, dtx: DistTxn) -> Result<()> {
        for (s, (txn, _)) in &dtx.locals {
            self.shards[*s].abort(*txn)?;
        }
        Ok(())
    }

    // --- crash / recovery -------------------------------------------------

    /// Simulates a whole-deployment crash and reopens, resolving every
    /// in-doubt transaction.
    pub fn crash_and_recover(self) -> Result<ShardedDb> {
        for db in &self.shards {
            db.engine().crash();
            if let Some(p) = db.plugin() {
                p.logger().simulate_crash_drop_pending();
            }
        }
        let ShardedDb { dir, clock, config, worm, map, shards, .. } = self;
        drop(shards);
        drop(worm);
        let n = map.shards();
        ShardedDb::open(dir, clock, config, n)
    }

    /// Simulates a crash of shard `i` alone and reopens it, then resolves
    /// in-doubt transactions across the deployment — the targeted-shard
    /// torture scenario: a shard dying mid-2PC must not strand its peers.
    pub fn crash_shard(&mut self, i: usize) -> Result<()> {
        {
            let db = &self.shards[i];
            db.engine().crash();
            if let Some(p) = db.plugin() {
                p.logger().simulate_crash_drop_pending();
            }
        }
        let fresh = Self::open_shard(&self.dir, &self.clock, &self.config, &self.worm, i as u32)?;
        self.shards[i] = Arc::new(fresh);
        self.resolve_indoubt()
    }

    /// One shard's 2PC book, read from its current epoch log.
    fn shard_book(db: &CompliantDb) -> TwoPcBook {
        let mut book = TwoPcBook::default();
        let bytes = db.worm().read_all(&epoch_log_name(db.epoch())).unwrap_or_default();
        for item in LogIter::new(&bytes) {
            let Ok((off, rec)) = item else { break };
            book.ingest(off, &rec);
        }
        book
    }

    /// Every shard's 2PC book (current epoch), in shard order.
    pub fn books(&self) -> Vec<TwoPcBook> {
        self.shards.iter().map(|db| Self::shard_book(db)).collect()
    }

    /// The coordinator's resolution pass, run at open and after a shard
    /// crash: drives every in-doubt prepared transaction to the outcome the
    /// decision records dictate (presumed abort when none exists anywhere),
    /// appending the decision to participants that missed it.
    fn resolve_indoubt(&self) -> Result<()> {
        let books = self.books();
        // Global transaction ids must not be reused within an epoch: resume
        // the counter above everything the logs have seen.
        let mut max_gtxn = 0u64;
        for b in &books {
            if let Some((g, _)) = b.prepares.iter().next_back() {
                max_gtxn = max_gtxn.max(*g);
            }
            if let Some((g, _)) = b.decisions.iter().next_back() {
                max_gtxn = max_gtxn.max(*g);
            }
        }
        self.next_gtxn.fetch_max(max_gtxn + 1, Ordering::SeqCst);

        let mut appended: Vec<(usize, u64)> = Vec::new();
        for (i, db) in self.shards.iter().enumerate() {
            for txn in db.indoubt_txns() {
                // The prepare's L record names the global transaction. A
                // WAL-prepared transaction whose L prepare never made it is
                // presumed-abort with no record needed: no shard's audit
                // will ever look for its decision.
                let prep = books[i]
                    .prepares
                    .iter()
                    .find(|(_, (t, _, _, _))| *t == txn)
                    .map(|(g, (_, _, parts, _))| (*g, parts.clone()));
                let Some((gtxn, participants)) = prep else {
                    db.abort(txn)?;
                    continue;
                };
                // Any durable decision wins; a commit decision anywhere
                // means the commit point was reached.
                let mut decision: Option<bool> = None;
                for b in &books {
                    if let Some((c, _)) = b.decisions.get(&gtxn) {
                        decision = Some(decision.unwrap_or(false) || *c);
                    }
                }
                let commit = decision.unwrap_or(false);
                for &p in &participants {
                    let p = p as usize;
                    if p >= self.shards.len() {
                        continue;
                    }
                    let already =
                        books[p].decisions.contains_key(&gtxn) || appended.contains(&(p, gtxn));
                    if !already {
                        self.shards[p].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit })?;
                        appended.push((p, gtxn));
                    }
                }
                if commit {
                    db.commit(txn)?;
                } else {
                    db.abort(txn)?;
                }
            }
        }
        Ok(())
    }

    // --- lifecycle --------------------------------------------------------

    /// Regret-interval housekeeping on every shard.
    pub fn tick(&self) -> Result<()> {
        for db in &self.shards {
            db.tick()?;
        }
        Ok(())
    }

    /// Audits the deployment: the cross-shard decision join over every
    /// shard's current epoch log, then a full (sealing) audit per shard.
    /// The join runs first — sealing a clean shard rolls its epoch.
    pub fn audit(&self) -> Result<DeploymentAudit> {
        let cross_shard = two_pc_cross_shard_join(&self.books());
        let mut shard_reports = Vec::with_capacity(self.shards.len());
        for db in &self.shards {
            shard_reports.push(db.audit()?);
        }
        Ok(DeploymentAudit { shard_reports, cross_shard })
    }

    /// A deployment audit **dry run** under an explicit config (no epoch
    /// advance, no snapshot): per-shard outcomes plus the cross-shard join
    /// over the outcomes' 2PC books. The differential suite runs this for
    /// the serial oracle and the parallel pipeline over the same state.
    pub fn audit_dry(&self, config: AuditConfig) -> Result<(Vec<AuditOutcome>, Vec<Violation>)> {
        let mut outcomes = Vec::with_capacity(self.shards.len());
        for db in &self.shards {
            outcomes.push(db.audit_outcome_with(config)?);
        }
        let books: Vec<TwoPcBook> = outcomes.iter().map(|o| o.two_pc.clone()).collect();
        let cross = two_pc_cross_shard_join(&books);
        Ok((outcomes, cross))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Mode;
    use ccdb_common::{Duration, VirtualClock};

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "ccdb-shard-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn cfg() -> ComplianceConfig {
        ComplianceConfig {
            mode: Mode::LogConsistent,
            regret_interval: Duration::from_mins(5),
            cache_pages: 256,
            fsync: false,
            ..ComplianceConfig::default()
        }
    }

    fn clock() -> ClockRef {
        Arc::new(VirtualClock::ticking(Duration::from_micros(50)))
    }

    #[test]
    fn shard_map_is_pinned_on_worm() {
        let dir = tmp("map");
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        drop(db);
        // Same count reopens; a different count is refused.
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        drop(db);
        assert!(ShardedDb::open(&dir, clock(), cfg(), 3).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let map = ShardMap::new(4).unwrap();
        let mut hit = [false; 4];
        for i in 0..256u32 {
            let k = i.to_le_bytes();
            let s = map.shard_of(&k);
            assert_eq!(s, map.shard_of(&k));
            hit[s] = true;
        }
        assert!(hit.iter().all(|h| *h), "256 keys should touch all 4 shards");
    }

    #[test]
    fn cross_shard_commit_audits_clean_and_survives_reopen() {
        let dir = tmp("2pc");
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();

        // Enough keys that both shards participate.
        let mut dtx = db.begin();
        for i in 0..32u32 {
            let k = format!("acct-{i:04}");
            db.write(&mut dtx, rel, k.as_bytes(), b"v0").unwrap();
        }
        assert!(dtx.writers().len() == 2, "expected both shards to participate");
        db.commit(dtx).unwrap();

        // Reads route to the owning shard.
        let mut r = db.begin();
        assert_eq!(db.read(&mut r, rel, b"acct-0007").unwrap().unwrap(), b"v0");
        db.commit(r).unwrap();

        let audit = db.audit().unwrap();
        assert!(audit.is_clean(), "dirty: {:?}", audit.all_violations());

        // Reopen: the books are settled, nothing in doubt, state intact.
        drop(db);
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        let rel = db.rel_id("ledger").unwrap();
        let mut r = db.begin();
        assert_eq!(db.read(&mut r, rel, b"acct-0007").unwrap().unwrap(), b"v0");
        db.commit(r).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_writer_transactions_skip_2pc() {
        let dir = tmp("short");
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        let rel = db.create_relation("kv", SplitPolicy::KeyOnly).unwrap();
        let mut dtx = db.begin();
        db.write(&mut dtx, rel, b"solo-key", b"v").unwrap();
        assert_eq!(dtx.writers().len(), 1);
        db.commit(dtx).unwrap();
        for book in db.books() {
            assert!(book.prepares.is_empty(), "single-writer commit must not log 2PC records");
            assert!(book.decisions.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deployment_crash_mid_2pc_resolves_consistently() {
        let dir = tmp("crash");
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
        let mut dtx = db.begin();
        for i in 0..32u32 {
            let k = format!("acct-{i:04}");
            db.write(&mut dtx, rel, k.as_bytes(), b"v0").unwrap();
        }
        let writers: Vec<(usize, TxnId)> = dtx.locals.iter().map(|(s, (t, _))| (*s, *t)).collect();
        let gtxn = dtx.gtxn();
        assert_eq!(writers.len(), 2);

        // Drive the prepare phase by hand, then crash before any decision:
        // presumed abort must resolve both shards to ABORT, audit-clean.
        for (s, txn) in &writers {
            db.shards()[*s].prepare(*txn).unwrap();
            db.shards()[*s]
                .log_2pc(&LogRecord::TwoPcPrepare {
                    gtxn,
                    txn: *txn,
                    shard: *s as u32,
                    participants: writers.iter().map(|(s, _)| *s as u32).collect(),
                })
                .unwrap();
        }
        let db = db.crash_and_recover().unwrap();
        let mut r = db.begin();
        assert_eq!(db.read(&mut r, rel, b"acct-0007").unwrap(), None);
        db.commit(r).unwrap();
        let audit = db.audit().unwrap();
        assert!(audit.is_clean(), "dirty: {:?}", audit.all_violations());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decision_on_one_shard_commits_everywhere_after_crash() {
        let dir = tmp("decided");
        let db = ShardedDb::open(&dir, clock(), cfg(), 2).unwrap();
        let rel = db.create_relation("ledger", SplitPolicy::KeyOnly).unwrap();
        let mut dtx = db.begin();
        for i in 0..32u32 {
            let k = format!("acct-{i:04}");
            db.write(&mut dtx, rel, k.as_bytes(), b"v1").unwrap();
        }
        let writers: Vec<(usize, TxnId)> = dtx.locals.iter().map(|(s, (t, _))| (*s, *t)).collect();
        let gtxn = dtx.gtxn();
        for (s, txn) in &writers {
            db.shards()[*s].prepare(*txn).unwrap();
            db.shards()[*s]
                .log_2pc(&LogRecord::TwoPcPrepare {
                    gtxn,
                    txn: *txn,
                    shard: *s as u32,
                    participants: writers.iter().map(|(s, _)| *s as u32).collect(),
                })
                .unwrap();
        }
        // The commit point reached exactly one participant, then a crash.
        let first = writers[0].0;
        db.shards()[first].log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true }).unwrap();
        let db = db.crash_and_recover().unwrap();
        let mut r = db.begin();
        assert_eq!(db.read(&mut r, rel, b"acct-0007").unwrap().unwrap(), b"v1");
        db.commit(r).unwrap();
        let audit = db.audit().unwrap();
        assert!(audit.is_clean(), "dirty: {:?}", audit.all_violations());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deployment_holds_and_vacuum_span_every_shard() {
        use crate::shred::Hold;
        let dir = tmp("lifecycle");
        let clk = Arc::new(VirtualClock::ticking(Duration::from_micros(50)));
        let db = ShardedDb::open(&dir, clk.clone(), cfg(), 2).unwrap();
        let rel = db.create_relation("events", SplitPolicy::KeyOnly).unwrap();
        db.set_retention("events", Duration::from_mins(60)).unwrap();
        // Enough keys to land on both shards, including held ones.
        for i in 0..64u32 {
            let mut dtx = db.begin();
            let k = format!("ev-{i:04}");
            db.write(&mut dtx, rel, k.as_bytes(), b"payload").unwrap();
            db.commit(dtx).unwrap();
        }
        db.place_hold(&Hold {
            id: "docket-9".into(),
            rel_name: "events".into(),
            key_prefix: b"ev-000".to_vec(),
        })
        .unwrap();
        assert_eq!(db.active_holds().unwrap().len(), 1);
        // Everything expires; the hold spares its prefix on every shard.
        clk.advance(Duration::from_mins(120));
        let report = db.vacuum().unwrap();
        assert!(report.shredded > 0, "nothing shredded: {report:?}");
        assert!(report.held > 0, "hold spared nothing: {report:?}");
        let mut r = db.begin();
        assert_eq!(db.read(&mut r, rel, b"ev-0007").unwrap().unwrap(), b"payload");
        assert_eq!(db.read(&mut r, rel, b"ev-0040").unwrap(), None);
        db.commit(r).unwrap();
        db.release_hold("docket-9").unwrap();
        assert!(db.active_holds().unwrap().is_empty());
        let report = db.vacuum().unwrap();
        assert!(report.shredded > 0, "post-release vacuum shredded nothing");
        let audit = db.audit().unwrap();
        assert!(audit.is_clean(), "dirty: {:?}", audit.all_violations());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
