//! The compliance-log record set and its byte framing.
//!
//! Records are framed `u32 length ‖ u32 FNV checksum ‖ body` — the checksum
//! is a parse aid, not a defense (the log lives on WORM, which the threat
//! model trusts). Offsets within `L` identify records; the hash-page-on-read
//! normalization rule compares a tuple's `STAMP_TRANS` offset with a `READ`
//! record's offset, exactly the paper's "if the STAMP_TRANS record for T
//! appears later in L".

use ccdb_common::codec::checksum32;
use ccdb_common::{ByteReader, ByteWriter, Error, PageNo, RelId, Result, Timestamp, TxnId};
use ccdb_crypto::Digest;

/// The content of one page side of a `PAGE_SPLIT` record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitSide {
    /// The new page's number.
    pub pgno: PageNo,
    /// Whether the page was marked historical (time-split output).
    pub historical: bool,
    /// The page's cells immediately after the split.
    pub cells: Vec<Vec<u8>>,
}

/// A compliance-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// A new tuple version reached a disk page ("its NEW_TUPLE record must
    /// reach WORM storage" within one regret interval of commit). The cell is
    /// the on-page encoding at pwrite time (possibly still carrying a
    /// transaction id under lazy timestamping).
    NewTuple {
        /// The page holding the version.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// The tuple-version cell bytes as stored.
        cell: Vec<u8>,
    },
    /// Transaction `txn` committed at `commit_time` (written only after the
    /// commit is durable).
    StampTrans {
        /// The committed transaction.
        txn: TxnId,
        /// Its commit time.
        commit_time: Timestamp,
    },
    /// Liveness heartbeat: appended when a regret interval is about to pass
    /// without a transaction ending ("a dummy STAMP_TRANS record to show that
    /// the system is still live").
    DummyStamp {
        /// The heartbeat time.
        time: Timestamp,
    },
    /// Transaction `txn` aborted (written only after rollback completes).
    Abort {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// A tuple version was physically removed from a page (rollback UNDO or
    /// vacuum). The auditor requires every `Undo` to be justified by a prior
    /// `Abort` or `Shredded` record.
    Undo {
        /// The page the version was removed from.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// The removed cell bytes.
        cell: Vec<u8>,
    },
    /// Hash-page-on-read: a page was fetched from disk; `hs` is the
    /// sequential hash of its (time-normalized) content.
    Read {
        /// The page read.
        pgno: PageNo,
        /// `Hs` over the page content.
        hs: Digest,
    },
    /// A page split: `old` was retired; its content was partitioned into two
    /// new pages whose complete post-split content is recorded.
    /// `intermediates` are versions *created by* a time split (the TSB
    /// "intermediate version at time t") — new tuples that enter the
    /// completeness universe here.
    PageSplit {
        /// The retired input page.
        old: PageNo,
        /// Owning relation.
        rel: RelId,
        /// First output page (the historical page for time splits).
        left: SplitSide,
        /// Second output page (the live page for time splits).
        right: SplitSide,
        /// Cells of versions created by the split.
        intermediates: Vec<Vec<u8>>,
    },
    /// An entry was inserted into internal page `pgno`.
    IndexInsert {
        /// The internal page.
        pgno: PageNo,
        /// The entry cell.
        cell: Vec<u8>,
    },
    /// An entry was removed from internal page `pgno`.
    IndexRemove {
        /// The internal page.
        pgno: PageNo,
        /// The entry cell.
        cell: Vec<u8>,
    },
    /// A new root page came into service with the given entry cells.
    NewRoot {
        /// The relation whose tree grew.
        rel: RelId,
        /// The new root page.
        pgno: PageNo,
        /// Its initial entry cells.
        cells: Vec<Vec<u8>>,
    },
    /// Authoritative full content of internal page `pgno`, replacing
    /// whatever the replay held for it. Emitted at the first post-recovery
    /// pwrite of an internal page the plugin has no pristine baseline for:
    /// crash recovery rebuilt the page from its WAL images, so the entry
    /// deltas it accumulated between its creation record and the crash were
    /// never logged, and per-entry `INDEX_INSERT`/`INDEX_REMOVE` records
    /// cannot retract the stale entries `L` still carries.
    IndexImage {
        /// The internal page.
        pgno: PageNo,
        /// Its complete entry cells.
        cells: Vec<Vec<u8>>,
    },
    /// A historical page was migrated to WORM: its full content now lives in
    /// `worm_file`, and its tuples leave the auditing universe once the
    /// migration is verified.
    Migrate {
        /// The migrated page.
        pgno: PageNo,
        /// Owning relation.
        rel: RelId,
        /// The WORM file holding the page copy.
        worm_file: String,
        /// SHA-256 of the concatenated cells, binding the record to the copy.
        content_hash: Digest,
    },
    /// A tuple version is about to be vacuumed ("The SHREDDED record must be
    /// sent to WORM before the tuple(s) listed on it can be vacuumed").
    Shredded {
        /// Owning relation.
        rel: RelId,
        /// The tuple's key.
        key: Vec<u8>,
        /// The version's start (commit) time.
        start_time: Timestamp,
        /// The page the version resides on.
        pgno: PageNo,
        /// SHA-256 of the version's canonical bytes.
        content_hash: Digest,
        /// When the shred was initiated (checked against the Expiry
        /// relation's retention period).
        shred_time: Timestamp,
    },
    /// Crash recovery began ("a crash can introduce long gaps in commit
    /// times"; the auditor widens its regret-gap checks accordingly).
    StartRecovery {
        /// The recovery start time.
        time: Timestamp,
    },
    /// A local transaction entered the prepared state of a cross-shard
    /// two-phase commit. Appended to *this shard's* `L` stream after the
    /// shard's WAL `Prepare` record is durable; the auditor requires every
    /// prepare to be matched by a [`LogRecord::TwoPcDecision`] in the same
    /// epoch (a prepared transaction blocks quiesce, so a decision it
    /// receives always lands in the same epoch's log).
    TwoPcPrepare {
        /// Coordinator-issued global transaction id (unique per volume).
        gtxn: u64,
        /// The participating local transaction on this shard.
        txn: TxnId,
        /// This shard's index in the deployment's shard map.
        shard: u32,
        /// Every participating shard index (the audit's cross-shard join
        /// checks each listed shard recorded the same decision).
        participants: Vec<u32>,
    },
    /// The coordinator's commit/abort decision for global transaction
    /// `gtxn`, appended to *every* participant's `L` stream. The decision
    /// record on the last participant's log is the commit point of the
    /// global transaction; a decision missing on any shard, or contradicted
    /// by the local outcome, is a typed tamper finding.
    TwoPcDecision {
        /// The decided global transaction.
        gtxn: u64,
        /// `true` = commit everywhere, `false` = abort everywhere.
        commit: bool,
    },
}

const T_NEW_TUPLE: u8 = 1;
const T_STAMP: u8 = 2;
const T_DUMMY: u8 = 3;
const T_ABORT: u8 = 4;
const T_UNDO: u8 = 5;
const T_READ: u8 = 6;
const T_SPLIT: u8 = 7;
const T_IDX_INS: u8 = 8;
const T_IDX_REM: u8 = 9;
const T_NEW_ROOT: u8 = 10;
const T_MIGRATE: u8 = 11;
const T_SHREDDED: u8 = 12;
const T_START_RECOVERY: u8 = 13;
const T_2PC_PREPARE: u8 = 14;
const T_2PC_DECISION: u8 = 15;
const T_IDX_IMAGE: u8 = 16;

fn put_cells(w: &mut ByteWriter, cells: &[Vec<u8>]) {
    w.put_u32(cells.len() as u32);
    for c in cells {
        w.put_len_bytes(c);
    }
}

fn get_cells(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u8>>> {
    let n = r.get_u32()? as usize;
    let mut cells = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        cells.push(r.get_len_bytes()?.to_vec());
    }
    Ok(cells)
}

fn put_digest(w: &mut ByteWriter, d: &Digest) {
    w.put_bytes(d);
}

fn get_digest(r: &mut ByteReader<'_>) -> Result<Digest> {
    let b = r.get_bytes(32)?;
    let mut d = [0u8; 32];
    d.copy_from_slice(b);
    Ok(d)
}

fn put_side(w: &mut ByteWriter, s: &SplitSide) {
    w.put_u64(s.pgno.0);
    w.put_u8(if s.historical { 1 } else { 0 });
    put_cells(w, &s.cells);
}

fn get_side(r: &mut ByteReader<'_>) -> Result<SplitSide> {
    Ok(SplitSide { pgno: PageNo(r.get_u64()?), historical: r.get_u8()? != 0, cells: get_cells(r)? })
}

impl LogRecord {
    /// Encodes the record body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            LogRecord::NewTuple { pgno, rel, cell } => {
                w.put_u8(T_NEW_TUPLE);
                w.put_u64(pgno.0);
                w.put_u32(rel.0);
                w.put_len_bytes(cell);
            }
            LogRecord::StampTrans { txn, commit_time } => {
                w.put_u8(T_STAMP);
                w.put_u64(txn.0);
                w.put_u64(commit_time.0);
            }
            LogRecord::DummyStamp { time } => {
                w.put_u8(T_DUMMY);
                w.put_u64(time.0);
            }
            LogRecord::Abort { txn } => {
                w.put_u8(T_ABORT);
                w.put_u64(txn.0);
            }
            LogRecord::Undo { pgno, rel, cell } => {
                w.put_u8(T_UNDO);
                w.put_u64(pgno.0);
                w.put_u32(rel.0);
                w.put_len_bytes(cell);
            }
            LogRecord::Read { pgno, hs } => {
                w.put_u8(T_READ);
                w.put_u64(pgno.0);
                put_digest(&mut w, hs);
            }
            LogRecord::PageSplit { old, rel, left, right, intermediates } => {
                w.put_u8(T_SPLIT);
                w.put_u64(old.0);
                w.put_u32(rel.0);
                put_side(&mut w, left);
                put_side(&mut w, right);
                put_cells(&mut w, intermediates);
            }
            LogRecord::IndexInsert { pgno, cell } => {
                w.put_u8(T_IDX_INS);
                w.put_u64(pgno.0);
                w.put_len_bytes(cell);
            }
            LogRecord::IndexRemove { pgno, cell } => {
                w.put_u8(T_IDX_REM);
                w.put_u64(pgno.0);
                w.put_len_bytes(cell);
            }
            LogRecord::NewRoot { rel, pgno, cells } => {
                w.put_u8(T_NEW_ROOT);
                w.put_u32(rel.0);
                w.put_u64(pgno.0);
                put_cells(&mut w, cells);
            }
            LogRecord::IndexImage { pgno, cells } => {
                w.put_u8(T_IDX_IMAGE);
                w.put_u64(pgno.0);
                put_cells(&mut w, cells);
            }
            LogRecord::Migrate { pgno, rel, worm_file, content_hash } => {
                w.put_u8(T_MIGRATE);
                w.put_u64(pgno.0);
                w.put_u32(rel.0);
                w.put_str(worm_file);
                put_digest(&mut w, content_hash);
            }
            LogRecord::Shredded { rel, key, start_time, pgno, content_hash, shred_time } => {
                w.put_u8(T_SHREDDED);
                w.put_u32(rel.0);
                w.put_len_bytes(key);
                w.put_u64(start_time.0);
                w.put_u64(pgno.0);
                put_digest(&mut w, content_hash);
                w.put_u64(shred_time.0);
            }
            LogRecord::StartRecovery { time } => {
                w.put_u8(T_START_RECOVERY);
                w.put_u64(time.0);
            }
            LogRecord::TwoPcPrepare { gtxn, txn, shard, participants } => {
                w.put_u8(T_2PC_PREPARE);
                w.put_u64(*gtxn);
                w.put_u64(txn.0);
                w.put_u32(*shard);
                w.put_u32(participants.len() as u32);
                for p in participants {
                    w.put_u32(*p);
                }
            }
            LogRecord::TwoPcDecision { gtxn, commit } => {
                w.put_u8(T_2PC_DECISION);
                w.put_u64(*gtxn);
                w.put_u8(if *commit { 1 } else { 0 });
            }
        }
        w.into_vec()
    }

    /// Decodes a record body.
    pub fn decode_body(body: &[u8]) -> Result<LogRecord> {
        let mut r = ByteReader::new(body);
        let tag = r.get_u8()?;
        let rec = match tag {
            T_NEW_TUPLE => LogRecord::NewTuple {
                pgno: PageNo(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                cell: r.get_len_bytes()?.to_vec(),
            },
            T_STAMP => LogRecord::StampTrans {
                txn: TxnId(r.get_u64()?),
                commit_time: Timestamp(r.get_u64()?),
            },
            T_DUMMY => LogRecord::DummyStamp { time: Timestamp(r.get_u64()?) },
            T_ABORT => LogRecord::Abort { txn: TxnId(r.get_u64()?) },
            T_UNDO => LogRecord::Undo {
                pgno: PageNo(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                cell: r.get_len_bytes()?.to_vec(),
            },
            T_READ => LogRecord::Read { pgno: PageNo(r.get_u64()?), hs: get_digest(&mut r)? },
            T_SPLIT => LogRecord::PageSplit {
                old: PageNo(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                left: get_side(&mut r)?,
                right: get_side(&mut r)?,
                intermediates: get_cells(&mut r)?,
            },
            T_IDX_INS => LogRecord::IndexInsert {
                pgno: PageNo(r.get_u64()?),
                cell: r.get_len_bytes()?.to_vec(),
            },
            T_IDX_REM => LogRecord::IndexRemove {
                pgno: PageNo(r.get_u64()?),
                cell: r.get_len_bytes()?.to_vec(),
            },
            T_NEW_ROOT => LogRecord::NewRoot {
                rel: RelId(r.get_u32()?),
                pgno: PageNo(r.get_u64()?),
                cells: get_cells(&mut r)?,
            },
            T_IDX_IMAGE => {
                LogRecord::IndexImage { pgno: PageNo(r.get_u64()?), cells: get_cells(&mut r)? }
            }
            T_MIGRATE => LogRecord::Migrate {
                pgno: PageNo(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                worm_file: r.get_str()?,
                content_hash: get_digest(&mut r)?,
            },
            T_SHREDDED => LogRecord::Shredded {
                rel: RelId(r.get_u32()?),
                key: r.get_len_bytes()?.to_vec(),
                start_time: Timestamp(r.get_u64()?),
                pgno: PageNo(r.get_u64()?),
                content_hash: get_digest(&mut r)?,
                shred_time: Timestamp(r.get_u64()?),
            },
            T_START_RECOVERY => LogRecord::StartRecovery { time: Timestamp(r.get_u64()?) },
            T_2PC_PREPARE => {
                let gtxn = r.get_u64()?;
                let txn = TxnId(r.get_u64()?);
                let shard = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut participants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    participants.push(r.get_u32()?);
                }
                LogRecord::TwoPcPrepare { gtxn, txn, shard, participants }
            }
            T_2PC_DECISION => {
                let gtxn = r.get_u64()?;
                let commit = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    v => {
                        return Err(Error::corruption(format!("bad 2PC decision flag {v}")));
                    }
                };
                LogRecord::TwoPcDecision { gtxn, commit }
            }
            t => return Err(Error::corruption(format!("unknown compliance record tag {t}"))),
        };
        if !r.is_exhausted() {
            return Err(Error::corruption("trailing bytes in compliance record"));
        }
        Ok(rec)
    }

    /// Frames the record for appending to `L`.
    pub fn encode_framed(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }
}

/// Iterates framed records in a byte buffer (one `L` epoch file), yielding
/// `(offset, record)`.
pub struct LogIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LogIter<'a> {
    /// Creates an iterator over `bytes`.
    pub fn new(bytes: &'a [u8]) -> LogIter<'a> {
        LogIter { bytes, pos: 0 }
    }
}

impl<'a> Iterator for LogIter<'a> {
    type Item = Result<(u64, LogRecord)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        if self.pos + 8 > self.bytes.len() {
            return Some(Err(Error::corruption("truncated compliance-log frame")));
        }
        let len =
            u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().expect("4")) as usize;
        let sum = u32::from_le_bytes(self.bytes[self.pos + 4..self.pos + 8].try_into().expect("4"));
        if self.pos + 8 + len > self.bytes.len() {
            return Some(Err(Error::corruption("truncated compliance-log record")));
        }
        let body = &self.bytes[self.pos + 8..self.pos + 8 + len];
        if checksum32(body) != sum {
            return Some(Err(Error::corruption("compliance-log checksum mismatch")));
        }
        let off = self.pos as u64;
        self.pos += 8 + len;
        Some(LogRecord::decode_body(body).map(|r| (off, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogRecord> {
        vec![
            LogRecord::NewTuple { pgno: PageNo(3), rel: RelId(1), cell: b"cell".to_vec() },
            LogRecord::StampTrans { txn: TxnId(9), commit_time: Timestamp(77) },
            LogRecord::DummyStamp { time: Timestamp(88) },
            LogRecord::Abort { txn: TxnId(10) },
            LogRecord::Undo { pgno: PageNo(3), rel: RelId(1), cell: b"gone".to_vec() },
            LogRecord::Read { pgno: PageNo(4), hs: [7u8; 32] },
            LogRecord::PageSplit {
                old: PageNo(5),
                rel: RelId(2),
                left: SplitSide { pgno: PageNo(6), historical: true, cells: vec![b"a".to_vec()] },
                right: SplitSide {
                    pgno: PageNo(7),
                    historical: false,
                    cells: vec![b"b".to_vec(), b"c".to_vec()],
                },
                intermediates: vec![b"i".to_vec()],
            },
            LogRecord::IndexInsert { pgno: PageNo(8), cell: b"e".to_vec() },
            LogRecord::IndexRemove { pgno: PageNo(8), cell: b"e".to_vec() },
            LogRecord::NewRoot { rel: RelId(2), pgno: PageNo(9), cells: vec![b"x".to_vec()] },
            LogRecord::IndexImage { pgno: PageNo(9), cells: vec![b"y".to_vec(), b"z".to_vec()] },
            LogRecord::Migrate {
                pgno: PageNo(6),
                rel: RelId(2),
                worm_file: "hist/6".into(),
                content_hash: [1u8; 32],
            },
            LogRecord::Shredded {
                rel: RelId(1),
                key: b"ssn".to_vec(),
                start_time: Timestamp(5),
                pgno: PageNo(3),
                content_hash: [2u8; 32],
                shred_time: Timestamp(99),
            },
            LogRecord::StartRecovery { time: Timestamp(123) },
            LogRecord::TwoPcPrepare {
                gtxn: 42,
                txn: TxnId(9),
                shard: 1,
                participants: vec![0, 1, 3],
            },
            LogRecord::TwoPcDecision { gtxn: 42, commit: true },
            LogRecord::TwoPcDecision { gtxn: 43, commit: false },
        ]
    }

    #[test]
    fn all_records_roundtrip() {
        for rec in samples() {
            let body = rec.encode_body();
            assert_eq!(LogRecord::decode_body(&body).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn framed_stream_iterates_with_offsets() {
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for rec in samples() {
            offsets.push(buf.len() as u64);
            buf.extend_from_slice(&rec.encode_framed());
        }
        let got: Vec<(u64, LogRecord)> = LogIter::new(&buf).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(got.len(), samples().len());
        for ((off, rec), (want_off, want_rec)) in got.iter().zip(offsets.iter().zip(samples())) {
            assert_eq!(off, want_off);
            assert_eq!(rec, &want_rec);
        }
    }

    #[test]
    fn truncated_and_corrupt_frames_error() {
        let rec = LogRecord::Abort { txn: TxnId(1) };
        let mut framed = rec.encode_framed();
        // Truncation.
        let cut = framed.len() - 2;
        let mut it = LogIter::new(&framed[..cut]);
        assert!(it.next().unwrap().is_err());
        // Checksum flip.
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        let mut it = LogIter::new(&framed);
        assert!(it.next().unwrap().is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(LogRecord::decode_body(&[200]).is_err());
        assert!(LogRecord::decode_body(&[]).is_err());
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(LogIter::new(&[]).next().is_none());
    }
}
