//! Signed per-audit snapshots of the database state on WORM.
//!
//! "The auditor places a complete snapshot of the current database state on
//! WORM after every audit, together with the auditor's digital signature
//! testifying that the snapshot is correct." The snapshot records every
//! non-free page's full cell content (so the next audit can rebuild page
//! states for the hash-page-on-read replay and run fine-grained forensics),
//! plus the commutative incremental hash of the canonical tuple set — the
//! paper's optimization of "storing H(Df ∪ L) on WORM at the end of each
//! audit … and using the stored value instead of computing H(Ds)".
//!
//! The signature is a Lamport one-time signature; each audit derives a fresh
//! keypair from the auditor's master seed, and the per-audit public key is
//! itself stored on WORM (term-immutable, hence a valid anchor under the
//! threat model).

use std::sync::Arc;

use ccdb_common::{ByteReader, ByteWriter, Error, PageNo, RelId, Result, Timestamp};
use ccdb_crypto::{sha256, AddHash, LamportKeyPair, LamportPublicKey, LamportSignature, Sha256};
use ccdb_storage::PageType;
use ccdb_worm::WormServer;

/// One page's state in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapPage {
    /// Page number.
    pub pgno: PageNo,
    /// Owning relation.
    pub rel: RelId,
    /// Page kind.
    pub kind: PageType,
    /// Historical flag.
    pub historical: bool,
    /// Aux field (TSB split time).
    pub aux: u64,
    /// Full cell content in slot order.
    pub cells: Vec<Vec<u8>>,
}

/// A loaded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The audit epoch this snapshot closed.
    pub epoch: u64,
    /// When it was taken (compliance clock).
    pub time: Timestamp,
    /// The stored completeness hash of the canonical tuple set.
    pub tuple_hash: AddHash,
    /// Per-page states.
    pub pages: Vec<SnapPage>,
}

/// WORM name of an epoch's snapshot (generation 0).
pub fn snapshot_name(epoch: u64) -> String {
    gen_name(epoch, 0)
}

/// WORM name of one write *generation* of an epoch's snapshot. A snapshot
/// is three sequentially written WORM files (body, signature, public key);
/// a crash mid-write leaves a partial generation that can never be finished
/// in place — WORM files are append-only and the retry's body differs
/// (recovery changed the state and the clock moved). The retry therefore
/// writes a fresh generation, and only a generation with **all three files
/// sealed** counts as a completed audit.
fn gen_name(epoch: u64, generation: u64) -> String {
    if generation == 0 {
        format!("snapshots/epoch-{epoch}")
    } else {
        format!("snapshots/epoch-{epoch}.r{generation}")
    }
}

fn sealed_nonempty(worm: &WormServer, name: &str) -> bool {
    worm.stat(name).map(|m| m.sealed && m.len > 0).unwrap_or(false)
}

/// The highest generation of `epoch`'s snapshot whose body, `.sig`, and
/// `.pub` files are all sealed, if any.
fn complete_generation(worm: &WormServer, epoch: u64) -> Option<u64> {
    let mut best = None;
    let mut generation = 0u64;
    loop {
        let name = gen_name(epoch, generation);
        if !worm.exists(&name) {
            break;
        }
        if sealed_nonempty(worm, &name)
            && sealed_nonempty(worm, &format!("{name}.sig"))
            && sealed_nonempty(worm, &format!("{name}.pub"))
        {
            best = Some(generation);
        }
        generation += 1;
    }
    best
}

/// Whether `epoch`'s audit completed: some generation of its snapshot is
/// fully written and sealed. `CompliantDb::open` derives the current epoch
/// from this, so a crash while the snapshot is being written (e.g. an
/// injected torn append on the WORM device) re-runs the interrupted audit
/// instead of trusting a half-written snapshot.
pub fn snapshot_complete(worm: &WormServer, epoch: u64) -> bool {
    complete_generation(worm, epoch).is_some()
}

const MAGIC: u32 = 0xCCDB_57A9;

/// Writes and signs snapshots; verifies and loads previous ones.
pub struct SnapshotManager {
    worm: Arc<WormServer>,
    /// The auditor's master seed (per-audit keys derive from it).
    master_seed: [u8; 32],
}

impl SnapshotManager {
    /// Creates a manager bound to the auditor's master seed.
    pub fn new(worm: Arc<WormServer>, master_seed: [u8; 32]) -> SnapshotManager {
        SnapshotManager { worm, master_seed }
    }

    fn keypair(&self, epoch: u64) -> LamportKeyPair {
        let mut h = Sha256::new();
        h.update(&self.master_seed).update(b"ccdb:audit-key").update(&epoch.to_le_bytes());
        LamportKeyPair::from_seed(&h.finalize())
    }

    /// Encodes a snapshot body.
    pub fn encode(
        epoch: u64,
        time: Timestamp,
        tuple_hash: &AddHash,
        pages: &[SnapPage],
    ) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u64(epoch);
        w.put_u64(time.0);
        w.put_bytes(&tuple_hash.to_bytes());
        w.put_u32(pages.len() as u32);
        for p in pages {
            w.put_u64(p.pgno.0);
            w.put_u32(p.rel.0);
            w.put_u8(p.kind as u8);
            w.put_u8(if p.historical { 1 } else { 0 });
            w.put_u64(p.aux);
            w.put_u32(p.cells.len() as u32);
            for c in &p.cells {
                w.put_len_bytes(c);
            }
        }
        w.into_vec()
    }

    /// Decodes a snapshot body.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != MAGIC {
            return Err(Error::corruption("bad snapshot magic"));
        }
        let epoch = r.get_u64()?;
        let time = Timestamp(r.get_u64()?);
        let mut hash_bytes = [0u8; 64];
        hash_bytes.copy_from_slice(r.get_bytes(64)?);
        let tuple_hash = AddHash::from_bytes(&hash_bytes);
        let n = r.get_u32()? as usize;
        let mut pages = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let pgno = PageNo(r.get_u64()?);
            let rel = RelId(r.get_u32()?);
            let kind = match r.get_u8()? {
                0 => PageType::Free,
                1 => PageType::Leaf,
                2 => PageType::Inner,
                3 => PageType::Meta,
                t => return Err(Error::corruption(format!("bad page kind {t} in snapshot"))),
            };
            let historical = r.get_u8()? != 0;
            let aux = r.get_u64()?;
            let cn = r.get_u32()? as usize;
            let mut cells = Vec::with_capacity(cn.min(4096));
            for _ in 0..cn {
                cells.push(r.get_len_bytes()?.to_vec());
            }
            pages.push(SnapPage { pgno, rel, kind, historical, aux, cells });
        }
        if !r.is_exhausted() {
            return Err(Error::corruption("trailing bytes in snapshot"));
        }
        Ok(Snapshot { epoch, time, tuple_hash, pages })
    }

    /// Writes, signs, and seals the snapshot for `epoch`. `retention_until`
    /// bounds how long the WORM copies must be kept (`Timestamp::MAX` for
    /// indefinite; the architecture itself only needs a snapshot until the
    /// audit after next).
    pub fn write_with_retention(
        &self,
        epoch: u64,
        time: Timestamp,
        tuple_hash: &AddHash,
        pages: &[SnapPage],
        retention_until: Timestamp,
    ) -> Result<()> {
        let body = Self::encode(epoch, time, tuple_hash, pages);
        let kp = self.keypair(epoch);
        let sig = kp.sign(&sha256(&body));
        // A crashed earlier attempt leaves partial (never-sealed) files;
        // WORM forbids recreating them, so the retry writes the next free
        // generation. At most one generation ever completes: a completed
        // snapshot ends the audit, and no further attempts run.
        let mut generation = 0u64;
        while self.worm.exists(&gen_name(epoch, generation)) {
            generation += 1;
        }
        let name = gen_name(epoch, generation);
        let sig_bytes = sig.to_bytes();
        let pub_bytes = kp.public_key().to_bytes();
        for (file, bytes) in [
            (name.clone(), body.as_slice()),
            (format!("{name}.sig"), sig_bytes.as_slice()),
            (format!("{name}.pub"), pub_bytes.as_slice()),
        ] {
            let f = self.worm.create(&file, retention_until)?;
            self.worm.append(&f, bytes)?;
            self.worm.seal(&file)?;
        }
        Ok(())
    }

    /// Writes a snapshot with indefinite retention.
    pub fn write(
        &self,
        epoch: u64,
        time: Timestamp,
        tuple_hash: &AddHash,
        pages: &[SnapPage],
    ) -> Result<()> {
        self.write_with_retention(epoch, time, tuple_hash, pages, Timestamp::MAX)
    }

    /// Loads and signature-verifies the snapshot for `epoch` (its highest
    /// complete generation). Returns `Ok(None)` when no snapshot was ever
    /// attempted (the first audit of a database); a partial-only snapshot
    /// (crash mid-write, epoch never completed) is an error.
    pub fn load(&self, epoch: u64) -> Result<Option<Snapshot>> {
        if !self.worm.exists(&gen_name(epoch, 0)) {
            return Ok(None);
        }
        let Some(generation) = complete_generation(&self.worm, epoch) else {
            return Err(Error::corruption(format!(
                "no complete generation of snapshot for epoch {epoch} (crashed mid-write?)"
            )));
        };
        let name = gen_name(epoch, generation);
        let body = self.worm.read_all(&name)?;
        let sig_bytes = self.worm.read_all(&format!("{name}.sig"))?;
        let pub_bytes = self.worm.read_all(&format!("{name}.pub"))?;
        let sig = LamportSignature::from_bytes(&sig_bytes)
            .ok_or_else(|| Error::corruption("malformed snapshot signature"))?;
        let pk = LamportPublicKey::from_bytes(&pub_bytes)
            .ok_or_else(|| Error::corruption("malformed snapshot public key"))?;
        // Defense in depth: the key must also re-derive from the master seed
        // (the verifier is the auditor lineage itself).
        let expect = self.keypair(epoch);
        if expect.public_key().fingerprint() != pk.fingerprint() {
            return Err(Error::corruption("snapshot public key does not match auditor lineage"));
        }
        if !pk.verify(&sha256(&body), &sig) {
            return Err(Error::corruption("snapshot signature verification failed"));
        }
        Ok(Some(Self::decode(&body)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::VirtualClock;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let p = std::env::temp_dir().join(format!(
                "ccdb-snap-{}-{}-{}",
                std::process::id(),
                tag,
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn pages() -> Vec<SnapPage> {
        vec![
            SnapPage {
                pgno: PageNo(1),
                rel: RelId(2),
                kind: PageType::Leaf,
                historical: false,
                aux: 0,
                cells: vec![b"t1".to_vec(), b"t2".to_vec()],
            },
            SnapPage {
                pgno: PageNo(2),
                rel: RelId(2),
                kind: PageType::Inner,
                historical: false,
                aux: 0,
                cells: vec![b"e1".to_vec()],
            },
            SnapPage {
                pgno: PageNo(3),
                rel: RelId(2),
                kind: PageType::Leaf,
                historical: true,
                aux: 99,
                cells: vec![],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut h = AddHash::new();
        h.add(b"x");
        let body = SnapshotManager::encode(7, Timestamp(123), &h, &pages());
        let snap = SnapshotManager::decode(&body).unwrap();
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.time, Timestamp(123));
        assert_eq!(snap.tuple_hash, h);
        assert_eq!(snap.pages, pages());
    }

    #[test]
    fn write_load_verify_roundtrip() {
        let d = TempDir::new("rt");
        let clock = Arc::new(VirtualClock::new());
        let worm = Arc::new(WormServer::open(&d.0, clock).unwrap());
        let mgr = SnapshotManager::new(worm.clone(), [9u8; 32]);
        let h = AddHash::new();
        mgr.write(0, Timestamp(5), &h, &pages()).unwrap();
        let snap = mgr.load(0).unwrap().expect("snapshot exists");
        assert_eq!(snap.pages.len(), 3);
        assert!(mgr.load(1).unwrap().is_none(), "missing epoch loads as None");
    }

    #[test]
    fn wrong_seed_rejected() {
        let d = TempDir::new("seed");
        let clock = Arc::new(VirtualClock::new());
        let worm = Arc::new(WormServer::open(&d.0, clock).unwrap());
        let mgr = SnapshotManager::new(worm.clone(), [1u8; 32]);
        mgr.write(0, Timestamp(5), &AddHash::new(), &pages()).unwrap();
        let other = SnapshotManager::new(worm, [2u8; 32]);
        assert!(other.load(0).is_err(), "a different auditor lineage must not verify");
    }

    #[test]
    fn corrupt_body_rejected() {
        let body = SnapshotManager::encode(0, Timestamp(0), &AddHash::new(), &pages());
        let mut bad = body.clone();
        bad[0] ^= 0xFF;
        assert!(SnapshotManager::decode(&bad).is_err());
        assert!(SnapshotManager::decode(&body[..body.len() - 1]).is_err());
    }
}
