//! Auditable shredding of expired tuples (Section VIII), plus litigation
//! holds (the paper's stated future work: "support for 'litigation holds',
//! which ensure that subpoenaed but expired tuples are not shredded").
//!
//! A version whose start time plus its relation's retention period (from the
//! Expiry relation) has passed may be vacuumed — but only auditable: a
//! `SHREDDED` record (tuple id, PGNO, content hash, shred time) must reach
//! WORM *before* the physical removal, and the auditor later verifies that
//! (a) every `UNDO` it encounters is justified by a prior `ABORT` or
//! `SHREDDED`, (b) every shredded tuple had really expired under the
//! retention policy in force, (c) no shredded tuple was under an active
//! litigation hold, and (d) everything listed as shredded is actually gone
//! by the next audit.
//!
//! After a crash the vacuum may have been interrupted; `revacuum` re-reads
//! the epoch's `SHREDDED` records and finishes the job ("the simplest
//! implementation is just to re-vacuum after recovery").

use std::sync::Arc;

use ccdb_btree::TimeRank;
use ccdb_common::{ByteReader, ByteWriter, Error, Result, Timestamp, TxnId};
use ccdb_crypto::sha256;
use ccdb_engine::Engine;
use ccdb_storage::TupleVersion;

use crate::plugin::CompliancePlugin;
use crate::records::{LogIter, LogRecord};

/// The relation holding litigation holds.
pub const HOLDS_RELATION: &str = "sys.holds";

/// A litigation hold: tuples of `rel_name` whose key starts with
/// `key_prefix` must not be shredded while the hold is active.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hold {
    /// Unique hold identifier (e.g. a docket number).
    pub id: String,
    /// Target relation name.
    pub rel_name: String,
    /// Key prefix covered by the hold.
    pub key_prefix: Vec<u8>,
}

impl Hold {
    /// Encodes the hold's value bytes for the holds relation.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.rel_name);
        w.put_len_bytes(&self.key_prefix);
        w.into_vec()
    }

    /// Decodes a hold from `(key, value)` of the holds relation.
    pub fn decode(id: &[u8], value: &[u8]) -> Result<Hold> {
        let mut r = ByteReader::new(value);
        let rel_name = r.get_str()?;
        let key_prefix = r.get_len_bytes()?.to_vec();
        Ok(Hold {
            id: String::from_utf8(id.to_vec())
                .map_err(|_| Error::corruption("hold id is not UTF-8"))?,
            rel_name,
            key_prefix,
        })
    }

    /// Whether this hold covers `(rel_name, key)`.
    pub fn covers(&self, rel_name: &str, key: &[u8]) -> bool {
        self.rel_name == rel_name && key.starts_with(&self.key_prefix)
    }
}

/// Places a litigation hold (a normal transaction against the holds
/// relation, so the hold itself is version-tracked and auditable).
pub fn place_hold(engine: &Engine, txn: TxnId, hold: &Hold) -> Result<()> {
    let rel =
        engine.rel_id(HOLDS_RELATION).ok_or_else(|| Error::NotFound(HOLDS_RELATION.into()))?;
    engine.write(txn, rel, hold.id.as_bytes(), &hold.encode_value())
}

/// Releases a hold (an end-of-life version in the holds relation).
pub fn release_hold(engine: &Engine, txn: TxnId, hold_id: &str) -> Result<()> {
    let rel =
        engine.rel_id(HOLDS_RELATION).ok_or_else(|| Error::NotFound(HOLDS_RELATION.into()))?;
    engine.delete(txn, rel, hold_id.as_bytes())
}

/// The currently active holds.
pub fn active_holds(engine: &Engine) -> Result<Vec<Hold>> {
    let rel =
        engine.rel_id(HOLDS_RELATION).ok_or_else(|| Error::NotFound(HOLDS_RELATION.into()))?;
    let mut holds = Vec::new();
    engine.range_current(TxnId::NONE, rel, &[], &[0xFF; 64], &mut |k, v| {
        holds.push(Hold::decode(k, v)?);
        Ok(())
    })?;
    Ok(holds)
}

/// Outcome of a vacuum pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VacuumReport {
    /// Versions shredded.
    pub shredded: usize,
    /// Versions spared by an active litigation hold.
    pub held: usize,
    /// Versions re-shredded by a post-recovery `revacuum`.
    pub revacuumed: usize,
}

/// The auditable vacuum process.
pub struct Vacuum;

impl Vacuum {
    /// Shreds every expired version of every user relation. Requires a
    /// quiescent engine (no active transactions).
    pub fn run(
        engine: &Engine,
        plugin: &Arc<CompliancePlugin>,
        now: Timestamp,
    ) -> Result<VacuumReport> {
        if engine.has_active_txns() {
            return Err(Error::Invalid("vacuum requires a quiescent engine".into()));
        }
        // Checkpoint first: versions to be vacuumed must be behind the WAL
        // redo horizon, or recovery would resurrect them.
        engine.checkpoint()?;
        let holds = active_holds(engine)?;
        let mut report = VacuumReport::default();
        for (name, rel) in engine.user_relations() {
            let Some(retention) = engine.retention(&name)? else { continue };
            let tree = engine.tree(rel)?;
            // Collect expired versions from the live tree…
            let mut expired: Vec<TupleVersion> = Vec::new();
            tree.scan_all(&mut |t| {
                if let Some(ct) = t.time.committed() {
                    if ct.saturating_add(retention) <= now {
                        expired.push(t.clone());
                    }
                }
                Ok(())
            })?;
            // …and from on-disk historical pages.
            let mut hist_expired: Vec<(ccdb_common::PageNo, TupleVersion)> = Vec::new();
            for pgno in tree.historical_pages() {
                let frame = engine.pool().fetch(pgno)?;
                let page = frame.read();
                for cell in page.cells() {
                    let t = TupleVersion::decode_cell(cell)?;
                    if let Some(ct) = t.time.committed() {
                        if ct.saturating_add(retention) <= now {
                            hist_expired.push((pgno, t));
                        }
                    }
                }
            }
            // SHREDDED records go to WORM before any removal.
            let mut doomed_live = Vec::new();
            for t in expired {
                if holds.iter().any(|h| h.covers(&name, &t.key)) {
                    report.held += 1;
                    continue;
                }
                let ct = t.time.committed().expect("filtered to committed");
                // The live tree does not expose per-version page numbers
                // cheaply; the SHREDDED record's PGNO field is advisory for
                // forensics, so record the invalid sentinel for live-tree
                // versions (the auditor identifies versions by
                // (rel, key, start_time)).
                plugin.logger().append(&LogRecord::Shredded {
                    rel,
                    key: t.key.clone(),
                    start_time: ct,
                    pgno: ccdb_common::PageNo::INVALID,
                    content_hash: sha256(&t.canonical_bytes()),
                    shred_time: now,
                })?;
                doomed_live.push(t);
            }
            let mut doomed_hist = Vec::new();
            for (pgno, t) in hist_expired {
                if holds.iter().any(|h| h.covers(&name, &t.key)) {
                    report.held += 1;
                    continue;
                }
                let ct = t.time.committed().expect("filtered to committed");
                plugin.logger().append(&LogRecord::Shredded {
                    rel,
                    key: t.key.clone(),
                    start_time: ct,
                    pgno,
                    content_hash: sha256(&t.canonical_bytes()),
                    shred_time: now,
                })?;
                doomed_hist.push((pgno, t));
            }
            plugin.logger().flush()?;
            // Physical removal (WAL-logged; the plugin will see the
            // removals as UNDO records when the pages are written out).
            for t in doomed_live {
                let rank = TimeRank::from(t.time);
                tree.remove_version(&t.key, rank)?;
                report.shredded += 1;
            }
            for (pgno, t) in doomed_hist {
                let ct = t.time.committed().expect("committed");
                engine.remove_version_from_page(pgno, &t.key, ct)?;
                report.shredded += 1;
            }
        }
        // Vacuumed state becomes the new redo baseline.
        engine.checkpoint()?;
        Ok(report)
    }

    /// Post-recovery pass: finishes any shred listed on `L` whose version is
    /// still present in the database.
    pub fn revacuum(
        engine: &Engine,
        plugin: &Arc<CompliancePlugin>,
        epoch_log_bytes: &[u8],
    ) -> Result<VacuumReport> {
        let mut report = VacuumReport::default();
        for item in LogIter::new(epoch_log_bytes) {
            let (_off, rec) = item?;
            let LogRecord::Shredded { rel, key, start_time, .. } = rec else { continue };
            let tree = engine.tree(rel)?;
            let rank = TimeRank::committed(start_time);
            if tree.remove_version(&key, rank)?.is_some() {
                report.revacuumed += 1;
                continue;
            }
            for pgno in tree.historical_pages() {
                if engine.remove_version_from_page(pgno, &key, start_time)?.is_some() {
                    report.revacuumed += 1;
                    break;
                }
            }
        }
        if report.revacuumed > 0 {
            plugin.logger().flush()?;
            engine.checkpoint()?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_roundtrip_and_coverage() {
        let h = Hold {
            id: "docket-17".into(),
            rel_name: "orders".into(),
            key_prefix: b"cust-4".to_vec(),
        };
        let back = Hold::decode(b"docket-17", &h.encode_value()).unwrap();
        assert_eq!(back, h);
        assert!(h.covers("orders", b"cust-42"));
        assert!(!h.covers("orders", b"cust-5"));
        assert!(!h.covers("stock", b"cust-42"));
    }

    #[test]
    fn empty_prefix_covers_whole_relation() {
        let h = Hold { id: "all".into(), rel_name: "orders".into(), key_prefix: vec![] };
        assert!(h.covers("orders", b"anything"));
        assert!(!h.covers("other", b"anything"));
    }
}
