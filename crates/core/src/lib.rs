//! **The log-consistent compliant database architecture** — the paper's
//! primary contribution.
//!
//! The pieces, mapped to the paper's sections:
//!
//! | Module | Paper | Role |
//! |---|---|---|
//! | [`records`] | §IV–V, §VIII | The compliance-log record set (`NEW_TUPLE`, `STAMP_TRANS`, `ABORT`, `UNDO`, `READ`, `PAGE_SPLIT`, `MIGRATE`, `SHREDDED`, `START_RECOVERY`, heartbeats) and its byte framing |
//! | [`logger`] | §IV | The compliance logger: append/flush to the log `L` on WORM, the auxiliary stamp-index file, witness files, heartbeat records |
//! | [`plugin`] | §IV–V | The pread/pwrite plugin: page diffing against a pristine-copy cache (`NEW_TUPLE`/`UNDO`), hash-page-on-read (`READ` records), structure-modification logging, transaction lifecycle records |
//! | [`snapshot`] | §IV | Signed per-audit snapshots of the database state on WORM |
//! | [`audit`] | §IV–VI, §VIII | The auditor: single-pass tuple-completeness check via the commutative incremental hash, regret-gap and record-conflict checks, page replay for read verification, split/migration verification, shred verification, physical integrity checks |
//! | [`shred`] | §VIII | Auditable vacuuming of expired tuples, plus **litigation holds** (the paper's future work) |
//! | [`migrate`] | §VI | WORM migration of time-split historical pages |
//! | [`db`] | — | The [`db::CompliantDb`] facade wiring engine + plugin + WORM together in the three modes of Figure 3 (regular / log-consistent / +hash-on-read) |
//!
//! The threat-model parameters — the **regret interval** and the **query
//! verification interval** — appear as [`db::ComplianceConfig`] fields and as
//! audit checks respectively.

pub mod audit;
pub mod db;
pub mod logger;
pub mod migrate;
pub mod plugin;
pub mod proof;
pub mod records;
pub mod shard;
pub mod shred;
pub mod snapshot;
pub mod tenant;

pub use audit::stream::{StreamAuditor, StreamStats, TamperAlert};
pub use audit::{
    audit_ckpt_name, AuditConfig, AuditOutcome, AuditReport, AuditStats, Auditor, TupleFinding,
    Violation, DEFAULT_L_CHUNK_RECORDS,
};
pub use db::{ComplianceConfig, CompliantDb, Mode, VerificationTicket};
pub use logger::ComplianceLogger;
pub use plugin::CompliancePlugin;
pub use proof::{epoch_head_name, EpochHeadManager, ProvenRead, SignedHead};
pub use records::LogRecord;
pub use shard::{DeploymentAudit, DistTxn, ShardMap, ShardedDb};
pub use shred::{Hold, Vacuum};
pub use snapshot::SnapshotManager;
pub use tenant::TenantRegistry;
