//! [`CompliantDb`]: the assembled term-immutable DBMS.
//!
//! Wires together the engine, the compliance plugin, the WORM server, the
//! WAL-tail mirror, and the audit lifecycle, in the three configurations
//! Figure 3 compares:
//!
//! * [`Mode::Regular`] — the engine alone (the "Regular TPC-C" baseline);
//! * [`Mode::LogConsistent`] — the base architecture: compliance log `L`,
//!   WORM WAL tail, snapshots, witness files;
//! * [`Mode::HashOnRead`] — plus the Section V refinement: every page read
//!   from disk is hashed and logged, closing the state-reversion attack and
//!   making the query verification interval "until the next audit".

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::sync::Mutex;
use ccdb_common::{ClockRef, Duration, Error, RelId, Result, Timestamp, TxnId};
use ccdb_engine::{Engine, EngineConfig};
use ccdb_worm::WormServer;

use crate::audit::stream::StreamAuditor;
use crate::audit::{AuditConfig, AuditReport, Auditor};
use crate::logger::ComplianceLogger;
use crate::migrate::{self, MigrationReport};
use crate::plugin::CompliancePlugin;
use crate::proof::{self, EpochHeadManager, ProvenRead, SignedHead};
use crate::shred::{self, Hold, Vacuum, VacuumReport, HOLDS_RELATION};
use crate::snapshot::SnapshotManager;

/// Which architecture variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No compliance machinery (the baseline).
    Regular,
    /// The log-consistent architecture.
    LogConsistent,
    /// Log-consistent plus hash-page-on-read.
    HashOnRead,
}

/// Configuration for a compliant database.
#[derive(Clone, Debug)]
pub struct ComplianceConfig {
    /// Architecture variant.
    pub mode: Mode,
    /// The regret interval (threat-model parameter; "for financial records
    /// under SOX compliance, we can assume an interval of, say, 5 minutes").
    pub regret_interval: Duration,
    /// Buffer-pool capacity in pages.
    pub cache_pages: usize,
    /// The auditor's master seed (snapshot signing lineage).
    pub auditor_seed: [u8; 32],
    /// Whether the WAL fsyncs on flush (benchmarks disable).
    pub fsync: bool,
    /// Retention horizon stamped on WORM compliance artifacts (epoch logs,
    /// witnesses, snapshots, WAL tails). `None` = indefinite. The
    /// architecture only *needs* artifacts to survive until the audit after
    /// next — "each snapshot can expire and be deleted from WORM once the
    /// next snapshot is in place" — so a horizon of a few audit periods
    /// keeps WORM usage bounded.
    pub worm_artifact_retention: Option<Duration>,
    /// Run audits with the serial single-pass oracle instead of the
    /// parallel pipeline (the two are verdict-identical; the oracle exists
    /// for differential testing and as the paper's literal algorithm).
    pub audit_serial: bool,
    /// Worker threads for the parallel audit pipeline (0 = auto).
    pub audit_threads: usize,
    /// Records per decode chunk in the parallel audit's `L` scan.
    pub audit_l_chunk_records: usize,
}

impl Default for ComplianceConfig {
    fn default() -> Self {
        ComplianceConfig {
            mode: Mode::HashOnRead,
            regret_interval: Duration::from_mins(5),
            cache_pages: 1024,
            auditor_seed: [0x42; 32],
            fsync: true,
            worm_artifact_retention: None,
            audit_serial: false,
            audit_threads: 0,
            audit_l_chunk_records: crate::audit::DEFAULT_L_CHUNK_RECORDS,
        }
    }
}

pub use crate::logger::waltail_name;

/// A claim ticket for the query-verification interval: a read performed in
/// epoch `E` is verified once epoch `E`'s audit passes (i.e. the database
/// has advanced past it with a clean report).
#[derive(Clone, Copy, Debug)]
pub struct VerificationTicket {
    epoch: u64,
    mode: Mode,
}

impl VerificationTicket {
    /// The epoch the read executed in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the read is now verified: its epoch has been audited cleanly
    /// and the database runs hash-page-on-read (the base architecture gives
    /// an infinite query-verification interval).
    pub fn is_verified(&self, db: &CompliantDb) -> bool {
        self.mode == Mode::HashOnRead && db.epoch() > self.epoch
    }
}

/// The assembled compliant DBMS.
pub struct CompliantDb {
    dir: PathBuf,
    clock: ClockRef,
    config: ComplianceConfig,
    worm: Arc<WormServer>,
    engine: Engine,
    plugin: Option<Arc<CompliancePlugin>>,
    epoch: Mutex<u64>,
    last_tick_interval: Mutex<u64>,
}

impl CompliantDb {
    /// Opens (or creates) a compliant database under `dir`. Layout:
    /// `dir/engine` holds the conventional-media files the adversary can
    /// edit; `dir/worm` is the WORM volume.
    pub fn open(
        dir: impl AsRef<Path>,
        clock: ClockRef,
        config: ComplianceConfig,
    ) -> Result<CompliantDb> {
        let dir = dir.as_ref().to_path_buf();
        let worm = Arc::new(WormServer::open(dir.join("worm"), clock.clone())?);
        Self::open_with_worm(dir, clock, config, worm)
    }

    /// Opens a compliant database whose conventional-media files live under
    /// `dir/engine` but whose compliance artifacts go to the caller-supplied
    /// WORM server — typically a [`WormServer::namespace`] view of a volume
    /// shared by many tenants, so one physically-WORM device (one sequence
    /// number space, one metadata journal) serves the whole deployment while
    /// each tenant's logs, witnesses, and snapshots stay under its own
    /// prefix.
    pub fn open_with_worm(
        dir: impl AsRef<Path>,
        clock: ClockRef,
        config: ComplianceConfig,
        worm: Arc<WormServer>,
    ) -> Result<CompliantDb> {
        let dir = dir.as_ref().to_path_buf();
        // Current epoch = number of *completed* audits: epochs whose
        // snapshot (body + signature + public key) is fully written and
        // sealed. A crash while the snapshot was being written leaves a
        // partial generation; that epoch's audit never finished, so the
        // reopened database stays in it and re-audits.
        let epoch = {
            let mut e = 0u64;
            while crate::snapshot::snapshot_complete(&worm, e) {
                e += 1;
            }
            e
        };
        let mut ecfg = EngineConfig::new(dir.join("engine"), config.cache_pages);
        ecfg.fsync = config.fsync;
        let (engine, plugin) = match config.mode {
            Mode::Regular => (Engine::open(ecfg, clock.clone())?, None),
            _ => {
                let logger = Arc::new(ComplianceLogger::open(
                    worm.clone(),
                    clock.clone(),
                    config.regret_interval,
                    epoch,
                )?);
                if let Some(d) = config.worm_artifact_retention {
                    logger.set_artifact_retention(d);
                }
                let disk = Engine::open_disk(&ecfg)?;
                let plugin = CompliancePlugin::new(
                    disk.clone(),
                    logger,
                    clock.clone(),
                    config.mode == Mode::HashOnRead,
                );
                let engine = Engine::open_with_store(
                    ecfg,
                    clock.clone(),
                    disk,
                    plugin.clone(),
                    Some(plugin.clone()),
                    Some(plugin.clone()),
                )?;
                // Keep the WAL tail on WORM for the current epoch.
                let tail_name = waltail_name(epoch);
                if !worm.exists(&tail_name) {
                    worm.create(&tail_name, Timestamp::MAX)?;
                }
                let tail = worm.handle(&tail_name)?;
                let worm_for_tail = worm.clone();
                engine.wal().set_tail_mirror(Arc::new(move |_lsn, bytes: &[u8]| {
                    worm_for_tail
                        .append(&tail, bytes)
                        .map_err(|e| Error::ComplianceHalt(format!("WAL tail mirror: {e}")))
                }));
                // Unfinished shreds from a crash are completed now.
                if engine.recovery_report().map(|r| r.was_unclean).unwrap_or(false) {
                    let log_bytes =
                        worm.read_all(&crate::logger::epoch_log_name(epoch)).unwrap_or_default();
                    Vacuum::revacuum(&engine, &plugin, &log_bytes)?;
                }
                (engine, Some(plugin))
            }
        };
        let db = CompliantDb {
            dir,
            clock,
            config,
            worm,
            engine,
            plugin,
            epoch: Mutex::new(epoch),
            last_tick_interval: Mutex::new(u64::MAX),
        };
        if db.engine.rel_id(HOLDS_RELATION).is_none() {
            db.engine.create_relation(HOLDS_RELATION, SplitPolicy::KeyOnly)?;
        }
        db.tick()?; // witness + heartbeat for the startup interval
        Ok(db)
    }

    /// The underlying engine (full transactional API).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The WORM server.
    pub fn worm(&self) -> &Arc<WormServer> {
        &self.worm
    }

    /// The compliance plugin (None in [`Mode::Regular`]).
    pub fn plugin(&self) -> Option<&Arc<CompliancePlugin>> {
        self.plugin.as_ref()
    }

    /// The running mode.
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// The current audit epoch.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    // --- transactional passthroughs -------------------------------------

    /// Creates a relation.
    pub fn create_relation(&self, name: &str, policy: SplitPolicy) -> Result<RelId> {
        self.engine.create_relation(name, policy)
    }

    /// Begins a transaction.
    pub fn begin(&self) -> Result<TxnId> {
        self.engine.begin()
    }

    /// Writes a tuple version.
    pub fn write(&self, txn: TxnId, rel: RelId, key: &[u8], value: &[u8]) -> Result<()> {
        self.engine.write(txn, rel, key, value)
    }

    /// Deletes a tuple (end-of-life version).
    pub fn delete(&self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<()> {
        self.engine.delete(txn, rel, key)
    }

    /// Reads the current value.
    pub fn read(&self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.engine.read(txn, rel, key)
    }

    /// Reads the current value and returns a [`VerificationTicket`] — the
    /// paper's **query verification interval** made concrete: the read is
    /// *verified* (guaranteed to have seen untampered pages) once the audit
    /// for the epoch it ran in has passed cleanly. Only meaningful under
    /// [`Mode::HashOnRead`]; under the base architecture the interval is
    /// infinite and the ticket never verifies.
    pub fn read_verifiable(
        &self,
        txn: TxnId,
        rel: RelId,
        key: &[u8],
    ) -> Result<(Option<Vec<u8>>, VerificationTicket)> {
        let value = self.engine.read(txn, rel, key)?;
        Ok((value, VerificationTicket { epoch: *self.epoch.lock(), mode: self.config.mode }))
    }

    /// Commits, then performs regret-interval housekeeping if due.
    pub fn commit(&self, txn: TxnId) -> Result<Timestamp> {
        let t = self.engine.commit(txn)?;
        self.tick()?;
        Ok(t)
    }

    /// Aborts.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.engine.abort(txn)?;
        self.tick()
    }

    // --- cross-shard 2PC participant surface ------------------------------

    /// Prepares `txn` as a participant in a cross-shard 2PC transaction:
    /// durably records the prepared state in the WAL, after which the
    /// transaction may no longer write and survives a crash as in-doubt.
    /// The coordinator follows up with a `2PC_PREPARE` record on `L`
    /// ([`CompliantDb::log_2pc`]), a `2PC_DECISION` on every participant,
    /// and finally the local [`CompliantDb::commit`] / [`CompliantDb::abort`].
    pub fn prepare(&self, txn: TxnId) -> Result<()> {
        self.engine.prepare(txn)
    }

    /// Appends (and flushes) a 2PC coordination record to this database's
    /// compliance log, returning its offset. The records are part of the
    /// audited history: the auditor enforces that every prepare has a
    /// matching decision that agrees with the participant's actual outcome.
    pub fn log_2pc(&self, rec: &crate::records::LogRecord) -> Result<u64> {
        let plugin = self
            .plugin
            .as_ref()
            .ok_or_else(|| Error::Invalid("2PC records require a compliance mode".into()))?;
        plugin.logger().append_flush(rec)
    }

    /// Transactions prepared for 2PC but undecided — populated by crash
    /// recovery, drained by the coordinator's resolution pass.
    pub fn indoubt_txns(&self) -> Vec<TxnId> {
        self.engine.indoubt_txns()
    }

    /// Temporal read, including WORM-migrated history.
    pub fn read_as_of(&self, rel: RelId, key: &[u8], t: Timestamp) -> Result<Option<Vec<u8>>> {
        // Conventional media + on-disk historical pages first.
        if let Some(val) = self.engine.read_as_of(rel, key, t)? {
            return Ok(Some(val));
        }
        // Fall back to WORM-migrated pages: collect candidate versions.
        let mut best: Option<(Timestamp, bool, Vec<u8>)> = None;
        for (name, _) in self.worm.list(&format!("hist/rel{}-", rel.0)) {
            if self.worm.exists(&crate::migrate::retired_marker_name(&name)) {
                continue; // re-migrated back to conventional media
            }
            let bytes = self.worm.read_all(&name)?;
            let mp = crate::migrate::MigratedPage::decode(&bytes)?;
            for cell in &mp.cells {
                let v = ccdb_storage::TupleVersion::decode_cell(cell)?;
                if v.key != key {
                    continue;
                }
                if let Some(ct) = v.time.committed() {
                    if ct <= t && best.as_ref().map(|(bt, _, _)| ct > *bt).unwrap_or(true) {
                        best = Some((ct, v.end_of_life, v.value.clone()));
                    }
                }
            }
        }
        // The engine answer (None) may have been "deleted as of t" or
        // "no version ≤ t on conventional media"; a *newer* conventional
        // version bounds what WORM history may answer. For simplicity the
        // migrated answer is used only when it is the latest version ≤ t
        // overall, which holds because migration only moves versions older
        // than everything live.
        Ok(best.and_then(|(_, eol, val)| if eol { None } else { Some(val) }))
    }

    /// The complete version history of `(rel, key)` — live tree, on-disk
    /// historical pages, and WORM-migrated pages — in commit-time order.
    /// Pending versions are resolved where the engine knows the commit time.
    pub fn version_history(
        &self,
        rel: RelId,
        key: &[u8],
    ) -> Result<Vec<(Timestamp, bool, Vec<u8>)>> {
        let mut out: Vec<(Timestamp, bool, Vec<u8>)> = Vec::new();
        let tree = self.engine.tree(rel)?;
        for v in tree.versions(key)? {
            if let Some(ct) = v.time.committed() {
                out.push((ct, v.end_of_life, v.value));
            }
        }
        for v in self.engine.historical_versions(rel, key)? {
            if let Some(ct) = v.time.committed() {
                out.push((ct, v.end_of_life, v.value));
            }
        }
        for (name, _) in self.worm.list(&format!("hist/rel{}-", rel.0)) {
            if self.worm.exists(&crate::migrate::retired_marker_name(&name)) {
                continue; // re-migrated back to conventional media
            }
            let bytes = self.worm.read_all(&name)?;
            let mp = crate::migrate::MigratedPage::decode(&bytes)?;
            for cell in &mp.cells {
                let v = ccdb_storage::TupleVersion::decode_cell(cell)?;
                if v.key == key {
                    if let Some(ct) = v.time.committed() {
                        out.push((ct, v.end_of_life, v.value));
                    }
                }
            }
        }
        out.sort();
        // Time splits duplicate the then-current version as an intermediate;
        // collapse exact duplicates and same-time copies.
        out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1 && a.2 == b.2);
        Ok(out)
    }

    // --- retention / holds -------------------------------------------------

    /// Sets a relation's retention period (a write to the Expiry relation).
    pub fn set_retention(&self, txn: TxnId, rel_name: &str, period: Duration) -> Result<()> {
        self.engine.set_retention(txn, rel_name, period)
    }

    /// Places a litigation hold.
    pub fn place_hold(&self, txn: TxnId, hold: &Hold) -> Result<()> {
        shred::place_hold(&self.engine, txn, hold)
    }

    /// Releases a litigation hold.
    pub fn release_hold(&self, txn: TxnId, hold_id: &str) -> Result<()> {
        shred::release_hold(&self.engine, txn, hold_id)
    }

    /// The currently active holds.
    pub fn active_holds(&self) -> Result<Vec<Hold>> {
        shred::active_holds(&self.engine)
    }

    // --- compliance lifecycle ------------------------------------------------

    /// Regret-interval housekeeping: once per interval, flushes every page
    /// dirtied in earlier intervals (pushing their `NEW_TUPLE` records to
    /// WORM), creates the witness file, and emits a heartbeat if needed.
    pub fn tick(&self) -> Result<()> {
        let Some(plugin) = &self.plugin else { return Ok(()) };
        let r = self.config.regret_interval.0;
        if r == 0 {
            return Ok(());
        }
        let now = self.clock.now();
        let interval = now.0 / r;
        {
            let mut last = self.last_tick_interval.lock();
            if *last == interval {
                return Ok(());
            }
            *last = interval;
        }
        let interval_start = Timestamp(interval * r);
        self.engine.flush_dirtied_before(interval_start)?;
        plugin.tick()
    }

    /// Runs the auditable vacuum (shreds expired tuples).
    pub fn vacuum(&self) -> Result<VacuumReport> {
        let plugin = self
            .plugin
            .as_ref()
            .ok_or_else(|| Error::Invalid("vacuum requires a compliance mode".into()))?;
        Vacuum::run(&self.engine, plugin, self.clock.now())
    }

    /// Re-migrates WORM pages that contain *expired* tuples back to
    /// conventional media so the next [`CompliantDb::vacuum`] can shred them
    /// — Section VIII: "many expired tuples may reside on WORM and their
    /// pages must be migrated back to regular media for shredding". Returns
    /// the number of pages re-migrated.
    pub fn remigrate_expired(&self) -> Result<usize> {
        let now = self.clock.now();
        let mut remigrated = 0;
        for (name, rel) in self.engine.user_relations() {
            let Some(rho) = self.engine.retention(&name)? else { continue };
            for (worm_name, _) in self.worm.list(&format!("hist/rel{}-", rel.0)) {
                if self.worm.exists(&crate::migrate::retired_marker_name(&worm_name)) {
                    continue;
                }
                let bytes = self.worm.read_all(&worm_name)?;
                let mp = crate::migrate::MigratedPage::decode(&bytes)?;
                let has_expired = mp.cells.iter().any(|c| {
                    ccdb_storage::TupleVersion::decode_cell(c)
                        .ok()
                        .and_then(|t| t.time.committed())
                        .map(|ct| ct.saturating_add(rho) <= now)
                        .unwrap_or(false)
                });
                if has_expired {
                    migrate::remigrate_page(&self.engine, &self.worm, rel, &worm_name)?;
                    remigrated += 1;
                }
            }
        }
        Ok(remigrated)
    }

    /// Migrates a relation's historical (time-split) pages to WORM.
    pub fn migrate_to_worm(&self, rel: RelId) -> Result<MigrationReport> {
        let plugin = self
            .plugin
            .as_ref()
            .ok_or_else(|| Error::Invalid("migration requires a compliance mode".into()))?;
        migrate::migrate_relation(&self.engine, plugin, &self.worm, rel)
    }

    /// The audit configuration this database runs with (regret interval and
    /// read-verification follow the compliance mode; the serial/threads/
    /// chunk knobs follow [`ComplianceConfig`]).
    pub fn audit_config(&self) -> AuditConfig {
        AuditConfig {
            regret_interval: self.config.regret_interval,
            verify_reads: self.config.mode == Mode::HashOnRead,
            serial: self.config.audit_serial,
            audit_threads: self.config.audit_threads,
            l_chunk_records: self.config.audit_l_chunk_records,
            ..AuditConfig::default()
        }
    }

    /// Runs an audit **dry run** under an explicit [`AuditConfig`] without
    /// advancing the epoch or writing a snapshot: the differential suites
    /// and the audit bench use this to run the serial oracle and the
    /// parallel pipeline over the *same* quiesced state and compare
    /// outcomes. The deployment's regret interval and read-verification
    /// mode always override the caller's (they are properties of the
    /// database, not of the audit strategy).
    pub fn audit_outcome_with(&self, config: AuditConfig) -> Result<crate::audit::AuditOutcome> {
        let plugin = self
            .plugin
            .as_ref()
            .ok_or_else(|| Error::Invalid("audit requires a compliance mode".into()))?;
        self.engine.quiesce()?;
        plugin.logger().flush()?;
        plugin.tick()?;
        let epoch = *self.epoch.lock();
        let auditor = Auditor::new(
            self.worm.clone(),
            self.config.auditor_seed,
            AuditConfig {
                regret_interval: self.config.regret_interval,
                verify_reads: self.config.mode == Mode::HashOnRead,
                ..config
            },
        );
        // The auditor's own relation reads (holds, retention) are trusted
        // self-reads: suppress READ-record emission so the dry-run leaves
        // `L` exactly as it found it.
        plugin.begin_trusted_reads();
        let out = auditor.audit(&self.engine, epoch);
        plugin.end_trusted_reads();
        out
    }

    /// Runs a compliance audit. On a clean report: writes and signs the new
    /// snapshot, seals the epoch's log files, and opens the next epoch.
    pub fn audit(&self) -> Result<AuditReport> {
        let plugin = self
            .plugin
            .as_ref()
            .ok_or_else(|| Error::Invalid("audit requires a compliance mode".into()))?;
        // Quiesce: drain transactions/stampers, flush all pages and records.
        self.engine.quiesce()?;
        plugin.logger().flush()?;
        plugin.tick()?;
        let epoch = *self.epoch.lock();
        let auditor =
            Auditor::new(self.worm.clone(), self.config.auditor_seed, self.audit_config());
        plugin.begin_trusted_reads();
        let outcome = auditor.audit(&self.engine, epoch);
        plugin.end_trusted_reads();
        let outcome = outcome?;
        if outcome.report.is_clean() {
            let retention_until = match self.config.worm_artifact_retention {
                Some(d) => self.clock.now().saturating_add(d),
                None => Timestamp::MAX,
            };
            auditor.snapshots().write_with_retention(
                epoch,
                self.clock.now(),
                &outcome.tuple_hash,
                &outcome.snapshot_pages,
                retention_until,
            )?;
            // Seal the replay checkpoint: the next audit can skip
            // re-folding this (now attested) snapshot prefix of the
            // completeness universe.
            auditor.write_checkpoint(
                epoch,
                &outcome.tuple_hash,
                outcome.report.stats.tuples_final,
                retention_until,
            )?;
            // Materialize the signed epoch head for client-verifiable
            // reads. Idempotent and derived from the just-sealed snapshot,
            // so a crash here only means lazy materialization later.
            EpochHeadManager::new(self.worm.clone(), self.config.auditor_seed).ensure(
                auditor.snapshots(),
                epoch,
                retention_until,
            )?;
            plugin.logger().advance_epoch(epoch + 1)?;
            // Rotate the WAL-tail mirror.
            let tail_name = waltail_name(epoch + 1);
            if !self.worm.exists(&tail_name) {
                self.worm.create(&tail_name, retention_until)?;
            }
            let tail = self.worm.handle(&tail_name)?;
            let worm_for_tail = self.worm.clone();
            self.engine.wal().set_tail_mirror(Arc::new(move |_lsn, bytes: &[u8]| {
                worm_for_tail
                    .append(&tail, bytes)
                    .map_err(|e| Error::ComplianceHalt(format!("WAL tail mirror: {e}")))
            }));
            *self.epoch.lock() = epoch + 1;
            // The new epoch needs its own witness/heartbeat for the current
            // interval; reset the tick guard so the next tick reruns.
            *self.last_tick_interval.lock() = u64::MAX;
            self.tick()?;
        }
        Ok(outcome.report)
    }

    /// Attaches a [`StreamAuditor`] tailing this database's current epoch
    /// with the deployment's audit configuration. The stream polls the
    /// WORM log independently of transaction processing; the server runs
    /// one per tenant in its audit daemon.
    pub fn stream_auditor(&self) -> Result<StreamAuditor> {
        self.stream_auditor_with(self.audit_config())
    }

    /// Like [`CompliantDb::stream_auditor`] with an explicit
    /// [`AuditConfig`] (the differential and checkpoint-accounting suites
    /// toggle [`AuditConfig::with_checkpoints`]). As in
    /// [`CompliantDb::audit_outcome_with`], the deployment's regret
    /// interval and read-verification mode override the caller's.
    pub fn stream_auditor_with(&self, config: AuditConfig) -> Result<StreamAuditor> {
        if self.plugin.is_none() {
            return Err(Error::Invalid("streaming audit requires a compliance mode".into()));
        }
        let auditor = Auditor::new(
            self.worm.clone(),
            self.config.auditor_seed,
            AuditConfig {
                regret_interval: self.config.regret_interval,
                verify_reads: self.config.mode == Mode::HashOnRead,
                ..config
            },
        );
        Ok(StreamAuditor::attach(auditor, *self.epoch.lock()))
    }

    /// A **client-verifiable read** against the last *sealed* epoch: the
    /// latest committed version of `(rel, key)` in the attested snapshot,
    /// plus a Merkle inclusion proof and the Lamport-signed epoch head.
    /// A thin client checks the bundle with `ccdb-verifier` alone — no
    /// trust in this server required beyond pinning the auditor lineage's
    /// per-epoch key fingerprint.
    ///
    /// Returns the signed head and `Some(ProvenRead)` when the key has a
    /// committed version in the sealed epoch, `None` when it does not
    /// (absence carries no proof: the snapshot tree proves membership
    /// only). Errors with [`Error::NotFound`] before the first audit seals
    /// an epoch.
    pub fn read_proof(&self, rel: RelId, key: &[u8]) -> Result<(SignedHead, Option<ProvenRead>)> {
        if self.plugin.is_none() {
            return Err(Error::Invalid("proof-carrying reads require a compliance mode".into()));
        }
        let epoch = *self.epoch.lock();
        let Some(sealed) = epoch.checked_sub(1) else {
            return Err(Error::NotFound(
                "no sealed epoch yet; proof-carrying reads need one clean audit".into(),
            ));
        };
        let snapshots = SnapshotManager::new(self.worm.clone(), self.config.auditor_seed);
        let snap = snapshots.load(sealed)?.ok_or_else(|| {
            Error::NotFound(format!("snapshot for sealed epoch {sealed} is missing"))
        })?;
        let retention_until = match self.config.worm_artifact_retention {
            Some(d) => self.clock.now().saturating_add(d),
            None => Timestamp::MAX,
        };
        // Lazy head materialization covers epochs sealed before this
        // feature existed (and crash windows between snapshot and head).
        let head = EpochHeadManager::new(self.worm.clone(), self.config.auditor_seed).ensure(
            &snapshots,
            sealed,
            retention_until,
        )?;
        let proven = proof::build_read_proof(&snap, rel, key)?;
        Ok((head, proven))
    }

    /// Simulates a crash and reopens (running recovery under the compliance
    /// protocol). Consumes the handle; returns the recovered database.
    pub fn crash_and_recover(self) -> Result<CompliantDb> {
        self.engine.crash();
        if let Some(p) = &self.plugin {
            p.logger().simulate_crash_drop_pending();
        }
        let CompliantDb { dir, clock, config, worm, engine, plugin, .. } = self;
        drop(engine);
        drop(plugin);
        drop(worm);
        CompliantDb::open(dir, clock, config)
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sets an artificial per-I/O latency on the database disk (benchmark
    /// knob emulating the paper's NFS-mounted storage server).
    pub fn set_io_latency_us(&self, us: u64) {
        self.engine.disk().set_io_latency_us(us);
    }

    /// Selects how the emulated I/O latency is served: `true` parks the
    /// thread (latency *overlaps* across concurrent readers, like a real
    /// remote volume — what the parallel audit exploits), `false` spins
    /// (burns the core; the conservative default for single-threaded
    /// benches).
    pub fn set_io_latency_sleep(&self, sleep: bool) {
        self.engine.disk().set_io_latency_sleep(sleep);
    }

    /// Arms (or clears) a deterministic fault injector across every I/O
    /// surface at once: the data-page disk manager, the WAL appender, and
    /// the WORM append path. The torture harness uses this to drive a
    /// seeded workload into a planned crash/torn-write/transient fault and
    /// then verify recovery and audit behavior. Injectors are per-instance
    /// and never persisted: a reopened database starts unarmed.
    pub fn set_fault_injector(&self, inj: Option<Arc<ccdb_storage::FaultInjector>>) {
        self.engine.disk().set_fault_injector(inj.clone());
        self.engine.wal().set_fault_injector(inj.clone());
        self.worm.set_fault_injector(inj);
    }

    /// Reclaims WORM space: deletes compliance artifacts of epochs *before
    /// the previous one* whose retention has elapsed — "the log-consistent
    /// architecture is space-efficient because each snapshot can expire and
    /// be deleted from WORM once the next snapshot is in place. Similarly,
    /// the compliance log file can be deleted after every audit."
    /// The immediately-previous epoch's snapshot is retained: the next audit
    /// verifies against it. Returns the number of files deleted.
    pub fn reclaim_worm(&self) -> Result<usize> {
        let epoch = *self.epoch.lock();
        if epoch < 2 {
            return Ok(0);
        }
        let mut deleted = 0;
        let reclaimable = |name: &str| -> bool {
            for e in 0..epoch.saturating_sub(1) {
                let suffixes = [
                    crate::logger::epoch_log_name(e),
                    crate::logger::epoch_stamp_name(e),
                    waltail_name(e),
                    crate::audit::audit_ckpt_name(e),
                ];
                let snap_base = crate::snapshot::snapshot_name(e);
                let head_base = proof::epoch_head_name(e);
                if suffixes.iter().any(|s| s == name)
                    || *name == snap_base
                    // retry generations + .sig/.pub companions
                    || name.starts_with(&format!("{snap_base}."))
                    || *name == head_base
                    || name.starts_with(&format!("{head_base}."))
                    || name.starts_with(&format!("witness/e{e}-"))
                {
                    return true;
                }
            }
            false
        };
        for (name, _meta) in self.worm.list("") {
            if reclaimable(&name) && self.worm.delete(&name).is_ok() {
                deleted += 1;
            }
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    // End-to-end behavior of the facade lives in the crate-level integration
    // tests (`crates/core/tests/`), which exercise run → audit → attack →
    // detect cycles.
}
