//! Epoch heads on WORM and server-side read-proof construction.
//!
//! An **epoch head** is the client-facing summary of one sealed audit
//! epoch: `(epoch, time, tuple ADD-HASH, Merkle root over the snapshot's
//! page content hashes, page count)`, Lamport-signed with a one-time key
//! derived from the auditor's master seed under a dedicated domain string
//! (distinct from the snapshot key, so each one-time key still signs
//! exactly one message). The head's byte format and Merkle construction
//! are owned by `ccdb-verifier` — the engine *imports the client's
//! definition*, so the two sides can never drift.
//!
//! Heads are deterministic functions of the signed snapshot: the head for
//! epoch `e` can always be (re)derived from `snapshots/epoch-{e}` alone.
//! [`EpochHeadManager::ensure`] exploits that to make head creation
//! idempotent and crash-safe — a crash between snapshot seal and head
//! seal just means the head is materialized lazily on the next audit or
//! the first proof-carrying read.

use std::sync::Arc;

use ccdb_common::{Error, RelId, Result, Timestamp};
use ccdb_crypto::{Digest, LamportKeyPair, LamportPublicKey, LamportSignature, Sha256};
use ccdb_storage::{PageType, TupleVersion, WriteTime};
use ccdb_verifier::{merkle_path, merkle_root, page_leaf_hash, EpochHead, ProofPage, ReadProof};
use ccdb_worm::WormServer;

use crate::snapshot::{SnapPage, Snapshot, SnapshotManager};

/// WORM name of an epoch's head (generation 0).
pub fn epoch_head_name(epoch: u64) -> String {
    head_gen_name(epoch, 0)
}

/// Like snapshots, heads use write generations: a crash mid-write leaves a
/// partial generation that append-only WORM cannot finish in place, so the
/// retry writes the next free generation and only a generation with all
/// three files sealed counts.
fn head_gen_name(epoch: u64, generation: u64) -> String {
    if generation == 0 {
        format!("epochhead/epoch-{epoch}")
    } else {
        format!("epochhead/epoch-{epoch}.r{generation}")
    }
}

fn sealed_nonempty(worm: &WormServer, name: &str) -> bool {
    worm.stat(name).map(|m| m.sealed && m.len > 0).unwrap_or(false)
}

fn complete_generation(worm: &WormServer, epoch: u64) -> Option<u64> {
    let mut best = None;
    let mut generation = 0u64;
    loop {
        let name = head_gen_name(epoch, generation);
        if !worm.exists(&name) {
            break;
        }
        if sealed_nonempty(worm, &name)
            && sealed_nonempty(worm, &format!("{name}.sig"))
            && sealed_nonempty(worm, &format!("{name}.pub"))
        {
            best = Some(generation);
        }
        generation += 1;
    }
    best
}

/// Converts a snapshot page to the verifier's page representation.
fn proof_page(p: &SnapPage) -> ProofPage {
    ProofPage {
        pgno: p.pgno.0,
        rel: p.rel.0,
        kind: p.kind as u8,
        historical: p.historical,
        aux: p.aux,
        cells: p.cells.clone(),
    }
}

/// The Merkle leaves of a snapshot, in snapshot page order.
fn snapshot_leaves(pages: &[SnapPage]) -> Vec<Digest> {
    pages.iter().map(|p| page_leaf_hash(&proof_page(p))).collect()
}

/// Builds the (unsigned) head summarizing a snapshot.
pub fn head_of_snapshot(snap: &Snapshot) -> EpochHead {
    let leaves = snapshot_leaves(&snap.pages);
    EpochHead {
        epoch: snap.epoch,
        time: snap.time.0,
        tuple_hash: snap.tuple_hash.to_bytes(),
        page_root: merkle_root(&leaves),
        page_count: leaves.len() as u64,
    }
}

/// A loaded, signature-checked epoch head with its raw artifacts (what the
/// RPC layer ships to clients verbatim).
#[derive(Clone, Debug)]
pub struct SignedHead {
    /// The decoded head.
    pub head: EpochHead,
    /// Encoded head body (the signed bytes).
    pub head_bytes: Vec<u8>,
    /// Lamport signature over [`EpochHead::signed_message`].
    pub sig_bytes: Vec<u8>,
    /// The signing one-time public key.
    pub pub_bytes: Vec<u8>,
}

/// Writes, verifies, and lazily materializes epoch heads.
pub struct EpochHeadManager {
    worm: Arc<WormServer>,
    master_seed: [u8; 32],
}

impl EpochHeadManager {
    /// Creates a manager bound to the auditor's master seed.
    pub fn new(worm: Arc<WormServer>, master_seed: [u8; 32]) -> EpochHeadManager {
        EpochHeadManager { worm, master_seed }
    }

    /// The epoch-head signing key: derived like the snapshot key but under
    /// its own domain string, so the two one-time keys are independent.
    fn keypair(&self, epoch: u64) -> LamportKeyPair {
        let mut h = Sha256::new();
        h.update(&self.master_seed).update(b"ccdb:epoch-head-key").update(&epoch.to_le_bytes());
        LamportKeyPair::from_seed(&h.finalize())
    }

    /// The fingerprint clients pin to verify heads from this lineage.
    pub fn fingerprint(&self, epoch: u64) -> Digest {
        self.keypair(epoch).public_key().fingerprint()
    }

    /// Ensures the head for `epoch` exists on WORM, deriving it from the
    /// sealed snapshot if needed, then returns it. Errors if the epoch has
    /// no complete snapshot (it was never sealed by a clean audit).
    pub fn ensure(
        &self,
        snapshots: &SnapshotManager,
        epoch: u64,
        retention_until: Timestamp,
    ) -> Result<SignedHead> {
        if let Some(found) = self.load(epoch)? {
            return Ok(found);
        }
        let snap = snapshots.load(epoch)?.ok_or_else(|| {
            Error::NotFound(format!("no sealed snapshot for epoch {epoch}; audit first"))
        })?;
        let head = head_of_snapshot(&snap);
        let head_bytes = head.encode();
        let kp = self.keypair(epoch);
        let sig_bytes = kp.sign(&EpochHead::signed_message(&head_bytes)).to_bytes();
        let pub_bytes = kp.public_key().to_bytes();
        let mut generation = 0u64;
        while self.worm.exists(&head_gen_name(epoch, generation)) {
            generation += 1;
        }
        let name = head_gen_name(epoch, generation);
        for (file, bytes) in [
            (name.clone(), head_bytes.as_slice()),
            (format!("{name}.sig"), sig_bytes.as_slice()),
            (format!("{name}.pub"), pub_bytes.as_slice()),
        ] {
            let f = self.worm.create(&file, retention_until)?;
            self.worm.append(&f, bytes)?;
            self.worm.seal(&file)?;
        }
        Ok(SignedHead { head, head_bytes, sig_bytes, pub_bytes })
    }

    /// Loads and verifies the head for `epoch` if a complete generation
    /// exists. `Ok(None)` when none was ever completed.
    pub fn load(&self, epoch: u64) -> Result<Option<SignedHead>> {
        let Some(generation) = complete_generation(&self.worm, epoch) else {
            return Ok(None);
        };
        let name = head_gen_name(epoch, generation);
        let head_bytes = self.worm.read_all(&name)?;
        let sig_bytes = self.worm.read_all(&format!("{name}.sig"))?;
        let pub_bytes = self.worm.read_all(&format!("{name}.pub"))?;
        let sig = LamportSignature::from_bytes(&sig_bytes)
            .ok_or_else(|| Error::corruption("malformed epoch-head signature"))?;
        let pk = LamportPublicKey::from_bytes(&pub_bytes)
            .ok_or_else(|| Error::corruption("malformed epoch-head public key"))?;
        let expect = self.keypair(epoch);
        if expect.public_key().fingerprint() != pk.fingerprint() {
            return Err(Error::corruption("epoch-head public key does not match auditor lineage"));
        }
        if !pk.verify(&EpochHead::signed_message(&head_bytes), &sig) {
            return Err(Error::corruption("epoch-head signature verification failed"));
        }
        let head = EpochHead::decode(&head_bytes)
            .map_err(|e| Error::corruption(format!("epoch head undecodable: {e}")))?;
        if head.epoch != epoch {
            return Err(Error::corruption(format!(
                "epoch head names epoch {} but was stored for {epoch}",
                head.epoch
            )));
        }
        Ok(Some(SignedHead { head, head_bytes, sig_bytes, pub_bytes }))
    }
}

/// A proof-carrying answer for one key against a sealed epoch.
#[derive(Clone, Debug)]
pub struct ProvenRead {
    /// The value as of the sealed epoch; `None` if the latest sealed
    /// version is end-of-life (deleted).
    pub value: Option<Vec<u8>>,
    /// Commit time of the proven version.
    pub commit_time: Timestamp,
    /// The encoded [`ReadProof`].
    pub proof_bytes: Vec<u8>,
}

/// Finds the latest committed version of `(rel, key)` in `snap` and builds
/// its inclusion proof. Returns `Ok(None)` when the key has no committed
/// version in the sealed epoch (absence is *not* proof-carrying: the Merkle
/// tree proves membership only).
pub fn build_read_proof(snap: &Snapshot, rel: RelId, key: &[u8]) -> Result<Option<ProvenRead>> {
    // (commit_time, seq) picks the latest version; seq breaks ties within
    // one transaction's writes to the same key.
    let mut best: Option<(Timestamp, u16, usize, u32, TupleVersion)> = None;
    for (page_index, page) in snap.pages.iter().enumerate() {
        if page.kind != PageType::Leaf {
            continue;
        }
        if page.rel != rel {
            continue;
        }
        for (cell_index, cell) in page.cells.iter().enumerate() {
            let Ok(t) = TupleVersion::decode_cell(cell) else { continue };
            if t.rel != rel || t.key != key {
                continue;
            }
            let WriteTime::Committed(ct) = t.time else { continue };
            let better = match &best {
                None => true,
                Some((bt, bs, ..)) => (ct, t.seq) > (*bt, *bs),
            };
            if better {
                best = Some((ct, t.seq, page_index, cell_index as u32, t));
            }
        }
    }
    let Some((ct, _seq, page_index, cell_index, tuple)) = best else {
        return Ok(None);
    };
    let leaves = snapshot_leaves(&snap.pages);
    let proof = ReadProof {
        epoch: snap.epoch,
        page: proof_page(&snap.pages[page_index]),
        cell_index,
        path: merkle_path(&leaves, page_index),
    };
    let value = if tuple.end_of_life { None } else { Some(tuple.value) };
    Ok(Some(ProvenRead { value, commit_time: ct, proof_bytes: proof.encode() }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::PageNo;
    use ccdb_crypto::AddHash;

    fn cell(rel: u32, key: &[u8], t: u64, seq: u16, eol: bool, value: &[u8]) -> Vec<u8> {
        TupleVersion {
            rel: RelId(rel),
            key: key.to_vec(),
            time: WriteTime::Committed(Timestamp(t)),
            seq,
            end_of_life: eol,
            value: value.to_vec(),
        }
        .encode_cell()
    }

    fn snap() -> Snapshot {
        Snapshot {
            epoch: 2,
            time: Timestamp(999),
            tuple_hash: AddHash::new(),
            pages: vec![
                SnapPage {
                    pgno: PageNo(3),
                    rel: RelId(1),
                    kind: PageType::Leaf,
                    historical: false,
                    aux: 0,
                    cells: vec![
                        cell(1, b"a", 100, 0, false, b"v1"),
                        cell(1, b"a", 200, 1, false, b"v2"),
                        cell(1, b"b", 150, 2, true, b""),
                    ],
                },
                SnapPage {
                    pgno: PageNo(4),
                    rel: RelId(1),
                    kind: PageType::Inner,
                    historical: false,
                    aux: 0,
                    cells: vec![b"sep".to_vec()],
                },
            ],
        }
    }

    #[test]
    fn picks_latest_version() {
        let p = build_read_proof(&snap(), RelId(1), b"a").unwrap().unwrap();
        assert_eq!(p.value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(p.commit_time, Timestamp(200));
    }

    #[test]
    fn eol_latest_reports_absent_with_proof() {
        let p = build_read_proof(&snap(), RelId(1), b"b").unwrap().unwrap();
        assert!(p.value.is_none());
    }

    #[test]
    fn missing_key_has_no_proof() {
        assert!(build_read_proof(&snap(), RelId(1), b"zzz").unwrap().is_none());
    }

    #[test]
    fn proof_verifies_against_derived_head() {
        let s = snap();
        let head = head_of_snapshot(&s);
        let head_bytes = head.encode();
        let seed = [5u8; 32];
        let mut h = Sha256::new();
        h.update(&seed).update(b"ccdb:epoch-head-key").update(&2u64.to_le_bytes());
        let kp = LamportKeyPair::from_seed(&h.finalize());
        let sig = kp.sign(&EpochHead::signed_message(&head_bytes)).to_bytes();
        let pk = kp.public_key();
        let p = build_read_proof(&s, RelId(1), b"a").unwrap().unwrap();
        let out = ccdb_verifier::verify_read(
            &head_bytes,
            &sig,
            &pk.to_bytes(),
            Some(&pk.fingerprint()),
            &p.proof_bytes,
            1,
            b"a",
        )
        .unwrap();
        assert_eq!(out.value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(out.head.page_count, 2);
    }
}
