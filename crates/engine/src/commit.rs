//! The group-commit pipeline: leader/follower WAL flushing plus ticket-
//! ordered commit finalization.
//!
//! # Protocol
//!
//! A commit passes through three phases:
//!
//! 1. **Sequence** (under the pipeline's `state` lock): the commit timestamp
//!    is assigned, the `Commit` record is *appended* (buffered, not flushed)
//!    to the WAL, and a monotonically increasing **ticket** is taken. Holding
//!    one lock across all three makes timestamp order, WAL order, and ticket
//!    order identical.
//! 2. **Group durability** ([`CommitPipeline::wait_durable`]): the committer
//!    checks whether its record is already durable (a previous batch carried
//!    it). If not, it either becomes the **leader** — optionally stalling up
//!    to `flush_interval_us` for the batch to reach `group_size` — and
//!    flushes the WAL once (one fsync, one WORM tail-mirror append for the
//!    whole batch), or **parks** on the flush condvar until the active
//!    leader finishes. A failed flush bumps an error epoch so every batch
//!    member observes the failure; the leader returns the *original* error
//!    (fault-injection markers intact), followers a generic one.
//! 3. **Finalize** ([`CommitPipeline::await_turn`]): committers drain in
//!    strict ticket order. Under its turn a committer publishes the commit
//!    time, enqueues lazy-stamping work, and fires the `on_commit` hook — so
//!    `STAMP_TRANS` records land on the compliance log `L` in exactly commit-
//!    time order, which the auditor's single-pass replay requires.
//!
//! # Lock hierarchy
//!
//! `state` (and `turn`) rank *above* the WAL writer's internal lock: the
//! sequencing phase appends to the WAL while holding `state`. Nothing inside
//! the WAL ever takes a pipeline lock, so the order is acyclic. See
//! DESIGN.md §9 for the system-wide hierarchy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration as StdDuration, Instant};

use ccdb_common::sync::{Condvar, Mutex, MutexGuard};
use ccdb_common::{Error, Lsn, Result};
use ccdb_wal::WalWriter;

/// Sequencing / flush-leadership state.
struct PipeState {
    /// Next ticket to hand out in the sequencing phase.
    next_ticket: u64,
    /// A leader is currently flushing (followers park instead of flushing).
    leader_active: bool,
    /// Committers currently inside [`CommitPipeline::wait_durable`].
    waiters: usize,
    /// Bumped on every failed group flush; batch members that observed the
    /// old epoch and are still not durable know their flush failed.
    error_epoch: u64,
}

/// Group-commit coordination shared by all committers of one engine.
pub(crate) struct CommitPipeline {
    state: Mutex<PipeState>,
    flush_cv: Condvar,
    /// The ticket currently allowed to finalize.
    turn: Mutex<u64>,
    turn_cv: Condvar,
    /// Lock-free mirror of `turn`: tickets finalized so far. A flush leader
    /// compares it against `next_ticket` to tell a genuinely uncontended
    /// commit (nothing else sequenced and unfinalized) from a momentary gap
    /// between concurrent committers.
    finalized: AtomicU64,
    /// Successful group flushes (each one fsync + one tail-mirror append).
    pub(crate) batches: AtomicU64,
    /// Transactions made durable through the pipeline.
    pub(crate) batched_txns: AtomicU64,
}

impl CommitPipeline {
    pub(crate) fn new() -> CommitPipeline {
        CommitPipeline {
            state: Mutex::new(PipeState {
                next_ticket: 0,
                leader_active: false,
                waiters: 0,
                error_epoch: 0,
            }),
            flush_cv: Condvar::new(),
            turn: Mutex::new(0),
            turn_cv: Condvar::new(),
            finalized: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_txns: AtomicU64::new(0),
        }
    }

    /// Runs the sequencing phase: `f` executes under the pipeline state lock
    /// (assign timestamp + append WAL record), and on success a ticket is
    /// taken. On error no ticket is consumed, so the finalize turn never
    /// stalls on a committer that bailed out early.
    pub(crate) fn sequence<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<(T, u64)> {
        let mut st = self.state.lock();
        let out = f()?;
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        Ok((out, ticket))
    }

    /// Phase 2: blocks until the record at `lsn` is durable (or the flush
    /// covering it failed). See the module docs for the leader/follower
    /// protocol. `flush_interval_us`/`group_size` control the leader's
    /// batch-formation stall; an interval of 0 flushes immediately and still
    /// batches naturally (followers accumulate while the leader fsyncs).
    /// `others_active` is the caller's hint that commit traffic besides this
    /// one exists (the engine passes "any other transaction currently
    /// begun"); it gates the leader's batch-formation stall.
    pub(crate) fn wait_durable(
        &self,
        wal: &WalWriter,
        lsn: Lsn,
        flush_interval_us: u64,
        group_size: usize,
        others_active: bool,
    ) -> Result<()> {
        let mut st = self.state.lock();
        st.waiters += 1;
        let entry_epoch = st.error_epoch;
        loop {
            if wal.flushed_lsn() > lsn {
                st.waiters -= 1;
                self.batched_txns.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if st.error_epoch != entry_epoch {
                st.waiters -= 1;
                return Err(Error::Invalid(
                    "group commit: batch flush failed; commit outcome unknown".into(),
                ));
            }
            if st.leader_active {
                st = self.flush_cv.wait(st);
                continue;
            }
            // Become the leader. The batch-formation stall runs only when
            // there is evidence of concurrent commit traffic: another
            // sequenced-but-unfinalized commit in the pipeline, or (the
            // caller's hint) another transaction open in the engine — under
            // multi-client load the stall is what *forms* batches, since
            // committers spend most of their cycle outside `wait_durable`.
            // A genuinely uncontended leader flushes immediately: stalling
            // for a batch that cannot form is the BENCH_PR4 single-thread
            // regression.
            st.leader_active = true;
            let in_flight = st.next_ticket - self.finalized.load(Ordering::Relaxed);
            if flush_interval_us > 0 && group_size > 1 && (others_active || in_flight > 1) {
                let deadline = Instant::now() + StdDuration::from_micros(flush_interval_us);
                while st.waiters < group_size {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (g, timed_out) = self.flush_cv.wait_timeout(st, deadline - now);
                    st = g;
                    if timed_out {
                        break;
                    }
                }
            }
            drop(st);
            let res = wal.flush();
            st = self.state.lock();
            st.leader_active = false;
            match res {
                Ok(()) => {
                    self.batches.fetch_add(1, Ordering::Relaxed);
                    self.flush_cv.notify_all();
                    // Loop: the durable check at the top observes our own
                    // flush (it always covers our record — the append
                    // happened before we entered this function).
                }
                Err(e) => {
                    // Broadcast failure to the batch; the leader propagates
                    // the original error so fault-injection markers survive.
                    st.error_epoch = st.error_epoch.wrapping_add(1);
                    st.waiters -= 1;
                    self.flush_cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Phase 3 entry: blocks until it is `ticket`'s turn to finalize.
    /// Returns the guard; call [`CommitPipeline::finish_turn`] with it when
    /// done (success *or* failure — the turn must always advance).
    pub(crate) fn await_turn(&self, ticket: u64) -> MutexGuard<'_, u64> {
        let mut turn = self.turn.lock();
        while *turn != ticket {
            turn = self.turn_cv.wait(turn);
        }
        turn
    }

    /// Phase 3 exit: advances the finalize turn and wakes waiting tickets.
    pub(crate) fn finish_turn(&self, mut turn: MutexGuard<'_, u64>) {
        *turn += 1;
        self.finalized.fetch_add(1, Ordering::Relaxed);
        drop(turn);
        self.turn_cv.notify_all();
    }

    /// (batches, txns) counters for [`crate::EngineStats`].
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.batches.load(Ordering::Relaxed), self.batched_txns.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn wal(tag: &str) -> (Arc<WalWriter>, std::path::PathBuf) {
        let p = std::env::temp_dir().join(format!(
            "ccdb-pipe-{}-{}-{}.wal",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_file(&p);
        let w = Arc::new(WalWriter::open(&p).unwrap());
        w.set_sync(false);
        (w, p)
    }

    #[test]
    fn tickets_are_sequential_and_turns_ordered() {
        let pipe = Arc::new(CommitPipeline::new());
        let (_, t0) = pipe.sequence(|| Ok(())).unwrap();
        let (_, t1) = pipe.sequence(|| Ok(())).unwrap();
        assert_eq!((t0, t1), (0, 1));
        // Finalize out of order: ticket 1 must wait for ticket 0.
        let p2 = pipe.clone();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = order.clone();
        let h = std::thread::spawn(move || {
            let g = p2.await_turn(1);
            o2.lock().push(1);
            p2.finish_turn(g);
        });
        std::thread::sleep(StdDuration::from_millis(10));
        {
            let g = pipe.await_turn(0);
            order.lock().push(0);
            pipe.finish_turn(g);
        }
        h.join().unwrap();
        assert_eq!(*order.lock(), vec![0, 1]);
    }

    #[test]
    fn sequence_error_consumes_no_ticket() {
        let pipe = CommitPipeline::new();
        let r: Result<((), u64)> = pipe.sequence(|| Err(Error::Invalid("boom".into())));
        assert!(r.is_err());
        let (_, t) = pipe.sequence(|| Ok(())).unwrap();
        assert_eq!(t, 0, "failed sequence must not burn a ticket");
    }

    #[test]
    fn uncontended_leader_skips_the_batch_stall() {
        use ccdb_common::TxnId;
        use ccdb_wal::WalRecord;
        let (w, p) = wal("solo");
        let pipe = CommitPipeline::new();
        // A 200ms window with a lone committer: the fast path must flush
        // immediately instead of parking for the full interval.
        let (lsn, _ticket) =
            pipe.sequence(|| w.append(&WalRecord::Begin { txn: TxnId(1) })).unwrap();
        let start = Instant::now();
        pipe.wait_durable(&w, lsn, 200_000, 64, false).unwrap();
        assert!(
            start.elapsed() < StdDuration::from_millis(100),
            "uncontended commit stalled {:?} waiting for a batch that cannot form",
            start.elapsed()
        );
        assert!(w.flushed_lsn() > lsn);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn group_flush_batches_concurrent_committers() {
        use ccdb_common::TxnId;
        use ccdb_wal::WalRecord;
        let (w, p) = wal("batch");
        let pipe = Arc::new(CommitPipeline::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let w = w.clone();
            let pipe = pipe.clone();
            handles.push(std::thread::spawn(move || {
                let (lsn, _ticket) =
                    pipe.sequence(|| w.append(&WalRecord::Begin { txn: TxnId(i + 1) })).unwrap();
                pipe.wait_durable(&w, lsn, 1000, 8, true).unwrap();
                assert!(w.flushed_lsn() > lsn);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (batches, txns) = pipe.counters();
        assert_eq!(txns, 8);
        assert!((1..=8).contains(&batches), "batches: {batches}");
        let _ = std::fs::remove_file(&p);
    }
}
