//! Transaction-lifecycle and recovery events for the compliance layer.

use ccdb_common::{Result, Timestamp, TxnId};

/// Events the engine reports to the compliance layer. All default to no-ops
/// so the engine runs bare (the paper's "Regular TPC-C" baseline).
///
/// A hook returning an error **halts the triggering operation**: the paper
/// requires that "if at any point we are unable to write to L, transaction
/// processing must halt until the problem is fixed".
pub trait EngineHooks: Send + Sync {
    /// A transaction began.
    fn on_begin(&self, _txn: TxnId) -> Result<()> {
        Ok(())
    }

    /// A transaction committed (its WAL commit record is durable). The
    /// compliance logger appends `STAMP_TRANS` here.
    fn on_commit(&self, _txn: TxnId, _commit_time: Timestamp) -> Result<()> {
        Ok(())
    }

    /// A transaction aborted and its rollback is complete. The compliance
    /// logger appends `ABORT` here ("the compliance logger must wait to write
    /// ABORT and STAMP_TRANS records until the transaction has actually
    /// committed/aborted").
    fn on_abort(&self, _txn: TxnId) -> Result<()> {
        Ok(())
    }

    /// Crash recovery is starting (the DBMS came up after an unclean
    /// shutdown). The compliance logger places a timestamped
    /// `START_RECOVERY` record on L.
    fn on_recovery_start(&self) -> Result<()> {
        Ok(())
    }

    /// Recovery finished: `committed` lists transactions whose effects were
    /// redone (with commit times), `aborted` lists rolled-back losers. The
    /// compliance logger re-emits `STAMP_TRANS`/`ABORT` records (duplicates
    /// are tolerated — the auditor deduplicates).
    fn on_recovery_end(&self, _committed: &[(TxnId, Timestamp)], _aborted: &[TxnId]) -> Result<()> {
        Ok(())
    }
}

/// The no-op hook set.
pub struct NoopEngineHooks;

impl EngineHooks for NoopEngineHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_succeed() {
        let h = NoopEngineHooks;
        assert!(h.on_begin(TxnId(1)).is_ok());
        assert!(h.on_commit(TxnId(1), Timestamp(5)).is_ok());
        assert!(h.on_abort(TxnId(1)).is_ok());
        assert!(h.on_recovery_start().is_ok());
        assert!(h.on_recovery_end(&[], &[]).is_ok());
    }
}
