//! The engine proper: transactions, reads, writes, checkpoints, crash
//! simulation, and the compliance seams.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ccdb_btree::{BTree, SplitPolicy, StructureHooks, TimeRank};
use ccdb_common::sync::{Mutex, RwLock};
use ccdb_common::{ClockRef, Duration, Error, Lsn, RelId, Result, Timestamp, TxnId};
use ccdb_storage::{BufferPool, BufferStats, DiskManager, PageStore, TupleVersion, WriteTime};
use ccdb_wal::log::MasterRecord;
use ccdb_wal::{PageOp, PageOpSink, RelMetaOp, WalRecord, WalWriter};

use crate::catalog::Catalog;
use crate::commit::CommitPipeline;
use crate::hooks::EngineHooks;
use crate::recovery::{self, RecoveryReport};

/// Default bound on the lazy-timestamping queue before committers start
/// draining it incrementally (see [`EngineConfig::stamp_queue_limit`]).
pub const DEFAULT_STAMP_QUEUE_LIMIT: usize = 1024;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Directory holding the database file, WAL, master record, catalog.
    pub dir: PathBuf,
    /// Buffer-pool capacity in 4 KiB pages.
    pub cache_pages: usize,
    /// Whether WAL flushes fsync (benchmarks disable; the workspace crash
    /// model is process-level).
    pub fsync: bool,
    /// Group commit: committers enqueue their WAL record and a leader
    /// flushes the whole batch with one fsync + one WORM tail-mirror
    /// append. Disabling reverts to one flush per commit (the baseline).
    pub group_commit: bool,
    /// How long a flush leader stalls waiting for the batch to fill (µs).
    /// 0 flushes immediately — batching still happens naturally because
    /// followers accumulate while the leader's fsync is in flight.
    pub flush_interval_us: u64,
    /// Target batch size that ends the leader's stall early.
    pub group_size: usize,
    /// Lazy-timestamping queue bound: beyond this, committers drain the
    /// queue incrementally instead of waiting for the next checkpoint.
    pub stamp_queue_limit: usize,
}

impl EngineConfig {
    /// Convenience constructor (fsync on, group commit on).
    pub fn new(dir: impl Into<PathBuf>, cache_pages: usize) -> EngineConfig {
        EngineConfig {
            dir: dir.into(),
            cache_pages,
            fsync: true,
            group_commit: true,
            flush_interval_us: 0,
            group_size: 8,
            stamp_queue_limit: DEFAULT_STAMP_QUEUE_LIMIT,
        }
    }

    /// Disables fsync (benchmark configurations).
    pub fn no_fsync(mut self) -> EngineConfig {
        self.fsync = false;
        self
    }

    /// Disables group commit (per-commit flush — the pre-pipeline baseline).
    pub fn no_group_commit(mut self) -> EngineConfig {
        self.group_commit = false;
        self
    }

    /// Sets the leader's batch-formation stall and target batch size.
    pub fn group_commit_window(
        mut self,
        flush_interval_us: u64,
        group_size: usize,
    ) -> EngineConfig {
        self.flush_interval_us = flush_interval_us;
        self.group_size = group_size;
        self
    }
}

/// Aggregate engine statistics for the experiment harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Buffer-pool counters.
    pub buffer: BufferStats,
    /// Buffer-pool hit rate (0.0 when no fetches yet).
    pub buffer_hit_rate: f64,
    /// WAL length in bytes.
    pub wal_bytes: u64,
    /// Pages ever allocated in the database file.
    pub db_pages: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Group-commit batches flushed (each is one fsync + one tail-mirror
    /// append).
    pub group_commit_batches: u64,
    /// Transactions made durable through the group-commit pipeline.
    pub group_commit_txns: u64,
    /// Fsyncs avoided by batching (`group_commit_txns - group_commit_batches`).
    pub fsyncs_saved: u64,
    /// Current lazy-timestamping queue length.
    pub stamp_queue_len: usize,
    /// Transactions currently in flight (begun, neither committed nor
    /// aborted).
    pub active_txns: u64,
}

/// Number of shards in the active-transaction table.
const TXN_SHARDS: usize = 16;

/// Sharded map of active transactions: commits/aborts/writes of different
/// transactions touch different shards and never contend.
struct TxnTable {
    shards: Vec<Mutex<HashMap<TxnId, TxnState>>>,
    /// Lock-free mirror of the total entry count, so [`EngineStats`] and the
    /// service layer's admission/metrics paths can read the in-flight
    /// transaction count without touching any shard lock.
    count: AtomicU64,
}

impl TxnTable {
    fn new() -> TxnTable {
        TxnTable {
            shards: (0..TXN_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            count: AtomicU64::new(0),
        }
    }

    fn shard(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, TxnState>> {
        &self.shards[(txn.0 as usize) % TXN_SHARDS]
    }

    fn insert(&self, txn: TxnId, state: TxnState) {
        if self.shard(txn).lock().insert(txn, state).is_none() {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn remove(&self, txn: TxnId) -> Option<TxnState> {
        let removed = self.shard(txn).lock().remove(&txn);
        if removed.is_some() {
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn contains(&self, txn: TxnId) -> bool {
        self.shard(txn).lock().contains_key(&txn)
    }

    fn track_write(&self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<()> {
        let mut shard = self.shard(txn).lock();
        let state = shard
            .get_mut(&txn)
            .ok_or_else(|| Error::InvalidTransactionState(format!("{txn} is not active")))?;
        if state.prepared {
            return Err(Error::InvalidTransactionState(format!(
                "{txn} is prepared (2PC) and may no longer write"
            )));
        }
        state.writes.push((rel, key.to_vec()));
        Ok(())
    }

    /// Marks `txn` prepared; errors if it is not active or already prepared.
    fn set_prepared(&self, txn: TxnId) -> Result<()> {
        let mut shard = self.shard(txn).lock();
        let state = shard
            .get_mut(&txn)
            .ok_or_else(|| Error::InvalidTransactionState(format!("{txn} is not active")))?;
        if state.prepared {
            return Err(Error::InvalidTransactionState(format!("{txn} is already prepared")));
        }
        state.prepared = true;
        Ok(())
    }

    /// Transactions currently in the prepared (in-doubt) state, sorted.
    fn prepared(&self) -> Vec<TxnId> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().iter().filter(|(_, st)| st.prepared).map(|(t, _)| *t));
        }
        out.sort();
        out
    }

    fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Lock-free: whether any transaction is tracked, per the mirror count.
    /// Used on the commit hot path as the group-commit contention hint;
    /// [`TxnTable::is_empty`] is the shard-locked exact check.
    fn any_active(&self) -> bool {
        self.count.load(Ordering::Relaxed) != 0
    }

    fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    fn active(&self) -> Vec<(TxnId, Lsn)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().iter().map(|(t, st)| (*t, st.begin_lsn)));
        }
        out
    }

    fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.count.store(0, Ordering::Relaxed);
    }
}

/// The built-in relation holding per-relation retention periods — the
/// paper's **Expiry relation** (Section VIII), stored as an ordinary
/// transaction-time relation so changes to retention policy are themselves
/// auditable.
pub const EXPIRY_RELATION: &str = "sys.expiry";

struct TxnState {
    begin_lsn: Lsn,
    writes: Vec<(RelId, Vec<u8>)>,
    /// In the prepared state of a cross-shard two-phase commit: writes are
    /// durable, further writes are rejected, and only a coordinator
    /// decision (commit or abort) may resolve the transaction.
    prepared: bool,
}

pub(crate) struct EngineSink {
    wal: Arc<WalWriter>,
}

impl PageOpSink for EngineSink {
    fn log_page_op(&self, txn: TxnId, op: &PageOp) -> Result<Lsn> {
        self.wal.append(&WalRecord::Page { txn, op: op.clone() })
    }

    fn log_rel_meta(&self, rel: RelId, meta: &RelMetaOp) -> Result<Lsn> {
        self.wal.append(&WalRecord::RelMeta { rel, meta: *meta })
    }
}

/// The transaction-time database engine.
///
/// # Lock hierarchy (acquire top-to-bottom, never upward)
///
/// 1. engine maps — `catalog` / `trees` / `txns` shard / `commit_times`
/// 2. tree operation lock (`BTree::op`, per relation)
/// 3. buffer-pool shard lock
/// 4. page latch (`PageRef` RwLock)
/// 5. WAL writer internal lock (via append / the pool's write barrier)
///
/// The commit pipeline's locks rank with the engine maps (level 1) and are
/// never held while taking a tree or pool lock. See DESIGN.md §9.
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) clock: ClockRef,
    pub(crate) disk: Arc<DiskManager>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) wal: Arc<WalWriter>,
    pub(crate) master: MasterRecord,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) trees: RwLock<HashMap<RelId, Arc<BTree>>>,
    txns: TxnTable,
    /// Commit times of transactions whose versions are not all stamped yet.
    /// Readers resolve `Pending` versions here without blocking writers.
    pub(crate) commit_times: RwLock<HashMap<TxnId, Timestamp>>,
    /// Lazy-timestamping work queue (FIFO: drained front-first so stamping
    /// respects commit order).
    #[allow(clippy::type_complexity)]
    stamp_queue: Mutex<VecDeque<(TxnId, Timestamp, Vec<(RelId, Vec<u8>)>)>>,
    /// Lock-free mirror of `stamp_queue.len()` for [`EngineStats`].
    stamp_queue_depth: AtomicUsize,
    /// Serializes stampers (checkpoint drains vs incremental drains).
    stamper: Mutex<()>,
    /// Group-commit coordination (sequencing, leader flush, finalize order).
    pipeline: CommitPipeline,
    pub(crate) next_txn: AtomicU64,
    last_commit_us: AtomicU64,
    pub(crate) hooks: RwLock<Option<Arc<dyn EngineHooks>>>,
    pub(crate) tree_hooks: RwLock<Option<Arc<dyn StructureHooks>>>,
    sink: Arc<EngineSink>,
    commits: AtomicU64,
    aborts: AtomicU64,
    /// Report of the recovery performed at open (None for a clean start).
    pub(crate) recovery_report: Mutex<Option<RecoveryReport>>,
}

impl Engine {
    /// Opens (or creates) a database with a bare disk store.
    pub fn open(cfg: EngineConfig, clock: ClockRef) -> Result<Engine> {
        Engine::open_wrapped(cfg, clock, |d| d, None, None)
    }

    /// Opens a database, letting the caller wrap the page store (the
    /// compliance plugin) and install hooks *before* recovery runs — crash
    /// recovery must itself be compliance-logged.
    pub fn open_wrapped(
        cfg: EngineConfig,
        clock: ClockRef,
        wrap: impl FnOnce(Arc<DiskManager>) -> Arc<dyn PageStore>,
        engine_hooks: Option<Arc<dyn EngineHooks>>,
        tree_hooks: Option<Arc<dyn StructureHooks>>,
    ) -> Result<Engine> {
        let disk = Self::open_disk(&cfg)?;
        let store = wrap(disk.clone());
        Engine::open_with_store(cfg, clock, disk, store, engine_hooks, tree_hooks)
    }

    /// Opens the database file for a directory (so callers can build a page
    /// store wrapper — the compliance plugin — before opening the engine).
    pub fn open_disk(cfg: &EngineConfig) -> Result<Arc<DiskManager>> {
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| Error::io("creating database directory", e))?;
        Ok(Arc::new(DiskManager::open(cfg.dir.join("db.pages"))?))
    }

    /// Opens a database over a pre-built store stack. `disk` must be the
    /// manager underlying `store`.
    pub fn open_with_store(
        cfg: EngineConfig,
        clock: ClockRef,
        disk: Arc<DiskManager>,
        store: Arc<dyn PageStore>,
        engine_hooks: Option<Arc<dyn EngineHooks>>,
        tree_hooks: Option<Arc<dyn StructureHooks>>,
    ) -> Result<Engine> {
        let pool = Arc::new(BufferPool::new(store, clock.clone(), cfg.cache_pages));
        let wal = Arc::new(WalWriter::open(cfg.dir.join("wal.log"))?);
        wal.set_sync(cfg.fsync);
        {
            let wal_for_barrier = wal.clone();
            pool.set_write_barrier(Arc::new(move |page: &ccdb_storage::Page| {
                wal_for_barrier.flush_up_to(page.lsn())
            }));
        }
        let master = MasterRecord::at(cfg.dir.join("wal.master"));
        let catalog = Catalog::load(&cfg.dir.join("catalog.bin"))?;
        let next_txn = catalog.txn_high_water.max(1);
        let sink = Arc::new(EngineSink { wal: wal.clone() });
        let marker = cfg.dir.join("clean.shutdown");
        let was_clean = marker.exists();
        if was_clean {
            let _ = std::fs::remove_file(&marker);
        }
        let engine = Engine {
            cfg,
            clock,
            disk,
            pool,
            wal,
            master,
            catalog: RwLock::new(catalog),
            trees: RwLock::new(HashMap::new()),
            txns: TxnTable::new(),
            commit_times: RwLock::new(HashMap::new()),
            stamp_queue: Mutex::new(VecDeque::new()),
            stamp_queue_depth: AtomicUsize::new(0),
            stamper: Mutex::new(()),
            pipeline: CommitPipeline::new(),
            next_txn: AtomicU64::new(next_txn),
            last_commit_us: AtomicU64::new(0),
            hooks: RwLock::new(engine_hooks),
            tree_hooks: RwLock::new(tree_hooks),
            sink,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            recovery_report: Mutex::new(None),
        };
        let has_log = engine.wal.end_lsn() > Lsn::ZERO;
        if has_log {
            let unclean = !was_clean;
            let report = recovery::run(&engine, unclean)?;
            *engine.recovery_report.lock() = Some(report);
        } else {
            engine.build_trees()?;
        }
        if engine.catalog.read().by_name(EXPIRY_RELATION).is_none() {
            engine.create_relation(EXPIRY_RELATION, SplitPolicy::KeyOnly)?;
        }
        Ok(engine)
    }

    /// Instantiates `BTree` handles for every cataloged relation.
    pub(crate) fn build_trees(&self) -> Result<()> {
        let mut trees = self.trees.write();
        trees.clear();
        let catalog = self.catalog.read();
        for info in catalog.relations() {
            let tree = Arc::new(BTree::open(
                self.pool.clone(),
                self.clock.clone(),
                info.rel,
                info.policy,
                info.root,
                info.historical.clone(),
            ));
            tree.set_sink(self.sink.clone());
            if let Some(h) = self.tree_hooks.read().clone() {
                tree.set_hooks(h);
            }
            trees.insert(info.rel, tree);
        }
        Ok(())
    }

    // --- catalog ----------------------------------------------------------

    /// Creates a relation. The fresh root page is force-logged and flushed so
    /// recovery can always rebuild the tree.
    pub fn create_relation(&self, name: &str, policy: SplitPolicy) -> Result<RelId> {
        let tree = BTree::create(self.pool.clone(), self.clock.clone(), RelId(0), policy)?;
        let root = tree.root();
        // Log + flush the root page image so the relation is recoverable.
        {
            let frame = self.pool.fetch(root)?;
            let mut page = frame.write();
            let rel_placeholder = page.rel_id();
            let _ = rel_placeholder;
            let lsn = self.wal.append(&WalRecord::Page {
                txn: TxnId::NONE,
                op: PageOp::SetImage { pgno: root, image: page.as_bytes().to_vec() },
            })?;
            page.set_lsn(lsn);
        }
        let rel = {
            let mut catalog = self.catalog.write();
            let rel = catalog.create(name, policy, root)?;
            catalog.save(&self.catalog_path())?;
            rel
        };
        // Rebuild the tree handle with the real RelId and fix the root page's
        // relation field.
        {
            let frame = self.pool.fetch(root)?;
            let mut page = frame.write();
            page.set_rel_id(rel);
            let lsn = self.wal.append(&WalRecord::Page {
                txn: TxnId::NONE,
                op: PageOp::SetImage { pgno: root, image: page.as_bytes().to_vec() },
            })?;
            page.set_lsn(lsn);
            self.pool.mark_dirty(&mut page);
        }
        self.wal.flush()?;
        self.pool.flush_page(root)?;
        let tree = Arc::new(BTree::open(
            self.pool.clone(),
            self.clock.clone(),
            rel,
            policy,
            root,
            Vec::new(),
        ));
        tree.set_sink(self.sink.clone());
        if let Some(h) = self.tree_hooks.read().clone() {
            tree.set_hooks(h);
        }
        self.trees.write().insert(rel, tree);
        Ok(rel)
    }

    /// Resolves a relation name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.catalog.read().by_name(name).map(|i| i.rel)
    }

    /// The tree handle for a relation.
    pub fn tree(&self, rel: RelId) -> Result<Arc<BTree>> {
        self.trees
            .read()
            .get(&rel)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("relation {rel}")))
    }

    /// Names and ids of all user relations (excluding `sys.*`).
    pub fn user_relations(&self) -> Vec<(String, RelId)> {
        self.catalog
            .read()
            .relations()
            .filter(|i| !i.name.starts_with("sys."))
            .map(|i| (i.name.clone(), i.rel))
            .collect()
    }

    fn catalog_path(&self) -> PathBuf {
        self.cfg.dir.join("catalog.bin")
    }

    /// Synchronizes catalog root/historical fields from the live trees and
    /// persists it.
    pub(crate) fn save_catalog(&self) -> Result<()> {
        let trees = self.trees.read();
        let mut catalog = self.catalog.write();
        for (rel, tree) in trees.iter() {
            if let Some(info) = catalog.get_mut(*rel) {
                info.root = tree.root();
                info.historical = tree.historical_pages();
            }
        }
        catalog.txn_high_water = self.next_txn.load(Ordering::SeqCst);
        catalog.save(&self.catalog_path())
    }

    // --- transactions -------------------------------------------------------

    /// Starts a transaction.
    pub fn begin(&self) -> Result<TxnId> {
        let txn = TxnId(self.next_txn.fetch_add(1, Ordering::SeqCst) + 1);
        let begin_lsn = self.wal.append(&WalRecord::Begin { txn })?;
        self.txns.insert(txn, TxnState { begin_lsn, writes: Vec::new(), prepared: false });
        if let Some(h) = self.hooks.read().clone() {
            h.on_begin(txn)?;
        }
        Ok(txn)
    }

    fn tree_and_track(&self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<Arc<BTree>> {
        self.txns.track_write(txn, rel, key)?;
        self.tree(rel)
    }

    /// Writes a new version of `(rel, key)` within `txn`. INSERT and UPDATE
    /// are the same operation in a transaction-time database.
    pub fn write(&self, txn: TxnId, rel: RelId, key: &[u8], value: &[u8]) -> Result<()> {
        self.wal.append(&WalRecord::Insert {
            txn,
            rel,
            key: key.to_vec(),
            end_of_life: false,
            value: value.to_vec(),
        })?;
        let tree = self.tree_and_track(txn, rel, key)?;
        tree.insert(key, WriteTime::Pending(txn), false, value.to_vec())
    }

    /// Deletes `(rel, key)` within `txn` by inserting an end-of-life version.
    pub fn delete(&self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<()> {
        self.wal.append(&WalRecord::Insert {
            txn,
            rel,
            key: key.to_vec(),
            end_of_life: true,
            value: Vec::new(),
        })?;
        let tree = self.tree_and_track(txn, rel, key)?;
        tree.insert(key, WriteTime::Pending(txn), true, Vec::new())
    }

    /// Commits `txn`, returning its commit time. The commit time is strictly
    /// greater than every earlier commit time (required for version order and
    /// the auditor's commit-time monotonicity check).
    ///
    /// The commit runs through the three-phase group-commit pipeline (see
    /// `commit.rs`): **sequence** (timestamp + WAL append + ticket, one
    /// critical section so all three orders coincide), **group durability**
    /// (leader flushes the batch with a single fsync + a single WORM
    /// tail-mirror append; followers park), and **ticket-ordered finalize**
    /// (publish the commit time, enqueue stamping work, fire `on_commit` —
    /// so `STAMP_TRANS` records reach the compliance log in commit order).
    ///
    /// An error leaves the commit outcome *indeterminate*: the record may or
    /// may not have become durable before the failure (same contract as the
    /// previous per-commit `append_flush` path; the crash-torture harness
    /// models this as "uncertain").
    pub fn commit(&self, txn: TxnId) -> Result<Timestamp> {
        let state = self
            .txns
            .remove(txn)
            .ok_or_else(|| Error::InvalidTransactionState(format!("{txn} is not active")))?;

        // Phase 1: sequence. Timestamp order == WAL order == ticket order.
        let ((t, lsn), ticket) = self.pipeline.sequence(|| {
            let now = self.clock.now().0;
            let prev = self
                .last_commit_us
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |last| Some(now.max(last + 1)))
                .expect("fetch_update closure always returns Some");
            let t = Timestamp(now.max(prev + 1));
            let lsn = self.wal.append(&WalRecord::Commit { txn, commit_time: t })?;
            Ok((t, lsn))
        })?;

        // Phase 2: group durability (or the per-commit-flush baseline).
        // "Other transactions are open" is the contention hint that lets an
        // uncontended leader skip the batch-formation stall (our own txn was
        // already removed from the table above, so the count is only peers).
        let durable = if self.cfg.group_commit {
            self.pipeline.wait_durable(
                &self.wal,
                lsn,
                self.cfg.flush_interval_us,
                self.cfg.group_size,
                self.txns.any_active(),
            )
        } else {
            self.wal.flush()
        };

        // Phase 3: finalize in ticket order. The turn advances even on
        // failure, otherwise later committers would wait forever.
        let turn = self.pipeline.await_turn(ticket);
        let result = (|| {
            durable?;
            self.commit_times.write().insert(txn, t);
            self.stamp_queue.lock().push_back((txn, t, state.writes));
            self.stamp_queue_depth.fetch_add(1, Ordering::Relaxed);
            self.commits.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = self.hooks.read().clone() {
                h.on_commit(txn, t)?;
            }
            Ok(t)
        })();
        self.pipeline.finish_turn(turn);

        if result.is_ok() {
            self.maybe_drain_stamp_queue()?;
        }
        result
    }

    /// Prepares `txn` for a cross-shard two-phase commit: flushes the WAL up
    /// to (and including) a `Prepare` record, after which the transaction is
    /// **in-doubt** — it may no longer write, and only the coordinator's
    /// decision resolves it through the ordinary [`Engine::commit`] /
    /// [`Engine::abort`] paths. The prepared state survives a crash:
    /// recovery re-registers prepared transactions instead of rolling them
    /// back, and the reopened engine refuses to quiesce until each is
    /// resolved.
    pub fn prepare(&self, txn: TxnId) -> Result<()> {
        self.txns.set_prepared(txn)?;
        self.wal.append_flush(&WalRecord::Prepare { txn })?;
        Ok(())
    }

    /// Transactions in the prepared (in-doubt) state, sorted — after a crash
    /// these are the transactions whose fate the 2PC coordinator must drive
    /// to a decision before the shard can quiesce.
    pub fn indoubt_txns(&self) -> Vec<TxnId> {
        self.txns.prepared()
    }

    /// Re-registers an in-doubt transaction found by crash recovery: its
    /// pending versions were redone and kept, its write set rebuilt from the
    /// WAL. The transaction occupies its original id in the table (marked
    /// prepared) so the normal commit/abort paths can resolve it.
    pub(crate) fn reinstate_indoubt(
        &self,
        txn: TxnId,
        begin_lsn: Lsn,
        writes: Vec<(RelId, Vec<u8>)>,
    ) {
        self.txns.insert(txn, TxnState { begin_lsn, writes, prepared: true });
    }

    /// Aborts `txn`, rolling back its writes (physical removal of its pending
    /// versions — in a transaction-time DB an aborted write never existed).
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let state = self
            .txns
            .remove(txn)
            .ok_or_else(|| Error::InvalidTransactionState(format!("{txn} is not active")))?;
        for (rel, key) in state.writes.iter().rev() {
            let tree = self.tree(*rel)?;
            // Remove every pending version this txn wrote under the key
            // (idempotent; multiple writes leave multiple versions).
            while tree.remove_version(key, TimeRank::pending(txn))?.is_some() {}
        }
        self.wal.append_flush(&WalRecord::Abort { txn })?;
        self.aborts.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.hooks.read().clone() {
            h.on_abort(txn)?;
        }
        Ok(())
    }

    // --- reads --------------------------------------------------------------

    fn resolve_commit(&self, time: WriteTime) -> Option<Timestamp> {
        match time {
            WriteTime::Committed(t) => Some(t),
            WriteTime::Pending(writer) => self.commit_times.read().get(&writer).copied(),
        }
    }

    /// Reads the current version of `(rel, key)` as seen by `txn`
    /// (own pending writes are visible; other in-flight writes are not).
    ///
    /// Concurrency note: between snapshotting the version chain and checking
    /// `commit_times`, the lazy stamper may stamp a committed writer's
    /// version (`Pending(w)` → `Committed(t)`) and retire `w` from
    /// `commit_times`. The stale snapshot would then hide an acknowledged
    /// commit. Detect the signature of that race — a skipped `Pending`
    /// version whose writer is neither active nor awaiting stamping — and
    /// re-read; aborting writers can trigger a harmless extra pass.
    pub fn read(&self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let tree = self.tree(rel)?;
        let mut out: Option<Vec<u8>> = None;
        for attempt in 0..3 {
            let versions = tree.versions(key)?;
            // Newest-first scan; `racy` records a skipped Pending version
            // *newer* than the one returned.
            let mut racy = false;
            out = None;
            for v in versions.iter().rev() {
                let visible = match v.time {
                    WriteTime::Pending(writer) => {
                        let vis = writer == txn || self.commit_times.read().contains_key(&writer);
                        if !vis && !self.txns.contains(writer) {
                            // Writer is gone: either stamped meanwhile
                            // (race) or mid-abort (benign). Re-read to
                            // disambiguate.
                            racy = true;
                        }
                        vis
                    }
                    WriteTime::Committed(_) => true,
                };
                if visible {
                    if !v.end_of_life {
                        out = Some(v.value.clone());
                    }
                    break;
                }
            }
            if !racy || attempt == 2 {
                break;
            }
        }
        Ok(out)
    }

    /// Reads the latest committed version (no transaction context).
    pub fn read_latest(&self, rel: RelId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.read(TxnId::NONE, rel, key)
    }

    /// Temporal read: the value of `(rel, key)` as of time `t`, consulting
    /// both the live tree and on-disk historical (time-split) pages.
    #[allow(clippy::type_complexity)]
    pub fn read_as_of(&self, rel: RelId, key: &[u8], t: Timestamp) -> Result<Option<Vec<u8>>> {
        let mut best: Option<(Timestamp, bool, Vec<u8>)> = None;
        let mut consider = |v: &TupleVersion, commit: Timestamp| {
            if commit <= t && best.as_ref().map(|(bt, _, _)| commit > *bt).unwrap_or(true) {
                best = Some((commit, v.end_of_life, v.value.clone()));
            }
        };
        let tree = self.tree(rel)?;
        for v in tree.versions(key)? {
            if let Some(ct) = self.resolve_commit(v.time) {
                consider(&v, ct);
            }
        }
        for v in self.historical_versions(rel, key)? {
            if let Some(ct) = self.resolve_commit(v.time) {
                consider(&v, ct);
            }
        }
        Ok(best.and_then(|(_, eol, val)| if eol { None } else { Some(val) }))
    }

    /// All versions of `(rel, key)` on historical (time-split) pages still on
    /// conventional media.
    pub fn historical_versions(&self, rel: RelId, key: &[u8]) -> Result<Vec<TupleVersion>> {
        let tree = self.tree(rel)?;
        let mut out = Vec::new();
        for pgno in tree.historical_pages() {
            let frame = self.pool.fetch(pgno)?;
            let page = frame.read();
            for cell in page.cells() {
                let v = TupleVersion::decode_cell(cell)?;
                if v.key == key {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }

    /// Scans the current committed version of every key in `[lo, hi]`
    /// (inclusive), as seen by `txn`.
    #[allow(clippy::type_complexity)]
    pub fn range_current(
        &self,
        txn: TxnId,
        rel: RelId,
        lo: &[u8],
        hi: &[u8],
        f: &mut dyn FnMut(&[u8], &[u8]) -> Result<()>,
    ) -> Result<()> {
        let tree = self.tree(rel)?;
        let mut current_key: Option<Vec<u8>> = None;
        let mut current_best: Option<TupleVersion> = None;
        #[allow(clippy::type_complexity)]
        let mut emit = |key: &Option<Vec<u8>>, best: &Option<TupleVersion>| -> Result<()> {
            if let (Some(k), Some(v)) = (key, best) {
                if !v.end_of_life {
                    f(k, &v.value)?;
                }
            }
            Ok(())
        };
        tree.scan_range((lo, TimeRank::MIN), (hi, TimeRank::MAX), &mut |v| {
            if current_key.as_deref() != Some(&v.key[..]) {
                emit(&current_key, &current_best)?;
                current_key = Some(v.key.clone());
                current_best = None;
            }
            let visible = match v.time {
                WriteTime::Pending(writer) => {
                    writer == txn || self.commit_times.read().contains_key(&writer)
                }
                WriteTime::Committed(_) => true,
            };
            if visible {
                current_best = Some(v.clone());
            }
            Ok(())
        })?;
        emit(&current_key, &current_best)?;
        Ok(())
    }

    // --- retention (the Expiry relation) -------------------------------------

    /// Sets the retention period for `rel_name` (a write to the Expiry
    /// relation inside `txn`, so the change is itself version-tracked and
    /// auditable).
    pub fn set_retention(&self, txn: TxnId, rel_name: &str, period: Duration) -> Result<()> {
        let expiry =
            self.rel_id(EXPIRY_RELATION).ok_or_else(|| Error::NotFound(EXPIRY_RELATION.into()))?;
        self.write(txn, expiry, rel_name.as_bytes(), &period.0.to_le_bytes())
    }

    /// The current retention period for `rel_name`, if one is set.
    pub fn retention(&self, rel_name: &str) -> Result<Option<Duration>> {
        let expiry =
            self.rel_id(EXPIRY_RELATION).ok_or_else(|| Error::NotFound(EXPIRY_RELATION.into()))?;
        Ok(self.read_latest(expiry, rel_name.as_bytes())?.map(|v| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&v[..8]);
            Duration(u64::from_le_bytes(b))
        }))
    }

    // --- maintenance ----------------------------------------------------------

    /// Runs the lazy timestamper: stamps the pending versions of committed
    /// transactions. Returns the number of versions stamped. Stampers are
    /// serialized by an internal mutex; the queue is drained front-first so
    /// stamping respects commit order.
    pub fn run_stamper(&self) -> Result<usize> {
        let _serial = self.stamper.lock();
        self.drain_stamps(usize::MAX)
    }

    /// Incremental stamp-queue drain invoked by committers when the queue
    /// exceeds [`EngineConfig::stamp_queue_limit`]: drains it down to half
    /// the limit so a long-running workload cannot grow it without bound.
    /// Skips silently when another stamper holds the serializing mutex.
    fn maybe_drain_stamp_queue(&self) -> Result<()> {
        let limit = self.cfg.stamp_queue_limit;
        if limit == 0 || self.stamp_queue.lock().len() <= limit {
            return Ok(());
        }
        let Some(_serial) = self.stamper.try_lock() else {
            return Ok(()); // someone else is already draining
        };
        let len = self.stamp_queue.lock().len();
        let target = limit / 2;
        if len > target {
            self.drain_stamps(len - target)?;
        }
        Ok(())
    }

    /// Stamps up to `max_txns` queued transactions (front-first). Caller
    /// must hold the `stamper` mutex.
    fn drain_stamps(&self, max_txns: usize) -> Result<usize> {
        let mut stamped = 0;
        let mut drained = 0;
        while drained < max_txns {
            let Some((txn, t, writes)) = self.stamp_queue.lock().pop_front() else {
                break;
            };
            self.stamp_queue_depth.fetch_sub(1, Ordering::Relaxed);
            drained += 1;
            let mut seen: Vec<(RelId, &[u8])> = Vec::new();
            for (rel, key) in &writes {
                if seen.contains(&(*rel, key.as_slice())) {
                    continue;
                }
                seen.push((*rel, key.as_slice()));
                let tree = self.tree(*rel)?;
                let n = tree.stamp(key, txn, t)?;
                if n == 0 && std::env::var("CCDB_STAMP_DEBUG").is_ok() {
                    eprintln!("STAMP MISS {txn:?} rel={rel:?} key={key:02x?} t={t:?}");
                }
                stamped += n;
            }
            self.commit_times.write().remove(&txn);
        }
        Ok(stamped)
    }

    /// Current lazy-timestamping queue length (bounded-queue regression
    /// tests and [`EngineStats`]); lock-free.
    pub fn stamp_queue_len(&self) -> usize {
        self.stamp_queue_depth.load(Ordering::Relaxed)
    }

    /// Transactions currently in flight; lock-free (the service layer polls
    /// this from admission control and the metrics scraper).
    pub fn active_txn_count(&self) -> u64 {
        self.txns.len()
    }

    /// Flushes every page dirty since `cutoff` (the regret-interval sweep).
    pub fn flush_dirtied_before(&self, cutoff: Timestamp) -> Result<usize> {
        self.pool.flush_dirtied_before(cutoff)
    }

    /// Takes a checkpoint: drains the stamper, flushes all dirty pages,
    /// writes the checkpoint record and the master pointer, persists the
    /// catalog.
    pub fn checkpoint(&self) -> Result<()> {
        self.run_stamper()?;
        self.wal.flush()?;
        self.pool.flush_all()?;
        let active: Vec<(TxnId, Lsn)> = self.txns.active();
        let lsn = self.wal.append_flush(&WalRecord::Checkpoint { active })?;
        self.master.store(lsn)?;
        self.save_catalog()
    }

    /// Quiesces for audit: no active transactions may remain; drains the
    /// stamper and flushes everything ("waiting for the current [transactions]
    /// to finish and their dirty pages to reach disk … the audit must wait
    /// for these lazy updates to reach disk as well").
    pub fn quiesce(&self) -> Result<()> {
        if !self.txns.is_empty() {
            return Err(Error::Invalid(
                "cannot quiesce with active transactions (audit admits no new work)".into(),
            ));
        }
        self.checkpoint()
    }

    /// Simulates a crash: every volatile structure vanishes. The engine is
    /// unusable afterwards; reopen the directory to run recovery.
    pub fn crash(&self) {
        self.pool.drop_all_without_flush();
        self.wal.simulate_crash_drop_pending();
        self.txns.clear();
        self.commit_times.write().clear();
        self.stamp_queue.lock().clear();
        self.stamp_queue_depth.store(0, Ordering::Relaxed);
        self.trees.write().clear();
    }

    /// Clean shutdown: checkpoint + marker, so the next open skips the
    /// recovery protocol (and its compliance records).
    pub fn shutdown(self) -> Result<()> {
        self.checkpoint()?;
        std::fs::write(self.cfg.dir.join("clean.shutdown"), b"clean")
            .map_err(|e| Error::io("writing clean-shutdown marker", e))?;
        Ok(())
    }

    // --- introspection ---------------------------------------------------------

    /// The report of the crash recovery performed at open, if one ran.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery_report.lock().clone()
    }

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The WAL writer.
    pub fn wal(&self) -> &Arc<WalWriter> {
        &self.wal
    }

    /// The engine clock.
    pub fn clock(&self) -> &ClockRef {
        &self.clock
    }

    /// Path of the database page file (what "Mala" edits).
    pub fn db_path(&self) -> &Path {
        self.disk.path()
    }

    /// The raw disk manager (bypasses any compliance plugin — used by the
    /// auditor to see exactly what is on disk).
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Live / historical / inner page counts for a relation (the Figure 4
    /// series).
    pub fn relation_pages(&self, rel: RelId) -> Result<(usize, usize, usize)> {
        let tree = self.tree(rel)?;
        let leaves = tree.leaf_pgnos()?.len();
        let hist = tree.historical_pages().len();
        let inner = tree.inner_page_count()?;
        Ok((leaves, hist, inner))
    }

    /// Aggregate statistics. Every counter here is backed by an atomic (or
    /// the WAL/disk managers' own internal counters), so a metrics scraper
    /// can call this concurrently with committers without touching any of
    /// the engine's map or queue locks.
    pub fn stats(&self) -> EngineStats {
        let buffer = self.pool.stats();
        let (batches, txns) = self.pipeline.counters();
        EngineStats {
            buffer,
            buffer_hit_rate: buffer.hit_rate(),
            wal_bytes: self.wal.end_lsn().0,
            db_pages: self.disk.page_count(),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            group_commit_batches: batches,
            group_commit_txns: txns,
            fsyncs_saved: txns.saturating_sub(batches),
            stamp_queue_len: self.stamp_queue_depth.load(Ordering::Relaxed),
            active_txns: self.txns.len(),
        }
    }

    /// Whether there are active transactions.
    pub fn has_active_txns(&self) -> bool {
        !self.txns.is_empty()
    }

    /// Retires a page in place (rewrites it as a Free page), WAL-logged so
    /// recovery reproduces it. Used after WORM migration: the conventional-
    /// media copy of a migrated historical page is dead.
    pub fn retire_page(&self, pgno: ccdb_common::PageNo) -> Result<()> {
        let frame = self.pool.fetch(pgno)?;
        let mut page = frame.write();
        page.clear_cells();
        page.set_page_type(ccdb_storage::PageType::Free);
        let lsn = self.wal.append(&WalRecord::Page {
            txn: TxnId::NONE,
            op: PageOp::SetImage { pgno, image: page.as_bytes().to_vec() },
        })?;
        page.set_lsn(lsn);
        self.pool.mark_dirty(&mut page);
        Ok(())
    }

    /// Drops a page from a relation's historical list (after WORM
    /// migration), WAL-logged so the list survives crashes.
    pub fn forget_historical(&self, rel: RelId, pgno: ccdb_common::PageNo) -> Result<()> {
        let tree = self.tree(rel)?;
        tree.forget_historical(&[pgno]);
        self.wal.append(&WalRecord::RelMeta { rel, meta: RelMetaOp::HistoricalRemove(pgno) })?;
        Ok(())
    }

    /// Materializes a historical page from raw cells (re-migration of a
    /// WORM page back to conventional media so its expired tuples can be
    /// shredded — Section VIII: "their pages must be migrated back to
    /// regular media for shredding"). WAL-logged; returns the new page.
    pub fn adopt_historical_page(
        &self,
        rel: RelId,
        cells: &[Vec<u8>],
        split_time: u64,
    ) -> Result<ccdb_common::PageNo> {
        let (pgno, frame) = self.pool.new_page(ccdb_storage::PageType::Leaf, rel)?;
        {
            let mut page = frame.write();
            let mut max_seq = 0u16;
            for c in cells {
                page.append_cell(c)?;
                if let Ok(t) = TupleVersion::decode_cell(c) {
                    max_seq = max_seq.max(t.seq);
                }
            }
            page.bump_seq_to(max_seq.saturating_add(1));
            page.set_historical(true);
            page.set_aux(split_time);
            let lsn = self.wal.append(&WalRecord::Page {
                txn: TxnId::NONE,
                op: PageOp::SetImage { pgno, image: page.as_bytes().to_vec() },
            })?;
            page.set_lsn(lsn);
            self.pool.mark_dirty(&mut page);
        }
        let tree = self.tree(rel)?;
        tree.adopt_historical(pgno);
        self.wal.append(&WalRecord::RelMeta { rel, meta: RelMetaOp::HistoricalAdd(pgno) })?;
        Ok(pgno)
    }

    /// Removes one committed version from a specific page (vacuum on
    /// historical pages that live outside the tree), WAL-logged.
    pub fn remove_version_from_page(
        &self,
        pgno: ccdb_common::PageNo,
        key: &[u8],
        commit_time: Timestamp,
    ) -> Result<Option<TupleVersion>> {
        let frame = self.pool.fetch(pgno)?;
        let mut page = frame.write();
        for i in 0..page.cell_count() {
            let t = TupleVersion::decode_cell(page.cell(i))?;
            if t.key == key && t.time == WriteTime::Committed(commit_time) {
                page.remove_cell(i);
                // Full-page-write rule (see `BTree::log_op`): the first op
                // against a clean page logs the whole post-op image so a
                // torn flush of this page stays recoverable.
                let op = if page.dirty {
                    PageOp::RemoveCell { pgno, idx: i as u32 }
                } else {
                    PageOp::SetImage { pgno, image: page.as_bytes().to_vec() }
                };
                let lsn = self.wal.append(&WalRecord::Page { txn: TxnId::NONE, op })?;
                page.set_lsn(lsn);
                self.pool.mark_dirty(&mut page);
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    /// Flushes everything and empties the buffer pool (used by adversary
    /// tests so subsequent reads observe the on-disk bytes).
    pub fn clear_cache(&self) -> Result<()> {
        self.pool.flush_all()?;
        self.pool.drop_all_without_flush();
        Ok(())
    }
}
