//! Crash recovery: analysis, physiological redo, logical undo, re-stamping.
//!
//! The protocol (Section IV-B of the paper, adapted to this engine):
//!
//! 1. **Analysis** — scan the WAL from the last checkpoint (and back to the
//!    earliest Begin of any transaction active at that checkpoint) to learn
//!    each transaction's fate and write set.
//! 2. **Redo** — replay every physiological page op whose LSN exceeds the
//!    target page's on-page LSN. Redo is compliance-logged like any other
//!    page traffic: recovery-time pwrites flow through the plugin, which is
//!    how duplicate `NEW_TUPLE` records can arise (the auditor deduplicates).
//! 3. **Apply relation metadata** — root moves and historical-page changes
//!    logged since the checkpoint.
//! 4. **Undo** — physically remove the pending versions of loser
//!    transactions (idempotent: removing an absent version is a no-op, so a
//!    crash during undo just re-runs it).
//! 5. **Re-stamp** — stamp the pending versions of committed transactions
//!    (the lazy-timestamping queue died with the crash).
//! 6. Report `(committed, aborted)` to the compliance hooks so the logger
//!    can append the recovery-time `STAMP_TRANS`/`ABORT` records, then
//!    checkpoint.

use std::collections::{BTreeMap, HashMap};

use ccdb_btree::TimeRank;
use ccdb_common::{Error, Lsn, PageNo, RelId, Result, Timestamp, TxnId};
use ccdb_storage::Page;
use ccdb_wal::{PageOp, RelMetaOp, WalReader, WalRecord};

use crate::engine::Engine;

/// What recovery did, for tests and the compliance layer.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Whether this was an unclean restart (crash recovery proper).
    pub was_unclean: bool,
    /// Transactions whose effects were redone, with commit times.
    pub committed: Vec<(TxnId, Timestamp)>,
    /// Losers rolled back.
    pub aborted: Vec<TxnId>,
    /// Physiological ops applied during redo.
    pub redo_applied: usize,
    /// Pending versions removed during undo.
    pub undone_versions: usize,
    /// Versions stamped in the re-stamp pass.
    pub restamped: usize,
    /// Prepared-but-undecided (in-doubt) transactions re-registered into the
    /// engine for the 2PC coordinator to resolve. Their pending versions
    /// were kept, not rolled back.
    pub indoubt: Vec<TxnId>,
}

#[derive(Default)]
struct TxnFate {
    begun: bool,
    begin_lsn: Option<Lsn>,
    commit: Option<Timestamp>,
    aborted: bool,
    prepared: bool,
    writes: Vec<(RelId, Vec<u8>)>,
}

/// Runs recovery on a freshly opened engine. Called from `Engine::open`.
pub(crate) fn run(engine: &Engine, unclean: bool) -> Result<RecoveryReport> {
    if unclean {
        if let Some(h) = engine.hooks.read().clone() {
            h.on_recovery_start()?;
        }
    }
    let mut report = RecoveryReport { was_unclean: unclean, ..RecoveryReport::default() };

    let ckpt_lsn = engine.master.load();
    let mut reader = WalReader::open(engine.wal.path())?;

    // Find the scan start: the checkpoint's active transactions may have
    // Begin records before the checkpoint.
    let mut scan_start = ckpt_lsn;
    reader.seek(ckpt_lsn);
    if let Some((lsn, WalRecord::Checkpoint { active })) = reader.next_record() {
        debug_assert_eq!(lsn, ckpt_lsn);
        for (_txn, begin_lsn) in active {
            scan_start = scan_start.min(begin_lsn);
        }
    }

    // --- analysis ---------------------------------------------------------
    let mut fates: HashMap<TxnId, TxnFate> = HashMap::new();
    let mut max_txn = 0u64;
    let mut redo_ops: Vec<(Lsn, TxnId, PageOp)> = Vec::new();
    let mut rel_metas: Vec<(RelId, RelMetaOp)> = Vec::new();
    reader.seek(scan_start);
    while let Some((lsn, rec)) = reader.next_record() {
        if let Some(txn) = rec.txn() {
            max_txn = max_txn.max(txn.0);
        }
        match rec {
            WalRecord::Begin { txn } => {
                let fate = fates.entry(txn).or_default();
                fate.begun = true;
                fate.begin_lsn = Some(lsn);
            }
            WalRecord::Prepare { txn } => {
                fates.entry(txn).or_default().prepared = true;
            }
            WalRecord::Commit { txn, commit_time } => {
                fates.entry(txn).or_default().commit = Some(commit_time);
            }
            WalRecord::Abort { txn } => {
                fates.entry(txn).or_default().aborted = true;
            }
            WalRecord::Insert { txn, rel, key, .. } => {
                fates.entry(txn).or_default().writes.push((rel, key));
            }
            WalRecord::UndoInsert { .. } => {}
            WalRecord::Checkpoint { .. } => {}
            WalRecord::Page { txn, op } => {
                if lsn >= ckpt_lsn {
                    redo_ops.push((lsn, txn, op));
                }
            }
            WalRecord::RelMeta { rel, meta } => {
                if lsn >= ckpt_lsn {
                    rel_metas.push((rel, meta));
                }
            }
        }
    }
    engine.next_txn.fetch_max(max_txn, std::sync::atomic::Ordering::SeqCst);

    // --- redo ---------------------------------------------------------------
    for (lsn, _txn, op) in &redo_ops {
        if apply_op(engine, *lsn, op)? {
            report.redo_applied += 1;
        }
    }

    // --- relation metadata ----------------------------------------------------
    {
        let mut catalog = engine.catalog.write();
        for (rel, meta) in &rel_metas {
            if let Some(info) = catalog.get_mut(*rel) {
                match meta {
                    RelMetaOp::Root(p) => info.root = *p,
                    RelMetaOp::HistoricalAdd(p) => {
                        if !info.historical.contains(p) {
                            info.historical.push(*p);
                        }
                    }
                    RelMetaOp::HistoricalRemove(p) => info.historical.retain(|x| x != p),
                }
            }
        }
    }
    engine.build_trees()?;

    // --- undo -----------------------------------------------------------------
    // Deterministic order (by txn id) keeps recovery reproducible.
    let ordered: BTreeMap<TxnId, &TxnFate> = fates.iter().map(|(k, v)| (*k, v)).collect();
    for (txn, fate) in &ordered {
        // A prepared transaction with no decision record is not a loser: it
        // is in-doubt, its fate belongs to the 2PC coordinator, and its
        // pending versions must survive recovery.
        let is_loser = fate.begun && fate.commit.is_none() && !fate.aborted && !fate.prepared;
        if !is_loser {
            continue;
        }
        for (rel, key) in fate.writes.iter().rev() {
            let tree = engine.tree(*rel)?;
            while tree.remove_version(key, TimeRank::pending(*txn))?.is_some() {
                report.undone_versions += 1;
            }
        }
        engine.wal.append_flush(&WalRecord::Abort { txn: *txn })?;
        report.aborted.push(*txn);
    }

    // --- re-stamp ---------------------------------------------------------------
    for (txn, fate) in &ordered {
        let Some(ct) = fate.commit else { continue };
        report.committed.push((*txn, ct));
        let mut seen: Vec<(RelId, &[u8])> = Vec::new();
        for (rel, key) in &fate.writes {
            if seen.contains(&(*rel, key.as_slice())) {
                continue;
            }
            seen.push((*rel, key.as_slice()));
            let tree = engine.tree(*rel)?;
            report.restamped += tree.stamp(key, *txn, ct)?;
        }
    }

    // --- reinstate in-doubt transactions ---------------------------------------
    // Before the closing checkpoint, so they appear in its active list (the
    // next recovery's scan then still covers their Begin records) and so the
    // engine refuses to quiesce until the coordinator resolves them.
    for (txn, fate) in &ordered {
        if fate.prepared && fate.commit.is_none() && !fate.aborted {
            engine.reinstate_indoubt(
                *txn,
                fate.begin_lsn.unwrap_or(Lsn::ZERO),
                fate.writes.clone(),
            );
            report.indoubt.push(*txn);
        }
    }

    if unclean {
        if let Some(h) = engine.hooks.read().clone() {
            h.on_recovery_end(&report.committed, &report.aborted)?;
        }
    }
    engine.checkpoint()?;
    Ok(report)
}

/// Applies one redo op if the page's LSN shows it has not been applied.
/// Returns whether it was applied.
fn apply_op(engine: &Engine, lsn: Lsn, op: &PageOp) -> Result<bool> {
    let pgno = op.pgno();
    match op {
        PageOp::SetImage { image, .. } => {
            let mut fresh = Page::from_bytes(image)?;
            match engine.pool.fetch(pgno) {
                Ok(frame) => {
                    let mut page = frame.write();
                    if page.lsn() >= lsn {
                        return Ok(false);
                    }
                    fresh.set_lsn(lsn);
                    fresh.dirty = true;
                    fresh.dirtied_at = page.dirtied_at;
                    *page = fresh;
                    engine.pool.mark_dirty(&mut page);
                    Ok(true)
                }
                Err(_) => {
                    // Allocated but never written before the crash.
                    fresh.set_lsn(lsn);
                    engine.pool.overwrite(pgno, fresh)?;
                    Ok(true)
                }
            }
        }
        PageOp::InsertCell { idx, cell, .. } => with_page(engine, pgno, lsn, |page| {
            if *idx as usize > page.cell_count() {
                return Err(Error::corruption(format!(
                    "redo insert at slot {idx} beyond cell count {} on {pgno}",
                    page.cell_count()
                )));
            }
            page.insert_cell(*idx as usize, cell)?;
            // The tuple-order counter is page metadata not covered by the
            // cell op itself: restore it, or post-recovery inserts would
            // reuse order numbers (breaking the sequential read hash and
            // the auditor's duplicate detection).
            if let Ok(t) = ccdb_storage::TupleVersion::decode_cell(cell) {
                page.bump_seq_to(t.seq + 1);
            }
            Ok(())
        }),
        PageOp::ReplaceCell { idx, cell, .. } => with_page(engine, pgno, lsn, |page| {
            if *idx as usize >= page.cell_count() {
                return Err(Error::corruption(format!(
                    "redo replace at slot {idx} beyond cell count {} on {pgno}",
                    page.cell_count()
                )));
            }
            page.replace_cell(*idx as usize, cell)
        }),
        PageOp::RemoveCell { idx, .. } => with_page(engine, pgno, lsn, |page| {
            if *idx as usize >= page.cell_count() {
                return Err(Error::corruption(format!(
                    "redo remove at slot {idx} beyond cell count {} on {pgno}",
                    page.cell_count()
                )));
            }
            page.remove_cell(*idx as usize);
            Ok(())
        }),
    }
}

fn with_page(
    engine: &Engine,
    pgno: PageNo,
    lsn: Lsn,
    f: impl FnOnce(&mut Page) -> Result<()>,
) -> Result<bool> {
    let frame = engine.pool.fetch(pgno)?;
    let mut page = frame.write();
    if page.lsn() >= lsn {
        return Ok(false);
    }
    f(&mut page)?;
    page.set_lsn(lsn);
    engine.pool.mark_dirty(&mut page);
    Ok(true)
}
