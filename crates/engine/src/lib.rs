//! The transaction-time DBMS engine — the "Berkeley DB plus temporal
//! support" substrate the paper builds on.
//!
//! What it provides:
//!
//! * **Transaction-time relations**: every `INSERT`/`UPDATE` creates a new
//!   physical tuple version; `DELETE` inserts an end-of-life version; the
//!   full version history of every tuple stays queryable (`AS OF` reads).
//! * **Lazy timestamping** (Salzberg): versions are written with the
//!   transaction id and stamped with the commit time later by a background
//!   stamper — "a transaction-time DBMS often uses the transaction ID as a
//!   temporary commit time value in a tuple, and does a lazy update of the
//!   commit time later" (Section IV).
//! * **Transactions** with WAL-backed atomicity: steal/no-force buffering,
//!   physiological redo, logical (idempotent) undo, fuzzy-free checkpoints,
//!   and crash recovery (`Engine::open` recovers automatically; a crash is
//!   simulated by dropping every volatile structure).
//! * **Compliance seams**: the page store can be wrapped (the pread/pwrite
//!   plugin), trees report structure modifications, and [`EngineHooks`]
//!   delivers transaction lifecycle and recovery events — everything
//!   `ccdb-core` needs to implement the log-consistent architecture without
//!   touching this crate's internals.
//!
//! Concurrency model: the engine executes transactions from many threads.
//! Commits run through a **group-commit pipeline** (`commit` module): a
//! leader flushes the WAL batch with one fsync + one WORM tail-mirror
//! append while followers park, and finalization (commit-time publication,
//! stamping work, compliance `on_commit`) drains in strict ticket order so
//! the compliance log's `STAMP_TRANS` order matches commit-time order. The
//! engine's maps are `RwLock`/sharded so readers never contend with
//! writers; see the lock hierarchy documented on [`Engine`] and DESIGN.md
//! §9. A lock manager is still out of scope: writers to the *same* key
//! should be externally coordinated; isolation anomalies are not part of
//! the threat model or the evaluation.

pub mod catalog;
pub(crate) mod commit;
pub mod engine;
pub mod hooks;
pub mod recovery;

pub use catalog::{Catalog, RelationInfo};
pub use engine::{Engine, EngineConfig, EngineStats, DEFAULT_STAMP_QUEUE_LIMIT};
pub use hooks::EngineHooks;
pub use recovery::RecoveryReport;
