//! The relation catalog and its on-disk representation.
//!
//! The catalog file is rewritten synchronously on relation creation and at
//! every checkpoint; drift between checkpoints (root moves, historical-page
//! changes) is recovered from `RelMeta` WAL records, so the catalog never
//! needs page-level crash consistency of its own.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use ccdb_btree::SplitPolicy;
use ccdb_common::{ByteReader, ByteWriter, Error, PageNo, RelId, Result};

/// Catalog entry for one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationInfo {
    /// Relation id.
    pub rel: RelId,
    /// Human-readable name (unique).
    pub name: String,
    /// Split policy of the relation's tree.
    pub policy: SplitPolicy,
    /// Root page of the live tree.
    pub root: PageNo,
    /// Historical (time-split) pages still on conventional media.
    pub historical: Vec<PageNo>,
}

/// The in-memory catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: BTreeMap<RelId, RelationInfo>,
    by_name: BTreeMap<String, RelId>,
    next_rel: u32,
    /// Transaction-id high-water mark persisted at checkpoints so ids are
    /// never reused across restarts (pending versions embed them).
    pub txn_high_water: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog { next_rel: 1, ..Catalog::default() }
    }

    /// Registers a new relation.
    pub fn create(&mut self, name: &str, policy: SplitPolicy, root: PageNo) -> Result<RelId> {
        if self.by_name.contains_key(name) {
            return Err(Error::Invalid(format!("relation {name:?} already exists")));
        }
        let rel = RelId(self.next_rel);
        self.next_rel += 1;
        self.relations.insert(
            rel,
            RelationInfo { rel, name: name.to_string(), policy, root, historical: Vec::new() },
        );
        self.by_name.insert(name.to_string(), rel);
        Ok(rel)
    }

    /// Looks a relation up by name.
    pub fn by_name(&self, name: &str) -> Option<&RelationInfo> {
        self.by_name.get(name).and_then(|r| self.relations.get(r))
    }

    /// Looks a relation up by id.
    pub fn get(&self, rel: RelId) -> Option<&RelationInfo> {
        self.relations.get(&rel)
    }

    /// Mutable access by id.
    pub fn get_mut(&mut self, rel: RelId) -> Option<&mut RelationInfo> {
        self.relations.get_mut(&rel)
    }

    /// All relations, in id order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationInfo> {
        self.relations.values()
    }

    /// Serializes the catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(0xCCDBCA7A); // magic
        w.put_u32(self.next_rel);
        w.put_u64(self.txn_high_water);
        w.put_u32(self.relations.len() as u32);
        for info in self.relations.values() {
            w.put_u32(info.rel.0);
            w.put_str(&info.name);
            match info.policy {
                SplitPolicy::KeyOnly => w.put_u8(0),
                SplitPolicy::TimeSplit { threshold } => {
                    w.put_u8(1);
                    w.put_u64(threshold.to_bits());
                }
            }
            w.put_u64(info.root.0);
            w.put_u32(info.historical.len() as u32);
            for p in &info.historical {
                w.put_u64(p.0);
            }
        }
        w.into_vec()
    }

    /// Deserializes a catalog.
    pub fn decode(bytes: &[u8]) -> Result<Catalog> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != 0xCCDBCA7A {
            return Err(Error::corruption("bad catalog magic"));
        }
        let next_rel = r.get_u32()?;
        let txn_high_water = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut cat = Catalog { next_rel, txn_high_water, ..Catalog::default() };
        for _ in 0..n {
            let rel = RelId(r.get_u32()?);
            let name = r.get_str()?;
            let policy = match r.get_u8()? {
                0 => SplitPolicy::KeyOnly,
                1 => SplitPolicy::TimeSplit { threshold: f64::from_bits(r.get_u64()?) },
                t => return Err(Error::corruption(format!("bad split policy tag {t}"))),
            };
            let root = PageNo(r.get_u64()?);
            let hn = r.get_u32()? as usize;
            let mut historical = Vec::with_capacity(hn.min(1 << 20));
            for _ in 0..hn {
                historical.push(PageNo(r.get_u64()?));
            }
            cat.by_name.insert(name.clone(), rel);
            cat.relations.insert(rel, RelationInfo { rel, name, policy, root, historical });
        }
        Ok(cat)
    }

    /// Writes the catalog to `path` (atomically via a temp file + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        let tmp: PathBuf = path.with_extension("tmp");
        fs::write(&tmp, self.encode()).map_err(|e| Error::io("writing catalog", e))?;
        fs::rename(&tmp, path).map_err(|e| Error::io("installing catalog", e))?;
        Ok(())
    }

    /// Loads the catalog from `path`, or returns an empty catalog if the file
    /// does not exist (fresh database).
    pub fn load(path: &Path) -> Result<Catalog> {
        match fs::read(path) {
            Ok(bytes) => Catalog::decode(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Catalog::new()),
            Err(e) => Err(Error::io("reading catalog", e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        let a = c.create("warehouse", SplitPolicy::KeyOnly, PageNo(1)).unwrap();
        let b = c.create("stock", SplitPolicy::TimeSplit { threshold: 0.5 }, PageNo(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(c.by_name("warehouse").unwrap().rel, a);
        assert_eq!(c.get(b).unwrap().name, "stock");
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.create("x", SplitPolicy::KeyOnly, PageNo(1)).unwrap();
        assert!(c.create("x", SplitPolicy::KeyOnly, PageNo(2)).is_err());
    }

    #[test]
    fn roundtrip_with_policies_and_historical() {
        let mut c = Catalog::new();
        c.create("a", SplitPolicy::KeyOnly, PageNo(1)).unwrap();
        let b = c.create("b", SplitPolicy::TimeSplit { threshold: 0.75 }, PageNo(2)).unwrap();
        c.get_mut(b).unwrap().historical = vec![PageNo(9), PageNo(11)];
        c.get_mut(b).unwrap().root = PageNo(42);
        c.txn_high_water = 77;
        let back = Catalog::decode(&c.encode()).unwrap();
        assert_eq!(back.txn_high_water, 77);
        let bi = back.get(b).unwrap();
        assert_eq!(bi.root, PageNo(42));
        assert_eq!(bi.historical, vec![PageNo(9), PageNo(11)]);
        assert_eq!(bi.policy, SplitPolicy::TimeSplit { threshold: 0.75 });
        // Ids continue past the loaded ones.
        let mut back = back;
        let c2 = back.create("c", SplitPolicy::KeyOnly, PageNo(3)).unwrap();
        assert!(c2.0 > b.0);
    }

    #[test]
    fn save_load_file() {
        let path = std::env::temp_dir().join(format!(
            "ccdb-catalog-{}-{}.bin",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let mut c = Catalog::new();
        c.create("t", SplitPolicy::KeyOnly, PageNo(5)).unwrap();
        c.save(&path).unwrap();
        let back = Catalog::load(&path).unwrap();
        assert_eq!(back.by_name("t").unwrap().root, PageNo(5));
        std::fs::remove_file(&path).unwrap();
        // Missing file → fresh catalog.
        let fresh = Catalog::load(&path).unwrap();
        assert!(fresh.by_name("t").is_none());
    }

    #[test]
    fn corrupt_catalog_rejected() {
        assert!(Catalog::decode(b"garbage").is_err());
        let mut c = Catalog::new().encode();
        c[0] ^= 0xFF;
        assert!(Catalog::decode(&c).is_err());
    }
}
