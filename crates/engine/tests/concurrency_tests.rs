//! Concurrency-correctness tests for the group-commit pipeline, the sharded
//! transaction table, and the bounded lazy-timestamping queue.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, Timestamp, VirtualClock};
use ccdb_engine::{Engine, EngineConfig};
use ccdb_storage::WriteTime;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-conc-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn clock() -> Arc<VirtualClock> {
    Arc::new(VirtualClock::ticking(Duration::from_micros(7)))
}

/// Commit timestamps handed to 8 concurrent committer threads are globally
/// unique and strictly increasing in hand-out order (the pipeline assigns
/// them inside one critical section with the WAL append and the ticket).
#[test]
fn concurrent_commits_get_unique_monotone_timestamps() {
    let (d, c) = (TempDir::new("mono"), clock());
    let e = Arc::new(Engine::open(EngineConfig::new(&d.0, 128).no_fsync(), c.clone()).unwrap());
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut handles = Vec::new();
    for w in 0..8u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            let mut times = Vec::new();
            for i in 0..50u32 {
                let t = e.begin().unwrap();
                e.write(t, rel, format!("w{w}-{i}").as_bytes(), b"v").unwrap();
                times.push(e.commit(t).unwrap());
            }
            times
        }));
    }
    let mut all: Vec<Timestamp> = Vec::new();
    for h in handles {
        let times = h.join().unwrap();
        // Per-thread hand-out order is strictly increasing.
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        all.extend(times);
    }
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "commit timestamps must be globally unique");
    let stats = e.stats();
    assert_eq!(stats.commits, 400);
    assert_eq!(stats.group_commit_txns, 400, "all commits ride the pipeline");
    assert!(stats.group_commit_batches >= 1 && stats.group_commit_batches <= 400);
    assert_eq!(stats.fsyncs_saved, stats.group_commit_txns - stats.group_commit_batches);
}

/// The lazy-timestamping queue is bounded: a long commit streak without an
/// explicit `run_stamper` call may overshoot the limit transiently but is
/// drained incrementally by committers, never growing without bound.
#[test]
fn stamp_queue_stays_bounded_without_explicit_stamper() {
    let (d, c) = (TempDir::new("bound"), clock());
    let limit = 16usize;
    let mut cfg = EngineConfig::new(&d.0, 128).no_fsync();
    cfg.stamp_queue_limit = limit;
    let e = Engine::open(cfg, c.clone()).unwrap();
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut peak = 0usize;
    for i in 0..400u32 {
        let t = e.begin().unwrap();
        e.write(t, rel, format!("k{i:05}").as_bytes(), b"v").unwrap();
        e.commit(t).unwrap();
        peak = peak.max(e.stamp_queue_len());
    }
    assert!(
        peak <= limit + 1,
        "queue peaked at {peak}, limit {limit}: incremental drain not engaged"
    );
    assert!(peak > limit / 2, "test must actually stress the bound (peak {peak})");
    // A full stamper pass leaves nothing behind.
    e.run_stamper().unwrap();
    assert_eq!(e.stamp_queue_len(), 0);
}

/// Incremental draining (tight bound, so committers do most of the stamping)
/// stamps every version exactly once, in commit order: the stamped versions
/// carry their commit timestamps in insert order.
#[test]
fn incremental_drain_stamps_in_commit_order() {
    let (d, c) = (TempDir::new("order"), clock());
    let mut cfg = EngineConfig::new(&d.0, 128).no_fsync();
    cfg.stamp_queue_limit = 4;
    let e = Engine::open(cfg, c.clone()).unwrap();
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut commits = Vec::new();
    for i in 0..64u32 {
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", &i.to_le_bytes()).unwrap();
        commits.push(e.commit(t).unwrap());
    }
    e.run_stamper().unwrap();
    let tree = e.tree(rel).unwrap();
    let versions = tree.versions(b"k").unwrap();
    assert_eq!(versions.len(), 64);
    for (v, expect) in versions.iter().zip(&commits) {
        assert_eq!(v.time, WriteTime::Committed(*expect), "stamped out of commit order");
    }
}

/// Abort racing against commits on other threads: aborted transactions leave
/// no orphan pending versions behind, and committed ones all stamp.
#[test]
fn abort_commit_races_leave_no_orphan_pending_versions() {
    let (d, c) = (TempDir::new("orphan"), clock());
    let e = Arc::new(Engine::open(EngineConfig::new(&d.0, 128).no_fsync(), c.clone()).unwrap());
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut handles = Vec::new();
    for w in 0..6u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..80u32 {
                let t = e.begin().unwrap();
                // Each thread hammers a small private key set so aborts and
                // commits interleave on the same keys.
                e.write(t, rel, format!("w{w}-{}", i % 5).as_bytes(), &i.to_le_bytes()).unwrap();
                if i % 3 == 0 {
                    e.abort(t).unwrap();
                } else {
                    e.commit(t).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    e.run_stamper().unwrap();
    let tree = e.tree(rel).unwrap();
    let mut pending = 0usize;
    let mut total = 0usize;
    tree.scan_all(&mut |v| {
        total += 1;
        if matches!(v.time, WriteTime::Pending(_)) {
            pending += 1;
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(pending, 0, "orphan pending versions survived abort/commit races");
    // 6 threads × 80 txns, 1/3 aborted (i % 3 == 0 → 27 of 80).
    assert_eq!(total, 6 * (80 - 27));
    let stats = e.stats();
    assert_eq!(stats.commits, 6 * 53);
    assert_eq!(stats.aborts, 6 * 27);
}

/// Group-commit batching is observable: many concurrent committers with a
/// batch-formation window produce fewer flushes than transactions.
#[test]
fn group_commit_batches_concurrent_committers() {
    let (d, c) = (TempDir::new("batch"), clock());
    let cfg = EngineConfig::new(&d.0, 128).no_fsync().group_commit_window(2000, 8);
    let e = Arc::new(Engine::open(cfg, c.clone()).unwrap());
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut handles = Vec::new();
    for w in 0..8u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25u32 {
                let t = e.begin().unwrap();
                e.write(t, rel, format!("w{w}-{i}").as_bytes(), b"v").unwrap();
                e.commit(t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = e.stats();
    assert_eq!(stats.group_commit_txns, 200);
    assert!(
        stats.group_commit_batches < stats.group_commit_txns,
        "no batching observed: {} batches for {} txns",
        stats.group_commit_batches,
        stats.group_commit_txns
    );
    assert!(stats.fsyncs_saved > 0);
}

/// Disabling group commit still yields correct (unique, monotone) timestamps
/// — the ticket-ordered finalize phase is shared by both paths.
#[test]
fn no_group_commit_path_still_correct() {
    let (d, c) = (TempDir::new("nogc"), clock());
    let e = Arc::new(
        Engine::open(EngineConfig::new(&d.0, 128).no_fsync().no_group_commit(), c.clone()).unwrap(),
    );
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut handles = Vec::new();
    for w in 0..4u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            let mut times = Vec::new();
            for i in 0..40u32 {
                let t = e.begin().unwrap();
                e.write(t, rel, format!("w{w}-{i}").as_bytes(), b"v").unwrap();
                times.push(e.commit(t).unwrap());
            }
            times
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n);
    assert_eq!(e.stats().group_commit_batches, 0, "baseline path must not batch");
}
