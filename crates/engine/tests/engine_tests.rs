//! End-to-end engine behavior: transactions, temporal reads, lazy stamping,
//! checkpoints, and crash recovery.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, Timestamp, TxnId, VirtualClock};
use ccdb_engine::{Engine, EngineConfig, EngineHooks};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-engine-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn clock() -> Arc<VirtualClock> {
    Arc::new(VirtualClock::ticking(Duration::from_micros(7)))
}

fn open(dir: &TempDir, clock: &Arc<VirtualClock>) -> Engine {
    Engine::open(EngineConfig::new(&dir.0, 128), clock.clone()).unwrap()
}

#[test]
fn write_commit_read_roundtrip() {
    let (d, c) = (TempDir::new("basic"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("accounts", SplitPolicy::KeyOnly).unwrap();
    let t1 = e.begin().unwrap();
    e.write(t1, rel, b"alice", b"100").unwrap();
    // Own write visible before commit; invisible to others.
    assert_eq!(e.read(t1, rel, b"alice").unwrap(), Some(b"100".to_vec()));
    assert_eq!(e.read_latest(rel, b"alice").unwrap(), None);
    e.commit(t1).unwrap();
    assert_eq!(e.read_latest(rel, b"alice").unwrap(), Some(b"100".to_vec()));
}

#[test]
fn abort_erases_pending_writes() {
    let (d, c) = (TempDir::new("abort"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t1 = e.begin().unwrap();
    e.write(t1, rel, b"k", b"committed").unwrap();
    e.commit(t1).unwrap();
    let t2 = e.begin().unwrap();
    e.write(t2, rel, b"k", b"doomed").unwrap();
    e.write(t2, rel, b"other", b"also-doomed").unwrap();
    e.abort(t2).unwrap();
    assert_eq!(e.read_latest(rel, b"k").unwrap(), Some(b"committed".to_vec()));
    assert_eq!(e.read_latest(rel, b"other").unwrap(), None);
    // The aborted version is physically gone.
    let tree = e.tree(rel).unwrap();
    assert_eq!(tree.versions(b"other").unwrap().len(), 0);
    assert_eq!(tree.versions(b"k").unwrap().len(), 1);
}

#[test]
fn update_creates_new_version_delete_creates_eol() {
    let (d, c) = (TempDir::new("versions"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut commit_times = Vec::new();
    for v in ["v1", "v2", "v3"] {
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", v.as_bytes()).unwrap();
        commit_times.push(e.commit(t).unwrap());
    }
    let t = e.begin().unwrap();
    e.delete(t, rel, b"k").unwrap();
    let del_time = e.commit(t).unwrap();
    assert_eq!(e.read_latest(rel, b"k").unwrap(), None);
    // Temporal reads see history.
    assert_eq!(e.read_as_of(rel, b"k", commit_times[0]).unwrap(), Some(b"v1".to_vec()));
    assert_eq!(e.read_as_of(rel, b"k", commit_times[2]).unwrap(), Some(b"v3".to_vec()));
    assert_eq!(e.read_as_of(rel, b"k", del_time).unwrap(), None);
    assert_eq!(e.read_as_of(rel, b"k", Timestamp(commit_times[0].0 - 1)).unwrap(), None);
    // Four physical versions exist (3 values + end-of-life).
    assert_eq!(e.tree(rel).unwrap().versions(b"k").unwrap().len(), 4);
}

#[test]
fn commit_times_strictly_increase() {
    let (d, c) = (TempDir::new("mono"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut last = Timestamp(0);
    for i in 0..50 {
        let t = e.begin().unwrap();
        e.write(t, rel, format!("k{i}").as_bytes(), b"v").unwrap();
        let ct = e.commit(t).unwrap();
        assert!(ct > last, "commit {i}: {ct:?} !> {last:?}");
        last = ct;
    }
}

#[test]
fn stamper_resolves_pending_versions() {
    let (d, c) = (TempDir::new("stamper"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = e.begin().unwrap();
    e.write(t, rel, b"k", b"v").unwrap();
    let ct = e.commit(t).unwrap();
    // Before stamping, the version is physically pending.
    let tree = e.tree(rel).unwrap();
    assert!(tree.versions(b"k").unwrap()[0].time.pending().is_some());
    // But reads already see it as committed.
    assert_eq!(e.read_latest(rel, b"k").unwrap(), Some(b"v".to_vec()));
    let n = e.run_stamper().unwrap();
    assert_eq!(n, 1);
    assert_eq!(
        tree.versions(b"k").unwrap()[0].time.committed(),
        Some(ct),
        "stamped with the commit time"
    );
}

#[test]
fn range_scan_sees_current_versions_only() {
    let (d, c) = (TempDir::new("range"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..20 {
        let t = e.begin().unwrap();
        e.write(t, rel, format!("k{i:02}").as_bytes(), b"old").unwrap();
        e.commit(t).unwrap();
    }
    // Update some, delete one.
    let t = e.begin().unwrap();
    e.write(t, rel, b"k05", b"new").unwrap();
    e.delete(t, rel, b"k06").unwrap();
    e.commit(t).unwrap();
    let mut seen = Vec::new();
    e.range_current(TxnId::NONE, rel, b"k03", b"k07", &mut |k, v| {
        seen.push((String::from_utf8(k.to_vec()).unwrap(), v.to_vec()));
        Ok(())
    })
    .unwrap();
    assert_eq!(
        seen,
        vec![
            ("k03".to_string(), b"old".to_vec()),
            ("k04".to_string(), b"old".to_vec()),
            ("k05".to_string(), b"new".to_vec()),
            ("k07".to_string(), b"old".to_vec()),
        ]
    );
}

#[test]
fn committed_data_survives_crash_before_flush() {
    let (d, c) = (TempDir::new("crash1"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        let t = e.begin().unwrap();
        e.write(t, rel, b"durable", b"yes").unwrap();
        e.commit(t).unwrap();
        // No checkpoint, no flush: data only in the (flushed) WAL.
        e.crash();
    }
    let e = open(&d, &c);
    let report = e.recovery_report().expect("crash recovery ran");
    assert!(report.was_unclean);
    assert_eq!(report.committed.len(), 1);
    let rel = e.rel_id("r").unwrap();
    assert_eq!(e.read_latest(rel, b"durable").unwrap(), Some(b"yes".to_vec()));
}

#[test]
fn in_flight_txn_rolled_back_on_recovery() {
    let (d, c) = (TempDir::new("crash2"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        let t1 = e.begin().unwrap();
        e.write(t1, rel, b"committed", b"1").unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin().unwrap();
        e.write(t2, rel, b"loser", b"2").unwrap();
        // Steal: force the loser's dirty pages to disk before the crash.
        e.pool().flush_all().unwrap();
        e.crash();
    }
    let e = open(&d, &c);
    let report = e.recovery_report().unwrap();
    assert_eq!(report.aborted.len(), 1);
    let rel = e.rel_id("r").unwrap();
    assert_eq!(e.read_latest(rel, b"committed").unwrap(), Some(b"1".to_vec()));
    assert_eq!(e.read_latest(rel, b"loser").unwrap(), None);
    assert!(e.tree(rel).unwrap().versions(b"loser").unwrap().is_empty());
}

#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    let (d, c) = (TempDir::new("crash3"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        for i in 0..50 {
            let t = e.begin().unwrap();
            e.write(t, rel, format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            e.commit(t).unwrap();
        }
        e.crash();
    }
    for _round in 0..3 {
        let e = open(&d, &c);
        let rel = e.rel_id("r").unwrap();
        for i in 0..50 {
            assert_eq!(
                e.read_latest(rel, format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        e.crash(); // crash again right after recovery
    }
}

#[test]
fn crash_after_many_splits_recovers_tree_roots() {
    let (d, c) = (TempDir::new("crash-splits"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        for i in 0..800 {
            let t = e.begin().unwrap();
            e.write(t, rel, format!("{i:06}").as_bytes(), &[0u8; 32]).unwrap();
            e.commit(t).unwrap();
        }
        e.crash();
    }
    let e = open(&d, &c);
    let rel = e.rel_id("r").unwrap();
    for i in (0..800).step_by(53) {
        assert_eq!(
            e.read_latest(rel, format!("{i:06}").as_bytes()).unwrap(),
            Some(vec![0u8; 32]),
            "key {i}"
        );
    }
    // The tree is structurally intact.
    let tree = e.tree(rel).unwrap();
    assert!(ccdb_btree::check_tree(e.pool(), &tree).unwrap().is_empty());
}

#[test]
fn clean_shutdown_skips_crash_recovery() {
    let (d, c) = (TempDir::new("clean"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", b"v").unwrap();
        e.commit(t).unwrap();
        e.shutdown().unwrap();
    }
    let e = open(&d, &c);
    let report = e.recovery_report().unwrap();
    assert!(!report.was_unclean, "clean restart must not claim crash recovery");
    let rel = e.rel_id("r").unwrap();
    assert_eq!(e.read_latest(rel, b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn checkpoint_bounds_recovery_work() {
    let (d, c) = (TempDir::new("ckpt"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        for i in 0..100 {
            let t = e.begin().unwrap();
            e.write(t, rel, format!("k{i}").as_bytes(), b"v").unwrap();
            e.commit(t).unwrap();
        }
        e.checkpoint().unwrap();
        // A little more work after the checkpoint.
        let t = e.begin().unwrap();
        e.write(t, rel, b"post-ckpt", b"v").unwrap();
        e.commit(t).unwrap();
        e.crash();
    }
    let e = open(&d, &c);
    let report = e.recovery_report().unwrap();
    // Only post-checkpoint transactions are re-examined.
    assert_eq!(report.committed.len(), 1);
    let rel = e.rel_id("r").unwrap();
    assert_eq!(e.read_latest(rel, b"post-ckpt").unwrap(), Some(b"v".to_vec()));
    assert_eq!(e.read_latest(rel, b"k50").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn recovery_restamps_committed_pending_versions() {
    let (d, c) = (TempDir::new("restamp"), clock());
    let ct;
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", b"v").unwrap();
        ct = e.commit(t).unwrap();
        // Crash before the stamper ran.
        e.crash();
    }
    let e = open(&d, &c);
    let rel = e.rel_id("r").unwrap();
    let versions = e.tree(rel).unwrap().versions(b"k").unwrap();
    assert_eq!(versions.len(), 1);
    assert_eq!(versions[0].time.committed(), Some(ct), "recovery stamped the version");
}

#[test]
fn txn_ids_not_reused_after_restart() {
    let (d, c) = (TempDir::new("txnid"), clock());
    let last_txn;
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", b"v").unwrap();
        e.commit(t).unwrap();
        last_txn = t;
        e.crash();
    }
    let e = open(&d, &c);
    let t2 = e.begin().unwrap();
    assert!(t2 > last_txn, "{t2} must exceed pre-crash {last_txn}");
}

#[test]
fn expiry_relation_tracks_retention() {
    let (d, c) = (TempDir::new("expiry"), clock());
    let e = open(&d, &c);
    e.create_relation("orders", SplitPolicy::KeyOnly).unwrap();
    assert_eq!(e.retention("orders").unwrap(), None);
    let t = e.begin().unwrap();
    e.set_retention(t, "orders", Duration::from_mins(90)).unwrap();
    e.commit(t).unwrap();
    assert_eq!(e.retention("orders").unwrap(), Some(Duration::from_mins(90)));
    // Retention changes are themselves versioned.
    let t = e.begin().unwrap();
    e.set_retention(t, "orders", Duration::from_mins(180)).unwrap();
    e.commit(t).unwrap();
    assert_eq!(e.retention("orders").unwrap(), Some(Duration::from_mins(180)));
    let expiry = e.rel_id(ccdb_engine::engine::EXPIRY_RELATION).unwrap();
    assert_eq!(e.tree(expiry).unwrap().versions(b"orders").unwrap().len(), 2);
}

#[test]
fn engine_hooks_receive_lifecycle_events() {
    use ccdb_common::sync::Mutex;
    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }
    impl EngineHooks for Recorder {
        fn on_begin(&self, txn: TxnId) -> ccdb_common::Result<()> {
            self.events.lock().push(format!("begin:{}", txn.0));
            Ok(())
        }
        fn on_commit(&self, txn: TxnId, _t: Timestamp) -> ccdb_common::Result<()> {
            self.events.lock().push(format!("commit:{}", txn.0));
            Ok(())
        }
        fn on_abort(&self, txn: TxnId) -> ccdb_common::Result<()> {
            self.events.lock().push(format!("abort:{}", txn.0));
            Ok(())
        }
    }
    let (d, c) = (TempDir::new("hooks"), clock());
    let rec = Arc::new(Recorder::default());
    let e = Engine::open_wrapped(
        EngineConfig::new(&d.0, 64),
        c.clone(),
        |disk| disk,
        Some(rec.clone()),
        None,
    )
    .unwrap();
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t1 = e.begin().unwrap();
    e.write(t1, rel, b"a", b"1").unwrap();
    e.commit(t1).unwrap();
    let t2 = e.begin().unwrap();
    e.write(t2, rel, b"b", b"2").unwrap();
    e.abort(t2).unwrap();
    let events = rec.events.lock().clone();
    assert_eq!(
        events,
        vec![
            format!("begin:{}", t1.0),
            format!("commit:{}", t1.0),
            format!("begin:{}", t2.0),
            format!("abort:{}", t2.0),
        ]
    );
}

#[test]
fn recovery_hooks_fire_on_unclean_restart() {
    use ccdb_common::sync::Mutex;
    #[derive(Default)]
    struct Recorder {
        started: Mutex<bool>,
        committed: Mutex<usize>,
        aborted: Mutex<usize>,
    }
    impl EngineHooks for Recorder {
        fn on_recovery_start(&self) -> ccdb_common::Result<()> {
            *self.started.lock() = true;
            Ok(())
        }
        fn on_recovery_end(
            &self,
            committed: &[(TxnId, Timestamp)],
            aborted: &[TxnId],
        ) -> ccdb_common::Result<()> {
            *self.committed.lock() = committed.len();
            *self.aborted.lock() = aborted.len();
            Ok(())
        }
    }
    let (d, c) = (TempDir::new("rec-hooks"), clock());
    {
        let e = open(&d, &c);
        let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
        let t1 = e.begin().unwrap();
        e.write(t1, rel, b"a", b"1").unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin().unwrap();
        e.write(t2, rel, b"b", b"2").unwrap();
        // Force the loser's records to durability (steal) so recovery has a
        // loser to roll back — a loser with no durable trace never existed.
        e.pool().flush_all().unwrap();
        e.crash();
    }
    let rec = Arc::new(Recorder::default());
    let _e = Engine::open_wrapped(
        EngineConfig::new(&d.0, 64),
        c.clone(),
        |disk| disk,
        Some(rec.clone()),
        None,
    )
    .unwrap();
    assert!(*rec.started.lock());
    assert_eq!(*rec.committed.lock(), 1);
    assert_eq!(*rec.aborted.lock(), 1);
}

#[test]
fn small_cache_exercises_steal_and_reads_stay_correct() {
    let (d, c) = (TempDir::new("tiny-cache"), clock());
    let e = Engine::open(EngineConfig::new(&d.0, 8), c.clone()).unwrap();
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..400 {
        let t = e.begin().unwrap();
        e.write(t, rel, format!("{i:05}").as_bytes(), &[i as u8; 64]).unwrap();
        e.commit(t).unwrap();
    }
    let stats = e.stats();
    assert!(stats.buffer.evictions > 0, "cache of 8 pages must evict: {stats:?}");
    for i in (0..400).step_by(29) {
        assert_eq!(
            e.read_latest(rel, format!("{i:05}").as_bytes()).unwrap(),
            Some(vec![i as u8; 64])
        );
    }
}

#[test]
fn as_of_reads_span_time_split_pages() {
    let (d, c) = (TempDir::new("asof-tsb"), clock());
    let e = open(&d, &c);
    let rel = e.create_relation("hot", SplitPolicy::TimeSplit { threshold: 0.9 }).unwrap();
    let mut times = Vec::new();
    for round in 0..150u32 {
        let t = e.begin().unwrap();
        for k in 0..8 {
            e.write(t, rel, format!("k{k}").as_bytes(), &round.to_le_bytes()).unwrap();
        }
        times.push(e.commit(t).unwrap());
        e.run_stamper().unwrap();
    }
    let tree = e.tree(rel).unwrap();
    assert!(!tree.historical_pages().is_empty(), "expected WORM-candidate pages");
    // Old values are reachable via historical pages.
    let mid = times[40];
    let v = e.read_as_of(rel, b"k3", mid).unwrap().expect("historical value");
    assert_eq!(u32::from_le_bytes(v.try_into().unwrap()), 40);
    // Current value comes from the live tree.
    assert_eq!(
        u32::from_le_bytes(e.read_latest(rel, b"k3").unwrap().unwrap().try_into().unwrap()),
        149
    );
}
