//! Property test: crash recovery never loses committed data, never leaks
//! uncommitted data, and is idempotent — for random workloads, random crash
//! points, and random flush interleavings.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, VirtualClock};
use ccdb_engine::{Engine, EngineConfig};
use proptest::prelude::*;

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-prop-rec-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One transaction in the generated workload.
#[derive(Clone, Debug)]
struct GenTxn {
    /// (key, value, delete?) writes.
    writes: Vec<(u8, u8, bool)>,
    /// Commit (true) or abort (false).
    commit: bool,
    /// Flush all dirty pages afterwards (exercises steal).
    flush_after: bool,
    /// Checkpoint afterwards.
    checkpoint_after: bool,
}

fn txn_strategy() -> impl Strategy<Value = GenTxn> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), prop::bool::weighted(0.1)), 1..6),
        prop::bool::weighted(0.8),
        prop::bool::weighted(0.3),
        prop::bool::weighted(0.1),
    )
        .prop_map(|(writes, commit, flush_after, checkpoint_after)| GenTxn {
            writes,
            commit,
            flush_after,
            checkpoint_after,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn crash_recovery_preserves_exactly_the_committed_state(
        txns in proptest::collection::vec(txn_strategy(), 1..40),
        crash_after in any::<usize>(),
        in_flight in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
    ) {
        let dir = TempDir::new();
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(5)));
        let mut expected: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let crash_at = crash_after % (txns.len() + 1);
        {
            let e = Engine::open(EngineConfig::new(&dir.0, 32).no_fsync(), clock.clone()).unwrap();
            let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
            for gt in txns.iter().take(crash_at) {
                let t = e.begin().unwrap();
                let mut staged: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
                for (k, v, del) in &gt.writes {
                    let key = vec![b'a', *k];
                    if *del {
                        e.delete(t, rel, &key).unwrap();
                        staged.push((key, None));
                    } else {
                        let val = vec![*v; 24];
                        e.write(t, rel, &key, &val).unwrap();
                        staged.push((key, Some(val)));
                    }
                }
                if gt.commit {
                    e.commit(t).unwrap();
                    for (k, v) in staged {
                        expected.insert(k, v);
                    }
                } else {
                    e.abort(t).unwrap();
                }
                if gt.flush_after {
                    e.pool().flush_all().unwrap();
                }
                if gt.checkpoint_after {
                    e.checkpoint().unwrap();
                }
            }
            // A transaction still in flight at the crash.
            let loser = e.begin().unwrap();
            for (k, v) in &in_flight {
                e.write(loser, rel, &[b'a', *k], &[*v; 24]).unwrap();
            }
            e.pool().flush_all().unwrap(); // steal its pages
            e.crash();
        }
        // Recover (twice — the second pass must be a no-op).
        for _round in 0..2 {
            let e = Engine::open(EngineConfig::new(&dir.0, 32).no_fsync(), clock.clone()).unwrap();
            let rel = e.rel_id("r").unwrap();
            for (key, want) in &expected {
                let got = e.read_latest(rel, key).unwrap();
                prop_assert_eq!(&got, want, "key {:?} after recovery", key);
            }
            // No pending versions survive recovery.
            let tree = e.tree(rel).unwrap();
            tree.scan_all(&mut |t| {
                assert!(t.time.committed().is_some(), "unstamped survivor: {t:?}");
                Ok(())
            })
            .unwrap();
            // Structural integrity.
            let errs = ccdb_btree::check_tree(e.pool(), &tree).unwrap();
            prop_assert!(errs.is_empty(), "{errs:?}");
            e.crash();
        }
    }
}
