//! Property test: crash recovery never loses committed data, never leaks
//! uncommitted data, and is idempotent — for random workloads, random crash
//! points, and random flush interleavings.
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`]; each case's seed is printed on
//! failure for deterministic replay. (Deterministic *I/O-level* crash
//! injection lives in `tests/crash_torture.rs` at the workspace root.)

#![cfg(feature = "proptest")]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, SplitMix64, VirtualClock};
use ccdb_engine::{Engine, EngineConfig};

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-prop-rec-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One transaction in the generated workload.
#[derive(Clone, Debug)]
struct GenTxn {
    /// (key, value, delete?) writes.
    writes: Vec<(u8, u8, bool)>,
    /// Commit (true) or abort (false).
    commit: bool,
    /// Flush all dirty pages afterwards (exercises steal).
    flush_after: bool,
    /// Checkpoint afterwards.
    checkpoint_after: bool,
}

fn gen_txn(rng: &mut SplitMix64) -> GenTxn {
    let n = rng.gen_range(1..6usize);
    let writes = (0..n)
        .map(|_| (rng.gen_range(0..=255u8), rng.gen_range(0..=255u8), rng.gen_bool(0.1)))
        .collect();
    GenTxn {
        writes,
        commit: rng.gen_bool(0.8),
        flush_after: rng.gen_bool(0.3),
        checkpoint_after: rng.gen_bool(0.1),
    }
}

#[test]
fn crash_recovery_preserves_exactly_the_committed_state() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::seed_from_u64(0x4EC0_0000 + case);
        let txns: Vec<GenTxn> = (0..rng.gen_range(1..40usize)).map(|_| gen_txn(&mut rng)).collect();
        let crash_at = rng.gen_range(0..=txns.len());
        let in_flight: Vec<(u8, u8)> = (0..rng.gen_range(0..4usize))
            .map(|_| (rng.gen_range(0..=255u8), rng.gen_range(0..=255u8)))
            .collect();

        let dir = TempDir::new();
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(5)));
        let mut expected: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        {
            let e = Engine::open(EngineConfig::new(&dir.0, 32).no_fsync(), clock.clone()).unwrap();
            let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
            for gt in txns.iter().take(crash_at) {
                let t = e.begin().unwrap();
                let mut staged: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
                for (k, v, del) in &gt.writes {
                    let key = vec![b'a', *k];
                    if *del {
                        e.delete(t, rel, &key).unwrap();
                        staged.push((key, None));
                    } else {
                        let val = vec![*v; 24];
                        e.write(t, rel, &key, &val).unwrap();
                        staged.push((key, Some(val)));
                    }
                }
                if gt.commit {
                    e.commit(t).unwrap();
                    for (k, v) in staged {
                        expected.insert(k, v);
                    }
                } else {
                    e.abort(t).unwrap();
                }
                if gt.flush_after {
                    e.pool().flush_all().unwrap();
                }
                if gt.checkpoint_after {
                    e.checkpoint().unwrap();
                }
            }
            // A transaction still in flight at the crash.
            let loser = e.begin().unwrap();
            for (k, v) in &in_flight {
                e.write(loser, rel, &[b'a', *k], &[*v; 24]).unwrap();
            }
            e.pool().flush_all().unwrap(); // steal its pages
            e.crash();
        }
        // Recover (twice — the second pass must be a no-op).
        for _round in 0..2 {
            let e = Engine::open(EngineConfig::new(&dir.0, 32).no_fsync(), clock.clone()).unwrap();
            let rel = e.rel_id("r").unwrap();
            for (key, want) in &expected {
                let got = e.read_latest(rel, key).unwrap();
                assert_eq!(&got, want, "case seed {case}: key {key:?} after recovery");
            }
            // No pending versions survive recovery.
            let tree = e.tree(rel).unwrap();
            tree.scan_all(&mut |t| {
                assert!(
                    t.time.committed().is_some(),
                    "case seed {case}: unstamped survivor: {t:?}"
                );
                Ok(())
            })
            .unwrap();
            // Structural integrity.
            let errs = ccdb_btree::check_tree(e.pool(), &tree).unwrap();
            assert!(errs.is_empty(), "case seed {case}: {errs:?}");
            e.crash();
        }
    }
}
