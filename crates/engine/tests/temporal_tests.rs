//! Temporal (AS-OF) query semantics: the transaction-time guarantees that
//! make the compliance story meaningful to a prosecutor ("the entire
//! version history of every tuple is maintained in the database").

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, Timestamp, TxnId, VirtualClock};
use ccdb_engine::{Engine, EngineConfig};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-temporal-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(tag: &str) -> (Engine, Arc<VirtualClock>, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(10)));
    let e = Engine::open(EngineConfig::new(&d.0, 128).no_fsync(), clock.clone()).unwrap();
    (e, clock, d)
}

#[test]
fn as_of_tracks_the_full_update_timeline() {
    let (e, _c, _d) = setup("timeline");
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut times = Vec::new();
    for v in 0..10u8 {
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", &[v]).unwrap();
        times.push(e.commit(t).unwrap());
    }
    e.run_stamper().unwrap();
    // Exactly at each commit time, the corresponding value is visible.
    for (i, ct) in times.iter().enumerate() {
        assert_eq!(e.read_as_of(rel, b"k", *ct).unwrap(), Some(vec![i as u8]));
        // Just before each commit time, the previous value (or nothing).
        let before = Timestamp(ct.0 - 1);
        let expect = if i == 0 { None } else { Some(vec![i as u8 - 1]) };
        assert_eq!(e.read_as_of(rel, b"k", before).unwrap(), expect, "i={i}");
    }
    // Far future: the latest value.
    assert_eq!(e.read_as_of(rel, b"k", Timestamp::MAX).unwrap(), Some(vec![9]));
}

#[test]
fn as_of_respects_deletion_and_reinsertion() {
    let (e, _c, _d) = setup("del-reins");
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = e.begin().unwrap();
    e.write(t, rel, b"k", b"first-life").unwrap();
    let t_born = e.commit(t).unwrap();
    let t = e.begin().unwrap();
    e.delete(t, rel, b"k").unwrap();
    let t_died = e.commit(t).unwrap();
    let t = e.begin().unwrap();
    e.write(t, rel, b"k", b"second-life").unwrap();
    let t_reborn = e.commit(t).unwrap();
    e.run_stamper().unwrap();
    assert_eq!(e.read_as_of(rel, b"k", t_born).unwrap(), Some(b"first-life".to_vec()));
    assert_eq!(e.read_as_of(rel, b"k", t_died).unwrap(), None);
    assert_eq!(e.read_as_of(rel, b"k", t_reborn).unwrap(), Some(b"second-life".to_vec()));
    assert_eq!(e.read_latest(rel, b"k").unwrap(), Some(b"second-life".to_vec()));
}

#[test]
fn as_of_sees_committed_but_unstamped_versions() {
    // Lazy timestamping must be invisible to temporal reads: a version whose
    // physical time is still a transaction id resolves through the commit
    // table.
    let (e, _c, _d) = setup("unstamped");
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t = e.begin().unwrap();
    e.write(t, rel, b"k", b"v").unwrap();
    let ct = e.commit(t).unwrap();
    // No stamper run: physically pending.
    assert_eq!(e.read_as_of(rel, b"k", ct).unwrap(), Some(b"v".to_vec()));
    assert_eq!(e.read_as_of(rel, b"k", Timestamp(ct.0 - 1)).unwrap(), None);
}

#[test]
fn uncommitted_writes_are_invisible_to_everyone_else() {
    let (e, _c, _d) = setup("isolation");
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let t1 = e.begin().unwrap();
    e.write(t1, rel, b"k", b"pending").unwrap();
    // Other transaction context and the no-context read both miss it.
    let t2 = e.begin().unwrap();
    assert_eq!(e.read(t2, rel, b"k").unwrap(), None);
    assert_eq!(e.read_latest(rel, b"k").unwrap(), None);
    assert_eq!(e.read_as_of(rel, b"k", Timestamp::MAX).unwrap(), None);
    // The writer sees its own write.
    assert_eq!(e.read(t1, rel, b"k").unwrap(), Some(b"pending".to_vec()));
    e.commit(t2).unwrap();
    e.commit(t1).unwrap();
    assert_eq!(e.read_latest(rel, b"k").unwrap(), Some(b"pending".to_vec()));
}

#[test]
fn range_scans_are_transactionally_consistent_with_own_writes() {
    let (e, _c, _d) = setup("range-own");
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    for i in 0..10u8 {
        let t = e.begin().unwrap();
        e.write(t, rel, &[b'k', i], b"committed").unwrap();
        e.commit(t).unwrap();
    }
    let t = e.begin().unwrap();
    e.write(t, rel, &[b'k', 3], b"mine").unwrap();
    e.write(t, rel, &[b'k', 99], b"mine-new").unwrap();
    e.delete(t, rel, &[b'k', 5]).unwrap();
    let mut seen = Vec::new();
    e.range_current(t, rel, &[b'k', 0], &[b'k', 200], &mut |k, v| {
        seen.push((k.to_vec(), v.to_vec()));
        Ok(())
    })
    .unwrap();
    assert_eq!(seen.len(), 10, "{seen:?}"); // 10 committed - 1 deleted + 1 new
    assert!(seen.contains(&(vec![b'k', 3], b"mine".to_vec())));
    assert!(seen.contains(&(vec![b'k', 99], b"mine-new".to_vec())));
    assert!(!seen.iter().any(|(k, _)| k == &vec![b'k', 5]));
    e.abort(t).unwrap();
    // After the abort, the world is unchanged.
    let mut seen2 = Vec::new();
    e.range_current(TxnId::NONE, rel, &[b'k', 0], &[b'k', 200], &mut |k, v| {
        seen2.push((k.to_vec(), v.to_vec()));
        Ok(())
    })
    .unwrap();
    assert_eq!(seen2.len(), 10);
    assert!(seen2.contains(&(vec![b'k', 5], b"committed".to_vec())));
    assert!(seen2.contains(&(vec![b'k', 3], b"committed".to_vec())));
}

#[test]
fn histories_survive_restart_and_recovery() {
    let (e, clock, d) = setup("restart");
    let rel = e.create_relation("r", SplitPolicy::KeyOnly).unwrap();
    let mut times = Vec::new();
    for v in 0..5u8 {
        let t = e.begin().unwrap();
        e.write(t, rel, b"k", &[v]).unwrap();
        times.push(e.commit(t).unwrap());
    }
    e.crash();
    drop(e);
    let e = Engine::open(EngineConfig::new(&d.0, 128).no_fsync(), clock.clone()).unwrap();
    let rel = e.rel_id("r").unwrap();
    for (i, ct) in times.iter().enumerate() {
        assert_eq!(e.read_as_of(rel, b"k", *ct).unwrap(), Some(vec![i as u8]), "i={i}");
    }
}
