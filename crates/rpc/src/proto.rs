//! The wire protocol: typed request/response enums and length-prefixed
//! binary framing.
//!
//! # Framing
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by the payload. Payloads are bounded by [`MAX_FRAME_BYTES`] so
//! a corrupt or hostile length prefix cannot make the peer allocate
//! gigabytes. The payload itself is a tag byte plus tag-specific fields,
//! encoded with the workspace codec (`ByteWriter`/`ByteReader` — the same
//! little-endian, length-checked primitives every on-disk structure uses).
//!
//! # Versioning
//!
//! [`Hello`](Request::Hello) opens every connection: it carries the
//! protocol version and the tenant the session binds to. The server
//! rejects version mismatches with a typed error instead of guessing.

use std::io::{Read, Write};

use ccdb_common::{ByteReader, ByteWriter, Error, RelId, Result, Timestamp, TxnId};

/// Protocol version; bumped on any incompatible wire change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload (16 MiB): defends both peers against
/// hostile/corrupt length prefixes.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Typed error codes carried by [`Response::Err`] — the client maps them
/// back to [`Error`] variants so server-side failures keep their meaning
/// across the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control rejected the request (too many in-flight
    /// transactions); back off and retry.
    AdmissionRejected = 1,
    /// The named item does not exist.
    NotFound = 2,
    /// Transaction handle invalid (already committed/aborted/reaped).
    InvalidTransaction = 3,
    /// Request malformed or violates a usage contract.
    Invalid = 4,
    /// Compliance processing halted the server (WORM unreachable etc.).
    ComplianceHalt = 5,
    /// Session not bound to a tenant yet (missing `Hello`).
    NoSession = 6,
    /// Anything else (I/O, corruption, internal).
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> ErrorCode {
        match v {
            1 => ErrorCode::AdmissionRejected,
            2 => ErrorCode::NotFound,
            3 => ErrorCode::InvalidTransaction,
            4 => ErrorCode::Invalid,
            5 => ErrorCode::ComplianceHalt,
            6 => ErrorCode::NoSession,
            _ => ErrorCode::Internal,
        }
    }

    /// Maps a server-side [`Error`] to its wire code.
    pub fn from_error(e: &Error) -> ErrorCode {
        match e {
            Error::NotFound(_) => ErrorCode::NotFound,
            Error::InvalidTransactionState(_) => ErrorCode::InvalidTransaction,
            Error::Invalid(_) => ErrorCode::Invalid,
            Error::ComplianceHalt(_) => ErrorCode::ComplianceHalt,
            _ => ErrorCode::Internal,
        }
    }

    /// Reconstructs a client-side [`Error`] carrying this code's meaning.
    pub fn to_error(self, msg: &str) -> Error {
        match self {
            ErrorCode::AdmissionRejected => Error::Invalid(format!("admission rejected: {msg}")),
            ErrorCode::NotFound => Error::NotFound(msg.to_string()),
            ErrorCode::InvalidTransaction => Error::InvalidTransactionState(msg.to_string()),
            ErrorCode::Invalid => Error::Invalid(msg.to_string()),
            ErrorCode::ComplianceHalt => Error::ComplianceHalt(msg.to_string()),
            ErrorCode::NoSession => Error::Invalid(format!("no session: {msg}")),
            ErrorCode::Internal => Error::Invalid(format!("server error: {msg}")),
        }
    }
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Opens the session: protocol version check + tenant binding. The
    /// tenant is created on first use.
    Hello { version: u32, tenant: String },
    /// Liveness probe.
    Ping,
    /// Begins a transaction; the handle is owned by this session.
    Begin,
    /// Writes (inserts or updates) `key` in `rel` under `txn`.
    Write { txn: TxnId, rel: RelId, key: Vec<u8>, value: Vec<u8> },
    /// Deletes `key` (transaction-time delete: the version chain remains).
    Delete { txn: TxnId, rel: RelId, key: Vec<u8> },
    /// Reads `key` as of `txn`'s snapshot.
    Read { txn: TxnId, rel: RelId, key: Vec<u8> },
    /// Commits `txn`; responds with the commit timestamp.
    Commit { txn: TxnId },
    /// Aborts `txn`.
    Abort { txn: TxnId },
    /// Creates (or returns) the relation `name`. `time_split_threshold`
    /// NaN means key-only splits; otherwise time-split at the threshold.
    CreateRelation { name: String, time_split_threshold: f64 },
    /// Resolves a relation name to its id.
    RelId { name: String },
    /// Sets the retention period (µs) of relation `name` under `txn`.
    SetRetention { txn: TxnId, name: String, period_us: u64 },
    /// Runs a compliance audit of this session's tenant. `serial` selects
    /// the single-pass oracle instead of the parallel pipeline.
    Audit { serial: bool },
    /// Migrates expired tuples of `rel` to WORM.
    Migrate { rel: RelId },
    /// Engine + service counters for this session's tenant.
    Stats,
    /// Reads `key`'s latest version as sealed by the last clean audit,
    /// returning a client-verifiable inclusion proof against the signed
    /// epoch head (checkable offline with the `ccdb-verifier` crate).
    ReadVerified { rel: RelId, key: Vec<u8> },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `Hello`/`Ping`/`Abort`/`SetRetention` acknowledgement.
    Ok,
    /// `Begin` result.
    TxnBegun { txn: TxnId },
    /// `Commit` result.
    Committed { commit_time: Timestamp },
    /// `Read` result (`None` = key absent at the snapshot).
    Value { value: Option<Vec<u8>> },
    /// `CreateRelation` / `RelId` result.
    Rel { rel: RelId },
    /// `Audit` result.
    AuditDone { clean: bool, violations: u32, tuples_final: u64, records_scanned: u64 },
    /// `Migrate` result.
    Migrated { tuples: u64 },
    /// `Stats` result (a subset that crosses the wire; the full registry
    /// is on the metrics endpoint).
    Stats {
        commits: u64,
        aborts: u64,
        active_txns: u64,
        group_commit_batches: u64,
        wal_bytes: u64,
        epoch: u64,
    },
    /// `ReadVerified` result: the signed epoch head (always present once an
    /// epoch has sealed) plus, when the key exists in the sealed epoch, the
    /// encoded inclusion proof. `proof` is `None` for a key absent from the
    /// sealed state; `value` is `None` when the key is absent *or* its
    /// latest sealed version is a deletion (the proof proves the tombstone).
    ReadProof {
        /// The sealed epoch the proof speaks for.
        epoch: u64,
        /// The proven value (`None`: absent key or proven deletion).
        value: Option<Vec<u8>>,
        /// Encoded epoch head (the signed bytes).
        head: Vec<u8>,
        /// Lamport signature over the head.
        sig: Vec<u8>,
        /// The signing one-time public key.
        pubkey: Vec<u8>,
        /// Encoded inclusion proof (`None` = key absent from the epoch).
        proof: Option<Vec<u8>>,
    },
    /// Typed failure.
    Err { code: ErrorCode, msg: String },
}

impl Request {
    /// Encodes into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Hello { version, tenant } => {
                w.put_u8(0);
                w.put_u32(*version);
                w.put_str(tenant);
            }
            Request::Ping => w.put_u8(1),
            Request::Begin => w.put_u8(2),
            Request::Write { txn, rel, key, value } => {
                w.put_u8(3);
                w.put_u64(txn.0);
                w.put_u32(rel.0);
                w.put_len_bytes(key);
                w.put_len_bytes(value);
            }
            Request::Delete { txn, rel, key } => {
                w.put_u8(4);
                w.put_u64(txn.0);
                w.put_u32(rel.0);
                w.put_len_bytes(key);
            }
            Request::Read { txn, rel, key } => {
                w.put_u8(5);
                w.put_u64(txn.0);
                w.put_u32(rel.0);
                w.put_len_bytes(key);
            }
            Request::Commit { txn } => {
                w.put_u8(6);
                w.put_u64(txn.0);
            }
            Request::Abort { txn } => {
                w.put_u8(7);
                w.put_u64(txn.0);
            }
            Request::CreateRelation { name, time_split_threshold } => {
                w.put_u8(8);
                w.put_str(name);
                w.put_u64(time_split_threshold.to_bits());
            }
            Request::RelId { name } => {
                w.put_u8(9);
                w.put_str(name);
            }
            Request::SetRetention { txn, name, period_us } => {
                w.put_u8(10);
                w.put_u64(txn.0);
                w.put_str(name);
                w.put_u64(*period_us);
            }
            Request::Audit { serial } => {
                w.put_u8(11);
                w.put_u8(u8::from(*serial));
            }
            Request::Migrate { rel } => {
                w.put_u8(12);
                w.put_u32(rel.0);
            }
            Request::Stats => w.put_u8(13),
            Request::ReadVerified { rel, key } => {
                w.put_u8(14);
                w.put_u32(rel.0);
                w.put_len_bytes(key);
            }
        }
        w.into_vec()
    }

    /// Decodes a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Request> {
        let mut r = ByteReader::new(buf);
        let req = match r.get_u8()? {
            0 => Request::Hello { version: r.get_u32()?, tenant: r.get_str()? },
            1 => Request::Ping,
            2 => Request::Begin,
            3 => Request::Write {
                txn: TxnId(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                key: r.get_len_bytes()?.to_vec(),
                value: r.get_len_bytes()?.to_vec(),
            },
            4 => Request::Delete {
                txn: TxnId(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                key: r.get_len_bytes()?.to_vec(),
            },
            5 => Request::Read {
                txn: TxnId(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                key: r.get_len_bytes()?.to_vec(),
            },
            6 => Request::Commit { txn: TxnId(r.get_u64()?) },
            7 => Request::Abort { txn: TxnId(r.get_u64()?) },
            8 => Request::CreateRelation {
                name: r.get_str()?,
                time_split_threshold: f64::from_bits(r.get_u64()?),
            },
            9 => Request::RelId { name: r.get_str()? },
            10 => Request::SetRetention {
                txn: TxnId(r.get_u64()?),
                name: r.get_str()?,
                period_us: r.get_u64()?,
            },
            11 => Request::Audit { serial: r.get_u8()? != 0 },
            12 => Request::Migrate { rel: RelId(r.get_u32()?) },
            13 => Request::Stats,
            14 => {
                Request::ReadVerified { rel: RelId(r.get_u32()?), key: r.get_len_bytes()?.to_vec() }
            }
            t => return Err(Error::corruption(format!("rpc: unknown request tag {t}"))),
        };
        if !r.is_exhausted() {
            return Err(Error::corruption(format!(
                "rpc: {} trailing bytes after request",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Ok => w.put_u8(0),
            Response::TxnBegun { txn } => {
                w.put_u8(1);
                w.put_u64(txn.0);
            }
            Response::Committed { commit_time } => {
                w.put_u8(2);
                w.put_u64(commit_time.0);
            }
            Response::Value { value } => {
                w.put_u8(3);
                match value {
                    Some(v) => {
                        w.put_u8(1);
                        w.put_len_bytes(v);
                    }
                    None => w.put_u8(0),
                }
            }
            Response::Rel { rel } => {
                w.put_u8(4);
                w.put_u32(rel.0);
            }
            Response::AuditDone { clean, violations, tuples_final, records_scanned } => {
                w.put_u8(5);
                w.put_u8(u8::from(*clean));
                w.put_u32(*violations);
                w.put_u64(*tuples_final);
                w.put_u64(*records_scanned);
            }
            Response::Migrated { tuples } => {
                w.put_u8(6);
                w.put_u64(*tuples);
            }
            Response::Stats {
                commits,
                aborts,
                active_txns,
                group_commit_batches,
                wal_bytes,
                epoch,
            } => {
                w.put_u8(7);
                w.put_u64(*commits);
                w.put_u64(*aborts);
                w.put_u64(*active_txns);
                w.put_u64(*group_commit_batches);
                w.put_u64(*wal_bytes);
                w.put_u64(*epoch);
            }
            Response::ReadProof { epoch, value, head, sig, pubkey, proof } => {
                w.put_u8(8);
                w.put_u64(*epoch);
                match value {
                    Some(v) => {
                        w.put_u8(1);
                        w.put_len_bytes(v);
                    }
                    None => w.put_u8(0),
                }
                w.put_len_bytes(head);
                w.put_len_bytes(sig);
                w.put_len_bytes(pubkey);
                match proof {
                    Some(p) => {
                        w.put_u8(1);
                        w.put_len_bytes(p);
                    }
                    None => w.put_u8(0),
                }
            }
            Response::Err { code, msg } => {
                w.put_u8(255);
                w.put_u8(*code as u8);
                w.put_str(msg);
            }
        }
        w.into_vec()
    }

    /// Decodes a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Response> {
        let mut r = ByteReader::new(buf);
        let resp = match r.get_u8()? {
            0 => Response::Ok,
            1 => Response::TxnBegun { txn: TxnId(r.get_u64()?) },
            2 => Response::Committed { commit_time: Timestamp(r.get_u64()?) },
            3 => Response::Value {
                value: if r.get_u8()? != 0 { Some(r.get_len_bytes()?.to_vec()) } else { None },
            },
            4 => Response::Rel { rel: RelId(r.get_u32()?) },
            5 => Response::AuditDone {
                clean: r.get_u8()? != 0,
                violations: r.get_u32()?,
                tuples_final: r.get_u64()?,
                records_scanned: r.get_u64()?,
            },
            6 => Response::Migrated { tuples: r.get_u64()? },
            7 => Response::Stats {
                commits: r.get_u64()?,
                aborts: r.get_u64()?,
                active_txns: r.get_u64()?,
                group_commit_batches: r.get_u64()?,
                wal_bytes: r.get_u64()?,
                epoch: r.get_u64()?,
            },
            8 => Response::ReadProof {
                epoch: r.get_u64()?,
                value: if r.get_u8()? != 0 { Some(r.get_len_bytes()?.to_vec()) } else { None },
                head: r.get_len_bytes()?.to_vec(),
                sig: r.get_len_bytes()?.to_vec(),
                pubkey: r.get_len_bytes()?.to_vec(),
                proof: if r.get_u8()? != 0 { Some(r.get_len_bytes()?.to_vec()) } else { None },
            },
            255 => Response::Err { code: ErrorCode::from_u8(r.get_u8()?), msg: r.get_str()? },
            t => return Err(Error::corruption(format!("rpc: unknown response tag {t}"))),
        };
        if !r.is_exhausted() {
            return Err(Error::corruption(format!(
                "rpc: {} trailing bytes after response",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(Error::Invalid(format!(
            "rpc: frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte bound",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len).map_err(|e| Error::io("rpc: write frame length", e))?;
    w.write_all(payload).map_err(|e| Error::io("rpc: write frame payload", e))?;
    w.flush().map_err(|e| Error::io("rpc: flush frame", e))?;
    Ok(())
}

/// Reads one length-prefixed frame. Returns `None` on clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::corruption("rpc: EOF inside frame length"));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::io("rpc: read frame length", e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(Error::corruption(format!(
            "rpc: frame length {len} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| Error::io("rpc: read frame payload", e))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).unwrap();
        let payload = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp.encode()).unwrap();
        let payload = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello { version: PROTOCOL_VERSION, tenant: "alpha".into() });
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Begin);
        roundtrip_req(Request::Write {
            txn: TxnId(7),
            rel: RelId(3),
            key: b"k".to_vec(),
            value: vec![0u8; 1000],
        });
        roundtrip_req(Request::Delete { txn: TxnId(7), rel: RelId(3), key: b"k".to_vec() });
        roundtrip_req(Request::Read { txn: TxnId(9), rel: RelId(1), key: vec![] });
        roundtrip_req(Request::Commit { txn: TxnId(u64::MAX) });
        roundtrip_req(Request::Abort { txn: TxnId(0) });
        roundtrip_req(Request::CreateRelation { name: "r".into(), time_split_threshold: 0.5 });
        roundtrip_req(Request::RelId { name: "r".into() });
        roundtrip_req(Request::SetRetention { txn: TxnId(1), name: "r".into(), period_us: 1 });
        roundtrip_req(Request::Audit { serial: true });
        roundtrip_req(Request::Migrate { rel: RelId(2) });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::ReadVerified { rel: RelId(5), key: b"acct-0042".to_vec() });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::TxnBegun { txn: TxnId(1) });
        roundtrip_resp(Response::Committed { commit_time: Timestamp(123) });
        roundtrip_resp(Response::Value { value: Some(b"v".to_vec()) });
        roundtrip_resp(Response::Value { value: None });
        roundtrip_resp(Response::Rel { rel: RelId(5) });
        roundtrip_resp(Response::AuditDone {
            clean: true,
            violations: 0,
            tuples_final: 42,
            records_scanned: 100,
        });
        roundtrip_resp(Response::Migrated { tuples: 9 });
        roundtrip_resp(Response::Stats {
            commits: 1,
            aborts: 2,
            active_txns: 3,
            group_commit_batches: 4,
            wal_bytes: 5,
            epoch: 6,
        });
        roundtrip_resp(Response::ReadProof {
            epoch: 3,
            value: Some(b"balance=12".to_vec()),
            head: vec![0xAB; 96],
            sig: vec![0xCD; 64],
            pubkey: vec![0xEF; 32],
            proof: Some(vec![0x42; 512]),
        });
        // Proven deletion: an inclusion proof whose tuple carries no value.
        roundtrip_resp(Response::ReadProof {
            epoch: 0,
            value: None,
            head: vec![1, 2, 3],
            sig: vec![4],
            pubkey: vec![5],
            proof: Some(vec![6, 7]),
        });
        // Absent key: the signed head alone, no proof body.
        roundtrip_resp(Response::ReadProof {
            epoch: 9,
            value: None,
            head: vec![9; 80],
            sig: vec![8; 64],
            pubkey: vec![7; 32],
            proof: None,
        });
        roundtrip_resp(Response::Err {
            code: ErrorCode::AdmissionRejected,
            msg: "too busy".into(),
        });
    }

    #[test]
    fn nan_split_threshold_survives() {
        let req = Request::CreateRelation { name: "r".into(), time_split_threshold: f64::NAN };
        let payload = req.encode();
        match Request::decode(&payload).unwrap() {
            Request::CreateRelation { time_split_threshold, .. } => {
                assert!(time_split_threshold.is_nan())
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Hello { version: 1, tenant: "t".into() }.encode()).unwrap();
        assert!(buf.len() > 6);
        assert!(read_frame(&mut &buf[..2]).is_err(), "EOF inside length prefix");
        assert!(read_frame(&mut &buf[..6]).is_err(), "EOF inside payload");
        assert!(read_frame(&mut &[][..]).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let buf = u32::MAX.to_le_bytes();
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn error_codes_map_back_to_error_variants() {
        assert!(matches!(
            ErrorCode::from_error(&Error::NotFound("x".into())).to_error("x"),
            Error::NotFound(_)
        ));
        assert!(matches!(
            ErrorCode::InvalidTransaction.to_error("y"),
            Error::InvalidTransactionState(_)
        ));
        assert!(matches!(ErrorCode::ComplianceHalt.to_error("z"), Error::ComplianceHalt(_)));
    }
}
