//! RPC: the service boundary's wire protocol and client.
//!
//! The workspace is fully offline, so the stack is hand-rolled on
//! `std::net`: length-prefixed binary frames (the workspace codec, not an
//! external serializer) over blocking TCP, a thread per connection on the
//! server side, and a fixed-capacity connection pool on the client side.
//! See DESIGN.md §11 for the protocol and session model.

pub mod client;
pub mod proto;

pub use client::{is_admission_rejected, Client, ClientPool, PooledClient};
pub use proto::{
    read_frame, write_frame, ErrorCode, Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
