//! Blocking client: one framed connection per [`Client`], plus a
//! fixed-size [`ClientPool`] that checks connections out to worker threads
//! and discards broken ones instead of returning them.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use ccdb_common::sync::{Condvar, Mutex};
use ccdb_common::{Error, RelId, Result, Timestamp, TxnId};

use crate::proto::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};

/// A single framed connection bound to one tenant.
pub struct Client {
    stream: TcpStream,
    tenant: String,
}

impl Client {
    /// Connects and performs the `Hello` handshake, binding the session to
    /// `tenant` (created server-side on first use).
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| Error::io("rpc: connect", e))?;
        stream.set_nodelay(true).map_err(|e| Error::io("rpc: nodelay", e))?;
        let mut client = Client { stream, tenant: tenant.to_string() };
        match client
            .call(Request::Hello { version: PROTOCOL_VERSION, tenant: tenant.to_string() })?
        {
            Response::Ok => Ok(client),
            other => Err(Error::Invalid(format!("rpc: unexpected hello response {other:?}"))),
        }
    }

    /// The tenant this session is bound to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Sets the per-call read timeout (`None` = block forever).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout).map_err(|e| Error::io("rpc: timeout", e))
    }

    /// Sends one request and reads one response. A transport-level failure
    /// leaves the connection unusable (the caller should drop it).
    pub fn call(&mut self, req: Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::Invalid("rpc: server closed the connection".into()))?;
        Response::decode(&payload)
    }

    /// Like [`Client::call`] but converts `Response::Err` into `Err(..)`.
    fn call_ok(&mut self, req: Request) -> Result<Response> {
        match self.call(req)? {
            Response::Err { code, msg } => Err(code.to_error(&msg)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call_ok(Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Begins a transaction. Fails with the admission-rejected error when
    /// the server's in-flight bound is reached.
    pub fn begin(&mut self) -> Result<TxnId> {
        match self.call_ok(Request::Begin)? {
            Response::TxnBegun { txn } => Ok(txn),
            other => Err(unexpected("begin", &other)),
        }
    }

    /// Writes `key` → `value` in `rel` under `txn`.
    pub fn write(&mut self, txn: TxnId, rel: RelId, key: &[u8], value: &[u8]) -> Result<()> {
        let req = Request::Write { txn, rel, key: key.to_vec(), value: value.to_vec() };
        match self.call_ok(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("write", &other)),
        }
    }

    /// Deletes `key` in `rel` under `txn`.
    pub fn delete(&mut self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<()> {
        match self.call_ok(Request::Delete { txn, rel, key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("delete", &other)),
        }
    }

    /// Reads `key` in `rel` as of `txn`'s snapshot.
    pub fn read(&mut self, txn: TxnId, rel: RelId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.call_ok(Request::Read { txn, rel, key: key.to_vec() })? {
            Response::Value { value } => Ok(value),
            other => Err(unexpected("read", &other)),
        }
    }

    /// Commits `txn`, returning its commit timestamp.
    pub fn commit(&mut self, txn: TxnId) -> Result<Timestamp> {
        match self.call_ok(Request::Commit { txn })? {
            Response::Committed { commit_time } => Ok(commit_time),
            other => Err(unexpected("commit", &other)),
        }
    }

    /// Aborts `txn`.
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        match self.call_ok(Request::Abort { txn })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("abort", &other)),
        }
    }

    /// Creates (or opens) relation `name` with key-only splits.
    pub fn create_relation(&mut self, name: &str) -> Result<RelId> {
        let req =
            Request::CreateRelation { name: name.to_string(), time_split_threshold: f64::NAN };
        match self.call_ok(req)? {
            Response::Rel { rel } => Ok(rel),
            other => Err(unexpected("create_relation", &other)),
        }
    }

    /// Resolves relation `name`.
    pub fn rel_id(&mut self, name: &str) -> Result<RelId> {
        match self.call_ok(Request::RelId { name: name.to_string() })? {
            Response::Rel { rel } => Ok(rel),
            other => Err(unexpected("rel_id", &other)),
        }
    }

    /// Sets relation `name`'s retention period (µs) under `txn`.
    pub fn set_retention(&mut self, txn: TxnId, name: &str, period_us: u64) -> Result<()> {
        let req = Request::SetRetention { txn, name: name.to_string(), period_us };
        match self.call_ok(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("set_retention", &other)),
        }
    }

    /// Audits this session's tenant; returns `(clean, violations)`.
    pub fn audit(&mut self, serial: bool) -> Result<(bool, u32)> {
        match self.call_ok(Request::Audit { serial })? {
            Response::AuditDone { clean, violations, .. } => Ok((clean, violations)),
            other => Err(unexpected("audit", &other)),
        }
    }

    /// Migrates expired tuples of `rel` to WORM; returns the tuple count.
    pub fn migrate(&mut self, rel: RelId) -> Result<u64> {
        match self.call_ok(Request::Migrate { rel })? {
            Response::Migrated { tuples } => Ok(tuples),
            other => Err(unexpected("migrate", &other)),
        }
    }

    /// Tenant-scoped engine counters.
    pub fn stats(&mut self) -> Result<Response> {
        match self.call_ok(Request::Stats)? {
            s @ Response::Stats { .. } => Ok(s),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Reads `key` against the last sealed epoch, returning the signed
    /// epoch head and (for keys present in the sealed state) a Merkle
    /// inclusion proof. The blobs are deliberately opaque here: feed them
    /// to the standalone `ccdb-verifier` crate so the check does not trust
    /// this client library or the server.
    pub fn read_verified(&mut self, rel: RelId, key: &[u8]) -> Result<VerifiedRead> {
        match self.call_ok(Request::ReadVerified { rel, key: key.to_vec() })? {
            Response::ReadProof { epoch, value, head, sig, pubkey, proof } => {
                Ok(VerifiedRead { epoch, value, head, sig, pubkey, proof })
            }
            other => Err(unexpected("read_verified", &other)),
        }
    }
}

/// A proof-carrying read: everything a client needs to check the value
/// against the auditor-signed epoch head with `ccdb-verifier`.
#[derive(Debug, Clone)]
pub struct VerifiedRead {
    /// Sealed epoch the proof speaks for.
    pub epoch: u64,
    /// The committed value (`None` = absent key or a proven deletion).
    pub value: Option<Vec<u8>>,
    /// Canonical epoch-head bytes.
    pub head: Vec<u8>,
    /// Lamport signature over the head.
    pub sig: Vec<u8>,
    /// One-time public key the signature verifies under.
    pub pubkey: Vec<u8>,
    /// Merkle inclusion proof; `None` when the key is absent from the
    /// sealed epoch (the head alone attests the epoch).
    pub proof: Option<Vec<u8>>,
}

fn unexpected(op: &str, resp: &Response) -> Error {
    Error::Invalid(format!("rpc: unexpected {op} response {resp:?}"))
}

/// Whether an error is the server's typed admission rejection.
pub fn is_admission_rejected(e: &Error) -> bool {
    matches!(e, Error::Invalid(msg) if msg.starts_with("admission rejected"))
}

struct PoolState {
    idle: Vec<Client>,
    /// Connections checked out or idle; bounds total connections.
    live: usize,
}

/// A fixed-capacity connection pool for one `(addr, tenant)` pair.
///
/// [`ClientPool::get`] returns an idle connection or dials a new one while
/// under capacity, and blocks when the pool is exhausted. The returned
/// [`PooledClient`] checks itself back in on drop — unless the caller
/// marked it broken ([`PooledClient::discard`]), in which case the slot is
/// freed and the next `get` dials fresh.
pub struct ClientPool {
    addr: String,
    tenant: String,
    capacity: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl ClientPool {
    /// A pool of up to `capacity` connections to `addr`, all bound to
    /// `tenant`. Dialing is lazy.
    pub fn new(addr: &str, tenant: &str, capacity: usize) -> Arc<ClientPool> {
        Arc::new(ClientPool {
            addr: addr.to_string(),
            tenant: tenant.to_string(),
            capacity: capacity.max(1),
            state: Mutex::new(PoolState { idle: Vec::new(), live: 0 }),
            available: Condvar::new(),
        })
    }

    /// Checks out a connection, dialing if under capacity, blocking if not.
    pub fn get(self: &Arc<ClientPool>) -> Result<PooledClient> {
        let mut st = self.state.lock();
        loop {
            if let Some(client) = st.idle.pop() {
                return Ok(PooledClient { pool: self.clone(), client: Some(client) });
            }
            if st.live < self.capacity {
                st.live += 1;
                drop(st);
                // Dial outside the lock; on failure release the slot.
                match Client::connect(&self.addr, &self.tenant) {
                    Ok(client) => {
                        return Ok(PooledClient { pool: self.clone(), client: Some(client) })
                    }
                    Err(e) => {
                        let mut st = self.state.lock();
                        st.live -= 1;
                        drop(st);
                        self.available.notify_one();
                        return Err(e);
                    }
                }
            }
            st = self.available.wait(st);
        }
    }

    /// (idle, live) connection counts.
    pub fn counts(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.idle.len(), st.live)
    }

    fn check_in(&self, client: Option<Client>) {
        let mut st = self.state.lock();
        match client {
            Some(c) => st.idle.push(c),
            None => st.live -= 1,
        }
        drop(st);
        self.available.notify_one();
    }
}

/// A checked-out connection; returns to the pool on drop.
pub struct PooledClient {
    pool: Arc<ClientPool>,
    client: Option<Client>,
}

impl PooledClient {
    /// Marks the connection broken: dropped instead of returned, freeing
    /// the slot for a fresh dial.
    pub fn discard(mut self) {
        self.client = None;
        // Drop runs next and checks in `None`.
    }
}

impl std::ops::Deref for PooledClient {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client present until drop")
    }
}

impl std::ops::DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client present until drop")
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        self.pool.check_in(self.client.take());
    }
}
