//! TPC-C end-to-end: load, run the mix, verify invariants, audit clean.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_common::SplitMix64 as StdRng;
use ccdb_common::{Duration, TxnId, VirtualClock};
use ccdb_core::{ComplianceConfig, CompliantDb, Mode};
use ccdb_tpcc::rows::{key, District, Order, Warehouse};
use ccdb_tpcc::{load, Driver, Tpcc, TpccScale};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-tpcc-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(tag: &str, mode: Mode) -> (CompliantDb, Tpcc, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(20)));
    let db = CompliantDb::open(
        &d.0,
        clock,
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: 512,
            auditor_seed: [9u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    let t = load(&db, TpccScale::tiny(), ccdb_btree::SplitPolicy::KeyOnly).unwrap();
    (db, t, d)
}

#[test]
fn load_populates_all_relations() {
    let (db, t, _d) = setup("load", Mode::Regular);
    let txn = db.begin().unwrap();
    let wh = Warehouse::decode(&db.read(txn, t.warehouse, &key(&[1])).unwrap().unwrap()).unwrap();
    assert!(wh.tax >= 0.0 && wh.tax <= 0.2);
    let dist =
        District::decode(&db.read(txn, t.district, &key(&[1, 2])).unwrap().unwrap()).unwrap();
    assert_eq!(dist.next_o_id, 1);
    assert!(db.read(txn, t.customer, &key(&[1, 1, 1])).unwrap().is_some());
    assert!(db.read(txn, t.customer, &key(&[1, 1, 30])).unwrap().is_some());
    assert!(db.read(txn, t.customer, &key(&[1, 1, 31])).unwrap().is_none());
    assert!(db.read(txn, t.item, &key(&[100])).unwrap().is_some());
    assert!(db.read(txn, t.stock, &key(&[1, 100])).unwrap().is_some());
    db.commit(txn).unwrap();
}

#[test]
fn new_order_advances_district_and_creates_rows() {
    let (db, t, _d) = setup("neworder", Mode::Regular);
    let mut rng = StdRng::seed_from_u64(1);
    let mut committed = 0;
    for _ in 0..20 {
        if ccdb_tpcc::txns::new_order(&db, &t, &mut rng).unwrap() {
            committed += 1;
        }
    }
    assert!(committed >= 18);
    // Some district advanced and has orders with lines.
    let txn = db.begin().unwrap();
    let mut found_order = false;
    for d in 1..=t.scale.districts {
        let dist =
            District::decode(&db.read(txn, t.district, &key(&[1, d])).unwrap().unwrap()).unwrap();
        for o in 1..dist.next_o_id {
            let order =
                Order::decode(&db.read(txn, t.orders, &key(&[1, d, o])).unwrap().unwrap()).unwrap();
            assert!((5..=15).contains(&order.ol_cnt));
            assert!(db.read(txn, t.order_line, &key(&[1, d, o, 1])).unwrap().is_some());
            assert!(db.read(txn, t.new_order, &key(&[1, d, o])).unwrap().is_some());
            found_order = true;
        }
    }
    assert!(found_order);
    db.commit(txn).unwrap();
}

#[test]
fn payment_moves_money_and_writes_history() {
    let (db, t, _d) = setup("payment", Mode::Regular);
    let mut rng = StdRng::seed_from_u64(2);
    let txn = db.begin().unwrap();
    let before =
        Warehouse::decode(&db.read(txn, t.warehouse, &key(&[1])).unwrap().unwrap()).unwrap().ytd;
    db.commit(txn).unwrap();
    for _ in 0..10 {
        ccdb_tpcc::txns::payment(&db, &t, &mut rng).unwrap();
    }
    let txn = db.begin().unwrap();
    let after =
        Warehouse::decode(&db.read(txn, t.warehouse, &key(&[1])).unwrap().unwrap()).unwrap().ytd;
    assert!(after > before, "warehouse YTD grows with payments");
    db.commit(txn).unwrap();
}

#[test]
fn delivery_consumes_new_orders() {
    let (db, t, _d) = setup("delivery", Mode::Regular);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..10 {
        ccdb_tpcc::txns::new_order(&db, &t, &mut rng).unwrap();
    }
    let count_new_orders = |db: &CompliantDb| {
        let txn = db.begin().unwrap();
        let mut n = 0;
        db.engine()
            .range_current(
                txn,
                t.new_order,
                &key(&[0, 0, 0]),
                &key(&[9, 9, u32::MAX]),
                &mut |_, _| {
                    n += 1;
                    Ok(())
                },
            )
            .unwrap();
        db.commit(txn).unwrap();
        n
    };
    let before = count_new_orders(&db);
    assert!(before > 0);
    ccdb_tpcc::txns::delivery(&db, &t, &mut rng).unwrap();
    let after = count_new_orders(&db);
    assert!(after < before, "delivery consumed new-orders: {before} -> {after}");
}

#[test]
fn mixed_workload_runs_and_mix_is_standard() {
    let (db, t, _d) = setup("mix", Mode::Regular);
    let mut driver = Driver::new(7);
    let stats = driver.run(&db, &t, 400).unwrap();
    assert_eq!(stats.total(), 400);
    let no = (stats.new_orders + stats.new_order_rollbacks) as f64 / 400.0;
    let pay = stats.payments as f64 / 400.0;
    assert!((0.40..=0.50).contains(&no), "new-order share {no}");
    assert!((0.38..=0.48).contains(&pay), "payment share {pay}");
    assert!(stats.order_status > 0 && stats.deliveries > 0 && stats.stock_levels > 0);
}

#[test]
fn tpcc_under_compliance_audits_clean() {
    let (db, t, _d) = setup("audit", Mode::HashOnRead);
    let mut driver = Driver::new(11);
    driver.run(&db, &t, 200).unwrap();
    let report = db.audit().unwrap();
    assert!(
        report.is_clean(),
        "violations: {:?}",
        &report.violations[..report.violations.len().min(5)]
    );
    // Second epoch: keep going, audit again.
    driver.run(&db, &t, 100).unwrap();
    let report = db.audit().unwrap();
    assert!(
        report.is_clean(),
        "violations: {:?}",
        &report.violations[..report.violations.len().min(5)]
    );
}

#[test]
fn tpcc_survives_crash_mid_workload() {
    let (db, t, _d) = setup("crash", Mode::LogConsistent);
    let mut driver = Driver::new(13);
    driver.run(&db, &t, 100).unwrap();
    let db = db.crash_and_recover().unwrap();
    let mut driver = Driver::new(17);
    driver.run(&db, &t, 50).unwrap();
    let report = db.audit().unwrap();
    assert!(
        report.is_clean(),
        "violations: {:?}",
        &report.violations[..report.violations.len().min(5)]
    );
}

#[test]
fn temporal_queries_see_tpcc_history() {
    // The motivating scenario: a prosecutor examines past balances.
    let (db, t, _d) = setup("temporal", Mode::Regular);
    let mut rng = StdRng::seed_from_u64(19);
    let txn = db.begin().unwrap();
    let w0 = Warehouse::decode(&db.read(txn, t.warehouse, &key(&[1])).unwrap().unwrap()).unwrap();
    db.commit(txn).unwrap();
    let before_payments = db.engine().clock().now();
    for _ in 0..20 {
        ccdb_tpcc::txns::payment(&db, &t, &mut rng).unwrap();
    }
    db.engine().run_stamper().unwrap();
    // As-of before the payments: the original YTD.
    let old = Warehouse::decode(
        &db.read_as_of(t.warehouse, &key(&[1]), before_payments).unwrap().unwrap(),
    )
    .unwrap();
    assert_eq!(old.ytd, w0.ytd);
    let now = Warehouse::decode(&db.read(TxnId::NONE, t.warehouse, &key(&[1])).unwrap().unwrap())
        .unwrap();
    assert!(now.ytd >= w0.ytd);
}
