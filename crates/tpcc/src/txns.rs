//! The five TPC-C transactions (clauses 2.4–2.8).

use ccdb_common::SplitMix64 as StdRng;
use ccdb_common::{Error, Result, Timestamp, TxnId};
use ccdb_core::CompliantDb;

use crate::gen::{self, C_ID, C_LAST, OL_I_ID};
use crate::loader::{name_idx_prefix, Tpcc};
use crate::rows::*;

fn read_required(
    db: &CompliantDb,
    txn: TxnId,
    rel: ccdb_common::RelId,
    k: &[u8],
) -> Result<Vec<u8>> {
    db.read(txn, rel, k)?
        .ok_or_else(|| Error::NotFound(format!("TPC-C row missing in {rel}: {k:02x?}")))
}

/// Picks a customer per the 60/40 last-name/id rule and returns `(c_id, row)`.
fn pick_customer(
    db: &CompliantDb,
    txn: TxnId,
    t: &Tpcc,
    rng: &mut StdRng,
    w: u32,
    d: u32,
) -> Result<(u32, Customer)> {
    if rng.gen_range(0..100) < 60 {
        // By last name: take the middle match (clause 2.5.2.2).
        let last = gen::last_name(gen::nurand(rng, 255, C_LAST, 0, 999));
        let prefix = name_idx_prefix(w, d, &last);
        let mut hi = prefix.clone();
        hi.extend_from_slice(&[0xFF; 5]);
        let mut ids: Vec<u32> = Vec::new();
        db.engine().range_current(txn, t.customer_name_idx, &prefix, &hi, &mut |_k, v| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&v[..4]);
            ids.push(u32::from_le_bytes(b));
            Ok(())
        })?;
        if ids.is_empty() {
            // No customer with this name at this scale: fall back to id.
            let c = gen::nurand(rng, 1023, C_ID, 1, t.scale.customers_per_district as u64) as u32;
            let row = Customer::decode(&read_required(db, txn, t.customer, &key(&[w, d, c]))?)?;
            return Ok((c, row));
        }
        let c = ids[ids.len() / 2];
        let row = Customer::decode(&read_required(db, txn, t.customer, &key(&[w, d, c]))?)?;
        Ok((c, row))
    } else {
        let c = gen::nurand(rng, 1023, C_ID, 1, t.scale.customers_per_district as u64) as u32;
        let row = Customer::decode(&read_required(db, txn, t.customer, &key(&[w, d, c]))?)?;
        Ok((c, row))
    }
}

/// New-Order (clause 2.4). Returns `false` when the transaction rolled back
/// (the 1 % unused-item branch).
pub fn new_order(db: &CompliantDb, t: &Tpcc, rng: &mut StdRng) -> Result<bool> {
    let w = rng.gen_range(1..=t.scale.warehouses);
    let d = rng.gen_range(1..=t.scale.districts);
    let c = gen::nurand(rng, 1023, C_ID, 1, t.scale.customers_per_district as u64) as u32;
    let ol_cnt = rng.gen_range(5..=15u32);
    let rollback = rng.gen_range(0..100) == 0;

    let txn = db.begin()?;
    let wh = Warehouse::decode(&read_required(db, txn, t.warehouse, &key(&[w]))?)?;
    let mut dist = District::decode(&read_required(db, txn, t.district, &key(&[w, d]))?)?;
    let o_id = dist.next_o_id;
    dist.next_o_id += 1;
    db.write(txn, t.district, &key(&[w, d]), &dist.encode())?;
    let cust = Customer::decode(&read_required(db, txn, t.customer, &key(&[w, d, c]))?)?;

    let mut all_local = true;
    let mut total = 0.0f64;
    for ol in 1..=ol_cnt {
        let i_id = if rollback && ol == ol_cnt {
            t.scale.items + 1 // unused item number → rollback
        } else {
            gen::nurand(rng, 8191, OL_I_ID, 1, t.scale.items as u64) as u32
        };
        let supply_w = if t.scale.warehouses > 1 && rng.gen_range(0..100) == 0 {
            all_local = false;
            loop {
                let x = rng.gen_range(1..=t.scale.warehouses);
                if x != w {
                    break x;
                }
            }
        } else {
            w
        };
        let item_bytes = match db.read(txn, t.item, &key(&[i_id]))? {
            Some(b) => b,
            None => {
                db.abort(txn)?;
                return Ok(false);
            }
        };
        let item = Item::decode(&item_bytes)?;
        let mut stock = Stock::decode(&read_required(db, txn, t.stock, &key(&[supply_w, i_id]))?)?;
        let qty = rng.gen_range(1..=10u32);
        if stock.quantity >= qty as i32 + 10 {
            stock.quantity -= qty as i32;
        } else {
            stock.quantity = stock.quantity - qty as i32 + 91;
        }
        stock.ytd += qty;
        stock.order_cnt += 1;
        if supply_w != w {
            stock.remote_cnt += 1;
        }
        db.write(txn, t.stock, &key(&[supply_w, i_id]), &stock.encode())?;
        let amount = qty as f64 * item.price;
        total += amount;
        let line = OrderLine {
            i_id,
            supply_w_id: supply_w,
            delivery_d: Timestamp(0),
            quantity: qty,
            amount,
            dist_info: stock.dists[(d as usize - 1) % 10].clone(),
        };
        db.write(txn, t.order_line, &key(&[w, d, o_id, ol]), &line.encode())?;
    }
    let _ = total * (1.0 - cust.discount) * (1.0 + wh.tax + dist.tax);
    let order =
        Order { c_id: c, entry_d: db.engine().clock().now(), carrier_id: 0, ol_cnt, all_local };
    db.write(txn, t.orders, &key(&[w, d, o_id]), &order.encode())?;
    db.write(txn, t.new_order, &key(&[w, d, o_id]), &[])?;
    db.write(txn, t.order_cust_idx, &key(&[w, d, c, o_id]), &[])?;
    db.commit(txn)?;
    Ok(true)
}

/// Payment (clause 2.5).
pub fn payment(db: &CompliantDb, t: &Tpcc, rng: &mut StdRng) -> Result<()> {
    let w = rng.gen_range(1..=t.scale.warehouses);
    let d = rng.gen_range(1..=t.scale.districts);
    let amount = rng.gen_range(100..=500_000) as f64 / 100.0;

    let txn = db.begin()?;
    let mut wh = Warehouse::decode(&read_required(db, txn, t.warehouse, &key(&[w]))?)?;
    wh.ytd += amount;
    db.write(txn, t.warehouse, &key(&[w]), &wh.encode())?;
    let mut dist = District::decode(&read_required(db, txn, t.district, &key(&[w, d]))?)?;
    dist.ytd += amount;
    db.write(txn, t.district, &key(&[w, d]), &dist.encode())?;
    // 85 % local customer, 15 % remote (when multiple warehouses exist).
    let (c_w, c_d) = if t.scale.warehouses > 1 && rng.gen_range(0..100) < 15 {
        let rw = loop {
            let x = rng.gen_range(1..=t.scale.warehouses);
            if x != w {
                break x;
            }
        };
        (rw, rng.gen_range(1..=t.scale.districts))
    } else {
        (w, d)
    };
    let (c, mut cust) = pick_customer(db, txn, t, rng, c_w, c_d)?;
    cust.balance -= amount;
    cust.ytd_payment += amount;
    cust.payment_cnt += 1;
    if cust.credit == "BC" {
        let extra = format!("{c},{c_d},{c_w},{d},{w},{amount:.2};");
        let mut data = extra + &cust.data;
        data.truncate(500);
        cust.data = data;
    }
    db.write(txn, t.customer, &key(&[c_w, c_d, c]), &cust.encode())?;
    let hist = History {
        c_id: c,
        c_d_id: c_d,
        c_w_id: c_w,
        date: db.engine().clock().now(),
        amount,
        data: format!("{}    {}", wh.name, dist.name),
    };
    // History key: (w, d, commit-side unique suffix) — the engine's txn id
    // is unique, so (w, d, txn) cannot collide.
    db.write(txn, t.history, &key(&[w, d, txn.0 as u32]), &hist.encode())?;
    db.commit(txn)?;
    Ok(())
}

/// Order-Status (clause 2.6). Read-only.
pub fn order_status(db: &CompliantDb, t: &Tpcc, rng: &mut StdRng) -> Result<()> {
    let w = rng.gen_range(1..=t.scale.warehouses);
    let d = rng.gen_range(1..=t.scale.districts);
    let txn = db.begin()?;
    let (c, _cust) = pick_customer(db, txn, t, rng, w, d)?;
    // Latest order of this customer via the secondary index.
    let lo = key(&[w, d, c, 0]);
    let hi = key(&[w, d, c, u32::MAX]);
    let mut last_o: Option<u32> = None;
    db.engine().range_current(txn, t.order_cust_idx, &lo, &hi, &mut |k, _| {
        let mut b = [0u8; 4];
        b.copy_from_slice(&k[12..16]);
        last_o = Some(u32::from_be_bytes(b));
        Ok(())
    })?;
    if let Some(o) = last_o {
        let order = Order::decode(&read_required(db, txn, t.orders, &key(&[w, d, o]))?)?;
        for ol in 1..=order.ol_cnt {
            let _ =
                OrderLine::decode(&read_required(db, txn, t.order_line, &key(&[w, d, o, ol]))?)?;
        }
    }
    db.commit(txn)?;
    Ok(())
}

/// Delivery (clause 2.7): delivers the oldest undelivered order per district.
pub fn delivery(db: &CompliantDb, t: &Tpcc, rng: &mut StdRng) -> Result<()> {
    let w = rng.gen_range(1..=t.scale.warehouses);
    let carrier = rng.gen_range(1..=10u32);
    let txn = db.begin()?;
    for d in 1..=t.scale.districts {
        // Oldest NEW_ORDER in the district.
        let lo = key(&[w, d, 0]);
        let hi = key(&[w, d, u32::MAX]);
        let mut oldest: Option<u32> = None;
        db.engine().range_current(txn, t.new_order, &lo, &hi, &mut |k, _| {
            if oldest.is_none() {
                let mut b = [0u8; 4];
                b.copy_from_slice(&k[8..12]);
                oldest = Some(u32::from_be_bytes(b));
            }
            Ok(())
        })?;
        let Some(o) = oldest else { continue };
        db.delete(txn, t.new_order, &key(&[w, d, o]))?;
        let mut order = Order::decode(&read_required(db, txn, t.orders, &key(&[w, d, o]))?)?;
        order.carrier_id = carrier;
        db.write(txn, t.orders, &key(&[w, d, o]), &order.encode())?;
        let now = db.engine().clock().now();
        let mut total = 0.0;
        for ol in 1..=order.ol_cnt {
            let mut line =
                OrderLine::decode(&read_required(db, txn, t.order_line, &key(&[w, d, o, ol]))?)?;
            line.delivery_d = now;
            total += line.amount;
            db.write(txn, t.order_line, &key(&[w, d, o, ol]), &line.encode())?;
        }
        let mut cust =
            Customer::decode(&read_required(db, txn, t.customer, &key(&[w, d, order.c_id]))?)?;
        cust.balance += total;
        cust.delivery_cnt += 1;
        db.write(txn, t.customer, &key(&[w, d, order.c_id]), &cust.encode())?;
    }
    db.commit(txn)?;
    Ok(())
}

/// Stock-Level (clause 2.8). Read-only.
pub fn stock_level(db: &CompliantDb, t: &Tpcc, rng: &mut StdRng) -> Result<usize> {
    let w = rng.gen_range(1..=t.scale.warehouses);
    let d = rng.gen_range(1..=t.scale.districts);
    let threshold = rng.gen_range(10..=20i32);
    let txn = db.begin()?;
    let dist = District::decode(&read_required(db, txn, t.district, &key(&[w, d]))?)?;
    let first = dist.next_o_id.saturating_sub(20).max(1);
    let mut item_ids: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let lo = key(&[w, d, first, 0]);
    let hi = key(&[w, d, dist.next_o_id, u32::MAX]);
    db.engine().range_current(txn, t.order_line, &lo, &hi, &mut |_k, v| {
        let line = OrderLine::decode(v)?;
        item_ids.insert(line.i_id);
        Ok(())
    })?;
    let mut low = 0usize;
    for i in item_ids {
        let stock = Stock::decode(&read_required(db, txn, t.stock, &key(&[w, i]))?)?;
        if stock.quantity < threshold {
            low += 1;
        }
    }
    db.commit(txn)?;
    Ok(low)
}
