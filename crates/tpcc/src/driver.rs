//! The workload driver: the standard TPC-C transaction mix.

use ccdb_common::Result;
use ccdb_common::SplitMix64 as StdRng;
use ccdb_core::CompliantDb;

use crate::loader::Tpcc;
use crate::txns;

/// The five transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// New-Order (45 %).
    NewOrder,
    /// Payment (43 %).
    Payment,
    /// Order-Status (4 %).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-Level (4 %).
    StockLevel,
}

/// Execution counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MixStats {
    /// New-Orders committed.
    pub new_orders: u64,
    /// New-Orders rolled back (the 1 % branch).
    pub new_order_rollbacks: u64,
    /// Payments.
    pub payments: u64,
    /// Order-Status queries.
    pub order_status: u64,
    /// Deliveries.
    pub deliveries: u64,
    /// Stock-Level queries.
    pub stock_levels: u64,
}

impl MixStats {
    /// Total transactions executed (including rollbacks).
    pub fn total(&self) -> u64 {
        self.new_orders
            + self.new_order_rollbacks
            + self.payments
            + self.order_status
            + self.deliveries
            + self.stock_levels
    }
}

/// A deterministic driver over a loaded TPC-C database.
pub struct Driver {
    rng: StdRng,
    deck: Vec<TxnKind>,
    pos: usize,
    stats: MixStats,
}

impl Driver {
    /// Creates a driver with the standard mix and a fixed seed.
    pub fn new(seed: u64) -> Driver {
        let mut deck = Vec::with_capacity(100);
        deck.extend(std::iter::repeat_n(TxnKind::NewOrder, 45));
        deck.extend(std::iter::repeat_n(TxnKind::Payment, 43));
        deck.extend(std::iter::repeat_n(TxnKind::OrderStatus, 4));
        deck.extend(std::iter::repeat_n(TxnKind::Delivery, 4));
        deck.extend(std::iter::repeat_n(TxnKind::StockLevel, 4));
        let mut rng = StdRng::seed_from_u64(seed);
        rng.shuffle(&mut deck);
        Driver { rng, deck, pos: 0, stats: MixStats::default() }
    }

    /// Runs one transaction from the deck; returns its kind.
    pub fn run_one(&mut self, db: &CompliantDb, t: &Tpcc) -> Result<TxnKind> {
        if self.pos >= self.deck.len() {
            self.rng.shuffle(&mut self.deck);
            self.pos = 0;
        }
        let kind = self.deck[self.pos];
        self.pos += 1;
        match kind {
            TxnKind::NewOrder => {
                if txns::new_order(db, t, &mut self.rng)? {
                    self.stats.new_orders += 1;
                } else {
                    self.stats.new_order_rollbacks += 1;
                }
            }
            TxnKind::Payment => {
                txns::payment(db, t, &mut self.rng)?;
                self.stats.payments += 1;
            }
            TxnKind::OrderStatus => {
                txns::order_status(db, t, &mut self.rng)?;
                self.stats.order_status += 1;
            }
            TxnKind::Delivery => {
                txns::delivery(db, t, &mut self.rng)?;
                self.stats.deliveries += 1;
            }
            TxnKind::StockLevel => {
                txns::stock_level(db, t, &mut self.rng)?;
                self.stats.stock_levels += 1;
            }
        }
        Ok(kind)
    }

    /// Runs `n` transactions.
    pub fn run(&mut self, db: &CompliantDb, t: &Tpcc, n: usize) -> Result<MixStats> {
        for _ in 0..n {
            self.run_one(db, t)?;
        }
        Ok(self.stats)
    }

    /// Counters so far.
    pub fn stats(&self) -> MixStats {
        self.stats
    }
}
