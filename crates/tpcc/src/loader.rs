//! Schema creation and initial population (TPC-C clause 4.3).

use ccdb_btree::SplitPolicy;
use ccdb_common::SplitMix64 as StdRng;
use ccdb_common::{RelId, Result, Timestamp};
use ccdb_core::CompliantDb;

use crate::gen;
use crate::rows::*;

/// Scale parameters. TPC-C fixes districts at 10 and customers at 3000 per
/// district; smaller presets keep the shapes (and skew) while shrinking the
/// database for laptop-scale runs, the way the paper's 1-warehouse
/// configuration shrank theirs.
#[derive(Clone, Copy, Debug)]
pub struct TpccScale {
    /// Number of warehouses (the paper uses 10, and 1 for the memory-
    /// resident experiment).
    pub warehouses: u32,
    /// Districts per warehouse.
    pub districts: u32,
    /// Customers per district.
    pub customers_per_district: u32,
    /// Items (and stock rows per warehouse).
    pub items: u32,
}

impl TpccScale {
    /// The paper's shape: 10 districts, 3000 customers, 100 000 items.
    pub fn paper(warehouses: u32) -> TpccScale {
        TpccScale { warehouses, districts: 10, customers_per_district: 3000, items: 100_000 }
    }

    /// A laptop-bench preset (~MBs instead of GBs) with the same shapes.
    pub fn small(warehouses: u32) -> TpccScale {
        TpccScale { warehouses, districts: 4, customers_per_district: 120, items: 2_000 }
    }

    /// A minimal preset for unit tests.
    pub fn tiny() -> TpccScale {
        TpccScale { warehouses: 1, districts: 2, customers_per_district: 30, items: 100 }
    }
}

/// Relation handles for a loaded TPC-C database.
#[derive(Clone, Copy, Debug)]
pub struct Tpcc {
    /// Scale loaded.
    pub scale: TpccScale,
    /// WAREHOUSE.
    pub warehouse: RelId,
    /// DISTRICT.
    pub district: RelId,
    /// CUSTOMER.
    pub customer: RelId,
    /// HISTORY.
    pub history: RelId,
    /// NEW_ORDER.
    pub new_order: RelId,
    /// ORDERS.
    pub orders: RelId,
    /// ORDER_LINE.
    pub order_line: RelId,
    /// ITEM.
    pub item: RelId,
    /// STOCK.
    pub stock: RelId,
    /// Secondary index: (w, d, last-name, c) → c (Payment by name).
    pub customer_name_idx: RelId,
    /// Secondary index: (w, d, c, o) → () (Order-Status latest order).
    pub order_cust_idx: RelId,
}

/// Creates the nine relations (+ two secondary-index relations) and loads
/// the initial population. `policy` applies to every relation — the Figure 4
/// experiments reload with time-split policies at varying thresholds.
pub fn load(db: &CompliantDb, scale: TpccScale, policy: SplitPolicy) -> Result<Tpcc> {
    let t = Tpcc {
        scale,
        warehouse: db.create_relation("warehouse", policy)?,
        district: db.create_relation("district", policy)?,
        customer: db.create_relation("customer", policy)?,
        history: db.create_relation("history", policy)?,
        new_order: db.create_relation("new_order", policy)?,
        orders: db.create_relation("orders", policy)?,
        order_line: db.create_relation("order_line", policy)?,
        item: db.create_relation("item", policy)?,
        stock: db.create_relation("stock", policy)?,
        customer_name_idx: db.create_relation("customer_name_idx", policy)?,
        order_cust_idx: db.create_relation("order_cust_idx", policy)?,
    };
    let mut rng = StdRng::seed_from_u64(0xCCDB_79CC);
    let now = db.engine().clock().now();

    // ITEM (shared across warehouses).
    let mut txn = db.begin()?;
    let mut in_txn = 0;
    let batch = |db: &CompliantDb, txn: &mut ccdb_common::TxnId, in_txn: &mut u32| -> Result<()> {
        *in_txn += 1;
        if *in_txn >= 200 {
            db.commit(*txn)?;
            *txn = db.begin()?;
            *in_txn = 0;
        }
        Ok(())
    };
    for i in 1..=scale.items {
        let row = Item {
            im_id: rng.gen_range(1..=10_000u32),
            name: gen::astring(&mut rng, 14, 24),
            price: rng.gen_range(100..=10_000) as f64 / 100.0,
            data: gen::item_data(&mut rng),
        };
        db.write(txn, t.item, &key(&[i]), &row.encode())?;
        batch(db, &mut txn, &mut in_txn)?;
    }

    for w in 1..=scale.warehouses {
        let row = Warehouse {
            name: gen::astring(&mut rng, 6, 10),
            street: gen::astring(&mut rng, 10, 20),
            city: gen::astring(&mut rng, 10, 20),
            state: gen::astring(&mut rng, 2, 2),
            zip: gen::zip(&mut rng),
            tax: rng.gen_range(0..=2000) as f64 / 10_000.0,
            ytd: 300_000.0,
        };
        db.write(txn, t.warehouse, &key(&[w]), &row.encode())?;
        batch(db, &mut txn, &mut in_txn)?;

        // STOCK for every item.
        for i in 1..=scale.items {
            let row = Stock {
                quantity: rng.gen_range(10..=100),
                dists: core::array::from_fn(|_| gen::astring(&mut rng, 24, 24)),
                ytd: 0,
                order_cnt: 0,
                remote_cnt: 0,
                data: gen::item_data(&mut rng),
            };
            db.write(txn, t.stock, &key(&[w, i]), &row.encode())?;
            batch(db, &mut txn, &mut in_txn)?;
        }

        for d in 1..=scale.districts {
            let row = District {
                name: gen::astring(&mut rng, 6, 10),
                street: gen::astring(&mut rng, 10, 20),
                city: gen::astring(&mut rng, 10, 20),
                state: gen::astring(&mut rng, 2, 2),
                zip: gen::zip(&mut rng),
                tax: rng.gen_range(0..=2000) as f64 / 10_000.0,
                ytd: 30_000.0,
                next_o_id: 1,
            };
            db.write(txn, t.district, &key(&[w, d]), &row.encode())?;
            batch(db, &mut txn, &mut in_txn)?;

            for c in 1..=scale.customers_per_district {
                // First 1000 customers get spec last names; rest random.
                let last = if c <= 1000 {
                    gen::last_name((c - 1) as u64)
                } else {
                    gen::rand_last_name(&mut rng)
                };
                let row = Customer {
                    first: gen::astring(&mut rng, 8, 16),
                    middle: "OE".into(),
                    last: last.clone(),
                    street: gen::astring(&mut rng, 10, 20),
                    city: gen::astring(&mut rng, 10, 20),
                    state: gen::astring(&mut rng, 2, 2),
                    zip: gen::zip(&mut rng),
                    phone: gen::nstring(&mut rng, 16),
                    since: now,
                    credit: if rng.gen_range(0..10) == 0 { "BC".into() } else { "GC".into() },
                    credit_lim: 50_000.0,
                    discount: rng.gen_range(0..=5000) as f64 / 10_000.0,
                    balance: -10.0,
                    ytd_payment: 10.0,
                    payment_cnt: 1,
                    delivery_cnt: 0,
                    data: gen::astring(&mut rng, 300, 500),
                };
                db.write(txn, t.customer, &key(&[w, d, c]), &row.encode())?;
                // Name index entry.
                let mut idx_key = key(&[w, d]);
                idx_key.extend_from_slice(last.as_bytes());
                idx_key.push(0);
                idx_key.extend_from_slice(&key(&[c]));
                db.write(txn, t.customer_name_idx, &idx_key, &c.to_le_bytes())?;
                batch(db, &mut txn, &mut in_txn)?;
            }
        }
    }
    db.commit(txn)?;
    db.engine().run_stamper()?;
    Ok(t)
}

/// Key for the customer-name index prefix `(w, d, last)`.
pub fn name_idx_prefix(w: u32, d: u32, last: &str) -> Vec<u8> {
    let mut k = key(&[w, d]);
    k.extend_from_slice(last.as_bytes());
    k.push(0);
    k
}

/// Timestamp helper re-export for callers building rows.
pub fn now(db: &CompliantDb) -> Timestamp {
    db.engine().clock().now()
}
