//! TPC-C row types, key builders, and fixed-layout codecs.
//!
//! Keys are big-endian composites so bytewise key order equals logical
//! order. Row encodings carry every TPC-C field (realistic row sizes matter:
//! the paper's page-count experiments depend on how many STOCK or
//! ORDER_LINE tuples fit a 4 KiB page).

use ccdb_common::{ByteReader, ByteWriter, Result, Timestamp};

fn put_f(w: &mut ByteWriter, v: f64) {
    w.put_u64(v.to_bits());
}

fn get_f(r: &mut ByteReader<'_>) -> Result<f64> {
    Ok(f64::from_bits(r.get_u64()?))
}

/// Builds a big-endian composite key from u32 components.
pub fn key(parts: &[u32]) -> Vec<u8> {
    let mut k = Vec::with_capacity(parts.len() * 4);
    for p in parts {
        k.extend_from_slice(&p.to_be_bytes());
    }
    k
}

/// WAREHOUSE row.
#[derive(Clone, Debug, PartialEq)]
pub struct Warehouse {
    /// Name (10 chars).
    pub name: String,
    /// Street address lines.
    pub street: String,
    /// City.
    pub city: String,
    /// State (2 chars).
    pub state: String,
    /// Zip.
    pub zip: String,
    /// Sales tax.
    pub tax: f64,
    /// Year-to-date balance.
    pub ytd: f64,
}

impl Warehouse {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.name);
        w.put_str(&self.street);
        w.put_str(&self.city);
        w.put_str(&self.state);
        w.put_str(&self.zip);
        put_f(&mut w, self.tax);
        put_f(&mut w, self.ytd);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<Warehouse> {
        let mut r = ByteReader::new(b);
        Ok(Warehouse {
            name: r.get_str()?,
            street: r.get_str()?,
            city: r.get_str()?,
            state: r.get_str()?,
            zip: r.get_str()?,
            tax: get_f(&mut r)?,
            ytd: get_f(&mut r)?,
        })
    }
}

/// DISTRICT row.
#[derive(Clone, Debug, PartialEq)]
pub struct District {
    /// Name.
    pub name: String,
    /// Street.
    pub street: String,
    /// City.
    pub city: String,
    /// State.
    pub state: String,
    /// Zip.
    pub zip: String,
    /// Tax.
    pub tax: f64,
    /// Year-to-date balance.
    pub ytd: f64,
    /// Next order id to assign.
    pub next_o_id: u32,
}

impl District {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.name);
        w.put_str(&self.street);
        w.put_str(&self.city);
        w.put_str(&self.state);
        w.put_str(&self.zip);
        put_f(&mut w, self.tax);
        put_f(&mut w, self.ytd);
        w.put_u32(self.next_o_id);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<District> {
        let mut r = ByteReader::new(b);
        Ok(District {
            name: r.get_str()?,
            street: r.get_str()?,
            city: r.get_str()?,
            state: r.get_str()?,
            zip: r.get_str()?,
            tax: get_f(&mut r)?,
            ytd: get_f(&mut r)?,
            next_o_id: r.get_u32()?,
        })
    }
}

/// CUSTOMER row.
#[derive(Clone, Debug, PartialEq)]
pub struct Customer {
    /// First name.
    pub first: String,
    /// Middle name ("OE").
    pub middle: String,
    /// Last name (syllable-generated; the Payment lookup key).
    pub last: String,
    /// Street.
    pub street: String,
    /// City.
    pub city: String,
    /// State.
    pub state: String,
    /// Zip.
    pub zip: String,
    /// Phone (16 digits).
    pub phone: String,
    /// Since (registration time).
    pub since: Timestamp,
    /// Credit: "GC" or "BC".
    pub credit: String,
    /// Credit limit.
    pub credit_lim: f64,
    /// Discount.
    pub discount: f64,
    /// Balance.
    pub balance: f64,
    /// YTD payment.
    pub ytd_payment: f64,
    /// Payment count.
    pub payment_cnt: u32,
    /// Delivery count.
    pub delivery_cnt: u32,
    /// Miscellaneous data (300–500 chars).
    pub data: String,
}

impl Customer {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for s in [
            &self.first,
            &self.middle,
            &self.last,
            &self.street,
            &self.city,
            &self.state,
            &self.zip,
            &self.phone,
        ] {
            w.put_str(s);
        }
        w.put_u64(self.since.0);
        w.put_str(&self.credit);
        put_f(&mut w, self.credit_lim);
        put_f(&mut w, self.discount);
        put_f(&mut w, self.balance);
        put_f(&mut w, self.ytd_payment);
        w.put_u32(self.payment_cnt);
        w.put_u32(self.delivery_cnt);
        w.put_str(&self.data);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<Customer> {
        let mut r = ByteReader::new(b);
        Ok(Customer {
            first: r.get_str()?,
            middle: r.get_str()?,
            last: r.get_str()?,
            street: r.get_str()?,
            city: r.get_str()?,
            state: r.get_str()?,
            zip: r.get_str()?,
            phone: r.get_str()?,
            since: Timestamp(r.get_u64()?),
            credit: r.get_str()?,
            credit_lim: get_f(&mut r)?,
            discount: get_f(&mut r)?,
            balance: get_f(&mut r)?,
            ytd_payment: get_f(&mut r)?,
            payment_cnt: r.get_u32()?,
            delivery_cnt: r.get_u32()?,
            data: r.get_str()?,
        })
    }
}

/// ORDERS row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Order {
    /// Ordering customer.
    pub c_id: u32,
    /// Entry time.
    pub entry_d: Timestamp,
    /// Carrier (0 = not delivered yet).
    pub carrier_id: u32,
    /// Number of order lines.
    pub ol_cnt: u32,
    /// Whether all lines are local.
    pub all_local: bool,
}

impl Order {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.c_id);
        w.put_u64(self.entry_d.0);
        w.put_u32(self.carrier_id);
        w.put_u32(self.ol_cnt);
        w.put_u8(self.all_local as u8);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<Order> {
        let mut r = ByteReader::new(b);
        Ok(Order {
            c_id: r.get_u32()?,
            entry_d: Timestamp(r.get_u64()?),
            carrier_id: r.get_u32()?,
            ol_cnt: r.get_u32()?,
            all_local: r.get_u8()? != 0,
        })
    }
}

/// ORDER_LINE row.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderLine {
    /// Item ordered.
    pub i_id: u32,
    /// Supplying warehouse.
    pub supply_w_id: u32,
    /// Delivery time (0 = undelivered).
    pub delivery_d: Timestamp,
    /// Quantity.
    pub quantity: u32,
    /// Amount.
    pub amount: f64,
    /// District info (24 chars).
    pub dist_info: String,
}

impl OrderLine {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.i_id);
        w.put_u32(self.supply_w_id);
        w.put_u64(self.delivery_d.0);
        w.put_u32(self.quantity);
        put_f(&mut w, self.amount);
        w.put_str(&self.dist_info);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<OrderLine> {
        let mut r = ByteReader::new(b);
        Ok(OrderLine {
            i_id: r.get_u32()?,
            supply_w_id: r.get_u32()?,
            delivery_d: Timestamp(r.get_u64()?),
            quantity: r.get_u32()?,
            amount: get_f(&mut r)?,
            dist_info: r.get_str()?,
        })
    }
}

/// ITEM row.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// Image id.
    pub im_id: u32,
    /// Name.
    pub name: String,
    /// Price.
    pub price: f64,
    /// Data (may contain "ORIGINAL").
    pub data: String,
}

impl Item {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.im_id);
        w.put_str(&self.name);
        put_f(&mut w, self.price);
        w.put_str(&self.data);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<Item> {
        let mut r = ByteReader::new(b);
        Ok(Item {
            im_id: r.get_u32()?,
            name: r.get_str()?,
            price: get_f(&mut r)?,
            data: r.get_str()?,
        })
    }
}

/// STOCK row — the paper's hot, skew-updated relation (Figure 4(a)).
#[derive(Clone, Debug, PartialEq)]
pub struct Stock {
    /// Quantity on hand.
    pub quantity: i32,
    /// The ten 24-char district info strings.
    pub dists: [String; 10],
    /// Year-to-date.
    pub ytd: u32,
    /// Order count.
    pub order_cnt: u32,
    /// Remote order count.
    pub remote_cnt: u32,
    /// Data (may contain "ORIGINAL").
    pub data: String,
}

impl Stock {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.quantity as u32);
        for d in &self.dists {
            w.put_str(d);
        }
        w.put_u32(self.ytd);
        w.put_u32(self.order_cnt);
        w.put_u32(self.remote_cnt);
        w.put_str(&self.data);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<Stock> {
        let mut r = ByteReader::new(b);
        let quantity = r.get_u32()? as i32;
        let mut dists: [String; 10] = Default::default();
        for d in dists.iter_mut() {
            *d = r.get_str()?;
        }
        Ok(Stock {
            quantity,
            dists,
            ytd: r.get_u32()?,
            order_cnt: r.get_u32()?,
            remote_cnt: r.get_u32()?,
            data: r.get_str()?,
        })
    }
}

/// HISTORY row.
#[derive(Clone, Debug, PartialEq)]
pub struct History {
    /// Customer coordinates.
    pub c_id: u32,
    /// Customer district.
    pub c_d_id: u32,
    /// Customer warehouse.
    pub c_w_id: u32,
    /// Payment time.
    pub date: Timestamp,
    /// Amount.
    pub amount: f64,
    /// Data.
    pub data: String,
}

impl History {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.c_id);
        w.put_u32(self.c_d_id);
        w.put_u32(self.c_w_id);
        w.put_u64(self.date.0);
        put_f(&mut w, self.amount);
        w.put_str(&self.data);
        w.into_vec()
    }

    /// Decodes the row.
    pub fn decode(b: &[u8]) -> Result<History> {
        let mut r = ByteReader::new(b);
        Ok(History {
            c_id: r.get_u32()?,
            c_d_id: r.get_u32()?,
            c_w_id: r.get_u32()?,
            date: Timestamp(r.get_u64()?),
            amount: get_f(&mut r)?,
            data: r.get_str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_is_composite_order() {
        assert!(key(&[1, 2, 3]) < key(&[1, 2, 4]));
        assert!(key(&[1, 2, 3]) < key(&[1, 3, 0]));
        assert!(key(&[1, 255, 255]) < key(&[2, 0, 0]));
        assert_eq!(key(&[7]).len(), 4);
    }

    #[test]
    fn warehouse_roundtrip() {
        let w = Warehouse {
            name: "W-One".into(),
            street: "1 Main St".into(),
            city: "Urbana".into(),
            state: "IL".into(),
            zip: "618011111".into(),
            tax: 0.0825,
            ytd: 300_000.0,
        };
        assert_eq!(Warehouse::decode(&w.encode()).unwrap(), w);
    }

    #[test]
    fn district_roundtrip() {
        let d = District {
            name: "D1".into(),
            street: "s".into(),
            city: "c".into(),
            state: "IL".into(),
            zip: "z".into(),
            tax: 0.1,
            ytd: 30_000.0,
            next_o_id: 3001,
        };
        assert_eq!(District::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn customer_roundtrip_and_size() {
        let c = Customer {
            first: "Ada".into(),
            middle: "OE".into(),
            last: "BARBARBAR".into(),
            street: "2 Oak".into(),
            city: "Tucson".into(),
            state: "AZ".into(),
            zip: "857011111".into(),
            phone: "0123456789012345".into(),
            since: Timestamp(5),
            credit: "GC".into(),
            credit_lim: 50_000.0,
            discount: 0.05,
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            data: "x".repeat(400),
        };
        let enc = c.encode();
        assert!(enc.len() > 400, "customer rows are realistically large");
        assert_eq!(Customer::decode(&enc).unwrap(), c);
    }

    #[test]
    fn order_and_line_roundtrip() {
        let o =
            Order { c_id: 7, entry_d: Timestamp(9), carrier_id: 0, ol_cnt: 11, all_local: true };
        assert_eq!(Order::decode(&o.encode()).unwrap(), o);
        let ol = OrderLine {
            i_id: 5,
            supply_w_id: 1,
            delivery_d: Timestamp(0),
            quantity: 5,
            amount: 42.5,
            dist_info: "d".repeat(24),
        };
        assert_eq!(OrderLine::decode(&ol.encode()).unwrap(), ol);
    }

    #[test]
    fn stock_roundtrip_and_size() {
        let s = Stock {
            quantity: 50,
            dists: core::array::from_fn(|i| format!("{:024}", i)),
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            data: "y".repeat(40),
        };
        let enc = s.encode();
        assert!(enc.len() > 280, "stock rows are realistically large: {}", enc.len());
        assert_eq!(Stock::decode(&enc).unwrap(), s);
    }

    #[test]
    fn item_and_history_roundtrip() {
        let i = Item { im_id: 3, name: "widget".into(), price: 9.99, data: "ORIGINAL".into() };
        assert_eq!(Item::decode(&i.encode()).unwrap(), i);
        let h = History {
            c_id: 1,
            c_d_id: 2,
            c_w_id: 3,
            date: Timestamp(4),
            amount: 5.0,
            data: "hist".into(),
        };
        assert_eq!(History::decode(&h.encode()).unwrap(), h);
    }
}
