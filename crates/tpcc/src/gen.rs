//! TPC-C random-data generators: NURand skew, last names, strings.

use ccdb_common::SplitMix64 as StdRng;

/// TPC-C clause 2.1.6: constants for the non-uniform distribution. Fixed
/// values keep runs reproducible (the spec permits any constant per field).
pub const C_LAST: u64 = 123;
/// NURand constant for customer ids.
pub const C_ID: u64 = 259;
/// NURand constant for item ids.
pub const OL_I_ID: u64 = 7911;

/// The non-uniform random function `NURand(A, x, y)`.
pub fn nurand(rng: &mut StdRng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// The 10 syllables of TPC-C clause 4.3.2.3.
const SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Builds a customer last name from a number in `0..=999`.
pub fn last_name(num: u64) -> String {
    let num = num % 1000;
    format!(
        "{}{}{}",
        SYLLABLES[(num / 100) as usize],
        SYLLABLES[((num / 10) % 10) as usize],
        SYLLABLES[(num % 10) as usize]
    )
}

/// A random last name for loading (uniform over the NURand image, per spec
/// the load uses NURand(255, 0, 999)).
pub fn rand_last_name(rng: &mut StdRng) -> String {
    last_name(nurand(rng, 255, C_LAST, 0, 999))
}

/// Random alphanumeric string with length in `[lo, hi]`.
pub fn astring(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

/// Random numeric string of exact length.
pub fn nstring(rng: &mut StdRng, len: usize) -> String {
    (0..len).map(|_| char::from(b'0' + rng.gen_range(0..10u8))).collect()
}

/// A zip code: 4 random digits + "11111".
pub fn zip(rng: &mut StdRng) -> String {
    format!("{}11111", nstring(rng, 4))
}

/// Item data, with 10 % containing the "ORIGINAL" marker (clause 4.3.3.1).
pub fn item_data(rng: &mut StdRng) -> String {
    let mut s = astring(rng, 26, 50);
    if rng.gen_range(0..10) == 0 {
        let pos = rng.gen_range(0..s.len().saturating_sub(8).max(1));
        s.replace_range(pos..pos + 8.min(s.len() - pos), "ORIGINAL");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = nurand(&mut r, 1023, C_ID, 1, 3000);
            assert!((1..=3000).contains(&v));
            let w = nurand(&mut r, 8191, OL_I_ID, 1, 100_000);
            assert!((1..=100_000).contains(&w));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // The whole point: some values are much hotter than uniform.
        let mut r = rng();
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            let v = nurand(&mut r, 1023, C_ID, 1, 100);
            counts[v as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts[1..].iter().min().unwrap() as f64;
        assert!(max / (min + 1.0) > 2.0, "expected skew, max {max} min {min}");
    }

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn string_generators_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = astring(&mut r, 8, 16);
            assert!((8..=16).contains(&s.len()));
        }
        assert_eq!(nstring(&mut r, 6).len(), 6);
        assert_eq!(zip(&mut r).len(), 9);
    }

    #[test]
    fn item_data_sometimes_original() {
        let mut r = rng();
        let n = (0..500).filter(|_| item_data(&mut r).contains("ORIGINAL")).count();
        assert!(n > 10 && n < 150, "ORIGINAL rate {n}/500");
    }
}
