//! TPC-C atop the compliant DBMS — the paper's evaluation workload.
//!
//! "We chose TPC-C because it is a standard benchmark for OLTP, which will
//! be the most common workload for compliance databases." This crate ports
//! the benchmark to the `ccdb` engine the way the authors ported the Shore
//! implementation to Berkeley DB: the nine relations, the card deck of five
//! transactions in the standard mix (45 % New-Order, 43 % Payment, 4 % each
//! Order-Status / Delivery / Stock-Level), NURand skew, the 1 % New-Order
//! rollback, and the customer last-name secondary index (implemented as an
//! ordinary relation, as the engine — like Berkeley DB — has no native
//! secondary indexes).
//!
//! Scale is configurable: [`TpccScale::paper`] approximates the paper's
//! 10-warehouse / 2.5 GB configuration; [`TpccScale::small`] keeps the same
//! relation shapes and skew at laptop-bench size. The schema carries the
//! paper's modification: "we modified the TPC-C schema to include this
//! additional attribute [the tuple order number] for each relation" — in
//! ccdb that attribute lives in the page format itself, so every relation
//! has it automatically.

pub mod driver;
pub mod gen;
pub mod loader;
pub mod rows;
pub mod txns;

pub use driver::{Driver, MixStats, TxnKind};
pub use loader::{load, Tpcc, TpccScale};
