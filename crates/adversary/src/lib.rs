//! "Mala": the paper's adversary, as an attack toolkit.
//!
//! The threat model (Section II): Mala "may take over root on the platform
//! where the DBMS runs", can "target any database file, including data,
//! indexes, logs, and metadata", edits files directly "with a file editor",
//! and can issue any command the WORM server's *API* accepts — but cannot
//! overwrite WORM files, tamper with the buffer cache, or move the
//! compliance clock.
//!
//! Accordingly, every attack here operates on the raw database file (or the
//! local WAL) with ordinary file I/O, and is careful to recompute page
//! checksums — Mala is a competent insider, not a vandal; the checksum is
//! not a defense. Each attack corresponds to a detection test in the
//! integration suite: the point of this crate is to demonstrate that the
//! auditor raises the *specific* violation the paper promises.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ccdb_btree::IndexEntry;
use ccdb_common::{Error, PageNo, RelId, Result, Timestamp};
use ccdb_storage::{Page, PageType, TupleVersion, WriteTime, PAGE_SIZE};

/// Which engine of a deployment Mala attacks. Multi-engine deployments
/// (tenant namespaces, shards) keep each engine under a well-known
/// deployment-relative prefix; Mala, being root on the platform, can reach
/// any of them with the same file editor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MalaTarget {
    /// A single-engine deployment: `<dir>/engine/`.
    Root,
    /// A tenant's engine: `<dir>/tenants/<name>/engine/`.
    Tenant(String),
    /// A shard's engine: `<dir>/shards/<i>/engine/`.
    Shard(u32),
}

impl MalaTarget {
    /// The deployment-relative directory prefix the target's engine lives
    /// under (empty for [`MalaTarget::Root`]).
    pub fn prefix(&self) -> PathBuf {
        match self {
            MalaTarget::Root => PathBuf::new(),
            MalaTarget::Tenant(name) => Path::new("tenants").join(name),
            MalaTarget::Shard(i) => Path::new("shards").join(i.to_string()),
        }
    }
}

/// One tamper from Mala's catalogue, as data: campaign fuzzers draw these
/// from a seeded RNG, apply them with [`Mala::apply`], and keep the applied
/// sequence as a replayable action trace. Every variant corresponds to a
/// hand-written attack method below.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TamperAction {
    /// [`Mala::alter_tuple_value`].
    AlterTuple { key: Vec<u8>, new_value: Vec<u8> },
    /// [`Mala::delete_tuple`].
    DeleteTuple { key: Vec<u8> },
    /// [`Mala::backdate_insert`].
    BackdateInsert { rel: RelId, key: Vec<u8>, value: Vec<u8>, fake_time: Timestamp },
    /// [`Mala::swap_leaf_entries`].
    SwapLeafEntries,
    /// [`Mala::corrupt_separator`].
    CorruptSeparator,
    /// [`Mala::flip_byte`].
    FlipByte { offset: u64, mask: u8, fix_checksum: bool },
    /// The state-reversion round trip: snapshot the page holding `key`,
    /// alter the tuple, restore the snapshot byte-for-byte. Leaves no local
    /// trace — the canonical *harmless* tamper.
    RevertRoundTrip { key: Vec<u8> },
    /// [`Mala::wipe_local_wal`] (pair with a crash, or the running engine's
    /// own file handle papers over it).
    WipeWal,
}

/// The adversary, bound to the database file on conventional media.
pub struct Mala {
    db_path: PathBuf,
    wal_path: PathBuf,
}

impl Mala {
    /// Targets the database file at `db_path` (usually
    /// `<dir>/engine/db.pages`). The local WAL is assumed to be the
    /// sibling `wal.log`.
    pub fn new(db_path: impl AsRef<Path>) -> Mala {
        let db_path = db_path.as_ref().to_path_buf();
        let wal_path = db_path.parent().map(|d| d.join("wal.log")).unwrap_or_default();
        Mala { db_path, wal_path }
    }

    /// Targets one engine of a (possibly multi-engine) deployment rooted at
    /// `root`: the root engine itself, a tenant under `tenants/<name>`, or a
    /// shard under `shards/<i>`.
    pub fn for_deployment(root: impl AsRef<Path>, target: &MalaTarget) -> Mala {
        let engine_dir = root.as_ref().join(target.prefix()).join("engine");
        Mala { db_path: engine_dir.join("db.pages"), wal_path: engine_dir.join("wal.log") }
    }

    /// The database file under attack.
    pub fn db_path(&self) -> &Path {
        &self.db_path
    }

    /// The local WAL file under attack.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Applies one catalogued [`TamperAction`]; returns whether it landed
    /// (found its victim bytes and changed the file).
    pub fn apply(&self, action: &TamperAction) -> Result<bool> {
        match action {
            TamperAction::AlterTuple { key, new_value } => self.alter_tuple_value(key, new_value),
            TamperAction::DeleteTuple { key } => self.delete_tuple(key),
            TamperAction::BackdateInsert { rel, key, value, fake_time } => {
                self.backdate_insert(*rel, key, value, *fake_time)
            }
            TamperAction::SwapLeafEntries => self.swap_leaf_entries(),
            TamperAction::CorruptSeparator => self.corrupt_separator(),
            TamperAction::FlipByte { offset, mask, fix_checksum } => {
                self.flip_byte(*offset, *mask, *fix_checksum)
            }
            TamperAction::RevertRoundTrip { key } => {
                let Some((pgno, image)) = self.snapshot_page_with(key)? else {
                    return Ok(false);
                };
                let altered = self.alter_tuple_value(key, b"transient-tamper")?;
                self.restore_page(pgno, &image)?;
                Ok(altered)
            }
            TamperAction::WipeWal => {
                self.wipe_local_wal()?;
                Ok(true)
            }
        }
    }

    fn page_count(&self) -> Result<u64> {
        let len = fs::metadata(&self.db_path)
            .map_err(|e| Error::io("statting victim database", e))?
            .len();
        Ok(len / PAGE_SIZE as u64)
    }

    fn read_page(&self, pgno: PageNo) -> Result<Option<Page>> {
        let mut f =
            fs::File::open(&self.db_path).map_err(|e| Error::io("opening victim database", e))?;
        f.seek(SeekFrom::Start(pgno.0 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking victim database", e))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_exact(&mut buf).map_err(|e| Error::io("reading victim page", e))?;
        Ok(Page::from_bytes(&buf).ok())
    }

    fn write_page(&self, page: &mut Page) -> Result<()> {
        let img = page.finalize_for_write().to_vec();
        let mut f = OpenOptions::new()
            .write(true)
            .open(&self.db_path)
            .map_err(|e| Error::io("opening victim database for writing", e))?;
        f.seek(SeekFrom::Start(page.pgno().0 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking victim database", e))?;
        f.write_all(&img).map_err(|e| Error::io("writing tampered page", e))?;
        f.sync_data().map_err(|e| Error::io("syncing tampered page", e))?;
        Ok(())
    }

    /// Visits every parseable leaf page.
    fn for_each_leaf(&self, mut f: impl FnMut(&mut Page) -> Result<bool>) -> Result<bool> {
        for i in 0..self.page_count()? {
            let Some(mut page) = self.read_page(PageNo(i))? else { continue };
            if page.page_type() != PageType::Leaf {
                continue;
            }
            if f(&mut page)? {
                self.write_page(&mut page)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// **Alter a committed tuple's value in place** — the core cover-up
    /// attack ("a CEO may want to hide illegal asset shuffling recorded in
    /// the company's financial database"). Returns `true` if a version of
    /// `key` was found and rewritten.
    pub fn alter_tuple_value(&self, key: &[u8], new_value: &[u8]) -> Result<bool> {
        self.for_each_leaf(|page| {
            for i in 0..page.cell_count() {
                let Ok(mut t) = TupleVersion::decode_cell(page.cell(i)) else { continue };
                if t.key == key && !t.end_of_life {
                    t.value = new_value.to_vec();
                    page.replace_cell(i, &t.encode_cell())?;
                    return Ok(true);
                }
            }
            Ok(false)
        })
    }

    /// **Shred a tuple version outside the protocol** — destroy evidence
    /// without an expiry or a `SHREDDED` record.
    pub fn delete_tuple(&self, key: &[u8]) -> Result<bool> {
        self.for_each_leaf(|page| {
            for i in 0..page.cell_count() {
                let Ok(t) = TupleVersion::decode_cell(page.cell(i)) else { continue };
                if t.key == key {
                    page.remove_cell(i);
                    return Ok(true);
                }
            }
            Ok(false)
        })
    }

    /// **Post-hoc insertion**: plant a tuple with a commit time in the past,
    /// "to make it appear that an activity took place though in fact it did
    /// not" (forged government records: births, deaths, property transfers).
    /// The tuple is inserted in correct sort position on the first leaf of
    /// `rel` with room, with a fresh tuple-order number — Mala does
    /// everything right except going through the DBMS.
    pub fn backdate_insert(
        &self,
        rel: RelId,
        key: &[u8],
        value: &[u8],
        fake_time: Timestamp,
    ) -> Result<bool> {
        self.for_each_leaf(|page| {
            if page.rel_id() != rel || page.is_historical() {
                return Ok(false);
            }
            let mut t = TupleVersion {
                rel,
                key: key.to_vec(),
                time: WriteTime::Committed(fake_time),
                seq: 0,
                end_of_life: false,
                value: value.to_vec(),
            };
            let cell_len = t.encode_cell().len();
            if !page.can_fit(cell_len) {
                return Ok(false);
            }
            // Correct sort position, so physical checks pass.
            let mut pos = page.cell_count();
            for i in 0..page.cell_count() {
                let Ok(e) = TupleVersion::decode_cell(page.cell(i)) else { continue };
                if (e.key.as_slice(), e.time) > (key, t.time) {
                    pos = i;
                    break;
                }
            }
            t.seq = page.alloc_seq();
            page.insert_cell(pos, &t.encode_cell())?;
            Ok(true)
        })
    }

    /// **Figure 2(b)**: swap two leaf elements, logically hiding a tuple
    /// from B+-tree lookups while keeping the content present.
    pub fn swap_leaf_entries(&self) -> Result<bool> {
        self.for_each_leaf(|page| {
            if page.cell_count() < 2 {
                return Ok(false);
            }
            let a = page.cell(0).to_vec();
            let last = page.cell_count() - 1;
            let b = page.cell(last).to_vec();
            if a == b {
                return Ok(false);
            }
            page.replace_cell(0, &b)?;
            page.replace_cell(last, &a)?;
            Ok(true)
        })
    }

    /// **Figure 2(c)**: overwrite a separator key in an internal node so
    /// lookups route past a leaf ("index element 31 … changed to 35").
    pub fn corrupt_separator(&self) -> Result<bool> {
        for i in 0..self.page_count()? {
            let Some(mut page) = self.read_page(PageNo(i))? else { continue };
            if page.page_type() != PageType::Inner || page.cell_count() < 2 {
                continue;
            }
            let Ok(mut e) = IndexEntry::decode(page.cell(1)) else { continue };
            if e.key.is_empty() {
                continue;
            }
            let last = e.key.len() - 1;
            e.key[last] = e.key[last].wrapping_add(9);
            page.replace_cell(1, &e.encode())?;
            self.write_page(&mut page)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Captures a page image for a later [`Mala::restore_page`] — the
    /// **state-reversion attack**: "an adversary can make arbitrary changes
    /// …, as long as she undoes them before the next audit."
    pub fn snapshot_page_with(&self, key: &[u8]) -> Result<Option<(PageNo, Vec<u8>)>> {
        for i in 0..self.page_count()? {
            let Some(page) = self.read_page(PageNo(i))? else { continue };
            if page.page_type() != PageType::Leaf {
                continue;
            }
            let has_key = page
                .cells()
                .any(|c| TupleVersion::decode_cell(c).map(|t| t.key == key).unwrap_or(false));
            if has_key {
                let mut p = page;
                return Ok(Some((PageNo(i), p.finalize_for_write().to_vec())));
            }
        }
        Ok(None)
    }

    /// Restores a previously captured page image byte-for-byte.
    pub fn restore_page(&self, pgno: PageNo, image: &[u8]) -> Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .open(&self.db_path)
            .map_err(|e| Error::io("opening victim database for writing", e))?;
        f.seek(SeekFrom::Start(pgno.0 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking victim database", e))?;
        f.write_all(image).map_err(|e| Error::io("restoring page", e))?;
        f.sync_data().map_err(|e| Error::io("syncing restored page", e))?;
        Ok(())
    }

    /// **Wipe the local WAL** (e.g. to unwind commits whose pages have not
    /// reached disk, in concert with a forced crash). The WORM-resident WAL
    /// tail is what defeats this.
    pub fn wipe_wal(&self, wal_path: impl AsRef<Path>) -> Result<()> {
        fs::write(wal_path.as_ref(), b"").map_err(|e| Error::io("truncating victim WAL", e))
    }

    /// [`Mala::wipe_wal`] against the bound engine's own WAL
    /// (the `wal.log` sibling of the database file).
    pub fn wipe_local_wal(&self) -> Result<()> {
        self.wipe_wal(&self.wal_path)
    }

    /// **Arbitrary single-byte tamper**: XORs one byte at `offset` in the
    /// raw database file (a nonzero mask is enforced so the byte always
    /// changes). With `fix_checksum`, the containing page's checksum is
    /// recomputed afterwards — the corruption is then *not* self-announcing
    /// through the page CRC, and the auditor must catch it (if it is
    /// observable at all) through content checks: the completeness hash,
    /// sort order, parent/child separators, or the replayed page states.
    /// Returns `false` when `offset` is past the end of the file.
    pub fn flip_byte(&self, offset: u64, mask: u8, fix_checksum: bool) -> Result<bool> {
        let len = fs::metadata(&self.db_path)
            .map_err(|e| Error::io("statting victim database", e))?
            .len();
        if offset >= len {
            return Ok(false);
        }
        let mask = if mask == 0 { 1 } else { mask };
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.db_path)
            .map_err(|e| Error::io("opening victim database for writing", e))?;
        f.seek(SeekFrom::Start(offset)).map_err(|e| Error::io("seeking victim database", e))?;
        let mut b = [0u8; 1];
        f.read_exact(&mut b).map_err(|e| Error::io("reading victim byte", e))?;
        b[0] ^= mask;
        f.seek(SeekFrom::Start(offset)).map_err(|e| Error::io("seeking victim database", e))?;
        f.write_all(&b).map_err(|e| Error::io("flipping victim byte", e))?;
        f.sync_data().map_err(|e| Error::io("syncing flipped byte", e))?;
        drop(f);
        if fix_checksum {
            // Re-finalize the page so the CRC matches the tampered content.
            // If the flip broke the page header beyond parsing, leave it —
            // the corruption is then caught as an unreadable page instead.
            let pgno = PageNo(offset / PAGE_SIZE as u64);
            if let Some(mut page) = self.read_page(pgno)? {
                self.write_page(&mut page)?;
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_storage::DiskManager;
    use ccdb_storage::PageStore;

    fn victim(tag: &str) -> (PathBuf, DiskManager) {
        let p = std::env::temp_dir().join(format!(
            "ccdb-mala-{}-{}-{}.db",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let dm = DiskManager::open(&p).unwrap();
        (p, dm)
    }

    fn tuple(key: &[u8], value: &[u8], seq: u16) -> TupleVersion {
        TupleVersion {
            rel: RelId(1),
            key: key.to_vec(),
            time: WriteTime::Committed(Timestamp(100 + seq as u64)),
            seq,
            end_of_life: false,
            value: value.to_vec(),
        }
    }

    fn seed_leaf(dm: &DiskManager) -> PageNo {
        let pgno = dm.allocate().unwrap();
        let mut p = Page::new(pgno, PageType::Leaf, RelId(1));
        for (i, k) in [b"alpha", b"bravo", b"delta"].iter().enumerate() {
            let t = tuple(*k, b"honest", i as u16);
            p.append_cell(&t.encode_cell()).unwrap();
            p.alloc_seq();
        }
        dm.pwrite(&mut p).unwrap();
        pgno
    }

    #[test]
    fn alter_tuple_changes_disk_value_and_fixes_checksum() {
        let (path, dm) = victim("alter");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        assert!(mala.alter_tuple_value(b"bravo", b"tampered").unwrap());
        let page = dm.pread(pgno).unwrap();
        assert!(page.verify_checksum(), "Mala fixes the checksum");
        let t = TupleVersion::decode_cell(page.cell(1)).unwrap();
        assert_eq!(t.value, b"tampered");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn delete_tuple_removes_version() {
        let (path, dm) = victim("delete");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        assert!(mala.delete_tuple(b"alpha").unwrap());
        assert!(!mala.delete_tuple(b"missing").unwrap());
        let page = dm.pread(pgno).unwrap();
        assert_eq!(page.cell_count(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn backdate_insert_lands_sorted() {
        let (path, dm) = victim("backdate");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        assert!(mala.backdate_insert(RelId(1), b"charlie", b"forged", Timestamp(50)).unwrap());
        let page = dm.pread(pgno).unwrap();
        assert_eq!(page.cell_count(), 4);
        let keys: Vec<Vec<u8>> =
            page.cells().map(|c| TupleVersion::decode_cell(c).unwrap().key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "forged tuple is in sort position");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn swap_breaks_order_but_keeps_content() {
        let (path, dm) = victim("swap");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        assert!(mala.swap_leaf_entries().unwrap());
        let page = dm.pread(pgno).unwrap();
        let keys: Vec<Vec<u8>> =
            page.cells().map(|c| TupleVersion::decode_cell(c).unwrap().key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_ne!(keys, sorted);
        assert_eq!(keys.len(), 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn deployment_targets_resolve_engine_paths() {
        let root = Path::new("/srv/ccdb");
        let m = Mala::for_deployment(root, &MalaTarget::Root);
        assert_eq!(m.db_path(), root.join("engine/db.pages"));
        assert_eq!(m.wal_path(), root.join("engine/wal.log"));
        let m = Mala::for_deployment(root, &MalaTarget::Tenant("acme".into()));
        assert_eq!(m.db_path(), root.join("tenants/acme/engine/db.pages"));
        assert_eq!(m.wal_path(), root.join("tenants/acme/engine/wal.log"));
        let m = Mala::for_deployment(root, &MalaTarget::Shard(2));
        assert_eq!(m.db_path(), root.join("shards/2/engine/db.pages"));
        assert_eq!(m.wal_path(), root.join("shards/2/engine/wal.log"));
        // `new` derives the WAL sibling the same way.
        let m = Mala::new(root.join("shards/0/engine/db.pages"));
        assert_eq!(m.wal_path(), root.join("shards/0/engine/wal.log"));
    }

    #[test]
    fn apply_dispatches_the_catalogue() {
        let (path, dm) = victim("apply");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        assert!(mala
            .apply(&TamperAction::AlterTuple { key: b"bravo".to_vec(), new_value: b"x".to_vec() })
            .unwrap());
        assert!(mala.apply(&TamperAction::DeleteTuple { key: b"alpha".to_vec() }).unwrap());
        assert!(!mala.apply(&TamperAction::DeleteTuple { key: b"missing".to_vec() }).unwrap());
        assert!(mala
            .apply(&TamperAction::BackdateInsert {
                rel: RelId(1),
                key: b"forged".to_vec(),
                value: b"v".to_vec(),
                fake_time: Timestamp(10),
            })
            .unwrap());
        assert!(mala.apply(&TamperAction::SwapLeafEntries).unwrap());
        assert!(mala
            .apply(&TamperAction::FlipByte { offset: 64, mask: 0x10, fix_checksum: true })
            .unwrap());
        let _ = dm.pread(pgno); // file still page-aligned and statable
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn revert_round_trip_leaves_no_trace() {
        let (path, dm) = victim("revert-rt");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        let before = dm.pread(pgno).unwrap().finalize_for_write().to_vec();
        assert!(mala.apply(&TamperAction::RevertRoundTrip { key: b"bravo".to_vec() }).unwrap());
        let after = dm.pread(pgno).unwrap().finalize_for_write().to_vec();
        assert_eq!(before, after, "reversion must be byte-identical");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn snapshot_and_restore_roundtrip() {
        let (path, dm) = victim("revert");
        let pgno = seed_leaf(&dm);
        let mala = Mala::new(&path);
        let (got_pgno, image) = mala.snapshot_page_with(b"alpha").unwrap().unwrap();
        assert_eq!(got_pgno, pgno);
        mala.alter_tuple_value(b"alpha", b"evil").unwrap();
        mala.restore_page(pgno, &image).unwrap();
        let page = dm.pread(pgno).unwrap();
        let t = TupleVersion::decode_cell(page.cell(0)).unwrap();
        assert_eq!(t.value, b"honest", "reversion leaves no local trace");
        std::fs::remove_file(path).unwrap();
    }
}
