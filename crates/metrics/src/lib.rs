//! Metrics: a small counter/gauge registry with Prometheus text-format
//! exposition and a minimal HTTP scrape endpoint.
//!
//! The workspace is fully offline, so this is a hand-rolled substitute for
//! the `prometheus` + `hyper` stack: enough of the [text exposition
//! format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! for a real Prometheus server to scrape (`# HELP`/`# TYPE` headers,
//! label sets, one sample per line), served over a thread that speaks just
//! enough HTTP/1.1 for `GET /metrics`.
//!
//! Two registration styles:
//!
//! - [`Registry::counter`] / [`Registry::gauge`]: shared atomic cells the
//!   instrumented code bumps directly (lock-free on the hot path).
//! - [`Registry::collector`]: a closure sampled at scrape time — the bridge
//!   for counters that already exist elsewhere (`EngineStats`,
//!   `AuditStats`) and should not be double-maintained.

pub mod http;
pub mod registry;

pub use http::{http_get, MetricsServer};
pub use registry::{Counter, Gauge, Registry, Sample};
