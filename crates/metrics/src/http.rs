//! A minimal HTTP/1.1 scrape endpoint for a [`Registry`].
//!
//! Serves `GET /metrics` with `text/plain; version=0.0.4` (the Prometheus
//! text format content type); anything else gets 404. One thread accepts
//! and handles connections serially — a scrape endpoint sees one poller
//! every few seconds, not load. `Connection: close` on every response
//! keeps the loop allocation-free of keep-alive state.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccdb_common::{Error, Result};

use crate::registry::Registry;

/// A running scrape endpoint. Dropping it stops the accept loop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
    /// `registry` until dropped.
    pub fn start(addr: &str, registry: Arc<Registry>) -> Result<MetricsServer> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::io("metrics: bind ", e))?;
        let addr = listener.local_addr().map_err(|e| Error::io("metrics: local_addr", e))?;
        // A short accept timeout lets the loop poll the stop flag; the
        // listener itself stays blocking for the actual request I/O.
        listener.set_nonblocking(true).map_err(|e| Error::io("metrics: nonblocking", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("ccdb-metrics".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = serve_one(stream, &registry);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .map_err(|e| Error::io("metrics: spawn", e))?;
        Ok(MetricsServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line; we never need them.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = stream;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        let body = registry.render();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    stream.flush()
}

/// Fetches `path` from an HTTP/1.1 server at `addr` and returns
/// `(status_code, body)`. Test/bench helper — also used by the CI smoke job
/// so the workspace needs no external HTTP client.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr).map_err(|e| Error::io("metrics: connect ", e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| Error::io("metrics: timeout", e))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: ccdb\r\nConnection: close\r\n\r\n")
        .map_err(|e| Error::io("metrics: send", e))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| Error::io("metrics: read status", e))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Invalid(format!("metrics: bad status line {status_line:?}")))?;
    let mut body_started = false;
    let mut body = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| Error::io("metrics: read", e))?;
        if n == 0 {
            break;
        }
        if body_started {
            body.push_str(&line);
        } else if line == "\r\n" || line == "\n" {
            body_started = true;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_roundtrip() {
        let registry = Arc::new(Registry::new());
        registry.counter("up_total", "liveness").add(1);
        let server = MetricsServer::start("127.0.0.1:0", registry.clone()).unwrap();
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE up_total counter"));
        assert!(body.contains("up_total 1"));
        let (status, _) = http_get(server.addr(), "/other").unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn scrapes_observe_live_updates() {
        let registry = Arc::new(Registry::new());
        let c = registry.counter("n_total", "n");
        let server = MetricsServer::start("127.0.0.1:0", registry.clone()).unwrap();
        c.add(41);
        let (_, body) = http_get(server.addr(), "/metrics").unwrap();
        assert!(body.contains("n_total 41"), "{body}");
        c.inc();
        let (_, body) = http_get(server.addr(), "/metrics").unwrap();
        assert!(body.contains("n_total 42"), "{body}");
    }
}
