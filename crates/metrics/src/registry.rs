//! The metric registry and Prometheus text rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use ccdb_common::sync::Mutex;

/// A monotonically increasing counter (`TYPE counter`). Cheap to clone;
/// clones share the cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge (`TYPE gauge`): a value that can go up and down. Stored as an
/// `i64` so `set`/`add`/`sub` stay atomic; rendered as an integer.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One sample emitted by a collector: label set + value. Values are `f64`
/// on the wire (Prometheus has no integer type); integer counters convert
/// losslessly up to 2^53.
pub struct Sample {
    /// `(label, value)` pairs, e.g. `[("tenant", "alpha")]`. Empty for an
    /// unlabelled metric.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// An unlabelled sample.
    pub fn value(v: f64) -> Sample {
        Sample { labels: Vec::new(), value: v }
    }

    /// A sample with one label.
    pub fn labelled(label: &str, label_value: &str, v: f64) -> Sample {
        Sample { labels: vec![(label.to_string(), label_value.to_string())], value: v }
    }
}

/// Metric kind for the `# TYPE` header.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
        }
    }
}

type CollectorFn = dyn Fn() -> Vec<Sample> + Send + Sync;

enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Collector(Box<CollectorFn>),
}

struct Metric {
    help: String,
    kind: Kind,
    source: Source,
}

/// A named collection of metrics, rendered in Prometheus text format.
///
/// Registration order is not significant: metrics render sorted by name so
/// scrapes are deterministic (and diffable in tests).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or returns the existing) counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut m = self.metrics.lock();
        if let Some(metric) = m.get(name) {
            if let Source::Counter(c) = &metric.source {
                return c.clone();
            }
        }
        let c = Counter::default();
        m.insert(
            name.to_string(),
            Metric {
                help: help.to_string(),
                kind: Kind::Counter,
                source: Source::Counter(c.clone()),
            },
        );
        c
    }

    /// Registers (or returns the existing) gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut m = self.metrics.lock();
        if let Some(metric) = m.get(name) {
            if let Source::Gauge(g) = &metric.source {
                return g.clone();
            }
        }
        let g = Gauge::default();
        m.insert(
            name.to_string(),
            Metric { help: help.to_string(), kind: Kind::Gauge, source: Source::Gauge(g.clone()) },
        );
        g
    }

    /// Registers a counter whose samples are pulled from `f` at scrape time
    /// (for counters maintained elsewhere, e.g. `EngineStats`). `f` may
    /// return multiple samples with distinct label sets under one name.
    pub fn collector_counter(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> Vec<Sample> + Send + Sync + 'static,
    ) {
        self.metrics.lock().insert(
            name.to_string(),
            Metric {
                help: help.to_string(),
                kind: Kind::Counter,
                source: Source::Collector(Box::new(f)),
            },
        );
    }

    /// Registers a gauge-kind collector (see [`Registry::collector_counter`]).
    pub fn collector_gauge(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> Vec<Sample> + Send + Sync + 'static,
    ) {
        self.metrics.lock().insert(
            name.to_string(),
            Metric {
                help: help.to_string(),
                kind: Kind::Gauge,
                source: Source::Collector(Box::new(f)),
            },
        );
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let metrics = self.metrics.lock();
        for (name, metric) in metrics.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&metric.help));
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind.as_str());
            let samples = match &metric.source {
                Source::Counter(c) => vec![Sample::value(c.get() as f64)],
                Source::Gauge(g) => vec![Sample::value(g.get() as f64)],
                Source::Collector(f) => f(),
            };
            for s in samples {
                if s.labels.is_empty() {
                    let _ = writeln!(out, "{name} {}", fmt_value(s.value));
                } else {
                    let labels = s
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = writeln!(out, "{name}{{{labels}}} {}", fmt_value(s.value));
                }
            }
        }
        out
    }
}

/// Prometheus renders integers without a fractional part; everything else
/// uses shortest-roundtrip `f64` formatting.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_collectors_sorted() {
        let r = Registry::new();
        let c = r.counter("ccdb_commits_total", "Transactions committed.");
        c.add(3);
        let g = r.gauge("ccdb_active_sessions", "Open sessions.");
        g.set(2);
        r.collector_counter("ccdb_tenant_commits_total", "Commits per tenant.", || {
            vec![Sample::labelled("tenant", "alpha", 5.0), Sample::labelled("tenant", "beta", 7.0)]
        });
        let text = r.render();
        let expected = "\
# HELP ccdb_active_sessions Open sessions.
# TYPE ccdb_active_sessions gauge
ccdb_active_sessions 2
# HELP ccdb_commits_total Transactions committed.
# TYPE ccdb_commits_total counter
ccdb_commits_total 3
# HELP ccdb_tenant_commits_total Commits per tenant.
# TYPE ccdb_tenant_commits_total counter
ccdb_tenant_commits_total{tenant=\"alpha\"} 5
ccdb_tenant_commits_total{tenant=\"beta\"} 7
";
        assert_eq!(text, expected);
    }

    #[test]
    fn re_registering_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.collector_gauge("g", "a \"quoted\" help\nline", || {
            vec![Sample::labelled("k", "a\"b\\c", 1.5)]
        });
        let text = r.render();
        assert!(text.contains("# HELP g a \"quoted\" help\\nline"));
        assert!(text.contains("g{k=\"a\\\"b\\\\c\"} 1.5"));
    }
}
