//! WAL record types and their byte encoding.

use ccdb_common::{ByteReader, ByteWriter, Error, Lsn, PageNo, RelId, Result, Timestamp, TxnId};

/// A physiological page operation: the unit of redo. Ops are idempotence-
/// guarded by the page LSN (redo applies an op only when the on-page LSN is
/// older than the op's LSN).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageOp {
    /// Insert `cell` at slot `idx`.
    InsertCell {
        /// Target page.
        pgno: PageNo,
        /// Slot index.
        idx: u32,
        /// Cell bytes.
        cell: Vec<u8>,
    },
    /// Replace the cell at slot `idx` (lazy timestamping).
    ReplaceCell {
        /// Target page.
        pgno: PageNo,
        /// Slot index.
        idx: u32,
        /// New cell bytes.
        cell: Vec<u8>,
    },
    /// Remove the cell at slot `idx` (rollback, vacuum).
    RemoveCell {
        /// Target page.
        pgno: PageNo,
        /// Slot index.
        idx: u32,
    },
    /// Replace the whole page image (split outputs, parent rebuilds, page
    /// retirement). The image's own LSN field is overwritten at redo.
    SetImage {
        /// Target page.
        pgno: PageNo,
        /// Full page image.
        image: Vec<u8>,
    },
}

impl PageOp {
    /// The page this op targets.
    pub fn pgno(&self) -> PageNo {
        match self {
            PageOp::InsertCell { pgno, .. }
            | PageOp::ReplaceCell { pgno, .. }
            | PageOp::RemoveCell { pgno, .. }
            | PageOp::SetImage { pgno, .. } => *pgno,
        }
    }
}

/// Relation-metadata changes that must survive a crash without waiting for a
/// catalog rewrite (the catalog file is only rewritten at checkpoints).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelMetaOp {
    /// The relation's root page changed (split grew or shifted the root).
    Root(PageNo),
    /// A time split produced a historical page.
    HistoricalAdd(PageNo),
    /// A historical page left the live set (WORM migration).
    HistoricalRemove(PageNo),
}

/// A logical write-ahead log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction started.
    Begin { txn: TxnId },
    /// A transaction committed at `commit_time`.
    Commit { txn: TxnId, commit_time: Timestamp },
    /// A transaction aborted (its inserts must be rolled back).
    Abort { txn: TxnId },
    /// A transaction entered the prepared state of a cross-shard two-phase
    /// commit: its writes are durable and it may no longer write, but its
    /// fate (commit or abort) belongs to the coordinator. Recovery keeps a
    /// prepared transaction's pending versions and re-registers it as
    /// in-doubt instead of rolling it back.
    Prepare { txn: TxnId },
    /// A tuple version was written. `end_of_life` marks a deletion version.
    /// Writing the same `(txn, rel, key)` again replaces the pending version
    /// (intra-transaction writes collapse to one version, as transaction-time
    /// semantics dictate — versions exist per *committed* transaction).
    Insert { txn: TxnId, rel: RelId, key: Vec<u8>, end_of_life: bool, value: Vec<u8> },
    /// Compensation record: the pending version `(txn, rel, key)` was removed
    /// during rollback. Redo-only; never itself undone.
    UndoInsert { txn: TxnId, rel: RelId, key: Vec<u8> },
    /// A checkpoint: all dirty pages were flushed before this record was
    /// written. `active` lists in-flight transactions and their Begin LSNs so
    /// recovery knows how far back it must scan to roll them back.
    Checkpoint { active: Vec<(TxnId, Lsn)> },
    /// A physiological page operation, attributed to `txn` when it is part
    /// of a transaction's write set (`TxnId::NONE` for structural and
    /// maintenance operations, which are redo-only).
    Page { txn: TxnId, op: PageOp },
    /// A relation-metadata change.
    RelMeta { rel: RelId, meta: RelMetaOp },
}

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_INSERT: u8 = 4;
const TAG_UNDO_INSERT: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_PAGE: u8 = 7;
const TAG_REL_META: u8 = 8;
const TAG_PREPARE: u8 = 9;

const PTAG_INSERT_CELL: u8 = 1;
const PTAG_REPLACE_CELL: u8 = 2;
const PTAG_REMOVE_CELL: u8 = 3;
const PTAG_SET_IMAGE: u8 = 4;

const MTAG_ROOT: u8 = 1;
const MTAG_HIST_ADD: u8 = 2;
const MTAG_HIST_REMOVE: u8 = 3;

impl WalRecord {
    /// Encodes the record body (framing is the log writer's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::Begin { txn } => {
                w.put_u8(TAG_BEGIN);
                w.put_u64(txn.0);
            }
            WalRecord::Commit { txn, commit_time } => {
                w.put_u8(TAG_COMMIT);
                w.put_u64(txn.0);
                w.put_u64(commit_time.0);
            }
            WalRecord::Abort { txn } => {
                w.put_u8(TAG_ABORT);
                w.put_u64(txn.0);
            }
            WalRecord::Prepare { txn } => {
                w.put_u8(TAG_PREPARE);
                w.put_u64(txn.0);
            }
            WalRecord::Insert { txn, rel, key, end_of_life, value } => {
                w.put_u8(TAG_INSERT);
                w.put_u64(txn.0);
                w.put_u32(rel.0);
                w.put_u8(if *end_of_life { 1 } else { 0 });
                w.put_len_bytes(key);
                w.put_len_bytes(value);
            }
            WalRecord::UndoInsert { txn, rel, key } => {
                w.put_u8(TAG_UNDO_INSERT);
                w.put_u64(txn.0);
                w.put_u32(rel.0);
                w.put_len_bytes(key);
            }
            WalRecord::Checkpoint { active } => {
                w.put_u8(TAG_CHECKPOINT);
                w.put_u32(active.len() as u32);
                for (txn, lsn) in active {
                    w.put_u64(txn.0);
                    w.put_u64(lsn.0);
                }
            }
            WalRecord::Page { txn, op } => {
                w.put_u8(TAG_PAGE);
                w.put_u64(txn.0);
                match op {
                    PageOp::InsertCell { pgno, idx, cell } => {
                        w.put_u8(PTAG_INSERT_CELL);
                        w.put_u64(pgno.0);
                        w.put_u32(*idx);
                        w.put_len_bytes(cell);
                    }
                    PageOp::ReplaceCell { pgno, idx, cell } => {
                        w.put_u8(PTAG_REPLACE_CELL);
                        w.put_u64(pgno.0);
                        w.put_u32(*idx);
                        w.put_len_bytes(cell);
                    }
                    PageOp::RemoveCell { pgno, idx } => {
                        w.put_u8(PTAG_REMOVE_CELL);
                        w.put_u64(pgno.0);
                        w.put_u32(*idx);
                    }
                    PageOp::SetImage { pgno, image } => {
                        w.put_u8(PTAG_SET_IMAGE);
                        w.put_u64(pgno.0);
                        w.put_len_bytes(image);
                    }
                }
            }
            WalRecord::RelMeta { rel, meta } => {
                w.put_u8(TAG_REL_META);
                w.put_u32(rel.0);
                match meta {
                    RelMetaOp::Root(p) => {
                        w.put_u8(MTAG_ROOT);
                        w.put_u64(p.0);
                    }
                    RelMetaOp::HistoricalAdd(p) => {
                        w.put_u8(MTAG_HIST_ADD);
                        w.put_u64(p.0);
                    }
                    RelMetaOp::HistoricalRemove(p) => {
                        w.put_u8(MTAG_HIST_REMOVE);
                        w.put_u64(p.0);
                    }
                }
            }
        }
        w.into_vec()
    }

    /// Decodes a record body.
    pub fn decode(body: &[u8]) -> Result<WalRecord> {
        let mut r = ByteReader::new(body);
        let tag = r.get_u8()?;
        let rec = match tag {
            TAG_BEGIN => WalRecord::Begin { txn: TxnId(r.get_u64()?) },
            TAG_COMMIT => {
                WalRecord::Commit { txn: TxnId(r.get_u64()?), commit_time: Timestamp(r.get_u64()?) }
            }
            TAG_ABORT => WalRecord::Abort { txn: TxnId(r.get_u64()?) },
            TAG_PREPARE => WalRecord::Prepare { txn: TxnId(r.get_u64()?) },
            TAG_INSERT => {
                let txn = TxnId(r.get_u64()?);
                let rel = RelId(r.get_u32()?);
                let eol = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    v => return Err(Error::corruption(format!("bad eol flag {v} in WAL insert"))),
                };
                let key = r.get_len_bytes()?.to_vec();
                let value = r.get_len_bytes()?.to_vec();
                WalRecord::Insert { txn, rel, key, end_of_life: eol, value }
            }
            TAG_UNDO_INSERT => WalRecord::UndoInsert {
                txn: TxnId(r.get_u64()?),
                rel: RelId(r.get_u32()?),
                key: r.get_len_bytes()?.to_vec(),
            },
            TAG_CHECKPOINT => {
                let n = r.get_u32()? as usize;
                let mut active = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    active.push((TxnId(r.get_u64()?), Lsn(r.get_u64()?)));
                }
                WalRecord::Checkpoint { active }
            }
            TAG_PAGE => {
                let txn = TxnId(r.get_u64()?);
                let ptag = r.get_u8()?;
                let op = match ptag {
                    PTAG_INSERT_CELL => PageOp::InsertCell {
                        pgno: PageNo(r.get_u64()?),
                        idx: r.get_u32()?,
                        cell: r.get_len_bytes()?.to_vec(),
                    },
                    PTAG_REPLACE_CELL => PageOp::ReplaceCell {
                        pgno: PageNo(r.get_u64()?),
                        idx: r.get_u32()?,
                        cell: r.get_len_bytes()?.to_vec(),
                    },
                    PTAG_REMOVE_CELL => {
                        PageOp::RemoveCell { pgno: PageNo(r.get_u64()?), idx: r.get_u32()? }
                    }
                    PTAG_SET_IMAGE => PageOp::SetImage {
                        pgno: PageNo(r.get_u64()?),
                        image: r.get_len_bytes()?.to_vec(),
                    },
                    t => return Err(Error::corruption(format!("unknown page-op tag {t}"))),
                };
                WalRecord::Page { txn, op }
            }
            TAG_REL_META => {
                let rel = RelId(r.get_u32()?);
                let mtag = r.get_u8()?;
                let meta = match mtag {
                    MTAG_ROOT => RelMetaOp::Root(PageNo(r.get_u64()?)),
                    MTAG_HIST_ADD => RelMetaOp::HistoricalAdd(PageNo(r.get_u64()?)),
                    MTAG_HIST_REMOVE => RelMetaOp::HistoricalRemove(PageNo(r.get_u64()?)),
                    t => return Err(Error::corruption(format!("unknown rel-meta tag {t}"))),
                };
                WalRecord::RelMeta { rel, meta }
            }
            t => return Err(Error::corruption(format!("unknown WAL record tag {t}"))),
        };
        if !r.is_exhausted() {
            return Err(Error::corruption("trailing bytes after WAL record"));
        }
        Ok(rec)
    }

    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Commit { txn, .. }
            | WalRecord::Abort { txn }
            | WalRecord::Prepare { txn }
            | WalRecord::Insert { txn, .. }
            | WalRecord::UndoInsert { txn, .. } => Some(*txn),
            WalRecord::Page { txn, .. } => txn.is_real().then_some(*txn),
            WalRecord::Checkpoint { .. } | WalRecord::RelMeta { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::PageNo;

    fn roundtrip(r: WalRecord) {
        let enc = r.encode();
        assert_eq!(WalRecord::decode(&enc).unwrap(), r);
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(WalRecord::Begin { txn: TxnId(9) });
        roundtrip(WalRecord::Commit { txn: TxnId(9), commit_time: Timestamp(77) });
        roundtrip(WalRecord::Abort { txn: TxnId(9) });
        roundtrip(WalRecord::Prepare { txn: TxnId(9) });
        roundtrip(WalRecord::Insert {
            txn: TxnId(9),
            rel: RelId(2),
            key: b"k1".to_vec(),
            end_of_life: false,
            value: b"v1".to_vec(),
        });
        roundtrip(WalRecord::Insert {
            txn: TxnId(9),
            rel: RelId(2),
            key: b"k1".to_vec(),
            end_of_life: true,
            value: vec![],
        });
        roundtrip(WalRecord::UndoInsert { txn: TxnId(9), rel: RelId(2), key: b"k1".to_vec() });
        roundtrip(WalRecord::Checkpoint { active: vec![(TxnId(1), Lsn(10)), (TxnId(2), Lsn(20))] });
        roundtrip(WalRecord::Checkpoint { active: vec![] });
        roundtrip(WalRecord::Page {
            txn: TxnId(4),
            op: PageOp::InsertCell { pgno: PageNo(7), idx: 2, cell: b"cell".to_vec() },
        });
        roundtrip(WalRecord::Page {
            txn: TxnId::NONE,
            op: PageOp::ReplaceCell { pgno: PageNo(7), idx: 2, cell: b"cell2".to_vec() },
        });
        roundtrip(WalRecord::Page {
            txn: TxnId::NONE,
            op: PageOp::RemoveCell { pgno: PageNo(7), idx: 0 },
        });
        roundtrip(WalRecord::Page {
            txn: TxnId::NONE,
            op: PageOp::SetImage { pgno: PageNo(9), image: vec![0xAB; 64] },
        });
        roundtrip(WalRecord::RelMeta { rel: RelId(3), meta: RelMetaOp::Root(PageNo(11)) });
        roundtrip(WalRecord::RelMeta { rel: RelId(3), meta: RelMetaOp::HistoricalAdd(PageNo(12)) });
        roundtrip(WalRecord::RelMeta {
            rel: RelId(3),
            meta: RelMetaOp::HistoricalRemove(PageNo(12)),
        });
    }

    #[test]
    fn page_op_pgno_accessor() {
        assert_eq!(PageOp::RemoveCell { pgno: PageNo(5), idx: 1 }.pgno(), PageNo(5));
        assert_eq!(PageOp::SetImage { pgno: PageNo(6), image: vec![] }.pgno(), PageNo(6));
    }

    #[test]
    fn page_record_txn_attribution() {
        let attributed =
            WalRecord::Page { txn: TxnId(3), op: PageOp::RemoveCell { pgno: PageNo(1), idx: 0 } };
        let structural = WalRecord::Page {
            txn: TxnId::NONE,
            op: PageOp::RemoveCell { pgno: PageNo(1), idx: 0 },
        };
        assert_eq!(attributed.txn(), Some(TxnId(3)));
        assert_eq!(structural.txn(), None);
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(WalRecord::Begin { txn: TxnId(3) }.txn(), Some(TxnId(3)));
        assert_eq!(WalRecord::Checkpoint { active: vec![] }.txn(), None);
    }

    #[test]
    fn garbage_rejected() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[200]).is_err());
        let mut enc = WalRecord::Begin { txn: TxnId(1) }.encode();
        enc.push(0);
        assert!(WalRecord::decode(&enc).is_err());
    }
}
