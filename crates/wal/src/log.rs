//! The physical log: framing, durability, torn-tail recovery, the checkpoint
//! master record, and the WORM tail mirror.
//!
//! Framing per record: `u32 length ‖ u32 FNV checksum ‖ body`. The reader
//! stops cleanly at the first truncated or checksum-failing frame, treating
//! everything after it as a torn tail (discarded, as in every WAL).
//!
//! An LSN is the byte offset of a record's frame in the log file.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ccdb_common::codec::checksum32;
use ccdb_common::sync::Mutex;
use ccdb_common::{Error, Lsn, Result};
use ccdb_storage::fault::{FaultInjector, Injection, IoPoint};

use crate::record::WalRecord;

/// Callback receiving every newly *flushed* byte range, used to mirror the
/// WAL tail onto WORM. Invoked under the log lock; must not re-enter the WAL.
pub type TailMirror = Arc<dyn Fn(Lsn, &[u8]) -> Result<()> + Send + Sync>;

struct WriterInner {
    file: fs::File,
    /// End of the durable prefix.
    flushed: u64,
    /// End of the appended (possibly unflushed) log.
    end: u64,
    /// Bytes appended but not yet flushed.
    pending: Vec<u8>,
}

/// Appender with group flush and tail mirroring.
pub struct WalWriter {
    path: PathBuf,
    inner: Mutex<WriterInner>,
    mirror: Mutex<Option<TailMirror>>,
    /// Whether flush() issues fsync. Benchmarks disable it (the crash model
    /// in this workspace is process-level, not OS-level, so correctness
    /// tests are unaffected); durability-sensitive deployments keep it on.
    sync: std::sync::atomic::AtomicBool,
    /// Optional deterministic fault layer (crash/torn-write torture tests).
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl WalWriter {
    /// Opens (creating if needed) the log at `path`, positioned after the
    /// last complete record (a torn tail is truncated away).
    pub fn open(path: impl AsRef<Path>) -> Result<WalWriter> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| Error::io("creating WAL directory", e))?;
            }
        }
        // Find the end of the valid prefix.
        let valid_end = match fs::read(&path) {
            Ok(bytes) => scan_valid_prefix(&bytes),
            Err(_) => 0,
        };
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening WAL {}", path.display()), e))?;
        file.set_len(valid_end).map_err(|e| Error::io("truncating torn WAL tail", e))?;
        Ok(WalWriter {
            path,
            inner: Mutex::new(WriterInner {
                file,
                flushed: valid_end,
                end: valid_end,
                pending: Vec::new(),
            }),
            mirror: Mutex::new(None),
            sync: std::sync::atomic::AtomicBool::new(true),
            injector: Mutex::new(None),
        })
    }

    /// Installs (or removes) the deterministic fault injector. Appends and
    /// flushes consult it first.
    pub fn set_fault_injector(&self, inj: Option<Arc<FaultInjector>>) {
        *self.injector.lock() = inj;
    }

    fn injection(&self, point: IoPoint, payload_len: usize) -> Injection {
        match self.injector.lock().as_ref() {
            Some(inj) => inj.check(point, payload_len),
            None => Injection::Proceed,
        }
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Installs the WORM tail mirror.
    pub fn set_tail_mirror(&self, m: TailMirror) {
        *self.mirror.lock() = Some(m);
    }

    /// Enables or disables fsync on flush.
    pub fn set_sync(&self, on: bool) {
        self.sync.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Appends a record, returning its LSN. The record is buffered; call
    /// [`WalWriter::flush`] (or rely on commit, which flushes) for
    /// durability.
    pub fn append(&self, rec: &WalRecord) -> Result<Lsn> {
        match self.injection(IoPoint::WalAppend, 0) {
            Injection::Proceed => {}
            Injection::Fail(e) => return Err(e),
            // Appends only buffer in memory; there is nothing to tear yet.
            Injection::Torn { .. } => {
                return Err(Error::injected("crash (torn degenerates) at wal-append"))
            }
        }
        let body = rec.encode();
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.end);
        inner.end += frame.len() as u64;
        inner.pending.extend_from_slice(&frame);
        Ok(lsn)
    }

    /// Appends and immediately flushes (commit path).
    pub fn append_flush(&self, rec: &WalRecord) -> Result<Lsn> {
        let lsn = self.append(rec)?;
        self.flush()?;
        Ok(lsn)
    }

    /// Forces all appended records to disk and mirrors the newly durable
    /// bytes to WORM.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.pending.is_empty() {
            return Ok(());
        }
        let torn_keep = match self.injection(IoPoint::WalFlush, inner.pending.len()) {
            Injection::Proceed => None,
            // Pending bytes stay buffered: a transient error is retryable,
            // and after a crash the buffer is dead memory anyway.
            Injection::Fail(e) => return Err(e),
            Injection::Torn { keep } => Some(keep),
        };
        let start = inner.flushed;
        let bytes = std::mem::take(&mut inner.pending);
        inner
            .file
            .seek(SeekFrom::Start(start))
            .map_err(|e| Error::io("seeking WAL for flush", e))?;
        if let Some(keep) = torn_keep {
            // Torn flush: a prefix of the group reaches the medium, then the
            // simulated power loss. `flushed` is not advanced and the WORM
            // mirror never sees the bytes — exactly the state a reopen's
            // torn-tail scan must cope with.
            inner.file.write_all(&bytes[..keep]).map_err(|e| Error::io("torn WAL write", e))?;
            return Err(Error::injected(format!(
                "torn WAL flush at offset {start} ({keep} of {} bytes kept)",
                bytes.len()
            )));
        }
        inner.file.write_all(&bytes).map_err(|e| Error::io("writing WAL", e))?;
        if self.sync.load(std::sync::atomic::Ordering::Relaxed) {
            inner.file.sync_data().map_err(|e| Error::io("fsync of WAL", e))?;
        }
        inner.flushed += bytes.len() as u64;
        debug_assert_eq!(inner.flushed, inner.end);
        // Mirror the newly durable range to WORM. A mirror failure is a
        // compliance halt: the paper requires transaction processing to stop
        // if the WORM server cannot be written.
        if let Some(m) = self.mirror.lock().clone() {
            m(Lsn(start), &bytes)?;
        }
        Ok(())
    }

    /// Flushes if anything up to `lsn` is still pending (the WAL rule before
    /// a data-page write).
    pub fn flush_up_to(&self, lsn: Lsn) -> Result<()> {
        let need = {
            let inner = self.inner.lock();
            lsn.0 < inner.end && lsn.0 >= inner.flushed
        };
        if need {
            self.flush()?;
        }
        Ok(())
    }

    /// LSN one past the last appended record.
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().end)
    }

    /// LSN one past the durable prefix.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().flushed)
    }

    /// Simulates losing the unflushed buffer in a crash (the in-memory
    /// pending bytes vanish; the durable prefix survives).
    pub fn simulate_crash_drop_pending(&self) {
        let mut inner = self.inner.lock();
        let flushed = inner.flushed;
        inner.pending.clear();
        inner.end = flushed;
    }
}

/// Returns the byte length of the valid record prefix of `bytes`.
fn scan_valid_prefix(bytes: &[u8]) -> u64 {
    let mut pos = 0usize;
    loop {
        if pos + 8 > bytes.len() {
            return pos as u64;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
        let sum = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
        if pos + 8 + len > bytes.len() {
            return pos as u64;
        }
        let body = &bytes[pos + 8..pos + 8 + len];
        if checksum32(body) != sum || WalRecord::decode(body).is_err() {
            return pos as u64;
        }
        pos += 8 + len;
    }
}

/// Sequential reader over a WAL file (or any byte buffer in the same
/// framing, e.g. the WORM tail mirror).
pub struct WalReader {
    bytes: Vec<u8>,
    pos: usize,
}

impl WalReader {
    /// Reads the whole log file into memory for scanning. Recovery-scale
    /// logs fit comfortably; the compliance log (which can be huge) has its
    /// own streaming reader in `ccdb-core`.
    pub fn open(path: impl AsRef<Path>) -> Result<WalReader> {
        let mut f = fs::File::open(path.as_ref())
            .map_err(|e| Error::io(format!("opening WAL {}", path.as_ref().display()), e))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes).map_err(|e| Error::io("reading WAL", e))?;
        Ok(WalReader { bytes, pos: 0 })
    }

    /// Wraps an in-memory byte buffer (e.g. the WORM tail).
    pub fn from_bytes(bytes: Vec<u8>) -> WalReader {
        WalReader { bytes, pos: 0 }
    }

    /// Repositions to `lsn`.
    pub fn seek(&mut self, lsn: Lsn) {
        self.pos = (lsn.0 as usize).min(self.bytes.len());
    }

    /// Returns the next record with its LSN, or `None` at the valid end
    /// (torn tails read as end-of-log).
    pub fn next_record(&mut self) -> Option<(Lsn, WalRecord)> {
        if self.pos + 8 > self.bytes.len() {
            return None;
        }
        let len =
            u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().expect("4")) as usize;
        let sum = u32::from_le_bytes(self.bytes[self.pos + 4..self.pos + 8].try_into().expect("4"));
        if self.pos + 8 + len > self.bytes.len() {
            return None;
        }
        let body = &self.bytes[self.pos + 8..self.pos + 8 + len];
        if checksum32(body) != sum {
            return None;
        }
        match WalRecord::decode(body) {
            Ok(rec) => {
                let lsn = Lsn(self.pos as u64);
                self.pos += 8 + len;
                Some((lsn, rec))
            }
            Err(_) => None,
        }
    }

    /// Collects all remaining records.
    pub fn collect_records(&mut self) -> Vec<(Lsn, WalRecord)> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record() {
            out.push(r);
        }
        out
    }
}

/// The checkpoint master record: a tiny side file holding the LSN of the
/// most recent checkpoint. (Its integrity is *not* trusted — the compliance
/// audit is what detects recovery tampering; this is purely operational.)
pub struct MasterRecord {
    path: PathBuf,
}

impl MasterRecord {
    /// Uses `path` as the master record location.
    pub fn at(path: impl AsRef<Path>) -> MasterRecord {
        MasterRecord { path: path.as_ref().to_path_buf() }
    }

    /// Persists the latest checkpoint LSN.
    pub fn store(&self, lsn: Lsn) -> Result<()> {
        fs::write(&self.path, lsn.0.to_le_bytes())
            .map_err(|e| Error::io("writing WAL master record", e))
    }

    /// Loads the latest checkpoint LSN (zero if absent/corrupt — recovery
    /// then scans the whole log, which is always safe).
    pub fn load(&self) -> Lsn {
        match fs::read(&self.path) {
            Ok(b) if b.len() == 8 => Lsn(u64::from_le_bytes(b.try_into().expect("8"))),
            _ => Lsn::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::{RelId, Timestamp, TxnId};

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(tag: &str) -> TempFile {
            TempFile(std::env::temp_dir().join(format!(
                "ccdb-wal-{}-{}-{}.log",
                std::process::id(),
                tag,
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            )))
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: TxnId(1) },
            WalRecord::Insert {
                txn: TxnId(1),
                rel: RelId(1),
                key: b"k".to_vec(),
                end_of_life: false,
                value: b"v".to_vec(),
            },
            WalRecord::Commit { txn: TxnId(1), commit_time: Timestamp(5) },
        ]
    }

    #[test]
    fn append_flush_read_roundtrip() {
        let tf = TempFile::new("rt");
        let w = WalWriter::open(&tf.0).unwrap();
        let mut lsns = Vec::new();
        for r in sample_records() {
            lsns.push(w.append(&r).unwrap());
        }
        w.flush().unwrap();
        let mut r = WalReader::open(&tf.0).unwrap();
        let got = r.collect_records();
        assert_eq!(got.len(), 3);
        for ((lsn, rec), (want_lsn, want_rec)) in
            got.iter().zip(lsns.iter().zip(sample_records().iter()))
        {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want_rec);
        }
    }

    #[test]
    fn unflushed_records_invisible_after_crash() {
        let tf = TempFile::new("crash");
        let w = WalWriter::open(&tf.0).unwrap();
        w.append_flush(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append(&WalRecord::Commit { txn: TxnId(1), commit_time: Timestamp(9) }).unwrap();
        w.simulate_crash_drop_pending();
        drop(w);
        let mut r = WalReader::open(&tf.0).unwrap();
        let got = r.collect_records();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].1, WalRecord::Begin { .. }));
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let tf = TempFile::new("torn");
        {
            let w = WalWriter::open(&tf.0).unwrap();
            for r in sample_records() {
                w.append(&r).unwrap();
            }
            w.flush().unwrap();
        }
        // Simulate a torn write: append garbage bytes.
        {
            let mut f = fs::OpenOptions::new().append(true).open(&tf.0).unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let w2 = WalWriter::open(&tf.0).unwrap();
        let end = w2.end_lsn();
        let lsn = w2.append_flush(&WalRecord::Abort { txn: TxnId(2) }).unwrap();
        assert_eq!(lsn, end);
        let mut r = WalReader::open(&tf.0).unwrap();
        let got = r.collect_records();
        assert_eq!(got.len(), 4);
        assert_eq!(got[3].1, WalRecord::Abort { txn: TxnId(2) });
    }

    #[test]
    fn corrupted_middle_record_stops_reader() {
        let tf = TempFile::new("corrupt");
        {
            let w = WalWriter::open(&tf.0).unwrap();
            for r in sample_records() {
                w.append(&r).unwrap();
            }
            w.flush().unwrap();
        }
        // Flip a byte in the second record's body.
        let mut bytes = fs::read(&tf.0).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        bytes[8 + first_len + 8 + 2] ^= 0xFF;
        fs::write(&tf.0, &bytes).unwrap();
        let mut r = WalReader::open(&tf.0).unwrap();
        assert_eq!(r.collect_records().len(), 1);
    }

    #[test]
    fn tail_mirror_sees_flushed_bytes() {
        let tf = TempFile::new("mirror");
        let w = WalWriter::open(&tf.0).unwrap();
        let seen = Arc::new(Mutex::new(Vec::<u8>::new()));
        let seen2 = seen.clone();
        w.set_tail_mirror(Arc::new(move |_lsn, bytes: &[u8]| {
            seen2.lock().extend_from_slice(bytes);
            Ok(())
        }));
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.flush().unwrap();
        w.flush().unwrap(); // idempotent: nothing new mirrored
        let mirrored = seen.lock().clone();
        let on_disk = fs::read(&tf.0).unwrap();
        assert_eq!(mirrored, on_disk);
        // The mirrored bytes parse as the same records.
        let mut r = WalReader::from_bytes(mirrored);
        assert_eq!(r.collect_records().len(), 3);
    }

    #[test]
    fn mirror_failure_propagates() {
        let tf = TempFile::new("mirror-fail");
        let w = WalWriter::open(&tf.0).unwrap();
        w.set_tail_mirror(Arc::new(|_l, _b: &[u8]| Err(Error::ComplianceHalt("WORM down".into()))));
        w.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
        assert!(w.flush().is_err());
    }

    #[test]
    fn injected_torn_flush_leaves_recoverable_tail() {
        use ccdb_storage::fault::{FaultInjector, FaultKind, FaultPlan, IoPoint};
        let tf = TempFile::new("inj-torn");
        {
            let w = WalWriter::open(&tf.0).unwrap();
            let seen = Arc::new(Mutex::new(0usize));
            let seen2 = seen.clone();
            w.set_tail_mirror(Arc::new(move |_l, b: &[u8]| {
                *seen2.lock() += b.len();
                Ok(())
            }));
            w.set_fault_injector(Some(Arc::new(FaultInjector::armed(FaultPlan::single(
                IoPoint::WalFlush,
                1,
                FaultKind::Torn { keep_permille: 600 },
            )))));
            for r in sample_records() {
                w.append(&r).unwrap();
            }
            let err = w.flush().unwrap_err();
            assert!(err.is_injected(), "{err}");
            // The mirror never saw the torn bytes.
            assert_eq!(*seen.lock(), 0);
        }
        // Reopen: the torn tail is truncated to a whole-frame prefix and the
        // log accepts new appends.
        let w2 = WalWriter::open(&tf.0).unwrap();
        let survivors = WalReader::open(&tf.0).unwrap().collect_records().len();
        assert!(survivors < 3, "a 60% tear cannot have kept all three records");
        w2.append_flush(&WalRecord::Abort { txn: TxnId(9) }).unwrap();
        let after = WalReader::open(&tf.0).unwrap().collect_records();
        assert_eq!(after.len(), survivors + 1);
        assert_eq!(after.last().unwrap().1, WalRecord::Abort { txn: TxnId(9) });
    }

    #[test]
    fn injected_crash_at_append_loses_only_buffered_records() {
        use ccdb_storage::fault::{FaultInjector, FaultKind, FaultPlan, IoPoint};
        let tf = TempFile::new("inj-append");
        let w = WalWriter::open(&tf.0).unwrap();
        w.append_flush(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
        w.set_fault_injector(Some(Arc::new(FaultInjector::armed(FaultPlan::single(
            IoPoint::WalAppend,
            1,
            FaultKind::Crash,
        )))));
        assert!(w
            .append(&WalRecord::Commit { txn: TxnId(1), commit_time: Timestamp(3) })
            .unwrap_err()
            .is_injected());
        // Post-crash flush fails too; the durable prefix is intact.
        assert!(w.flush().is_err() || WalReader::open(&tf.0).unwrap().collect_records().len() == 1);
        let got = WalReader::open(&tf.0).unwrap().collect_records();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn flush_up_to_only_when_needed() {
        let tf = TempFile::new("upto");
        let w = WalWriter::open(&tf.0).unwrap();
        let l1 = w.append(&WalRecord::Begin { txn: TxnId(1) }).unwrap();
        w.flush_up_to(l1).unwrap();
        assert_eq!(w.flushed_lsn(), w.end_lsn());
        // Already durable: no-op.
        w.flush_up_to(l1).unwrap();
    }

    #[test]
    fn master_record_roundtrip() {
        let tf = TempFile::new("master");
        let m = MasterRecord::at(&tf.0);
        assert_eq!(m.load(), Lsn::ZERO);
        m.store(Lsn(1234)).unwrap();
        assert_eq!(m.load(), Lsn(1234));
    }

    #[test]
    fn reader_seek() {
        let tf = TempFile::new("seek");
        let w = WalWriter::open(&tf.0).unwrap();
        let mut lsns = Vec::new();
        for r in sample_records() {
            lsns.push(w.append(&r).unwrap());
        }
        w.flush().unwrap();
        let mut r = WalReader::open(&tf.0).unwrap();
        r.seek(lsns[2]);
        let got = r.collect_records();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].1, WalRecord::Commit { .. }));
    }
}
