//! Write-ahead logging for the transaction-time engine.
//!
//! The WAL lives on **conventional read/write media** — it is one of the
//! files the adversary can edit — but its **tail (the last two regret
//! intervals) is mirrored to WORM** ([`WalWriter::set_tail_mirror`]): if the
//! DBMS crashes within one regret interval of a commit, some `NEW_TUPLE`
//! records may not have reached the compliance log yet, and the WORM-resident
//! WAL tail is then the only tamper-proof evidence of those updates
//! (Section IV-B). The auditor cross-checks recovery's compliance-log entries
//! against this tail.
//!
//! Recovery itself is **logical**: `Insert` records carry `(rel, key, value)`
//! rather than page images, and the engine's recovery replays them through
//! the ordinary B+-tree path with *ensure-present* / *ensure-absent*
//! semantics, which is idempotent and independent of physical layout. That
//! choice is deliberate: after a crash the physical page layout may differ
//! from the pre-crash layout, and the compliance plugin simply logs the
//! recovery-time page writes as fresh `NEW_TUPLE` records — "recovery can
//! cause L to contain duplicate NEW_TUPLE records; the auditor uses a
//! temporary hash table to identify duplicates" (Section IV-B).

pub mod log;
pub mod record;

pub use log::{TailMirror, WalReader, WalWriter};
pub use record::{PageOp, RelMetaOp, WalRecord};

use ccdb_common::{Lsn, RelId, Result, TxnId};

/// How the B+-tree reports every page mutation for redo logging. The engine
/// implements this over its [`WalWriter`]; trees run un-logged when no sink
/// is installed (standalone tests, the auditor's read-only reconstructions).
pub trait PageOpSink: Send + Sync {
    /// Logs one physiological page op; returns the record's LSN so the tree
    /// can stamp it into the page header.
    fn log_page_op(&self, txn: TxnId, op: &PageOp) -> Result<Lsn>;

    /// Logs a relation-metadata change (root move, historical-list change).
    fn log_rel_meta(&self, rel: RelId, meta: &RelMetaOp) -> Result<Lsn>;
}
