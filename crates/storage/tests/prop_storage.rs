//! Model-based property tests: a slotted page against `Vec<Vec<u8>>`, and
//! tuple-codec round trips.
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`]; each case's seed is printed on
//! failure for deterministic replay.

#![cfg(feature = "proptest")]

use ccdb_common::{PageNo, RelId, SplitMix64, Timestamp, TxnId};
use ccdb_storage::{Page, PageType, TupleVersion, WriteTime, PAGE_USABLE};

fn bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Operations on a slotted page.
#[derive(Clone, Debug)]
enum Op {
    Insert(usize, Vec<u8>),
    Remove(usize),
    Replace(usize, Vec<u8>),
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_range(0..3u32) {
        0 => Op::Insert(rng.gen_range(0..=usize::MAX), bytes(rng, 200)),
        1 => Op::Remove(rng.gen_range(0..=usize::MAX)),
        _ => Op::Replace(rng.gen_range(0..=usize::MAX), bytes(rng, 200)),
    }
}

/// The page behaves exactly like a vector of byte strings, through any
/// sequence of inserts/removes/replacements (with defragmentation
/// happening invisibly), and always revalidates and round-trips.
#[test]
fn page_matches_vec_model() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x7A_6E00 + case);
        let nops = rng.gen_range(0..60usize);
        let mut page = Page::new(PageNo(1), PageType::Leaf, RelId(1));
        let mut model: Vec<Vec<u8>> = Vec::new();
        for _ in 0..nops {
            match gen_op(&mut rng) {
                Op::Insert(i, cell) => {
                    let i = i % (model.len() + 1);
                    if page.can_fit(cell.len()) {
                        page.insert_cell(i, &cell).unwrap();
                        model.insert(i, cell);
                    }
                }
                Op::Remove(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        page.remove_cell(i);
                        model.remove(i);
                    }
                }
                Op::Replace(i, cell) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        // Replacement may fail only for space reasons.
                        if cell.len() <= model[i].len() || page.can_fit(cell.len()) {
                            page.replace_cell(i, &cell).unwrap();
                            model[i] = cell;
                        }
                    }
                }
            }
            page.validate_slots().unwrap();
        }
        let got: Vec<Vec<u8>> = page.cells().map(|c| c.to_vec()).collect();
        assert_eq!(&got, &model, "case seed {case}");
        // Disk round trip preserves everything.
        let img = page.finalize_for_write().to_vec();
        let back = Page::from_bytes(&img).unwrap();
        assert!(back.verify_checksum(), "case seed {case}");
        let got2: Vec<Vec<u8>> = back.cells().map(|c| c.to_vec()).collect();
        assert_eq!(&got2, &model, "case seed {case}");
    }
}

/// Tuple cells round-trip for arbitrary contents.
#[test]
fn tuple_cell_roundtrip() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(0x7C_E100 + case);
        let time = rng.next_u64();
        let pending = rng.gen_bool(0.5);
        let t = TupleVersion {
            rel: RelId(rng.gen_range(0..=u32::MAX)),
            key: bytes(&mut rng, 64),
            time: if pending {
                WriteTime::Pending(TxnId(time))
            } else {
                WriteTime::Committed(Timestamp(time))
            },
            seq: rng.gen_range(0..=u16::MAX),
            end_of_life: rng.gen_bool(0.5),
            value: bytes(&mut rng, 512),
        };
        let cell = t.encode_cell();
        assert!(
            cell.len() <= PAGE_USABLE || t.key.len() + t.value.len() > PAGE_USABLE - 32,
            "case seed {case}"
        );
        assert_eq!(TupleVersion::decode_cell(&cell).unwrap(), t, "case seed {case}");
    }
}

/// Canonical identity is stable under seq/page movement but sensitive to
/// every semantic field.
#[test]
fn canonical_identity_properties() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(0xCA_4000 + case);
        let time = rng.next_u64();
        let base = TupleVersion {
            rel: RelId(1),
            key: bytes(&mut rng, 32),
            time: WriteTime::Committed(Timestamp(time)),
            seq: rng.gen_range(0..=u16::MAX),
            end_of_life: false,
            value: bytes(&mut rng, 64),
        };
        let moved = TupleVersion { seq: rng.gen_range(0..=u16::MAX), ..base.clone() };
        assert_eq!(base.canonical_bytes(), moved.canonical_bytes(), "case seed {case}");
        let eol = TupleVersion { end_of_life: true, ..base.clone() };
        assert_ne!(base.canonical_bytes(), eol.canonical_bytes(), "case seed {case}");
        let later = TupleVersion {
            time: WriteTime::Committed(Timestamp(time.wrapping_add(1))),
            ..base.clone()
        };
        assert_ne!(base.canonical_bytes(), later.canonical_bytes(), "case seed {case}");
    }
}

/// Arbitrary bytes never panic the defensive decoders.
#[test]
fn decoders_never_panic() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(0xDE_C0 + case);
        let garbage = bytes(&mut rng, 256);
        let _ = TupleVersion::decode_cell(&garbage);
        let mut padded = garbage.clone();
        padded.resize(ccdb_storage::PAGE_SIZE, 0);
        let _ = Page::from_bytes(&padded);
    }
}
