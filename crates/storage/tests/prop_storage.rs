//! Model-based property tests: a slotted page against `Vec<Vec<u8>>`, and
//! tuple-codec round trips.

use ccdb_common::{PageNo, RelId, Timestamp, TxnId};
use ccdb_storage::{Page, PageType, TupleVersion, WriteTime, PAGE_USABLE};
use proptest::prelude::*;

/// Operations on a slotted page.
#[derive(Clone, Debug)]
enum Op {
    Insert(usize, Vec<u8>),
    Remove(usize),
    Replace(usize, Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..200)).prop_map(|(i, v)| Op::Insert(i, v)),
        any::<usize>().prop_map(Op::Remove),
        (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..200)).prop_map(|(i, v)| Op::Replace(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The page behaves exactly like a vector of byte strings, through any
    /// sequence of inserts/removes/replacements (with defragmentation
    /// happening invisibly), and always revalidates and round-trips.
    #[test]
    fn page_matches_vec_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut page = Page::new(PageNo(1), PageType::Leaf, RelId(1));
        let mut model: Vec<Vec<u8>> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(i, cell) => {
                    let i = i % (model.len() + 1);
                    if page.can_fit(cell.len()) {
                        page.insert_cell(i, &cell).unwrap();
                        model.insert(i, cell);
                    }
                }
                Op::Remove(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        page.remove_cell(i);
                        model.remove(i);
                    }
                }
                Op::Replace(i, cell) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        // Replacement may fail only for space reasons.
                        if cell.len() <= model[i].len()
                            || page.can_fit(cell.len())
                        {
                            page.replace_cell(i, &cell).unwrap();
                            model[i] = cell;
                        }
                    }
                }
            }
            page.validate_slots().unwrap();
        }
        let got: Vec<Vec<u8>> = page.cells().map(|c| c.to_vec()).collect();
        prop_assert_eq!(&got, &model);
        // Disk round trip preserves everything.
        let img = page.finalize_for_write().to_vec();
        let back = Page::from_bytes(&img).unwrap();
        prop_assert!(back.verify_checksum());
        let got2: Vec<Vec<u8>> = back.cells().map(|c| c.to_vec()).collect();
        prop_assert_eq!(&got2, &model);
    }

    /// Tuple cells round-trip for arbitrary contents.
    #[test]
    fn tuple_cell_roundtrip(
        rel in any::<u32>(),
        key in proptest::collection::vec(any::<u8>(), 0..64),
        pending in any::<bool>(),
        time in any::<u64>(),
        seq in any::<u16>(),
        eol in any::<bool>(),
        value in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let t = TupleVersion {
            rel: RelId(rel),
            key,
            time: if pending { WriteTime::Pending(TxnId(time)) } else { WriteTime::Committed(Timestamp(time)) },
            seq,
            end_of_life: eol,
            value,
        };
        let cell = t.encode_cell();
        prop_assert!(cell.len() <= PAGE_USABLE || t.key.len() + t.value.len() > PAGE_USABLE - 32);
        prop_assert_eq!(TupleVersion::decode_cell(&cell).unwrap(), t);
    }

    /// Canonical identity is stable under seq/page movement but sensitive to
    /// every semantic field.
    #[test]
    fn canonical_identity_properties(
        key in proptest::collection::vec(any::<u8>(), 0..32),
        time in any::<u64>(),
        value in proptest::collection::vec(any::<u8>(), 0..64),
        seq_a in any::<u16>(),
        seq_b in any::<u16>(),
    ) {
        let base = TupleVersion {
            rel: RelId(1),
            key,
            time: WriteTime::Committed(Timestamp(time)),
            seq: seq_a,
            end_of_life: false,
            value,
        };
        let moved = TupleVersion { seq: seq_b, ..base.clone() };
        prop_assert_eq!(base.canonical_bytes(), moved.canonical_bytes());
        let eol = TupleVersion { end_of_life: true, ..base.clone() };
        prop_assert_ne!(base.canonical_bytes(), eol.canonical_bytes());
        let later = TupleVersion {
            time: WriteTime::Committed(Timestamp(time.wrapping_add(1))),
            ..base.clone()
        };
        prop_assert_ne!(base.canonical_bytes(), later.canonical_bytes());
    }

    /// Arbitrary bytes never panic the defensive decoders.
    #[test]
    fn decoders_never_panic(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = TupleVersion::decode_cell(&garbage);
        let mut padded = garbage.clone();
        padded.resize(ccdb_storage::PAGE_SIZE, 0);
        let _ = Page::from_bytes(&padded);
    }
}
