//! The slotted page: the unit of I/O, buffering, logging, and auditing.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic (0xCCDB7A6E)
//! 4       8     page number
//! 12      1     page type
//! 13      1     flags (bit 0: historical — migrated/migratable to WORM)
//! 14      2     cell count
//! 16      8     page LSN (recovery: last WAL record applied)
//! 24      4     relation id
//! 28      2     free-region start offset
//! 30      2     next tuple-order number to assign
//! 32      8     right sibling page (leaf chaining)
//! 40      8     aux (TSB split time for historical pages)
//! 48      4     checksum (FNV over the page with this field zeroed)
//! 52      12    reserved
//! 64      …     cells, growing upward
//! …       …     slot directory: u16 cell offsets, growing down from 4096
//! ```
//!
//! Cells are opaque byte strings (tuple versions on leaves, separator entries
//! on internal nodes); each is stored with a u16 length prefix. The slot
//! directory keeps cells ordered (B+-tree key order on leaves), which is what
//! the auditor's page-integrity pass checks.

use ccdb_common::{Error, Lsn, PageNo, RelId, Result, Timestamp};

/// Page size in bytes. The paper's experiments use 4 KiB pages.
pub const PAGE_SIZE: usize = 4096;
/// Header bytes reserved at the front of every page.
pub const HEADER_SIZE: usize = 64;
/// Largest cell that fits on an otherwise empty page.
pub const PAGE_USABLE: usize = PAGE_SIZE - HEADER_SIZE - 2 /*slot*/ - 2 /*len prefix*/;

const MAGIC: u32 = 0xCCDB_7A6E;

const OFF_MAGIC: usize = 0;
const OFF_PGNO: usize = 4;
const OFF_TYPE: usize = 12;
const OFF_FLAGS: usize = 13;
const OFF_COUNT: usize = 14;
const OFF_LSN: usize = 16;
const OFF_REL: usize = 24;
const OFF_FREE: usize = 28;
const OFF_NEXT_SEQ: usize = 30;
const OFF_RIGHT: usize = 32;
const OFF_AUX: usize = 40;
const OFF_CHECKSUM: usize = 48;

const FLAG_HISTORICAL: u8 = 0b0000_0001;

/// What a page holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageType {
    /// Unallocated / zeroed.
    Free = 0,
    /// B+-tree leaf holding tuple versions.
    Leaf = 1,
    /// B+-tree internal node holding separator entries.
    Inner = 2,
    /// Catalog / metadata page.
    Meta = 3,
}

impl PageType {
    fn from_u8(v: u8) -> Result<PageType> {
        Ok(match v {
            0 => PageType::Free,
            1 => PageType::Leaf,
            2 => PageType::Inner,
            3 => PageType::Meta,
            t => return Err(Error::corruption(format!("unknown page type {t}"))),
        })
    }
}

/// An in-memory page image plus volatile bookkeeping (dirty state is buffer
/// metadata, never serialized).
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
    /// Whether the in-memory image differs from the on-disk image.
    pub dirty: bool,
    /// When the page first became dirty (drives the regret-interval sweep).
    pub dirtied_at: Timestamp,
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page { bytes: self.bytes.clone(), dirty: self.dirty, dirtied_at: self.dirtied_at }
    }
}

impl Page {
    /// Creates a freshly formatted page.
    pub fn new(pgno: PageNo, ptype: PageType, rel: RelId) -> Page {
        let mut p = Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("PAGE_SIZE box"),
            dirty: true,
            dirtied_at: Timestamp::ZERO,
        };
        p.put_u32(OFF_MAGIC, MAGIC);
        p.put_u64(OFF_PGNO, pgno.0);
        p.bytes[OFF_TYPE] = ptype as u8;
        p.put_u32(OFF_REL, rel.0);
        p.put_u16(OFF_FREE, HEADER_SIZE as u16);
        p.put_u64(OFF_RIGHT, PageNo::INVALID.0);
        p
    }

    /// Reconstructs a page from raw bytes, validating structure defensively —
    /// the auditor parses bytes an adversary may have edited.
    pub fn from_bytes(bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(Error::corruption(format!(
                "page image is {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let mut arr = vec![0u8; PAGE_SIZE].into_boxed_slice();
        arr.copy_from_slice(bytes);
        let p = Page {
            bytes: arr.try_into().expect("PAGE_SIZE box"),
            dirty: false,
            dirtied_at: Timestamp::ZERO,
        };
        if p.get_u32(OFF_MAGIC) != MAGIC {
            return Err(Error::corruption("bad page magic"));
        }
        PageType::from_u8(p.bytes[OFF_TYPE])?;
        p.validate_slots()?;
        Ok(p)
    }

    /// The raw 4 KiB image (checksum field as last updated).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Recomputes the checksum field and returns the image ready for disk.
    pub fn finalize_for_write(&mut self) -> &[u8; PAGE_SIZE] {
        let sum = self.compute_checksum();
        self.put_u32(OFF_CHECKSUM, sum);
        &self.bytes
    }

    /// Verifies the stored checksum against the contents.
    pub fn verify_checksum(&self) -> bool {
        self.get_u32(OFF_CHECKSUM) == self.compute_checksum()
    }

    fn compute_checksum(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for (i, &b) in self.bytes.iter().enumerate() {
            let v = if (OFF_CHECKSUM..OFF_CHECKSUM + 4).contains(&i) { 0 } else { b };
            h ^= v as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }

    // --- primitive accessors -------------------------------------------------

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])
    }
    fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
    fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"))
    }
    fn put_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
    fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }
    fn put_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    // --- header fields -------------------------------------------------------

    /// This page's number.
    pub fn pgno(&self) -> PageNo {
        PageNo(self.get_u64(OFF_PGNO))
    }

    /// The page type.
    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.bytes[OFF_TYPE]).expect("validated at construction")
    }

    /// Recovery LSN: the last WAL record reflected in this image.
    pub fn lsn(&self) -> Lsn {
        Lsn(self.get_u64(OFF_LSN))
    }

    /// Sets the recovery LSN.
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.put_u64(OFF_LSN, lsn.0);
    }

    /// Owning relation.
    pub fn rel_id(&self) -> RelId {
        RelId(self.get_u32(OFF_REL))
    }

    /// Sets the owning relation.
    pub fn set_rel_id(&mut self, rel: RelId) {
        self.put_u32(OFF_REL, rel.0);
    }

    /// Whether this page has been declared historical (TSB time-split
    /// output destined for WORM).
    pub fn is_historical(&self) -> bool {
        self.bytes[OFF_FLAGS] & FLAG_HISTORICAL != 0
    }

    /// Marks the page historical.
    pub fn set_historical(&mut self, v: bool) {
        if v {
            self.bytes[OFF_FLAGS] |= FLAG_HISTORICAL;
        } else {
            self.bytes[OFF_FLAGS] &= !FLAG_HISTORICAL;
        }
    }

    /// Right sibling in the leaf chain.
    pub fn right_sibling(&self) -> PageNo {
        PageNo(self.get_u64(OFF_RIGHT))
    }

    /// Sets the right sibling.
    pub fn set_right_sibling(&mut self, p: PageNo) {
        self.put_u64(OFF_RIGHT, p.0);
    }

    /// Auxiliary u64 (the TSB split time on historical pages).
    pub fn aux(&self) -> u64 {
        self.get_u64(OFF_AUX)
    }

    /// Sets the auxiliary u64.
    pub fn set_aux(&mut self, v: u64) {
        self.put_u64(OFF_AUX, v);
    }

    /// The next tuple-order number this page would assign.
    pub fn next_seq(&self) -> u16 {
        self.get_u16(OFF_NEXT_SEQ)
    }

    /// Assigns and consumes the next tuple-order number. Order numbers are
    /// per-page, monotone, and never reused — UNDOs leave gaps, which the
    /// paper notes "will not cause a problem with auditing".
    pub fn alloc_seq(&mut self) -> u16 {
        let s = self.get_u16(OFF_NEXT_SEQ);
        self.put_u16(OFF_NEXT_SEQ, s + 1);
        s
    }

    /// Forces the next tuple-order number to be at least `v` (used when a
    /// split copies tuples with existing order numbers to a new page).
    pub fn bump_seq_to(&mut self, v: u16) {
        if v > self.get_u16(OFF_NEXT_SEQ) {
            self.put_u16(OFF_NEXT_SEQ, v);
        }
    }

    // --- slot directory ------------------------------------------------------

    /// Number of cells on the page.
    pub fn cell_count(&self) -> usize {
        self.get_u16(OFF_COUNT) as usize
    }

    fn slot_pos(i: usize) -> usize {
        PAGE_SIZE - 2 * (i + 1)
    }

    fn slot(&self, i: usize) -> u16 {
        self.get_u16(Self::slot_pos(i))
    }

    fn set_slot(&mut self, i: usize, off: u16) {
        self.put_u16(Self::slot_pos(i), off);
    }

    fn free_off(&self) -> usize {
        self.get_u16(OFF_FREE) as usize
    }

    /// Bytes of contiguous free space between the cell region and the slot
    /// directory.
    pub fn contiguous_free(&self) -> usize {
        let slot_top = PAGE_SIZE - 2 * self.cell_count();
        slot_top.saturating_sub(self.free_off())
    }

    /// Total reclaimable free space (after a defragment).
    pub fn total_free(&self) -> usize {
        let used: usize = (0..self.cell_count()).map(|i| self.cell_len(i) + 2).sum();
        PAGE_SIZE - HEADER_SIZE - 2 * self.cell_count() - used
    }

    fn cell_len(&self, i: usize) -> usize {
        let off = self.slot(i) as usize;
        self.get_u16(off) as usize
    }

    /// Returns the `i`-th cell's bytes.
    pub fn cell(&self, i: usize) -> &[u8] {
        let off = self.slot(i) as usize;
        let len = self.get_u16(off) as usize;
        &self.bytes[off + 2..off + 2 + len]
    }

    /// Whether a cell of `len` bytes can be inserted (possibly after
    /// defragmentation).
    pub fn can_fit(&self, len: usize) -> bool {
        len + 2 + 2 <= self.total_free()
    }

    /// Inserts a cell at slot index `i` (shifting later slots). Defragments
    /// if the free space is sufficient but not contiguous.
    pub fn insert_cell(&mut self, i: usize, cell: &[u8]) -> Result<()> {
        let count = self.cell_count();
        assert!(i <= count, "slot index out of range");
        if cell.len() > PAGE_USABLE {
            return Err(Error::TupleTooLarge { size: cell.len(), max: PAGE_USABLE });
        }
        if cell.len() + 2 + 2 > self.total_free() {
            return Err(Error::TupleTooLarge {
                size: cell.len(),
                max: self.total_free().saturating_sub(4),
            });
        }
        if cell.len() + 2 + 2 > self.contiguous_free() {
            self.defragment();
        }
        let off = self.free_off();
        self.put_u16(off, cell.len() as u16);
        self.bytes[off + 2..off + 2 + cell.len()].copy_from_slice(cell);
        self.put_u16(OFF_FREE, (off + 2 + cell.len()) as u16);
        // Shift slots [i, count) down by one position.
        for j in (i..count).rev() {
            let v = self.slot(j);
            self.set_slot(j + 1, v);
        }
        self.set_slot(i, off as u16);
        self.put_u16(OFF_COUNT, (count + 1) as u16);
        Ok(())
    }

    /// Appends a cell after the last slot.
    pub fn append_cell(&mut self, cell: &[u8]) -> Result<()> {
        self.insert_cell(self.cell_count(), cell)
    }

    /// Removes the cell at slot `i`. The cell bytes become a hole reclaimed
    /// by the next defragment.
    pub fn remove_cell(&mut self, i: usize) {
        let count = self.cell_count();
        assert!(i < count, "slot index out of range");
        for j in i + 1..count {
            let v = self.slot(j);
            self.set_slot(j - 1, v);
        }
        self.put_u16(OFF_COUNT, (count - 1) as u16);
    }

    /// Replaces the cell at slot `i` with new bytes (used by lazy
    /// timestamping, which rewrites a tuple's time in place).
    pub fn replace_cell(&mut self, i: usize, cell: &[u8]) -> Result<()> {
        // Fast path: same length — overwrite in place.
        if cell.len() == self.cell_len(i) {
            let off = self.slot(i) as usize;
            self.bytes[off + 2..off + 2 + cell.len()].copy_from_slice(cell);
            return Ok(());
        }
        self.remove_cell(i);
        self.insert_cell(i, cell)
    }

    /// Removes every cell (used when a page is rebuilt in place or retired).
    pub fn clear_cells(&mut self) {
        self.put_u16(OFF_COUNT, 0);
        self.put_u16(OFF_FREE, HEADER_SIZE as u16);
    }

    /// Changes the page type (a split retires its input by rewriting it as
    /// a [`PageType::Free`] page).
    pub fn set_page_type(&mut self, t: PageType) {
        self.bytes[OFF_TYPE] = t as u8;
    }

    /// Rewrites all cells contiguously, squeezing out holes.
    pub fn defragment(&mut self) {
        let count = self.cell_count();
        let cells: Vec<Vec<u8>> = (0..count).map(|i| self.cell(i).to_vec()).collect();
        let mut off = HEADER_SIZE;
        for (i, c) in cells.iter().enumerate() {
            self.put_u16(off, c.len() as u16);
            self.bytes[off + 2..off + 2 + c.len()].copy_from_slice(c);
            self.set_slot(i, off as u16);
            off += 2 + c.len();
        }
        self.put_u16(OFF_FREE, off as u16);
    }

    /// Structural validation: every slot points inside the page and cell
    /// extents stay inside the cell region. (Content validation — sort
    /// order, version threading — is the B+-tree checker's job.)
    pub fn validate_slots(&self) -> Result<()> {
        let count = self.cell_count();
        if PAGE_SIZE - 2 * count < HEADER_SIZE {
            return Err(Error::corruption("slot directory overlaps header"));
        }
        let free = self.free_off();
        if !(HEADER_SIZE..=PAGE_SIZE).contains(&free) {
            return Err(Error::corruption("free offset out of range"));
        }
        for i in 0..count {
            let off = self.slot(i) as usize;
            if off < HEADER_SIZE || off + 2 > PAGE_SIZE {
                return Err(Error::corruption(format!("slot {i} offset {off} out of range")));
            }
            let len = self.get_u16(off) as usize;
            if off + 2 + len > PAGE_SIZE - 2 * count {
                return Err(Error::corruption(format!("cell {i} extends into slot directory")));
            }
        }
        Ok(())
    }

    /// Iterates the cells in slot order.
    pub fn cells(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.cell_count()).map(move |i| self.cell(i))
    }
}

impl core::fmt::Debug for Page {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Page")
            .field("pgno", &self.pgno())
            .field("type", &self.page_type())
            .field("cells", &self.cell_count())
            .field("free", &self.total_free())
            .field("dirty", &self.dirty)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new(PageNo(7), PageType::Leaf, RelId(3))
    }

    #[test]
    fn fresh_page_header() {
        let p = page();
        assert_eq!(p.pgno(), PageNo(7));
        assert_eq!(p.page_type(), PageType::Leaf);
        assert_eq!(p.rel_id(), RelId(3));
        assert_eq!(p.cell_count(), 0);
        assert_eq!(p.right_sibling(), PageNo::INVALID);
        assert!(!p.is_historical());
        assert_eq!(p.lsn(), Lsn::ZERO);
    }

    #[test]
    fn insert_and_read_cells() {
        let mut p = page();
        p.append_cell(b"bb").unwrap();
        p.insert_cell(0, b"aa").unwrap();
        p.append_cell(b"cc").unwrap();
        assert_eq!(p.cell_count(), 3);
        assert_eq!(p.cell(0), b"aa");
        assert_eq!(p.cell(1), b"bb");
        assert_eq!(p.cell(2), b"cc");
    }

    #[test]
    fn remove_shifts_slots() {
        let mut p = page();
        for c in [b"a".as_slice(), b"b", b"c", b"d"] {
            p.append_cell(c).unwrap();
        }
        p.remove_cell(1);
        assert_eq!(p.cell_count(), 3);
        assert_eq!(p.cell(0), b"a");
        assert_eq!(p.cell(1), b"c");
        assert_eq!(p.cell(2), b"d");
    }

    #[test]
    fn defragment_reclaims_holes() {
        let mut p = page();
        let big = vec![0xAB; 900];
        for _ in 0..4 {
            p.append_cell(&big).unwrap();
        }
        assert!(!p.can_fit(900));
        p.remove_cell(0);
        p.remove_cell(0);
        assert!(p.can_fit(900));
        // contiguous space is exhausted; insert must defragment internally
        p.append_cell(&big).unwrap();
        assert_eq!(p.cell_count(), 3);
        assert!(p.cells().all(|c| c == &big[..]));
        p.validate_slots().unwrap();
    }

    #[test]
    fn replace_cell_same_and_different_length() {
        let mut p = page();
        p.append_cell(b"xxxx").unwrap();
        p.append_cell(b"yyyy").unwrap();
        p.replace_cell(0, b"zzzz").unwrap();
        assert_eq!(p.cell(0), b"zzzz");
        p.replace_cell(0, b"longer-cell").unwrap();
        assert_eq!(p.cell(0), b"longer-cell");
        assert_eq!(p.cell(1), b"yyyy");
        p.validate_slots().unwrap();
    }

    #[test]
    fn oversized_cell_rejected() {
        let mut p = page();
        let huge = vec![0u8; PAGE_USABLE + 1];
        assert!(matches!(p.append_cell(&huge), Err(Error::TupleTooLarge { .. })));
        let exact = vec![1u8; PAGE_USABLE];
        p.append_cell(&exact).unwrap();
        assert_eq!(p.cell(0), &exact[..]);
    }

    #[test]
    fn full_page_rejects_insert() {
        let mut p = page();
        let cell = vec![7u8; 100];
        let mut n = 0;
        while p.can_fit(100) {
            p.append_cell(&cell).unwrap();
            n += 1;
        }
        assert!(n > 30);
        assert!(matches!(p.append_cell(&cell), Err(Error::TupleTooLarge { .. })));
    }

    #[test]
    fn bytes_roundtrip_with_checksum() {
        let mut p = page();
        p.append_cell(b"persisted").unwrap();
        p.set_lsn(Lsn(99));
        let img = p.finalize_for_write().to_vec();
        let q = Page::from_bytes(&img).unwrap();
        assert!(q.verify_checksum());
        assert_eq!(q.cell(0), b"persisted");
        assert_eq!(q.lsn(), Lsn(99));
        assert!(!q.dirty);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut p = page();
        let mut img = p.finalize_for_write().to_vec();
        img[0] ^= 0xFF;
        assert!(Page::from_bytes(&img).is_err());
    }

    #[test]
    fn corrupt_slot_rejected() {
        let mut p = page();
        p.append_cell(b"x").unwrap();
        let mut img = p.finalize_for_write().to_vec();
        // slam the slot offset to an out-of-range value
        img[PAGE_SIZE - 2] = 0xFF;
        img[PAGE_SIZE - 1] = 0xFF;
        assert!(Page::from_bytes(&img).is_err());
    }

    #[test]
    fn checksum_detects_bit_flip() {
        let mut p = page();
        p.append_cell(b"guard").unwrap();
        let mut img = p.finalize_for_write().to_vec();
        img[HEADER_SIZE + 3] ^= 0x01;
        let q = Page::from_bytes(&img).unwrap();
        assert!(!q.verify_checksum());
    }

    #[test]
    fn seq_allocation_monotone() {
        let mut p = page();
        assert_eq!(p.alloc_seq(), 0);
        assert_eq!(p.alloc_seq(), 1);
        p.bump_seq_to(10);
        assert_eq!(p.alloc_seq(), 10);
        p.bump_seq_to(5); // no regression
        assert_eq!(p.alloc_seq(), 11);
    }

    #[test]
    fn historical_flag_and_aux() {
        let mut p = page();
        p.set_historical(true);
        p.set_aux(1234);
        assert!(p.is_historical());
        assert_eq!(p.aux(), 1234);
        p.set_historical(false);
        assert!(!p.is_historical());
    }
}
